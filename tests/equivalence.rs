//! Property-based semantics preservation: for random straight-line
//! programs, vectorization under any configuration computes exactly the
//! memory state of the scalar original (bit-exact for integers; within
//! relative tolerance for reassociated fast-math floats).

use proptest::prelude::*;

use lslp::{vectorize_function, VectorizerConfig};
use lslp_interp::{run_function, Memory, Value};
use lslp_ir::{Function, ScalarType};
use lslp_kernels::{generate, GenConfig};
use lslp_target::CostModel;

/// Allocate and deterministically initialize memory for a generated
/// program; returns the argument vector for index `i = 0`.
fn setup(p: &lslp_kernels::GeneratedProgram, salt: u64) -> (Memory, Vec<Value>) {
    let mut mem = Memory::new();
    let f = &p.function;
    let mut args = Vec::new();
    for (k, &param) in f.params().iter().enumerate() {
        if f.ty(param) == lslp_ir::Type::PTR {
            let name = f.value_name(param).unwrap().to_string();
            let ptr = match p.elem {
                ScalarType::F64 => {
                    let init: Vec<f64> = (0..p.min_len)
                        .map(|j| 0.25 + ((j as u64 * 37 + k as u64 * 11 + salt) % 64) as f64 / 16.0)
                        .collect();
                    mem.alloc_f64(&name, &init)
                }
                _ => {
                    let init: Vec<i64> = (0..p.min_len)
                        .map(|j| {
                            ((j as u64 * 2654435761 + k as u64 * 97 + salt) % 1021) as i64 - 300
                        })
                        .collect();
                    mem.alloc_i64(&name, &init)
                }
            };
            args.push(ptr);
        } else {
            args.push(Value::Int(0));
        }
    }
    (mem, args)
}

fn run_and_capture(f: &Function, p: &lslp_kernels::GeneratedProgram, salt: u64) -> Memory {
    let (mut mem, args) = setup(p, salt);
    run_function(f, &args, &mut mem).expect("straight-line programs execute");
    mem
}

fn assert_equivalent(p: &lslp_kernels::GeneratedProgram, scalar: &Memory, vec: &Memory, cfg: &str) {
    for name in scalar.buffer_names() {
        let a = scalar.bytes(name).unwrap();
        let b = vec.bytes(name).unwrap();
        if a == b {
            continue;
        }
        assert_eq!(p.elem, ScalarType::F64, "{cfg}: integer buffer {name} differs");
        for (idx, (ca, cb)) in a.chunks(8).zip(b.chunks(8)).enumerate() {
            let x = f64::from_le_bytes(ca.try_into().unwrap());
            let y = f64::from_le_bytes(cb.try_into().unwrap());
            let tol = 1e-8 * x.abs().max(y.abs()).max(1.0);
            assert!((x - y).abs() <= tol, "{cfg}: {name}[{idx}] = {x} vs {y}");
        }
    }
}

fn check_all_configs(gen_cfg: GenConfig) {
    let p = generate(&gen_cfg);
    let scalar_mem = run_and_capture(&p.function, &p, gen_cfg.seed);
    let tm = CostModel::skylake_like();
    for name in ["SLP-NR", "SLP", "LSLP", "LSLP-LA0", "LSLP-LA2", "LSLP-Multi2", "LSLP-Throttle"] {
        let cfg = VectorizerConfig::preset(name).unwrap();
        let mut f = p.function.clone();
        vectorize_function(&mut f, &cfg, &tm);
        lslp_ir::verify_function(&f)
            .unwrap_or_else(|e| panic!("{name} seed {}: {e}", gen_cfg.seed));
        let vec_mem = run_and_capture(&f, &p, gen_cfg.seed);
        assert_equivalent(&p, &scalar_mem, &vec_mem, name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Integer programs must be bit-exact under every configuration.
    #[test]
    fn integer_programs_are_bit_exact(
        seed in 0u64..1_000_000,
        groups in 1usize..4,
        lanes in prop::sample::select(vec![2usize, 3, 4]),
        depth in 1u32..5,
        swap in 0.0f64..1.0,
        arrays in 1usize..4,
    ) {
        check_all_configs(GenConfig {
            seed, groups, lanes, depth, int: true, swap_prob: swap, arrays,
        });
    }

    /// Float programs must match within relative tolerance (fast-math
    /// reassociation inside multi-nodes may reorder additions).
    #[test]
    fn float_programs_match_within_tolerance(
        seed in 0u64..1_000_000,
        groups in 1usize..3,
        lanes in prop::sample::select(vec![2usize, 4]),
        depth in 1u32..5,
        swap in 0.0f64..1.0,
        arrays in 1usize..4,
    ) {
        check_all_configs(GenConfig {
            seed, groups, lanes, depth, int: false, swap_prob: swap, arrays,
        });
    }

    /// Without fast-math, float vectorization must be bit-exact (operand
    /// commutation is exact in IEEE-754; reassociation is disabled).
    #[test]
    fn strict_float_programs_are_bit_exact(
        seed in 0u64..1_000_000,
        depth in 1u32..5,
        swap in 0.0f64..1.0,
    ) {
        let gen_cfg = GenConfig {
            seed, groups: 2, lanes: 2, depth, int: false, swap_prob: swap, arrays: 2,
        };
        let p = generate(&gen_cfg);
        let scalar_mem = run_and_capture(&p.function, &p, seed);
        let tm = CostModel::skylake_like();
        let cfg = VectorizerConfig { fast_math: false, ..VectorizerConfig::lslp() };
        let mut f = p.function.clone();
        vectorize_function(&mut f, &cfg, &tm);
        let vec_mem = run_and_capture(&f, &p, seed);
        for name in scalar_mem.buffer_names() {
            prop_assert_eq!(scalar_mem.bytes(name), vec_mem.bytes(name), "buffer {}", name);
        }
    }

    /// Vectorization never increases the simulated cycle count.
    #[test]
    fn vectorization_never_slows_down(
        seed in 0u64..1_000_000,
        lanes in prop::sample::select(vec![2usize, 4]),
        swap in 0.0f64..1.0,
    ) {
        let gen_cfg = GenConfig {
            seed, groups: 2, lanes, depth: 3, int: true, swap_prob: swap, arrays: 3,
        };
        let p = generate(&gen_cfg);
        let tm = CostModel::skylake_like();
        let base = lslp_interp::perf::body_cycles(&p.function, &tm);
        let mut f = p.function.clone();
        vectorize_function(&mut f, &VectorizerConfig::lslp(), &tm);
        let after = lslp_interp::perf::body_cycles(&f, &tm);
        prop_assert!(after <= base, "cycles {} -> {}", base, after);
    }
}

/// Reduction-seed vectorization (`lslp::reduce`) preserves semantics on
/// randomized reduction chains.
mod reductions {
    use super::*;
    use lslp_ir::{Function, FunctionBuilder, Opcode, Type, ValueId};

    /// Builds `R[0] = X[p(0)] ⊕ X[p(1)] ⊕ ... ⊕ X[p(n-1)]` with a seeded
    /// association order, where `p` shuffles which element each term loads.
    fn reduction_program(op: Opcode, n: usize, seed: u64) -> Function {
        let mut f = Function::new("red");
        let r = f.add_param("R", Type::PTR);
        let x = f.add_param("X", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let mut terms: Vec<ValueId> = Vec::new();
        let mut state = seed | 1;
        for k in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Mildly shuffled offsets keep some loads non-consecutive.
            let off = if state.is_multiple_of(3) { (k + n) as i64 } else { k as i64 };
            let c = b.func().const_i64(off);
            let idx = b.add(i, c);
            let g = b.gep(x, idx, 8);
            terms.push(b.load(Type::I64, g));
        }
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = b.binop(op, acc, t);
        }
        b.store(acc, r);
        f
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        #[test]
        fn reduction_vectorization_is_bit_exact(
            seed in 0u64..100_000,
            n in 4usize..12,
            op in prop::sample::select(vec![Opcode::Add, Opcode::Xor, Opcode::And, Opcode::Or, Opcode::Mul, Opcode::SMax]),
        ) {
            let scalar = reduction_program(op, n, seed);
            let mut vectorized = scalar.clone();
            let cfg = VectorizerConfig {
                enable_reductions: true,
                ..VectorizerConfig::lslp()
            };
            lslp::vectorize_function(&mut vectorized, &cfg, &CostModel::skylake_like());
            lslp_ir::verify_function(&vectorized).unwrap();

            let exec = |f: &Function| {
                let mut mem = Memory::new();
                let init: Vec<i64> = (0..(2 * n + 8) as i64).map(|j| j * 7 - 11).collect();
                mem.alloc_i64("X", &init);
                mem.alloc_i64("R", &[0; 4]);
                let args = vec![
                    mem.ptr("R").unwrap(),
                    mem.ptr("X").unwrap(),
                    Value::Int(0),
                ];
                run_function(f, &args, &mut mem).unwrap();
                mem.read_i64("R", 0).unwrap()
            };
            prop_assert_eq!(exec(&scalar), exec(&vectorized));
        }
    }
}

/// The full `-O3`-style pipeline (simplify + fold + CSE + DCE around the
/// vectorizer) preserves semantics end to end.
mod pipeline_equivalence {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        #[test]
        fn o3_pipeline_preserves_semantics(
            seed in 0u64..1_000_000,
            groups in 1usize..4,
            depth in 1u32..5,
            swap in 0.0f64..1.0,
        ) {
            let gen_cfg = GenConfig {
                seed, groups, lanes: 2, depth, int: true, swap_prob: swap, arrays: 3,
            };
            let p = generate(&gen_cfg);
            let scalar_mem = run_and_capture(&p.function, &p, seed);
            let tm = CostModel::skylake_like();
            for name in ["O3", "LSLP"] {
                let cfg = VectorizerConfig::preset(name).unwrap();
                let mut f = p.function.clone();
                lslp::run_pipeline(&mut f, &cfg, &tm);
                lslp_ir::verify_function(&f)
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
                let out_mem = run_and_capture(&f, &p, seed);
                for bufname in scalar_mem.buffer_names() {
                    prop_assert_eq!(
                        scalar_mem.bytes(bufname),
                        out_mem.bytes(bufname),
                        "pipeline {} changed buffer {}",
                        name,
                        bufname
                    );
                }
            }
        }
    }

    /// A large generated program (hundreds of instructions, many store
    /// groups, deep expressions) goes through the whole pipeline quickly
    /// and correctly.
    #[test]
    fn stress_large_program() {
        let gen_cfg = GenConfig {
            seed: 77,
            groups: 24,
            lanes: 4,
            depth: 5,
            int: true,
            swap_prob: 0.6,
            arrays: 6,
        };
        let p = generate(&gen_cfg);
        assert!(p.function.body_len() > 1000, "len {}", p.function.body_len());
        let scalar_mem = run_and_capture(&p.function, &p, 77);
        let tm = CostModel::skylake_like();
        let mut f = p.function.clone();
        let report = lslp::run_pipeline(&mut f, &VectorizerConfig::lslp(), &tm);
        assert!(report.vectorize.trees_vectorized > 0, "stress program must vectorize");
        lslp_ir::verify_function(&f).unwrap();
        let out_mem = run_and_capture(&f, &p, 77);
        for name in scalar_mem.buffer_names() {
            assert_eq!(scalar_mem.bytes(name), out_mem.bytes(name), "buffer {name}");
        }
    }
}
