//! Golden per-target cost and VF-selection tests: the same kernels run
//! under LSLP against every named target of the registry, pinning the
//! applied static cost and the vector factors the VF exploration commits.
//!
//! These are change detectors for the cost tables in `lslp-target`: a
//! table edit that shifts a decision (a kernel vectorizing where it did
//! not, a VF widening or narrowing) fails here with the exact before/after
//! numbers, rather than surfacing as a mysterious figure diff.

use lslp::{vectorize_function, VectorizerConfig};
use lslp_target::TargetSpec;

/// Run `kernel` under LSLP on `target`; returns `(applied cost, committed
/// VFs in commit order)`.
fn lslp_on(kernel: &str, target: &str) -> (i64, Vec<usize>) {
    let k = lslp_kernels::suite().into_iter().find(|k| k.name == kernel).expect("kernel exists");
    let mut f = k.compile();
    let tm = TargetSpec::parse(target).expect("registry target");
    let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &tm);
    lslp_ir::verify_function(&f).expect("output verifies");
    let vfs = report.attempts.iter().filter(|a| a.vectorized).map(|a| a.vf).collect();
    (report.applied_cost, vfs)
}

/// One golden cell: target name, applied cost, committed VFs.
type Golden = (&'static str, i64, &'static [usize]);

/// Golden table: `(kernel, [(target, cost, vfs); 4])`. Narrowest target
/// first, matching the bench matrix's column order.
const GOLDENS: &[(&str, [Golden; 4])] = &[
    (
        "motivation_loads",
        [
            ("sse4.2", -6, &[2]),
            ("neon128", -6, &[2]),
            ("skylake-avx2", -6, &[2]),
            ("avx512", -6, &[2]),
        ],
    ),
    (
        "motivation_multi",
        [
            ("sse4.2", -10, &[2]),
            ("neon128", -10, &[2]),
            ("skylake-avx2", -10, &[2]),
            ("avx512", -10, &[2]),
        ],
    ),
    (
        // 4 × f64 reciprocal chain: one 256-bit tree on AVX targets, two
        // 128-bit trees on SSE, nothing on NEON (half-rate f64 SIMD
        // cancels the per-op savings).
        "hreciprocal",
        [
            ("sse4.2", -5, &[2, 2]),
            ("neon128", 0, &[]),
            ("skylake-avx2", -7, &[4]),
            ("avx512", -7, &[4]),
        ],
    ),
    (
        // Profitable only with 4 lanes: 128-bit targets stay scalar.
        "calc_z3",
        [("sse4.2", 0, &[]), ("neon128", 0, &[]), ("skylake-avx2", -1, &[4]), ("avx512", -1, &[4])],
    ),
    (
        "mesh1",
        [
            ("sse4.2", -13, &[2]),
            ("neon128", 0, &[]),
            ("skylake-avx2", -13, &[2]),
            ("avx512", -13, &[2]),
        ],
    ),
];

#[test]
fn golden_costs_per_target() {
    for &(kernel, ref cells) in GOLDENS {
        for &(target, cost, vfs) in cells {
            let (got_cost, got_vfs) = lslp_on(kernel, target);
            assert_eq!(got_cost, cost, "{kernel} on {target}: applied cost");
            assert_eq!(got_vfs, vfs, "{kernel} on {target}: committed VFs");
        }
    }
}

/// The multi-target acceptance criterion: VF choices genuinely diverge
/// between the narrowest and widest x86 targets.
#[test]
fn vf_choice_adapts_to_register_width() {
    let (_, narrow) = lslp_on("hreciprocal", "sse4.2");
    let (_, wide) = lslp_on("hreciprocal", "avx512");
    assert_eq!(narrow, vec![2, 2], "128-bit registers split the 4-lane chain");
    assert_eq!(wide, vec![4], "512-bit registers take it whole");
}

/// A wider register file never makes the cost model *worse* on the full
/// suite: avx512's applied cost is ≤ sse4.2's for every kernel (more
/// negative = better).
#[test]
fn wider_targets_never_lose_to_narrower_ones() {
    for k in lslp_kernels::suite() {
        let (narrow, _) = lslp_on(k.name, "sse4.2");
        let (wide, _) = lslp_on(k.name, "avx512");
        assert!(wide <= narrow, "{}: avx512 {wide} vs sse4.2 {narrow}", k.name);
    }
}

/// Feature strings mutate the golden decisions predictably.
#[test]
fn feature_flags_shift_the_goldens() {
    // `hw-gather` halves the cost of mixed gathers: `vsumsqr` flips from
    // scalar to a profitable VF2 tree on the 128-bit target.
    let (base, base_vfs) = lslp_on("vsumsqr", "sse4.2");
    assert_eq!((base, base_vfs.len()), (0, 0), "stock sse4.2 stays scalar");
    let (hw, hw_vfs) = lslp_on("vsumsqr", "sse4.2+hw-gather");
    assert_eq!((hw, hw_vfs), (-4, vec![2]), "hw-gather makes the gathers affordable");
    // `slow-insert` doubles scalar/vector boundary crossings:
    // `hreciprocal` loses its gather-heavy first tree and keeps only the
    // cheap one (-5 with two trees becomes -3 with one).
    let (slow, slow_vfs) = lslp_on("hreciprocal", "sse4.2+slow-insert");
    assert_eq!((slow, slow_vfs), (-3, vec![2]), "slow-insert drops the marginal tree");
}
