//! Differential fuzzing of the guarded vectorizer.
//!
//! For ≥100 generator seeds per configuration, a random straight-line
//! program is vectorized under every paper configuration × every guard
//! mode, executed, and its final memory compared against the scalar
//! oracle (bit-exact for integers, relative tolerance for fast-math
//! floats). Clean inputs must also raise zero guard incidents — the guard
//! must be transparent when nothing goes wrong. On a mismatch the failing
//! case is shrunk (lanes, depth, groups, swap probability) before
//! reporting, so the panic message carries a minimal reproducer.

use lslp::{try_vectorize_function, GuardMode, VectorizerConfig};
use lslp_interp::{run_function, Memory, Value};
use lslp_ir::ScalarType;
use lslp_kernels::{generate, GenConfig, GeneratedProgram};
use lslp_target::CostModel;

const SEEDS_PER_CONFIG: u64 = 100;
const PRESETS: [&str; 4] = ["O3", "SLP-NR", "SLP", "LSLP"];
const GUARDS: [GuardMode; 3] = [GuardMode::Off, GuardMode::Rollback, GuardMode::Strict];

/// Deterministically initialize memory for a generated program (same
/// scheme as the equivalence suite) and run it.
fn capture(p: &GeneratedProgram, f: &lslp_ir::Function, salt: u64) -> Memory {
    let mut mem = Memory::new();
    let mut args = Vec::new();
    for (k, &param) in f.params().iter().enumerate() {
        if f.ty(param) == lslp_ir::Type::PTR {
            let name = f.value_name(param).unwrap().to_string();
            let ptr = match p.elem {
                ScalarType::F64 => {
                    let init: Vec<f64> = (0..p.min_len)
                        .map(|j| 0.25 + ((j as u64 * 37 + k as u64 * 11 + salt) % 64) as f64 / 16.0)
                        .collect();
                    mem.alloc_f64(&name, &init)
                }
                _ => {
                    let init: Vec<i64> = (0..p.min_len)
                        .map(|j| {
                            ((j as u64 * 2654435761 + k as u64 * 97 + salt) % 1021) as i64 - 300
                        })
                        .collect();
                    mem.alloc_i64(&name, &init)
                }
            };
            args.push(ptr);
        } else {
            args.push(Value::Int(0));
        }
    }
    run_function(f, &args, &mut mem).expect("straight-line programs execute");
    mem
}

/// Run one (program, preset, guard mode) cell; `Err` describes the first
/// divergence from the scalar oracle (or a spurious incident).
fn check_one(
    gen_cfg: &GenConfig,
    preset: &str,
    guard: GuardMode,
    paranoid: bool,
) -> Result<(), String> {
    let p = generate(gen_cfg);
    let scalar = capture(&p, &p.function, gen_cfg.seed);
    let cfg = VectorizerConfig { guard, paranoid, ..VectorizerConfig::preset(preset).unwrap() };
    let mut f = p.function.clone();
    let report = try_vectorize_function(&mut f, &cfg, &CostModel::skylake_like())
        .map_err(|e| format!("strict abort on clean input: {e}"))?;
    if !report.incidents.is_empty() {
        return Err(format!("spurious incident on clean input: {}", report.incidents[0]));
    }
    lslp_ir::verify_function(&f).map_err(|e| format!("invalid IR: {e}"))?;
    let vec = capture(&p, &f, gen_cfg.seed);
    for name in scalar.buffer_names() {
        let a = scalar.bytes(name).unwrap();
        let b = vec.bytes(name).unwrap();
        if a == b {
            continue;
        }
        if p.elem != ScalarType::F64 {
            return Err(format!("integer buffer {name} differs"));
        }
        for (idx, (ca, cb)) in a.chunks(8).zip(b.chunks(8)).enumerate() {
            let x = f64::from_le_bytes(ca.try_into().unwrap());
            let y = f64::from_le_bytes(cb.try_into().unwrap());
            let tol = 1e-8 * x.abs().max(y.abs()).max(1.0);
            if (x - y).abs() > tol {
                return Err(format!("{name}[{idx}] = {x} vs {y}"));
            }
        }
    }
    Ok(())
}

/// Greedily shrink a failing case along each axis while the given failure
/// predicate keeps holding. Shared by the differential-execution sweep and
/// the delta-undo property test below.
fn shrink_by(mut cfg: GenConfig, fails: impl Fn(&GenConfig) -> bool) -> GenConfig {
    loop {
        let mut candidates = Vec::new();
        if cfg.groups > 1 {
            candidates.push(GenConfig { groups: cfg.groups - 1, ..cfg.clone() });
        }
        if cfg.lanes > 2 {
            candidates.push(GenConfig { lanes: cfg.lanes - 1, ..cfg.clone() });
        }
        if cfg.depth > 1 {
            candidates.push(GenConfig { depth: cfg.depth - 1, ..cfg.clone() });
        }
        if cfg.swap_prob > 0.0 {
            candidates.push(GenConfig { swap_prob: 0.0, ..cfg.clone() });
        }
        if cfg.arrays > 1 {
            candidates.push(GenConfig { arrays: cfg.arrays - 1, ..cfg.clone() });
        }
        match candidates.into_iter().find(|c| fails(c)) {
            Some(smaller) => cfg = smaller,
            None => return cfg,
        }
    }
}

/// Greedily shrink a failing oracle case while it keeps failing.
fn shrink(cfg: GenConfig, preset: &str, guard: GuardMode, paranoid: bool) -> GenConfig {
    shrink_by(cfg, |c| check_one(c, preset, guard, paranoid).is_err())
}

/// FNV-1a of a cell name. The per-cell seed mix is derived from the
/// *names* `"{preset}/{guard}"`, never from iteration position, so the
/// exact programs a cell covers are stable under any reordering or
/// extension of `PRESETS`/`GUARDS` — a failure seed from one machine or
/// revision reproduces on any other.
fn cell_hash(preset: &str, guard: GuardMode) -> u64 {
    fnv(&format!("{preset}/{guard}"))
}

/// FNV-1a over a name.
fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The sweep grid as an explicit list, sorted by cell name — the order
/// cases run in (and therefore which failure surfaces first) is defined
/// by the data, not by array layout.
fn cells() -> Vec<(&'static str, GuardMode)> {
    let mut cells: Vec<(&'static str, GuardMode)> =
        GUARDS.iter().flat_map(|&g| PRESETS.map(|p| (p, g))).collect();
    cells.sort_by_key(|&(p, g)| (p, format!("{g}")));
    cells
}

fn fuzz(int: bool, paranoid: bool) {
    for (preset, guard) in cells() {
        let mix = cell_hash(preset, guard);
        for seed in 0..SEEDS_PER_CONFIG {
            // Derive shape parameters from the seed so the sweep covers
            // lanes × depth × swap × arrays without an RNG in the test.
            let gen_cfg = GenConfig {
                seed: seed.wrapping_mul(0x9e3779b97f4a7c15) ^ mix,
                groups: 1 + (seed % 2) as usize,
                lanes: [2, 3, 4][(seed % 3) as usize],
                depth: 1 + (seed % 4) as u32,
                int,
                swap_prob: (seed % 10) as f64 / 10.0,
                arrays: 1 + (seed % 3) as usize,
            };
            if let Err(e) = check_one(&gen_cfg, preset, guard, paranoid) {
                let min = shrink(gen_cfg.clone(), preset, guard, paranoid);
                let err = check_one(&min, preset, guard, paranoid).unwrap_err();
                // Self-contained report: the GenConfig carries the mixed
                // seed, so `check_one(&min, "{preset}", {guard}, ..)`
                // replays it without re-deriving anything.
                panic!(
                    "guard fuzz failure under {preset}/{guard}{} \
                     (cell seed {seed}, gen {gen_cfg:?}): {e}\n\
                     minimal reproducer {min:?}: {err}",
                    if paranoid { " (paranoid)" } else { "" }
                );
            }
        }
    }
}

#[test]
fn integer_programs_survive_all_guard_modes() {
    fuzz(true, false);
}

#[test]
fn float_programs_survive_all_guard_modes() {
    fuzz(false, false);
}

// ---------------------------------------------------------------------------
// Delta-undo property: rollback is a perfect inverse of any mutation mix
// ---------------------------------------------------------------------------

/// Splitmix-style step for the mutation driver — deterministic from the
/// generator seed, so every failure replays from its `GenConfig` alone.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// Apply `count` pseudo-random mutations drawn from the full `Function`
/// mutation surface: allocation (params, constants, instructions), payload
/// edits (`inst_mut`, `replace_uses`, names), and body-order changes
/// (`remove_from_body`, `rebuild_body`). Validity of the result is
/// irrelevant — rollback must restore even from invalid intermediate IR.
fn random_mutations(f: &mut lslp_ir::Function, seed: u64, count: usize) {
    use lslp_ir::{InstAttr, Opcode, Type, ValueId};
    let mut s = seed | 1;
    for _ in 0..count {
        let n = f.num_values() as u64;
        let pick = |s: &mut u64| ValueId::from_raw((next_rand(s) % n) as u32);
        match next_rand(&mut s) % 8 {
            0 => {
                f.add_param(format!("p{}", next_rand(&mut s)), Type::I64);
            }
            1 => {
                f.const_i64((next_rand(&mut s) % 7) as i64 - 3);
            }
            2 => {
                let (a, b) = (pick(&mut s), pick(&mut s));
                f.push(Opcode::Add, Type::I64, vec![a, b], InstAttr::None);
            }
            3 => {
                let v = pick(&mut s);
                let name = format!("n{}", next_rand(&mut s) % 100);
                f.set_value_name(v, name);
            }
            4 => {
                let (v, replacement) = (pick(&mut s), pick(&mut s));
                let k = next_rand(&mut s);
                if let Some(inst) = f.inst_mut(v) {
                    if !inst.args.is_empty() {
                        let idx = (k % inst.args.len() as u64) as usize;
                        inst.args[idx] = replacement;
                    }
                }
            }
            5 => {
                let (old, new) = (pick(&mut s), pick(&mut s));
                f.replace_uses(old, new);
            }
            6 => {
                if f.body_len() > 1 {
                    let victim = f.body()[(next_rand(&mut s) % f.body_len() as u64) as usize];
                    f.remove_from_body(&std::collections::HashSet::from([victim]));
                }
            }
            _ => {
                let mut order = f.body().to_vec();
                if !order.is_empty() {
                    let by = (next_rand(&mut s) % order.len() as u64) as usize;
                    order.rotate_left(by);
                    f.rebuild_body(order);
                }
            }
        }
    }
}

/// One delta-undo trial: generate a program, hit it with a random mutation
/// sequence inside a transaction, roll back, and demand the printed form,
/// the epoch, and the verifier verdict are all byte-identical to the
/// pre-transaction state.
fn delta_undo_check(gen_cfg: &GenConfig) -> Result<(), String> {
    let p = generate(gen_cfg);
    let mut f = p.function;
    let before_print = lslp_ir::print_function(&f);
    let before_epoch = f.epoch();
    let before_verdict = format!("{:?}", lslp_ir::verify_function(&f));
    let before_values = f.num_values();

    let mark = f.begin_txn();
    let count = 4 + (gen_cfg.seed % 13) as usize;
    random_mutations(&mut f, gen_cfg.seed ^ 0xd1b5_4a32_d192_ed03, count);
    f.rollback_txn(mark);

    if f.num_values() != before_values {
        return Err(format!("value count {} != {before_values}", f.num_values()));
    }
    let after_print = lslp_ir::print_function(&f);
    if after_print != before_print {
        return Err(format!(
            "printed form diverged:\n--- before\n{before_print}\n--- after\n{after_print}"
        ));
    }
    if f.epoch() != before_epoch {
        return Err(format!("epoch {} != pre-txn {before_epoch}", f.epoch()));
    }
    let after_verdict = format!("{:?}", lslp_ir::verify_function(&f));
    if after_verdict != before_verdict {
        return Err(format!("verifier verdict changed: {before_verdict} -> {after_verdict}"));
    }
    Ok(())
}

#[test]
fn delta_rollback_is_a_perfect_undo() {
    for int in [true, false] {
        let mix = fnv(if int { "delta-undo/int" } else { "delta-undo/float" });
        for seed in 0..SEEDS_PER_CONFIG {
            let gen_cfg = GenConfig {
                seed: seed.wrapping_mul(0x9e3779b97f4a7c15) ^ mix,
                groups: 1 + (seed % 2) as usize,
                lanes: [2, 3, 4][(seed % 3) as usize],
                depth: 1 + (seed % 4) as u32,
                int,
                swap_prob: (seed % 10) as f64 / 10.0,
                arrays: 1 + (seed % 3) as usize,
            };
            if let Err(e) = delta_undo_check(&gen_cfg) {
                let min = shrink_by(gen_cfg.clone(), |c| delta_undo_check(c).is_err());
                let err = delta_undo_check(&min).unwrap_err();
                panic!(
                    "delta-undo failure (cell seed {seed}, gen {gen_cfg:?}): {e}\n\
                     minimal reproducer {min:?}: {err}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Delta-undo property over the CFG mutation surface
// ---------------------------------------------------------------------------

/// Apply `count` pseudo-random mutations drawn from the *CFG* mutation
/// surface: block allocation, block parameters, in-block instruction
/// insertion, terminator rewrites, instruction/parameter reordering,
/// use-replacement, and full CFG dissolution. As with the straight-line
/// battery, intermediate validity is irrelevant — rollback must restore
/// from any state the mutators can reach.
fn random_cfg_mutations(f: &mut lslp_ir::Function, seed: u64, count: usize) {
    use lslp_ir::{BlockId, InstAttr, Opcode, Terminator, Type, ValueId};
    let mut s = seed | 1;
    for _ in 0..count {
        let n = f.num_values() as u64;
        let pick = |s: &mut u64| ValueId::from_raw((next_rand(s) % n) as u32);
        if f.cfg().is_none() {
            // A dissolve landed earlier in the sequence; keep exercising
            // the shared surface on the straight-line remainder.
            let (old, new) = (pick(&mut s), pick(&mut s));
            f.replace_uses(old, new);
            continue;
        }
        let nb = f.num_blocks() as u64;
        let pick_block = |s: &mut u64| BlockId::from_raw((next_rand(s) % nb) as u32);
        match next_rand(&mut s) % 8 {
            0 => {
                f.add_block();
            }
            1 => {
                let b = pick_block(&mut s);
                f.add_block_param(b, None, Type::I64);
            }
            2 => {
                let b = pick_block(&mut s);
                let (x, y) = (pick(&mut s), pick(&mut s));
                f.push_in_block(b, Opcode::Add, Type::I64, vec![x, y], InstAttr::None);
            }
            3 => {
                let b = pick_block(&mut s);
                let term = match next_rand(&mut s) % 4 {
                    0 => Terminator::Ret,
                    1 => Terminator::Jump { target: pick_block(&mut s), args: vec![] },
                    2 => Terminator::Continue { args: vec![pick(&mut s)] },
                    _ => Terminator::Br {
                        cond: pick(&mut s),
                        then_to: pick_block(&mut s),
                        then_args: vec![],
                        else_to: pick_block(&mut s),
                        else_args: vec![pick(&mut s)],
                    },
                };
                f.set_term(b, term);
            }
            4 => {
                let b = pick_block(&mut s);
                let mut insts = f.cfg().unwrap().block(b).insts().to_vec();
                if !insts.is_empty() {
                    let by = (next_rand(&mut s) % insts.len() as u64) as usize;
                    insts.rotate_left(by);
                    insts.truncate((next_rand(&mut s) % (insts.len() as u64 + 1)) as usize);
                }
                f.set_block_insts(b, insts);
            }
            5 => {
                let b = pick_block(&mut s);
                let mut params = f.cfg().unwrap().block(b).params().to_vec();
                params.truncate((next_rand(&mut s) % (params.len() as u64 + 1)) as usize);
                f.set_block_params(b, params);
            }
            6 => {
                let (old, new) = (pick(&mut s), pick(&mut s));
                f.replace_uses(old, new);
            }
            _ => {
                // Flatten: adopt every block's instructions in block order,
                // exactly as the real if-conversion/unroll flatten does.
                let cfg = f.cfg().unwrap();
                let body: Vec<ValueId> =
                    cfg.block_ids().flat_map(|b| cfg.block(b).insts().to_vec()).collect();
                f.dissolve_cfg(body);
            }
        }
    }
}

/// The CFG base-function pool: every loop-study kernel (counted loops,
/// branch diamonds, loop-carried values) — real shapes, not toys.
fn cfg_base(which: u64) -> lslp_ir::Function {
    let kernels = lslp_kernels::loop_kernels();
    kernels[(which % kernels.len() as u64) as usize].compile()
}

/// One CFG delta-undo trial, mirroring [`delta_undo_check`].
fn cfg_delta_undo_check(seed: u64) -> Result<(), String> {
    let mut f = cfg_base(seed);
    let before_print = lslp_ir::print_function(&f);
    let before_epoch = f.epoch();
    let before_verdict = format!("{:?}", lslp_ir::verify_function(&f));
    let before_values = f.num_values();

    let mark = f.begin_txn();
    let count = 4 + (seed % 13) as usize;
    random_cfg_mutations(&mut f, seed ^ 0xa076_1d64_78bd_642f, count);
    f.rollback_txn(mark);

    if f.num_values() != before_values {
        return Err(format!("value count {} != {before_values}", f.num_values()));
    }
    let after_print = lslp_ir::print_function(&f);
    if after_print != before_print {
        return Err(format!(
            "printed form diverged:\n--- before\n{before_print}\n--- after\n{after_print}"
        ));
    }
    if f.epoch() != before_epoch {
        return Err(format!("epoch {} != pre-txn {before_epoch}", f.epoch()));
    }
    let after_verdict = format!("{:?}", lslp_ir::verify_function(&f));
    if after_verdict != before_verdict {
        return Err(format!("verifier verdict changed: {before_verdict} -> {after_verdict}"));
    }
    Ok(())
}

#[test]
fn delta_rollback_restores_cfg_functions_byte_for_byte() {
    let mix = fnv("delta-undo/cfg");
    for seed in 0..2 * SEEDS_PER_CONFIG {
        let mixed = seed.wrapping_mul(0x9e3779b97f4a7c15) ^ mix;
        if let Err(e) = cfg_delta_undo_check(mixed) {
            panic!("CFG delta-undo failure (cell seed {seed}, mixed {mixed:#x}): {e}");
        }
    }
}

#[test]
fn paranoid_oracle_raises_no_false_alarms() {
    // The differential oracle re-executes every committed transform; on
    // clean inputs it must agree with itself (no OracleMismatch incidents,
    // no behavioral change). A smaller sweep — each cell runs the
    // interpreter several extra times.
    let mut presets = PRESETS;
    presets.sort_unstable();
    for preset in presets {
        let mix = cell_hash(preset, GuardMode::Rollback);
        for seed in 0..32u64 {
            let gen_cfg = GenConfig {
                seed: seed.wrapping_mul(0x2545f4914f6cdd1d) ^ mix,
                groups: 1 + (seed % 2) as usize,
                lanes: [2, 4][(seed % 2) as usize],
                depth: 1 + (seed % 3) as u32,
                int: seed % 2 == 0,
                swap_prob: (seed % 4) as f64 / 4.0,
                arrays: 2,
            };
            if let Err(e) = check_one(&gen_cfg, preset, GuardMode::Rollback, true) {
                let min = shrink(gen_cfg, preset, GuardMode::Rollback, true);
                panic!("paranoid fuzz failure under {preset}: {e}\nminimal reproducer {min:?}");
            }
        }
    }
}
