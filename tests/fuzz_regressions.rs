//! Tier-1 regression replay: every reproducer the fuzzer ever minimized
//! into `fuzz/corpus/regressions/` is re-run through all four oracles on
//! every target. No fuzzing happens here — found bugs stay fixed.
//!
//! Registered as a test of `lslp-fuzz` (see `crates/fuzz/Cargo.toml`); it
//! lives at the repository root with the other cross-crate integration
//! tests.

use std::path::PathBuf;

use lslp_fuzz::{base_config, default_targets, replay_file};

fn regressions_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus/regressions")
}

#[test]
fn replay_regression_corpus() {
    let dir = regressions_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        // No corpus yet: trivially green.
        return;
    };
    let mut cases: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "case"))
        .collect();
    cases.sort();
    let base = base_config();
    let targets = default_targets();
    let mut broken = Vec::new();
    for case in &cases {
        let (plan, outcome) = replay_file(case, &base, &targets)
            .unwrap_or_else(|e| panic!("unreadable corpus entry: {e}"));
        if !outcome.violations.is_empty() {
            broken.push(format!(
                "{}: plan {plan:?} still violates: {:?}",
                case.display(),
                outcome
                    .violations
                    .iter()
                    .map(|v| format!("[{}@{}] {}", v.oracle.name(), v.target, v.detail))
                    .collect::<Vec<_>>()
            ));
        }
    }
    assert!(broken.is_empty(), "regression corpus entries still failing:\n{}", broken.join("\n"));
}

/// The corpus directory layout itself is part of the contract: `.case`
/// files are raw plan bytes and must decode/re-encode canonically.
#[test]
fn corpus_entries_are_canonical() {
    let dir = regressions_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else { return };
    for e in entries.filter_map(Result::ok) {
        let p = e.path();
        if p.extension().is_some_and(|x| x == "case") {
            let bytes = std::fs::read(&p).unwrap();
            let plan = lslp_fuzz::Plan::decode(&bytes);
            assert_eq!(
                plan.encode(),
                bytes,
                "{} is not canonical; re-encode it with Plan::encode",
                p.display()
            );
        }
    }
}
