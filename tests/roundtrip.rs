//! Printer/parser round-trip properties over realistic (generated and
//! vectorized) functions, plus verifier stability across the pipeline.

use proptest::prelude::*;

use lslp::{vectorize_function, VectorizerConfig};
use lslp_ir::{parse_function, print_function, verify_function};
use lslp_kernels::{generate, GenConfig};
use lslp_target::CostModel;

fn roundtrip(f: &lslp_ir::Function) {
    let printed = print_function(f);
    let reparsed =
        parse_function(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
    verify_function(&reparsed).unwrap_or_else(|e| panic!("reverify failed: {e}\n{printed}"));
    let reprinted = print_function(&reparsed);
    assert_eq!(printed, reprinted, "printing must be a fixed point");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Scalar generated programs round-trip through the textual format.
    #[test]
    fn generated_programs_roundtrip(
        seed in 0u64..1_000_000,
        int in any::<bool>(),
        depth in 1u32..5,
    ) {
        let p = generate(&GenConfig { seed, int, depth, ..GenConfig::default() });
        roundtrip(&p.function);
    }

    /// Vectorized programs (vector loads/stores, inserts, extracts,
    /// shuffles, vector constants) also round-trip.
    #[test]
    fn vectorized_programs_roundtrip(
        seed in 0u64..1_000_000,
        int in any::<bool>(),
        swap in 0.0f64..1.0,
    ) {
        let p = generate(&GenConfig {
            seed, int, swap_prob: swap, depth: 3, ..GenConfig::default()
        });
        let mut f = p.function;
        vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::skylake_like());
        roundtrip(&f);
    }

    /// The verifier accepts everything the vectorizer produces, across all
    /// presets (verifier stability).
    #[test]
    fn verifier_accepts_all_pipeline_outputs(
        seed in 0u64..1_000_000,
        lanes in prop::sample::select(vec![2usize, 4]),
    ) {
        let p = generate(&GenConfig { seed, lanes, ..GenConfig::default() });
        for name in ["O3", "SLP-NR", "SLP", "LSLP", "LSLP-LA4", "LSLP-Multi3"] {
            let mut f = p.function.clone();
            vectorize_function(
                &mut f,
                &VectorizerConfig::preset(name).unwrap(),
                &CostModel::skylake_like(),
            );
            verify_function(&f).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}

#[test]
fn suite_kernels_roundtrip_before_and_after_vectorization() {
    for k in lslp_kernels::suite() {
        let f = k.compile();
        roundtrip(&f);
        let mut v = f.clone();
        vectorize_function(&mut v, &VectorizerConfig::lslp(), &CostModel::skylake_like());
        roundtrip(&v);
    }
}

/// Feeding arbitrary text to the IR parser must never panic — it either
/// parses (and then verifies/round-trips) or returns a positioned error.
mod parser_robustness {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn ir_parser_never_panics(src in "[ -~\n]{0,200}") {
            let _ = lslp_ir::parse_module(&src);
        }

        #[test]
        fn slc_parser_never_panics(src in "[ -~\n]{0,200}") {
            let _ = lslp_frontend::compile(&src);
        }

        /// Mutating a valid printed function must not panic the parser and,
        /// when it still parses + verifies, must keep round-tripping.
        #[test]
        fn mutated_ir_stays_total(seed in 0u64..10_000, cut in 0usize..100) {
            let p = lslp_kernels::generate(&lslp_kernels::GenConfig {
                seed,
                ..lslp_kernels::GenConfig::default()
            });
            let mut text = lslp_ir::print_function(&p.function);
            if !text.is_empty() {
                let at = cut % text.len();
                prop_assume!(text.is_char_boundary(at)); // printer emits ASCII
                text.remove(at);
            }
            if let Ok(f) = lslp_ir::parse_function(&text) {
                if lslp_ir::verify_function(&f).is_ok() {
                    let printed = lslp_ir::print_function(&f);
                    let again = lslp_ir::parse_function(&printed).expect("fixed point parses");
                    prop_assert_eq!(printed, lslp_ir::print_function(&again));
                }
            }
        }
    }
}
