//! End-to-end regression over the Table 2 kernel suite: every configuration
//! produces verified code, vectorized kernels compute the same results as
//! the scalar originals, and the static-cost / speedup ordering of the
//! paper (LSLP ≥ SLP ≥ SLP-NR, all ≥ O3) holds.

use lslp::{vectorize_function, VectorizerConfig};
use lslp_kernels::{suite, ElemKind, Kernel};
use lslp_target::CostModel;

struct Outcome {
    cost: i64,
    cycles: i64,
    mem: lslp_interp::Memory,
}

fn run_config(k: &Kernel, cfg: &VectorizerConfig, iters: usize) -> Outcome {
    let tm = CostModel::skylake_like();
    let mut f = k.compile();
    let report = vectorize_function(&mut f, cfg, &tm);
    lslp_ir::verify_function(&f).unwrap_or_else(|e| panic!("{}: {e}", k.name));
    let mut mem = k.setup_memory(&f, iters);
    let cycles = k
        .run(&f, &mut mem, iters, &tm)
        .unwrap_or_else(|e| panic!("{} execution failed: {e}", k.name));
    Outcome { cost: report.applied_cost, cycles, mem }
}

fn assert_same_memory(k: &Kernel, a: &lslp_interp::Memory, b: &lslp_interp::Memory, cfg: &str) {
    for name in a.buffer_names() {
        let ba = a.bytes(name).unwrap();
        let bb = b.bytes(name).unwrap();
        if ba == bb {
            continue;
        }
        match k.elem {
            ElemKind::I64 => panic!("{} under {cfg}: integer buffer {name} differs", k.name),
            ElemKind::F64 => {
                for (idx, (ca, cb)) in ba.chunks(8).zip(bb.chunks(8)).enumerate() {
                    let x = f64::from_le_bytes(ca.try_into().unwrap());
                    let y = f64::from_le_bytes(cb.try_into().unwrap());
                    let tol = 1e-9 * x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() <= tol,
                        "{} under {cfg}: {name}[{idx}] = {x} vs {y}",
                        k.name
                    );
                }
            }
        }
    }
}

const CONFIGS: [&str; 3] = ["SLP-NR", "SLP", "LSLP"];

#[test]
fn vectorized_kernels_compute_scalar_results() {
    let iters = 16;
    for k in suite() {
        let scalar = run_config(&k, &VectorizerConfig::o3(), iters);
        for name in CONFIGS {
            let cfg = VectorizerConfig::preset(name).unwrap();
            let out = run_config(&k, &cfg, iters);
            assert_same_memory(&k, &scalar.mem, &out.mem, name);
        }
    }
}

#[test]
fn cost_ordering_matches_paper() {
    for k in suite() {
        let nr = run_config(&k, &VectorizerConfig::slp_nr(), 1).cost;
        let slp = run_config(&k, &VectorizerConfig::slp(), 1).cost;
        let lslp = run_config(&k, &VectorizerConfig::lslp(), 1).cost;
        assert!(slp <= nr, "{}: SLP {slp} vs SLP-NR {nr}", k.name);
        assert!(lslp <= slp, "{}: LSLP {lslp} vs SLP {slp}", k.name);
        assert!(nr <= 0 && slp <= 0 && lslp <= 0, "{}: applied costs are ≤ 0", k.name);
    }
}

#[test]
fn lslp_speeds_up_majority_of_suite() {
    let iters = 16;
    let mut wins = 0;
    for k in suite() {
        let o3 = run_config(&k, &VectorizerConfig::o3(), iters);
        let lslp = run_config(&k, &VectorizerConfig::lslp(), iters);
        assert!(
            lslp.cycles <= o3.cycles,
            "{}: LSLP must never execute more cycles ({} vs {})",
            k.name,
            lslp.cycles,
            o3.cycles
        );
        if lslp.cycles < o3.cycles {
            wins += 1;
        }
    }
    assert!(wins >= 8, "LSLP should accelerate most of the 11 kernels, got {wins}");
}

#[test]
fn lslp_vectorizes_every_motivation_kernel_slp_cannot() {
    // The headline qualitative claim: kernels built around commutative
    // operand mismatches defeat SLP but not LSLP.
    for name in ["motivation_loads", "motivation_opcodes", "boy_surface", "mesh1"] {
        let k = suite().into_iter().find(|k| k.name == name).unwrap();
        let slp = run_config(&k, &VectorizerConfig::slp(), 1);
        let lslp = run_config(&k, &VectorizerConfig::lslp(), 1);
        assert_eq!(slp.cost, 0, "{name}: SLP finds nothing profitable");
        assert!(lslp.cost < 0, "{name}: LSLP vectorizes");
    }
}

#[test]
fn la_depth_sweep_matches_fig13_shape() {
    // Figure 13: disabling look-ahead (LA0) costs most of LSLP's benefit;
    // moderate depths recover it. Depth is a greedy heuristic, so it is
    // *not* monotone per-kernel (the paper makes the same observation:
    // "local heuristics cannot always guarantee a globally better
    // solution") — we assert the aggregate trend only.
    let totals: Vec<i64> = [0u32, 1, 2, 4, 8]
        .iter()
        .map(|&d| {
            let cfg = VectorizerConfig::lslp_la(d);
            suite().iter().map(|k| run_config(k, &cfg, 1).cost).sum()
        })
        .collect();
    let la0 = totals[0];
    for (i, &t) in totals.iter().enumerate().skip(1) {
        assert!(t < la0, "depth {} total {t} must beat LA0 {la0}", [0, 1, 2, 4, 8][i]);
    }
    // The paper finds depth 4 "a good value": it must capture most of the
    // best total.
    let best = *totals.iter().min().unwrap();
    assert!(totals[3] <= (best * 9) / 10, "LA4 {} vs best {best}", totals[3]);
}

#[test]
fn multinode_size_sweep_matches_fig13_shape() {
    // Figure 13: size 1 (no coarsening) loses to any real multi-node cap;
    // size 3 already captures the full benefit on this suite.
    let totals: Vec<i64> = [1usize, 2, 3, usize::MAX]
        .iter()
        .map(|&s| {
            let cfg = VectorizerConfig::lslp_multi(s);
            suite().iter().map(|k| run_config(k, &cfg, 1).cost).sum()
        })
        .collect();
    assert!(totals[1] < totals[0], "Multi2 {} must beat Multi1 {}", totals[1], totals[0]);
    assert!(totals[2] <= totals[1], "Multi3 {} vs Multi2 {}", totals[2], totals[1]);
    // quartic_cylinder carries degree-4 product chains, so the unlimited
    // cap still improves on size 3.
    assert!(totals[3] <= totals[2], "unbounded {} vs Multi3 {}", totals[3], totals[2]);
}

/// The extended kernel set (complex/quaternion/SU3/stencil/hash shapes)
/// passes the same correctness and ordering checks as Table 2.
#[test]
fn extended_kernels_are_correct_and_ordered() {
    let iters = 8;
    for k in lslp_kernels::extended_kernels() {
        let scalar = run_config(&k, &VectorizerConfig::o3(), iters);
        let mut last_cost = 1;
        for name in ["SLP-NR", "SLP", "LSLP"] {
            let cfg = VectorizerConfig::preset(name).unwrap();
            let out = run_config(&k, &cfg, iters);
            assert_same_memory(&k, &scalar.mem, &out.mem, name);
            assert!(out.cost <= last_cost.max(0), "{}: {name} cost {}", k.name, out.cost);
            last_cost = out.cost;
        }
    }
}

/// At least some of the extended kernels genuinely vectorize under LSLP.
#[test]
fn extended_kernels_vectorize_under_lslp() {
    let mut wins = 0;
    for k in lslp_kernels::extended_kernels() {
        if run_config(&k, &VectorizerConfig::lslp(), 1).cost < 0 {
            wins += 1;
        }
    }
    assert!(wins >= 3, "expected most extended kernels to vectorize, got {wins}");
}
