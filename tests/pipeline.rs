//! Cross-crate pipeline tests: SLC source → IR → vectorizer → interpreter,
//! exercising the public API the way a downstream user would.

use std::rc::Rc;

use lslp::{
    try_vectorize_function_with, vectorize_function, vectorize_module, AnalysisKind,
    AnalysisManager, GuardMode, GuardPolicy, Pass, PassContext, PassManager, PassResult,
    PreservedAnalyses, ReorderStrategy, Statistics, VectorizerConfig,
};
use lslp_interp::{run_function, Memory, Value};

use lslp_target::CostModel;

#[test]
fn slc_to_simd_end_to_end() {
    // The classic saxpy-like kernel, 4 lanes wide.
    let src = "kernel saxpy4(f64* Y, f64* X, f64 a, i64 i) {
                   Y[i+0] = Y[i+0] + a * X[i+0];
                   Y[i+1] = Y[i+1] + a * X[i+1];
                   Y[i+2] = Y[i+2] + a * X[i+2];
                   Y[i+3] = Y[i+3] + a * X[i+3];
               }";
    let mut m = lslp_frontend::compile(src).unwrap();
    let reports = vectorize_module(&mut m, &VectorizerConfig::lslp(), &CostModel::default());
    assert_eq!(reports[0].trees_vectorized, 1);
    let text = lslp_ir::print_function(&m.functions[0]);
    assert!(text.contains("<4 x f64>"), "{text}");

    let mut mem = Memory::new();
    let y = mem.alloc_f64("Y", &[1.0, 2.0, 3.0, 4.0]);
    let x = mem.alloc_f64("X", &[10.0, 20.0, 30.0, 40.0]);
    run_function(&m.functions[0], &[y, x, Value::Float(0.5), Value::Int(0)], &mut mem).unwrap();
    assert_eq!(mem.read_f64("Y", 0), Some(6.0));
    assert_eq!(mem.read_f64("Y", 3), Some(24.0));
}

#[test]
fn listing1_compiles_and_vectorizes_under_plain_slp() {
    // Listing 1 of the paper: operands in the wrong order; vanilla SLP's
    // opcode-based reordering is sufficient.
    let src = "kernel listing1(i64* E, i64* A, i64 x, i64 y, i64 i) {
                   E[i+0] = (x - 1) + A[i+0];
                   E[i+1] = A[i+1] + (y - 1);
               }";
    let mut m = lslp_frontend::compile(src).unwrap();
    let reports = vectorize_module(&mut m, &VectorizerConfig::slp(), &CostModel::default());
    assert_eq!(reports[0].trees_vectorized, 1, "SLP reorders Listing 1 fine");

    // But with reordering disabled (SLP-NR) the same kernel fails.
    let mut m = lslp_frontend::compile(src).unwrap();
    let reports = vectorize_module(&mut m, &VectorizerConfig::slp_nr(), &CostModel::default());
    assert_eq!(reports[0].trees_vectorized, 0, "SLP-NR cannot fix the order");
}

#[test]
fn listing2_defeats_slp_but_not_lslp() {
    // Listing 2 of the paper: all operands are multiplications; only the
    // look-ahead can decide the pairing.
    let src = "kernel listing2(i64* E, i64* A, i64* B, i64* C, i64* D, i64 i) {
                   E[i+0] = A[i+0]*B[i+0] + C[i+0]*D[i+0];
                   E[i+1] = C[i+1]*D[i+1] + A[i+1]*B[i+1];
               }";
    let mut m = lslp_frontend::compile(src).unwrap();
    let slp = vectorize_module(&mut m, &VectorizerConfig::slp(), &CostModel::default());
    let mut m2 = lslp_frontend::compile(src).unwrap();
    let lslp = vectorize_module(&mut m2, &VectorizerConfig::lslp(), &CostModel::default());
    assert!(
        lslp[0].applied_cost < slp[0].applied_cost,
        "LSLP {} must beat SLP {}",
        lslp[0].applied_cost,
        slp[0].applied_cost
    );
    // LSLP vectorizes the whole tree including all eight loads.
    let text = lslp_ir::print_function(&m2.functions[0]);
    assert_eq!(text.matches("load <2 x i64>").count(), 4, "{text}");
}

#[test]
fn reports_expose_attempt_details() {
    let src = "kernel two_groups(i64* A, i64* B, i64 i) {
                   A[i+0] = B[i+0] + 1;
                   A[i+1] = B[i+1] + 2;
                   A[i+9] = B[i+9] * 3;
                   A[i+10] = B[i+10] * 4;
               }";
    let mut m = lslp_frontend::compile(src).unwrap();
    let mut f = m.functions.remove(0);
    let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::default());
    assert_eq!(report.trees_vectorized, 2);
    assert_eq!(report.attempts.iter().filter(|a| a.vectorized).count(), 2);
    for a in &report.attempts {
        assert_eq!(a.vf, 2);
        assert!(a.seed.starts_with("A[+"), "seed desc: {}", a.seed);
        assert!(a.nodes > 0);
    }
    assert!(report.stats.stores_deleted == 4);
    assert!(report.elapsed.as_nanos() > 0);
}

#[test]
fn config_presets_differ_only_where_documented() {
    let slp = VectorizerConfig::slp();
    let nr = VectorizerConfig::slp_nr();
    assert_eq!(nr.max_multinode_insts, slp.max_multinode_insts);
    assert_eq!(nr.reorder, ReorderStrategy::NoReorder);
    let lslp = VectorizerConfig::lslp();
    assert_eq!(lslp.cost_threshold, slp.cost_threshold);
    assert_eq!(lslp.max_vf, slp.max_vf);
}

#[test]
fn whole_module_vectorization_handles_mixed_functions() {
    let src = "kernel vec(i64* A, i64* B, i64 i) {
                   A[i+0] = B[i+0] ^ 1;
                   A[i+1] = B[i+1] ^ 2;
               }
               kernel scalar_only(i64* A, i64 i) {
                   A[i*i] = 7;
               }";
    let mut m = lslp_frontend::compile(src).unwrap();
    let reports = vectorize_module(&mut m, &VectorizerConfig::lslp(), &CostModel::default());
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].trees_vectorized, 1);
    assert_eq!(reports[1].trees_vectorized, 0);
    lslp_ir::verify_module(&m).unwrap();
}

#[test]
fn fast_math_gates_fp_multinodes() {
    let src = "kernel dot3(f64* R, f64* X, i64 i) {
                   R[i+0] = X[3*i+0] + X[3*i+1] + X[3*i+2];
                   R[i+1] = X[3*i+4] + X[3*i+3] + X[3*i+5];
               }";
    let tm = CostModel::default();
    let mut strict_m = lslp_frontend::compile(src).unwrap();
    let strict_cfg = VectorizerConfig { fast_math: false, ..VectorizerConfig::lslp() };
    let strict = vectorize_module(&mut strict_m, &strict_cfg, &tm);
    let mut fast_m = lslp_frontend::compile(src).unwrap();
    let fast = vectorize_module(&mut fast_m, &VectorizerConfig::lslp(), &tm);
    assert!(
        fast[0].applied_cost <= strict[0].applied_cost,
        "fast-math multi-nodes must not lose: fast {} strict {}",
        fast[0].applied_cost,
        strict[0].applied_cost
    );
}

#[test]
fn casts_compile_interpret_and_vectorize() {
    // Widen i32 samples, scale in f64, truncate back — a classic DSP-style
    // conversion kernel. All four lanes are isomorphic casts.
    let src = "kernel widen_scale(i32* OUT, i32* IN, f64 g, i64 i) {
                   OUT[i+0] = ((IN[i+0] as f64) * g) as i32;
                   OUT[i+1] = ((IN[i+1] as f64) * g) as i32;
                   OUT[i+2] = ((IN[i+2] as f64) * g) as i32;
                   OUT[i+3] = ((IN[i+3] as f64) * g) as i32;
               }";
    let mut m = lslp_frontend::compile(src).unwrap();
    let reports = vectorize_module(&mut m, &VectorizerConfig::lslp(), &CostModel::default());
    assert_eq!(reports[0].trees_vectorized, 1, "cast lanes must vectorize");
    lslp_ir::verify_module(&m).unwrap();
    let text = lslp_ir::print_function(&m.functions[0]);
    assert!(text.contains("sitofp <4 x i32>"), "{text}");
    assert!(text.contains("fptosi <4 x f64>"), "{text}");

    // Round-trip the vectorized cast IR through the textual format.
    let reparsed = lslp_ir::parse_function(&text).unwrap();
    assert_eq!(lslp_ir::print_function(&reparsed), text);

    // And execute it.
    let mut mem = Memory::new();
    mem.alloc("OUT", 8 * 4);
    let p_in = mem.alloc("IN", 8 * 4);
    for (k, v) in [3i64, -7, 100, 0].into_iter().enumerate() {
        mem.write_scalar(&p_in, (k * 4) as i64, lslp_ir::ScalarType::I32, Value::Int(v)).unwrap();
    }
    let args =
        vec![mem.ptr("OUT").unwrap(), mem.ptr("IN").unwrap(), Value::Float(2.5), Value::Int(0)];
    run_function(&m.functions[0], &args, &mut mem).unwrap();
    let out = mem.ptr("OUT").unwrap();
    let read = |k: usize, mem: &Memory| {
        mem.read_scalar(&out, (k * 4) as i64, lslp_ir::ScalarType::I32).unwrap().as_int()
    };
    assert_eq!(read(0, &mem), 7); // 3 * 2.5 = 7.5 → 7
    assert_eq!(read(1, &mem), -17); // -7 * 2.5 = -17.5 → -17
    assert_eq!(read(2, &mem), 250);
    assert_eq!(read(3, &mem), 0);
}

fn saxpy_function() -> lslp_ir::Function {
    let src = "kernel saxpy4(f64* Y, f64* X, f64 a, i64 i) {
                   Y[i+0] = Y[i+0] + a * X[i+0];
                   Y[i+1] = Y[i+1] + a * X[i+1];
                   Y[i+2] = Y[i+2] + a * X[i+2];
                   Y[i+3] = Y[i+3] + a * X[i+3];
               }";
    lslp_frontend::compile(src).unwrap().functions.remove(0)
}

#[test]
fn analysis_cache_serves_repeat_queries_warm() {
    let f = saxpy_function();
    let mut am = AnalysisManager::new();
    let a1 = am.addr_info(&f);
    let p1 = am.positions(&f);
    let u1 = am.use_map(&f);
    // Nothing mutated the function, so every repeat query is a cache hit
    // returning the same shared object.
    assert!(Rc::ptr_eq(&a1, &am.addr_info(&f)));
    assert!(Rc::ptr_eq(&p1, &am.positions(&f)));
    assert!(Rc::ptr_eq(&u1, &am.use_map(&f)));
    let stats = am.cache_stats();
    assert_eq!(stats.misses, 3, "one miss per analysis kind");
    assert_eq!(stats.hits, 3, "one hit per repeat query");
    assert_eq!(stats.invalidations, 0);
    assert_eq!(am.cache_stats_for(AnalysisKind::Addr).misses, 1);
    assert!(am.analysis_time().as_nanos() > 0, "misses are timed");
}

#[test]
fn committed_vectorization_invalidates_cached_analyses() {
    let mut f = saxpy_function();
    let mut am = AnalysisManager::new();
    let stale_positions = am.positions(&f);
    let epoch_before = f.epoch();

    let report = try_vectorize_function_with(
        &mut f,
        &VectorizerConfig::lslp(),
        &CostModel::default(),
        &mut am,
    )
    .unwrap();
    assert_eq!(report.trees_vectorized, 1);
    assert_ne!(f.epoch(), epoch_before, "committed vectorization moves the epoch");

    // The cache must not serve the scalar-body position map for the
    // vectorized function: the epoch check forces a recompute.
    let misses_before = am.cache_stats().misses;
    let fresh_positions = am.positions(&f);
    assert!(
        !Rc::ptr_eq(&stale_positions, &fresh_positions),
        "stale scalar analysis must not survive vectorization"
    );
    assert!(am.cache_stats().misses > misses_before);
    assert!(am.cache_stats().invalidations > 0, "epoch moves invalidated the cache");
    // The fresh map describes the vectorized body exactly.
    assert_eq!(fresh_positions.len(), f.body().len());
}

#[test]
fn preserving_pass_leaves_cache_warm_across_pass_manager() {
    // A pass that mutates the function (renames a value, which moves the
    // epoch) but preserves every analysis: names feed none of them.
    struct RenamePass;
    impl Pass for RenamePass {
        fn name(&self) -> &'static str {
            "rename"
        }
        fn run(
            &mut self,
            f: &mut lslp_ir::Function,
            _am: &mut AnalysisManager,
            _cx: &PassContext,
        ) -> PassResult {
            let v = *f.body().first().expect("non-empty body");
            f.set_value_name(v, "renamed");
            PassResult { rewrites: 1, preserved: PreservedAnalyses::all() }
        }
    }

    let mut f = saxpy_function();
    let mut am = AnalysisManager::new();
    let p1 = am.positions(&f);
    let misses_before = am.cache_stats().misses;

    let cfg = VectorizerConfig::lslp();
    let tm = CostModel::default();
    let stats = Statistics::new();
    let cx = PassContext { cfg: &cfg, tm: &tm, stats: &stats };
    let mut pm = PassManager::new(GuardPolicy::new(GuardMode::Rollback));
    let n = pm.run_pass(&mut RenamePass, &mut f, &mut am, &cx).unwrap();
    assert_eq!(n, 1);

    // PreservedAnalyses::all() re-keys the cached entries to the new epoch:
    // the next query is a hit on the same shared object, not a recompute.
    let p2 = am.positions(&f);
    assert!(Rc::ptr_eq(&p1, &p2), "preserved analysis must stay cached");
    assert_eq!(am.cache_stats().misses, misses_before, "no recompute happened");
}

#[test]
fn narrow_types_widen_the_vector_factor() {
    // f32 elements fit 8 lanes into 256 bits.
    let mut src = String::from("kernel f32x8(f32* A, f32* B, i64 i) {\n");
    for o in 0..8 {
        src.push_str(&format!("    A[i+{o}] = B[i+{o}] * B[i+{o}];\n"));
    }
    src.push('}');
    let mut m = lslp_frontend::compile(&src).unwrap();
    let reports = vectorize_module(&mut m, &VectorizerConfig::lslp(), &CostModel::default());
    assert_eq!(reports[0].trees_vectorized, 1);
    let text = lslp_ir::print_function(&m.functions[0]);
    assert!(text.contains("<8 x f32>"), "{text}");
}
