//! End-to-end tests for the control-flow front of the pipeline: SLC
//! `loop` / `if` → CFG IR → if-conversion + unroll-and-SLP → the
//! straight-line vectorizer — plus guard-rollback coverage for the new
//! cross-block mutations.

use std::panic::{catch_unwind, AssertUnwindSafe};

use lslp::guard::{self, GuardMode, GuardPolicy, IncidentKind};
use lslp::{run_pipeline, VectorizerConfig};
use lslp_interp::{run_function, Memory};
use lslp_ir::{parse_function, print_function, verify_function, Function, Terminator};
use lslp_kernels::{loop_kernels, ElemKind, Kernel};
use lslp_target::TargetSpec;

const TARGETS: [&str; 4] = ["sse4.2", "neon128", "skylake-avx2", "avx512"];

// ---------------------------------------------------------------------------
// Golden IR: if-conversion and unroll, printed before/after.
// ---------------------------------------------------------------------------

#[test]
fn if_conversion_golden() {
    let mut f = parse_function(
        "func @clamp(%A: ptr, %i: i64) {
           bb0:
             %0 = gep %A, %i, 8
             %v = load f64, %0
             %1 = fcmp olt f64 %v, 0.0
             br %1, bb1, bb2
           bb1:
             jump bb3(0.0)
           bb2:
             jump bb3(%v)
           bb3(%c: f64):
             store f64 %c, %0
             ret
         }",
    )
    .unwrap();
    verify_function(&f).unwrap();
    assert!(print_function(&f).contains("br %1, bb1, bb2"));

    let converted = lslp::ifconv::run(&mut f);
    verify_function(&f).unwrap();
    assert_eq!(converted, 1);
    let after = print_function(&f);
    // The diamond is gone: one select, no blocks, straight-line body.
    assert!(f.cfg().is_none(), "{after}");
    assert!(after.contains("select f64 %1, 0.0, %v"), "{after}");
    assert!(!after.contains("br "), "{after}");
    assert!(!after.contains("bb0"), "{after}");
}

#[test]
fn unroll_golden() {
    let mut f = parse_function(
        "func @sum(%A: ptr) {
           bb0:
             loop 3, bb1(0), bb2
           bb1(%i: i64, %acc: i64):
             %0 = gep %A, %i, 8
             %1 = load i64, %0
             %2 = add i64 %acc, %1
             continue %2
           bb2(%total: i64):
             store i64 %total, %A
             ret
         }",
    )
    .unwrap();
    verify_function(&f).unwrap();

    let unrolled = lslp::unroll::run(&mut f);
    verify_function(&f).unwrap();
    assert_eq!(unrolled, 1);
    let after = print_function(&f);
    assert!(f.cfg().is_none(), "{after}");
    // Three copies of the body, induction variable folded to 0/1/2.
    assert_eq!(after.matches("load i64").count(), 3, "{after}");
    assert_eq!(after.matches("add i64").count(), 3, "{after}");
    assert!(after.contains("gep %A, 0, 8"), "{after}");
    assert!(after.contains("gep %A, 1, 8"), "{after}");
    assert!(after.contains("gep %A, 2, 8"), "{after}");
    assert!(!after.contains("loop"), "{after}");
    assert!(!after.contains("continue"), "{after}");
}

#[test]
fn unroll_respects_the_budget() {
    // 200 insts/iteration × 2 trips fits; the same body at 300 does not.
    fn looped(n: usize) -> Function {
        let mut body = String::new();
        for k in 0..n {
            body.push_str(&format!("%x{k} = add i64 %i, {k}\n"));
        }
        parse_function(&format!(
            "func @big(%A: ptr) {{
               bb0:
                 loop 2, bb1, bb2
               bb1(%i: i64):
                 {body}
                 continue
               bb2:
                 ret
             }}"
        ))
        .unwrap()
    }
    let mut small = looped(100);
    assert_eq!(lslp::unroll::run(&mut small), 1);
    let mut big = looped(300);
    assert_eq!(lslp::unroll::run(&mut big), 0, "over-budget loops stay rolled");
    assert!(big.cfg().is_some());
}

// ---------------------------------------------------------------------------
// Differential: every loop kernel, scalar CFG vs full pipeline, 4 targets.
// ---------------------------------------------------------------------------

fn assert_same_memory(k: &Kernel, a: &Memory, b: &Memory, label: &str) {
    for name in a.buffer_names() {
        let ba = a.bytes(name).unwrap();
        let bb = b.bytes(name).unwrap();
        if ba == bb {
            continue;
        }
        match k.elem {
            ElemKind::I64 => panic!("{} under {label}: integer buffer {name} differs", k.name),
            ElemKind::F64 => {
                for (idx, (ca, cb)) in ba.chunks(8).zip(bb.chunks(8)).enumerate() {
                    let x = f64::from_le_bytes(ca.try_into().unwrap());
                    let y = f64::from_le_bytes(cb.try_into().unwrap());
                    let tol = 1e-9 * x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() <= tol,
                        "{} under {label}: {name}[{idx}] = {x} vs {y}",
                        k.name
                    );
                }
            }
        }
    }
}

/// Run `iters` invocations of `f` against fresh memory; returns it.
fn run_iters(k: &Kernel, f: &Function, iters: usize) -> Memory {
    let mut mem = k.setup_memory(f, iters);
    for t in 0..iters {
        let args = k.args(f, &mem, t as i64 * k.i_step);
        run_function(f, &args, &mut mem)
            .unwrap_or_else(|e| panic!("{} execution failed: {e}", k.name));
    }
    mem
}

#[test]
fn loop_kernels_match_scalar_on_all_targets() {
    let iters = 8;
    for k in loop_kernels() {
        // Scalar reference: the un-lowered CFG function, interpreted
        // directly (loop regions and branches execute as written).
        let scalar_f = k.compile();
        assert!(scalar_f.cfg().is_some(), "{} should carry a CFG", k.name);
        let scalar_mem = run_iters(&k, &scalar_f, iters);

        for target in TARGETS {
            let tm = TargetSpec::parse(target).unwrap();
            let mut f = k.compile();
            let report = run_pipeline(&mut f, &VectorizerConfig::lslp(), &tm);
            verify_function(&f).unwrap_or_else(|e| panic!("{} on {target}: {e}", k.name));
            assert!(f.cfg().is_none(), "{} on {target}: pipeline flattens the CFG", k.name);
            assert!(report.unrolled >= 1, "{} on {target}: loop must unroll", k.name);
            let mem = run_iters(&k, &f, iters);
            assert_same_memory(&k, &scalar_mem, &mem, target);
        }
    }
}

/// Committed VFs for `name` under LSLP on `target`, plus the report.
fn committed_vfs(name: &str, target: &str) -> (Vec<usize>, lslp::PipelineReport) {
    let k = loop_kernels().into_iter().find(|k| k.name == name).unwrap();
    let tm = TargetSpec::parse(target).unwrap();
    let mut f = k.compile();
    let report = run_pipeline(&mut f, &VectorizerConfig::lslp(), &tm);
    let vfs = report.vectorize.attempts.iter().filter(|a| a.vectorized).map(|a| a.vf).collect();
    (vfs, report)
}

#[test]
fn loop_and_branchy_kernels_vectorize_on_all_targets() {
    // The acceptance bar: a loop kernel and a branchy kernel commit a
    // vector factor > 1. `smin_loop` (integer, branchy body) does so on
    // every registry target.
    for target in TARGETS {
        let (vfs, report) = committed_vfs("smin_loop", target);
        assert!(
            vfs.iter().any(|&vf| vf > 1),
            "smin_loop on {target}: expected committed VF > 1, got {vfs:?}"
        );
        assert!(report.if_converted >= 1, "smin_loop on {target}: diamond must convert");
        assert!(report.unrolled >= 1, "smin_loop on {target}: loop must unroll");
    }
    // The f64 kernels commit on the full-rate-f64 targets (neon128's
    // half-rate f64 SIMD breaks even there, matching hreciprocal/mesh1 in
    // the golden target-cost tables).
    for target in ["sse4.2", "skylake-avx2", "avx512"] {
        for name in ["saxpy_loop", "clamp_loop"] {
            let (vfs, report) = committed_vfs(name, target);
            assert!(
                vfs.iter().any(|&vf| vf > 1),
                "{name} on {target}: expected committed VF > 1, got {vfs:?}"
            );
            if name == "clamp_loop" {
                assert!(report.if_converted >= 1, "{name} on {target}: diamond must convert");
            }
        }
    }
}

#[test]
fn branchy_kernel_codegen_uses_vector_selects() {
    let k = loop_kernels().into_iter().find(|k| k.name == "smin_loop").unwrap();
    let tm = TargetSpec::parse("skylake-avx2").unwrap();
    let mut f = k.compile();
    run_pipeline(&mut f, &VectorizerConfig::lslp(), &tm);
    let text = print_function(&f);
    assert!(text.contains("icmp slt <4 x i64>"), "{text}");
    assert!(text.contains("select <4 x i64>"), "{text}");
}

#[test]
fn straight_line_kernels_are_byte_identical_through_the_new_pipeline() {
    // The CFG front must be a strict no-op for straight-line inputs.
    let tm = TargetSpec::parse("skylake-avx2").unwrap();
    for k in lslp_kernels::suite() {
        let mut with_front = k.compile();
        let report = run_pipeline(&mut with_front, &VectorizerConfig::lslp(), &tm);
        assert_eq!(report.if_converted, 0, "{}", k.name);
        assert_eq!(report.unrolled, 0, "{}", k.name);
    }
}

// ---------------------------------------------------------------------------
// Guard rollback across blocks.
// ---------------------------------------------------------------------------

/// A diamond CFG function for rollback tests.
fn diamond() -> Function {
    parse_function(
        "func @d(%A: ptr, %i: i64) {
           bb0:
             %0 = gep %A, %i, 8
             %v = load f64, %0
             %1 = fcmp olt f64 %v, 1.0
             br %1, bb1, bb2
           bb1:
             jump bb3(0.5)
           bb2:
             jump bb3(%v)
           bb3(%c: f64):
             store f64 %c, %0
             ret
         }",
    )
    .unwrap()
}

#[test]
fn panic_mid_if_conversion_rolls_back_across_blocks() {
    let mut f = diamond();
    verify_function(&f).unwrap();
    let before = print_function(&f);
    let epoch_before = f.epoch();
    let mut incidents = Vec::new();

    // A "pass" that replays the first half of if-conversion by hand —
    // cross-block mutations touching instructions, params, and terminators
    // — then dies before finishing the transform.
    let r = guard::run_guarded(
        &mut f,
        GuardPolicy::new(GuardMode::Rollback),
        "mock-ifconv-crash",
        None,
        &mut incidents,
        |f: &mut Function| -> ((), bool) {
            let cfg = f.cfg().expect("diamond");
            let entry = cfg.entry();
            let b3 = cfg.block_ids().nth(3).unwrap();
            // Hoist: drop the join's params, retarget the branch block,
            // leave dangling edge args behind — then crash mid-way.
            f.set_block_params(b3, vec![]);
            f.set_term(entry, Terminator::Jump { target: b3, args: vec![] });
            panic!("injected crash half-way through if-conversion");
        },
    );
    assert_eq!(r.unwrap(), None, "the transaction must not commit");
    assert_eq!(incidents.len(), 1);
    assert_eq!(incidents[0].kind, IncidentKind::Panic);
    assert_eq!(print_function(&f), before, "byte-identical restoration across blocks");
    assert_eq!(f.epoch(), epoch_before, "epoch restored");
    verify_function(&f).expect("restored function verifies");

    // And the restored function still if-converts cleanly afterwards.
    assert_eq!(lslp::ifconv::run(&mut f), 1);
    verify_function(&f).unwrap();
}

#[test]
fn sabotaged_if_conversion_is_caught_by_the_paranoid_oracle() {
    // SwapIfArms flips the select operands — valid IR, wrong semantics.
    // Only differential execution can notice; the paranoid guard must
    // refuse to commit the miscompiled transform.
    let mut f = diamond();
    let before = print_function(&f);
    let mut incidents = Vec::new();
    let policy = GuardPolicy::new(GuardMode::Rollback).paranoid(true);
    let r = guard::run_guarded(
        &mut f,
        policy,
        "if-convert",
        None,
        &mut incidents,
        |f: &mut Function| -> (usize, bool) {
            let n = lslp::ifconv::run_with(f, true);
            (n, n > 0)
        },
    );
    assert_eq!(r.unwrap(), None, "the miscompile must not commit");
    assert_eq!(incidents.len(), 1);
    assert_eq!(incidents[0].kind, IncidentKind::OracleMismatch);
    assert_eq!(print_function(&f), before, "rolled back to the diamond");
}

#[test]
fn unguarded_panic_in_cfg_mutation_propagates() {
    // Sanity: without the guard, the same crash escapes (the historical
    // behavior the guard exists to prevent).
    let mut f = diamond();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let entry = f.cfg().unwrap().entry();
        f.set_term(entry, Terminator::Ret);
        panic!("unguarded crash");
    }));
    assert!(result.is_err());
}
