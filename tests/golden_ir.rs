//! Golden-IR regression: the exact vectorized code LSLP emits for the
//! paper's three motivating examples. Pinning the full output catches any
//! unintended drift in seed collection, reordering decisions, multi-node
//! formation, codegen placement, naming, or DCE.
//!
//! Structural cross-check against the paper:
//! * Fig 2(d): one `<2 x i64>` load per array (B, C) — the look-ahead
//!   paired the lanes so both loads vectorize;
//! * Fig 3(d): the `+`/`<<` groups vectorize while the four leaf loads stay
//!   scalar gathers (insertelement chains);
//! * Fig 4(d): fully vectorized, including the `A[i:i+1]` loads and the
//!   multi-node's two chained vector `and`s.

use lslp::{vectorize_function, VectorizerConfig};
use lslp_target::CostModel;

fn vectorized(kernel: &str) -> String {
    let k = lslp_kernels::motivation_kernels()
        .into_iter()
        .find(|k| k.name == kernel)
        .expect("kernel exists");
    let mut f = k.compile();
    vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::skylake_like());
    lslp_ir::print_function(&f)
}

#[test]
fn golden_fig2_motivation_loads() {
    let expected = "\
func @motivation_loads(%A: ptr, %B: ptr, %C: ptr, %i: i64) {
  %0 = add i64 %i, 0
  %1 = gep %B, %0, 8
  %2 = add i64 %i, 0
  %3 = gep %C, %2, 8
  %4 = add i64 %i, 0
  %5 = gep %A, %4, 8
  %6 = load <2 x i64>, %3
  %7 = shl <2 x i64> %6, <2, 3>
  %8 = load <2 x i64>, %1
  %9 = shl <2 x i64> %8, <1, 4>
  %10 = and <2 x i64> %9, %7
  store <2 x i64> %10, %5
}
";
    assert_eq!(vectorized("motivation_loads"), expected);
}

#[test]
fn golden_fig3_motivation_opcodes() {
    let expected = "\
func @motivation_opcodes(%A: ptr, %B: ptr, %C: ptr, %D: ptr, %E: ptr, %i: i64) {
  %0 = mul i64 2, %i
  %1 = gep %B, %0, 8
  %2 = load i64, %1
  %3 = mul i64 2, %i
  %4 = gep %C, %3, 8
  %5 = load i64, %4
  %6 = add i64 %i, 0
  %7 = gep %A, %6, 8
  %8 = mul i64 2, %i
  %9 = gep %D, %8, 8
  %10 = load i64, %9
  %11 = insertelement <2 x i64> <0, 0>, %5, 0
  %12 = insertelement <2 x i64> %11, %10, 1
  %13 = add <2 x i64> %12, <2, 3>
  %14 = and <2 x i64> %13, <18, 19>
  %15 = mul i64 2, %i
  %16 = gep %E, %15, 8
  %17 = load i64, %16
  %18 = insertelement <2 x i64> <0, 0>, %2, 0
  %19 = insertelement <2 x i64> %18, %17, 1
  %20 = shl <2 x i64> %19, <1, 4>
  %21 = and <2 x i64> %20, <17, 20>
  %22 = add <2 x i64> %21, %14
  store <2 x i64> %22, %7
}
";
    assert_eq!(vectorized("motivation_opcodes"), expected);
}

#[test]
fn golden_fig4_motivation_multi() {
    let expected = "\
func @motivation_multi(%A: ptr, %B: ptr, %C: ptr, %D: ptr, %E: ptr, %i: i64) {
  %0 = add i64 %i, 0
  %1 = gep %A, %0, 8
  %2 = load <2 x i64>, %1
  %3 = add i64 %i, 0
  %4 = gep %B, %3, 8
  %5 = add i64 %i, 0
  %6 = gep %C, %5, 8
  %7 = add i64 %i, 0
  %8 = gep %D, %7, 8
  %9 = add i64 %i, 0
  %10 = gep %E, %9, 8
  %11 = add i64 %i, 0
  %12 = gep %A, %11, 8
  %13 = load <2 x i64>, %8
  %14 = load <2 x i64>, %10
  %15 = add <2 x i64> %13, %14
  %16 = load <2 x i64>, %4
  %17 = load <2 x i64>, %6
  %18 = add <2 x i64> %16, %17
  %19 = and <2 x i64> %15, %2
  %20 = and <2 x i64> %19, %18
  store <2 x i64> %20, %12
}
";
    assert_eq!(vectorized("motivation_multi"), expected);
}

/// Vectorization is deterministic: two independent runs over freshly
/// compiled kernels produce byte-identical IR.
#[test]
fn vectorization_is_deterministic() {
    for k in lslp_kernels::suite() {
        let once = {
            let mut f = k.compile();
            vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::skylake_like());
            lslp_ir::print_function(&f)
        };
        let twice = {
            let mut f = k.compile();
            vectorize_function(&mut f, &VectorizerConfig::lslp(), &CostModel::skylake_like());
            lslp_ir::print_function(&f)
        };
        assert_eq!(once, twice, "{} must vectorize deterministically", k.name);
    }
}
