//! Fault injection against the transactional pass guard.
//!
//! Mock passes are driven through the same `guard::run_guarded` entry the
//! real pipeline uses, with three injected failure modes: a pass that
//! *corrupts* the IR (fails verification), a pass that *panics* mid-way,
//! and a pass that *miscompiles* (valid IR, wrong semantics — only the
//! paranoid differential oracle can catch it). Each mode is checked under
//! all three guard settings: `rollback` must restore the pre-pass function
//! bit-for-bit and record exactly one incident while the process stays
//! alive, `strict` must return an error, and `off` must reproduce the
//! historical unguarded behavior (corruption persists, panics propagate).
//!
//! A second battery feeds *malformed input* (a store whose stored value is
//! void — non-vectorizable) straight into the vectorizer entry points.

use std::panic::{catch_unwind, AssertUnwindSafe};

use lslp::guard::{self, GuardMode, GuardPolicy, IncidentKind, RollbackStrategy};
use lslp::{try_vectorize_function, VectorizerConfig};
use lslp_ir::{Function, FunctionBuilder, Opcode, Type, ValueId};
use lslp_target::CostModel;

/// A small valid kernel: `A[i] = x; A[i+1] = x`.
fn kernel() -> Function {
    let mut f = Function::new("victim");
    let pa = f.add_param("A", Type::PTR);
    let x = f.add_param("x", Type::I64);
    let i = f.add_param("i", Type::I64);
    for o in 0..2 {
        let mut b = FunctionBuilder::new(&mut f);
        let c = b.func().const_i64(o);
        let idx = b.add(i, c);
        let g = b.gep(pa, idx, 8);
        b.store(x, g);
    }
    f
}

/// The id of the first store instruction in `f`.
fn first_store(f: &Function) -> ValueId {
    f.iter_body().find(|(_, _, inst)| inst.op == Opcode::Store).map(|(_, id, _)| id).unwrap()
}

/// Mock pass: dangle an operand (out-of-range handle) — detectable by the
/// verifier.
fn corrupting_pass(f: &mut Function) -> ((), bool) {
    let s = first_store(f);
    f.inst_mut(s).unwrap().args[0] = ValueId::from_raw(9999);
    ((), true)
}

/// Mock pass: silently redirect a store to a different value — the IR
/// stays valid, only differential execution notices.
fn miscompiling_pass(f: &mut Function) -> ((), bool) {
    let s = first_store(f);
    let wrong = f.const_i64(123_456);
    f.inst_mut(s).unwrap().args[0] = wrong;
    ((), true)
}

#[test]
fn corrupting_pass_rolls_back_bit_for_bit() {
    let mut f = kernel();
    let before = lslp_ir::print_function(&f);
    let mut incidents = Vec::new();
    let r = guard::run_guarded(
        &mut f,
        GuardPolicy::new(GuardMode::Rollback),
        "mock-corrupt",
        None,
        &mut incidents,
        corrupting_pass,
    );
    assert_eq!(r.unwrap(), None, "the transaction must not commit");
    assert_eq!(lslp_ir::print_function(&f), before, "bit-for-bit restore");
    assert_eq!(incidents.len(), 1, "exactly one incident");
    assert_eq!(incidents[0].kind, IncidentKind::VerifyError);
    assert!(
        incidents[0].detail.contains("out of range"),
        "incident names the verifier failure: {}",
        incidents[0].detail
    );
    lslp_ir::verify_function(&f).expect("restored function verifies");
}

#[test]
fn corrupting_pass_under_strict_returns_error() {
    let mut f = kernel();
    let before = lslp_ir::print_function(&f);
    let mut incidents = Vec::new();
    let err = guard::run_guarded(
        &mut f,
        GuardPolicy::new(GuardMode::Strict),
        "mock-corrupt",
        None,
        &mut incidents,
        corrupting_pass,
    )
    .unwrap_err();
    assert_eq!(err.0.kind, IncidentKind::VerifyError);
    assert_eq!(lslp_ir::print_function(&f), before, "strict also restores");
    assert!(incidents.is_empty(), "strict reports via Err, not the list");
}

#[test]
fn corrupting_pass_under_off_persists_corruption() {
    // The historical behavior: no snapshot, no verification — the broken
    // function survives the "pass". This is exactly what the guard exists
    // to prevent.
    let mut f = kernel();
    let mut incidents = Vec::new();
    let r = guard::run_guarded(
        &mut f,
        GuardPolicy::new(GuardMode::Off),
        "mock-corrupt",
        None,
        &mut incidents,
        corrupting_pass,
    );
    assert!(r.unwrap().is_some(), "off mode commits blindly");
    assert!(incidents.is_empty());
    assert!(lslp_ir::verify_function(&f).is_err(), "corruption persisted");
}

#[test]
fn panicking_pass_is_isolated_per_mode() {
    let panicking = |f: &mut Function| -> ((), bool) {
        f.add_param("junk", Type::I64); // partial mutation before the crash
        panic!("injected crash");
    };

    // Rollback: process alive, one incident, function restored.
    let mut f = kernel();
    let before = lslp_ir::print_function(&f);
    let mut incidents = Vec::new();
    let r = guard::run_guarded(
        &mut f,
        GuardPolicy::new(GuardMode::Rollback),
        "mock-panic",
        None,
        &mut incidents,
        panicking,
    );
    assert_eq!(r.unwrap(), None);
    assert_eq!(lslp_ir::print_function(&f), before);
    assert_eq!(incidents.len(), 1);
    assert_eq!(incidents[0].kind, IncidentKind::Panic);
    assert_eq!(incidents[0].detail, "injected crash");

    // Strict: an error, not a live panic.
    let mut f = kernel();
    let err = guard::run_guarded(
        &mut f,
        GuardPolicy::new(GuardMode::Strict),
        "mock-panic",
        None,
        &mut Vec::new(),
        panicking,
    )
    .unwrap_err();
    assert_eq!(err.0.kind, IncidentKind::Panic);

    // Off: the panic propagates to the caller, as before the guard existed.
    let mut f = kernel();
    let mut incidents = Vec::new();
    let propagated = catch_unwind(AssertUnwindSafe(|| {
        let _ = guard::run_guarded(
            &mut f,
            GuardPolicy::new(GuardMode::Off),
            "mock-panic",
            None,
            &mut incidents,
            panicking,
        );
    }));
    assert!(propagated.is_err(), "off mode must not swallow panics");
}

#[test]
fn miscompiling_pass_caught_only_by_paranoid_oracle() {
    // Without the oracle the wrong-but-valid transform commits…
    let mut f = kernel();
    let mut incidents = Vec::new();
    let r = guard::run_guarded(
        &mut f,
        GuardPolicy::new(GuardMode::Rollback),
        "mock-miscompile",
        None,
        &mut incidents,
        miscompiling_pass,
    );
    assert!(r.unwrap().is_some(), "verification alone cannot see it");
    assert!(incidents.is_empty());
    assert!(lslp_ir::print_function(&f).contains("123456"), "miscompile committed");

    // …with the oracle it is rolled back as an OracleMismatch.
    let mut f = kernel();
    let before = lslp_ir::print_function(&f);
    let r = guard::run_guarded(
        &mut f,
        GuardPolicy::new(GuardMode::Rollback).paranoid(true),
        "mock-miscompile",
        None,
        &mut incidents,
        miscompiling_pass,
    );
    assert_eq!(r.unwrap(), None);
    assert_eq!(lslp_ir::print_function(&f), before);
    assert_eq!(incidents.len(), 1);
    assert_eq!(incidents[0].kind, IncidentKind::OracleMismatch);
}

#[test]
fn differential_strategy_is_clean_across_all_targets() {
    // The differential strategy runs every rollback twice — delta log and
    // snapshot — and panics if they ever disagree. Sweeping the kernel
    // suite across the whole target registry is the strongest "delta
    // rollback ≡ snapshot rollback" statement the real pass pipeline can
    // make.
    for target in ["sse4.2", "skylake-avx2", "avx512", "neon128"] {
        let tm = CostModel::parse(target).expect("registry names parse");
        for k in lslp_kernels::suite() {
            let mut f = k.compile();
            let cfg = VectorizerConfig {
                rollback: RollbackStrategy::Differential,
                ..VectorizerConfig::lslp()
            };
            let report = try_vectorize_function(&mut f, &cfg, &tm)
                .unwrap_or_else(|e| panic!("{} on {target}: {e}", k.name));
            assert!(report.incidents.is_empty(), "{} on {target}: clean suite", k.name);
            lslp_ir::verify_function(&f).unwrap_or_else(|e| panic!("{} on {target}: {e}", k.name));
        }
    }
}

// ---------------------------------------------------------------------------
// Malformed input: stores whose stored value has no element type
// ---------------------------------------------------------------------------

/// `A[i] = x; A[i+1] = (void)` — the second store's "value" is the first
/// store itself. Invalid IR (the verifier rejects stores of void), and the
/// regression the `UnsupportedSeed` skip defends against: the seed loop
/// must never assume a stored value has an element type.
fn void_store_kernel() -> Function {
    let mut f = Function::new("voidstore");
    let pa = f.add_param("A", Type::PTR);
    let x = f.add_param("x", Type::I64);
    let i = f.add_param("i", Type::I64);
    let one = f.const_i64(1);
    let g0 = f.push(Opcode::Gep, Type::PTR, vec![pa, i], lslp_ir::InstAttr::ElemBytes(8));
    let s0 = f.push(Opcode::Store, Type::Void, vec![x, g0], lslp_ir::InstAttr::None);
    let i1 = f.push(Opcode::Add, Type::I64, vec![i, one], lslp_ir::InstAttr::None);
    let g1 = f.push(Opcode::Gep, Type::PTR, vec![pa, i1], lslp_ir::InstAttr::ElemBytes(8));
    let _s1 = f.push(Opcode::Store, Type::Void, vec![s0, g1], lslp_ir::InstAttr::None);
    f
}

#[test]
fn void_valued_stores_never_panic_the_vectorizer() {
    let tm = CostModel::skylake_like();
    for mode in [GuardMode::Rollback, GuardMode::Strict] {
        let mut f = void_store_kernel();
        let before = lslp_ir::print_function(&f);
        let cfg = VectorizerConfig { guard: mode, ..VectorizerConfig::lslp() };
        let r = catch_unwind(AssertUnwindSafe(|| try_vectorize_function(&mut f, &cfg, &tm)));
        let outcome = r.unwrap_or_else(|_| panic!("vectorizer panicked on void store ({mode})"));
        match mode {
            // The input never verified, so the final checkpoint reports it:
            // strict surfaces an error, rollback records and keeps going.
            GuardMode::Strict => {
                outcome.expect_err("strict must surface the invalid input");
            }
            _ => {
                let report = outcome.expect("rollback mode returns a report");
                assert_eq!(report.trees_vectorized, 0);
                assert!(!report.incidents.is_empty(), "the incident must be recorded");
            }
        }
        assert_eq!(lslp_ir::print_function(&f), before, "input left untouched ({mode})");
    }
}
