//! The paper's worked examples (§3, Figures 2–4) reproduce their exact
//! static costs.
//!
//! | Example              | SLP (paper)      | LSLP (paper) |
//! |----------------------|------------------|--------------|
//! | Fig 2 (loads)        | 0, not vectorized| −6           |
//! | Fig 3 (opcodes)      | +4, not vect.(*) | −2           |
//! | Fig 4 (multi-node)   | −2               | −10          |
//!
//! (*) Our vanilla-SLP cost for Figure 3 is 0 rather than +4: the paper's
//! LLVM baseline pairs the `&`-operands across lanes in a way that turns
//! both constant groups into mixed gathers (+2 each); our re-implementation
//! keeps the constants grouped (cost 0). The *decision* — SLP does not
//! vectorize, LSLP vectorizes at −2 — is identical. Recorded in
//! EXPERIMENTS.md.

use lslp::{vectorize_function, VectorizerConfig};
use lslp_kernels::motivation_kernels;
use lslp_target::CostModel;

/// Run a named motivation kernel under `cfg`; returns
/// `(first-attempt cost, applied cost, trees vectorized)`.
fn run(kernel: &str, cfg: &VectorizerConfig) -> (i64, i64, usize) {
    let k = motivation_kernels().into_iter().find(|k| k.name == kernel).expect("kernel exists");
    let mut f = k.compile();
    let report = vectorize_function(&mut f, cfg, &CostModel::skylake_like());
    lslp_ir::verify_function(&f).expect("output verifies");
    let first = report.attempts.first().map(|a| a.cost).unwrap_or(0);
    (first, report.applied_cost, report.trees_vectorized)
}

#[test]
fn fig2_slp_cost_zero_not_vectorized() {
    let (first, applied, trees) = run("motivation_loads", &VectorizerConfig::slp());
    assert_eq!(first, 0, "paper Fig 2(c): total cost 0");
    assert_eq!(trees, 0, "cost 0 is not profitable");
    assert_eq!(applied, 0);
}

#[test]
fn fig2_lslp_cost_minus_six() {
    let (_, applied, trees) = run("motivation_loads", &VectorizerConfig::lslp());
    assert_eq!(trees, 1);
    assert_eq!(applied, -6, "paper Fig 2(d): total cost −6");
}

#[test]
fn fig3_slp_not_vectorized() {
    let (first, _, trees) = run("motivation_opcodes", &VectorizerConfig::slp());
    assert_eq!(trees, 0, "paper Fig 3(c): SLP does not vectorize");
    assert!(first >= 0, "cost must be unprofitable, got {first}");
}

#[test]
fn fig3_lslp_cost_minus_two() {
    let (_, applied, trees) = run("motivation_opcodes", &VectorizerConfig::lslp());
    assert_eq!(trees, 1);
    assert_eq!(applied, -2, "paper Fig 3(d): total cost −2");
}

#[test]
fn fig4_slp_cost_minus_two_partial() {
    let (_, applied, trees) = run("motivation_multi", &VectorizerConfig::slp());
    assert_eq!(trees, 1, "paper Fig 4(c): SLP vectorizes partially");
    assert_eq!(applied, -2, "paper Fig 4(c): total cost −2");
}

#[test]
fn fig4_lslp_cost_minus_ten() {
    let (_, applied, trees) = run("motivation_multi", &VectorizerConfig::lslp());
    assert_eq!(trees, 1);
    assert_eq!(applied, -10, "paper Fig 4(d): total cost −10");
}

#[test]
fn slp_nr_never_beats_slp_on_motivation() {
    for k in ["motivation_loads", "motivation_opcodes", "motivation_multi"] {
        let (_, nr, _) = run(k, &VectorizerConfig::slp_nr());
        let (_, slp, _) = run(k, &VectorizerConfig::slp());
        assert!(nr >= slp, "{k}: SLP-NR {nr} vs SLP {slp}");
    }
}

#[test]
fn lslp_strictly_improves_all_motivation_examples() {
    for k in ["motivation_loads", "motivation_opcodes", "motivation_multi"] {
        let (_, slp, _) = run(k, &VectorizerConfig::slp());
        let (_, lslp, _) = run(k, &VectorizerConfig::lslp());
        assert!(lslp < slp, "{k}: LSLP {lslp} must beat SLP {slp}");
    }
}

/// Figure 4 specifically requires multi-node support: restricting the
/// multi-node size to 1 (LSLP-Multi1) must lose part of the benefit.
#[test]
fn fig4_needs_multinodes() {
    let (_, multi1, _) = run("motivation_multi", &VectorizerConfig::lslp_multi(1));
    let (_, full, _) = run("motivation_multi", &VectorizerConfig::lslp());
    assert!(full < multi1, "full LSLP {full} must beat Multi1 {multi1}");
}

/// Figure 2 specifically requires look-ahead: depth 0 cannot break the
/// all-`shl` tie.
#[test]
fn fig2_needs_lookahead() {
    let (_, la0, trees0) = run("motivation_loads", &VectorizerConfig::lslp_la(0));
    let (_, la1, trees1) = run("motivation_loads", &VectorizerConfig::lslp_la(1));
    assert_eq!(trees1, 1);
    assert_eq!(la1, -6, "depth 1 already sees the loads");
    assert!(la0 > la1, "LA0 ({la0} / {trees0} trees) must lose to LA1 ({la1})");
}
