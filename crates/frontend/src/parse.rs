//! The SLC recursive-descent parser (C operator precedence).

use lslp_ir::ScalarType;

use crate::ast::{BinOp, CmpOp, Expr, Kernel, Param, ParamType, Program, Stmt};
use crate::lex::{tokenize, TokKind, Token};
use crate::CompileError;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn at(&self, kind: &TokKind) -> bool {
        &self.peek().kind == kind
    }

    fn advance(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>) -> CompileError {
        let t = self.peek();
        CompileError::new(t.line, t.col, message)
    }

    fn expect(&mut self, kind: TokKind) -> Result<Token, CompileError> {
        if self.at(&kind) {
            Ok(self.advance())
        } else {
            Err(self.err_here(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, usize, usize), CompileError> {
        match self.peek().kind.clone() {
            TokKind::Ident(s) => {
                let t = self.advance();
                Ok((s, t.line, t.col))
            }
            other => Err(self.err_here(format!("expected identifier, found {other}"))),
        }
    }

    fn scalar_type(&mut self) -> Result<ScalarType, CompileError> {
        let (name, line, col) = self.expect_ident()?;
        ScalarType::from_name(&name)
            .filter(|t| !t.is_ptr())
            .ok_or_else(|| CompileError::new(line, col, format!("unknown type `{name}`")))
    }

    fn param(&mut self) -> Result<Param, CompileError> {
        let base = self.scalar_type()?;
        let ty = if self.at(&TokKind::Star) {
            self.advance();
            ParamType::Pointer(base)
        } else {
            ParamType::Scalar(base)
        };
        let (name, ..) = self.expect_ident()?;
        Ok(Param { name, ty })
    }

    // C precedence (low → high): | , ^ , & , << >> >>> , + - , * / %
    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.bin_or()
    }

    fn binary_level<F>(&mut self, next: F, ops: &[(TokKind, BinOp)]) -> Result<Expr, CompileError>
    where
        F: Fn(&mut Self) -> Result<Expr, CompileError>,
    {
        let mut lhs = next(self)?;
        'outer: loop {
            for (kind, op) in ops {
                if self.at(kind) {
                    let t = self.advance();
                    let rhs = next(self)?;
                    lhs = Expr::Binary {
                        op: *op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        pos: (t.line, t.col),
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn bin_or(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::bin_xor, &[(TokKind::Pipe, BinOp::Or)])
    }

    fn bin_xor(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::bin_and, &[(TokKind::Caret, BinOp::Xor)])
    }

    fn bin_and(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::bin_shift, &[(TokKind::Amp, BinOp::And)])
    }

    fn bin_shift(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::bin_add,
            &[(TokKind::Shl, BinOp::Shl), (TokKind::LShr, BinOp::LShr), (TokKind::Shr, BinOp::Shr)],
        )
    }

    fn bin_add(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::bin_mul,
            &[(TokKind::Plus, BinOp::Add), (TokKind::Minus, BinOp::Sub)],
        )
    }

    fn bin_mul(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::unary,
            &[
                (TokKind::Star, BinOp::Mul),
                (TokKind::Slash, BinOp::Div),
                (TokKind::Percent, BinOp::Rem),
            ],
        )
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        if self.at(&TokKind::Minus) {
            let t = self.advance();
            let expr = self.unary()?;
            return Ok(Expr::Neg { expr: Box::new(expr), pos: (t.line, t.col) });
        }
        let mut e = self.primary()?;
        // Postfix casts: `expr as ty` (left-associative, binds tighter than
        // binary operators, as in Rust).
        while let TokKind::Ident(kw) = &self.peek().kind {
            if kw != "as" {
                break;
            }
            let t = self.advance();
            let ty = self.scalar_type()?;
            e = Expr::Cast { expr: Box::new(e), ty, pos: (t.line, t.col) };
        }
        Ok(e)
    }

    /// `cmp_op` maps a comparison token, if the cursor is at one.
    fn cmp_op(&self) -> Option<CmpOp> {
        match self.peek().kind {
            TokKind::Lt => Some(CmpOp::Lt),
            TokKind::Le => Some(CmpOp::Le),
            TokKind::Gt => Some(CmpOp::Gt),
            TokKind::Ge => Some(CmpOp::Ge),
            TokKind::EqEq => Some(CmpOp::Eq),
            TokKind::Ne => Some(CmpOp::Ne),
            _ => None,
        }
    }

    /// `if a < b { expr } else { expr }` — a single comparison, both arms
    /// mandatory (the result must have a value on every path).
    fn if_expr(&mut self, pos: (usize, usize)) -> Result<Expr, CompileError> {
        let clhs = self.expr()?;
        let Some(cmp) = self.cmp_op() else {
            return Err(self.err_here(format!(
                "expected a comparison (`<` `<=` `>` `>=` `==` `!=`), found {}",
                self.peek().kind
            )));
        };
        self.advance();
        let crhs = self.expr()?;
        self.expect(TokKind::LBrace)?;
        let then_e = self.expr()?;
        self.expect(TokKind::RBrace)?;
        let (kw, line, col) = self.expect_ident()?;
        if kw != "else" {
            return Err(CompileError::new(line, col, format!("expected `else`, found `{kw}`")));
        }
        self.expect(TokKind::LBrace)?;
        let else_e = self.expr()?;
        self.expect(TokKind::RBrace)?;
        Ok(Expr::IfElse {
            clhs: Box::new(clhs),
            cmp,
            crhs: Box::new(crhs),
            then_e: Box::new(then_e),
            else_e: Box::new(else_e),
            pos,
        })
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let t = self.peek().clone();
        match t.kind {
            TokKind::Ident(ref kw) if kw == "if" => {
                self.advance();
                self.if_expr((t.line, t.col))
            }
            TokKind::Int(v) => {
                self.advance();
                Ok(Expr::IntLit { value: v, pos: (t.line, t.col) })
            }
            TokKind::Float(v) => {
                self.advance();
                Ok(Expr::FloatLit { value: v, pos: (t.line, t.col) })
            }
            TokKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(TokKind::RParen)?;
                Ok(e)
            }
            TokKind::Ident(name) => {
                self.advance();
                if self.at(&TokKind::LBracket) {
                    self.advance();
                    let index = self.expr()?;
                    self.expect(TokKind::RBracket)?;
                    Ok(Expr::Index { array: name, index: Box::new(index), pos: (t.line, t.col) })
                } else {
                    Ok(Expr::Var { name, pos: (t.line, t.col) })
                }
            }
            other => Err(self.err_here(format!("expected expression, found {other}"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, CompileError> {
        match self.peek().kind.clone() {
            TokKind::Int(v) => {
                self.advance();
                Ok(v)
            }
            other => Err(self.err_here(format!("expected integer, found {other}"))),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let t = self.peek().clone();
        if let TokKind::Ident(name) = &t.kind {
            if name == "for" {
                self.advance();
                let (var, ..) = self.expect_ident()?;
                let (kw, line, col) = self.expect_ident()?;
                if kw != "in" {
                    return Err(CompileError::new(
                        line,
                        col,
                        format!("expected `in`, found `{kw}`"),
                    ));
                }
                let start = self.expect_int()?;
                self.expect(TokKind::DotDot)?;
                let end = self.expect_int()?;
                if end < start {
                    return Err(CompileError::new(
                        t.line,
                        t.col,
                        format!("empty-or-negative range {start}..{end}"),
                    ));
                }
                if end - start > 1024 {
                    return Err(CompileError::new(
                        t.line,
                        t.col,
                        "loop unrolls to more than 1024 iterations",
                    ));
                }
                self.expect(TokKind::LBrace)?;
                let mut body = Vec::new();
                while !self.at(&TokKind::RBrace) {
                    body.push(self.stmt()?);
                }
                self.expect(TokKind::RBrace)?;
                return Ok(Stmt::For { var, start, end, body, pos: (t.line, t.col) });
            }
            if name == "loop" {
                self.advance();
                let (var, ..) = self.expect_ident()?;
                let (kw, line, col) = self.expect_ident()?;
                if kw != "in" {
                    return Err(CompileError::new(
                        line,
                        col,
                        format!("expected `in`, found `{kw}`"),
                    ));
                }
                let start = self.expect_int()?;
                self.expect(TokKind::DotDot)?;
                let trip = self.expect_int()?;
                if start != 0 {
                    return Err(CompileError::new(t.line, t.col, "`loop` ranges must start at 0"));
                }
                if !(1..=64).contains(&trip) {
                    return Err(CompileError::new(
                        t.line,
                        t.col,
                        format!("`loop` trip count must be 1..=64, got {trip}"),
                    ));
                }
                self.expect(TokKind::LBrace)?;
                let mut body = Vec::new();
                while !self.at(&TokKind::RBrace) {
                    body.push(self.stmt()?);
                }
                self.expect(TokKind::RBrace)?;
                return Ok(Stmt::Loop { var, trip, body, pos: (t.line, t.col) });
            }
            if name == "let" {
                self.advance();
                let mut mutable = false;
                if matches!(&self.peek().kind, TokKind::Ident(kw) if kw == "mut") {
                    self.advance();
                    mutable = true;
                }
                let (bind, line, col) = self.expect_ident()?;
                let ty = if self.at(&TokKind::Colon) {
                    self.advance();
                    Some(self.scalar_type()?)
                } else {
                    None
                };
                self.expect(TokKind::Equals)?;
                let expr = self.expr()?;
                self.expect(TokKind::Semi)?;
                return Ok(Stmt::Let { name: bind, mutable, ty, expr, pos: (line, col) });
            }
            // array[index] = value;  |  name = value;
            let target = name.clone();
            self.advance();
            if self.at(&TokKind::Equals) {
                self.advance();
                let value = self.expr()?;
                self.expect(TokKind::Semi)?;
                return Ok(Stmt::SetVar { name: target, value, pos: (t.line, t.col) });
            }
            self.expect(TokKind::LBracket)?;
            let index = self.expr()?;
            self.expect(TokKind::RBracket)?;
            self.expect(TokKind::Equals)?;
            let value = self.expr()?;
            self.expect(TokKind::Semi)?;
            return Ok(Stmt::Assign { array: target, index, value, pos: (t.line, t.col) });
        }
        Err(self.err_here(format!("expected statement, found {}", t.kind)))
    }

    fn kernel(&mut self) -> Result<Kernel, CompileError> {
        let (kw, line, col) = self.expect_ident()?;
        if kw != "kernel" {
            return Err(CompileError::new(line, col, format!("expected `kernel`, found `{kw}`")));
        }
        let (name, ..) = self.expect_ident()?;
        self.expect(TokKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokKind::RParen) {
            loop {
                params.push(self.param()?);
                if self.at(&TokKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(TokKind::RParen)?;
        self.expect(TokKind::LBrace)?;
        let mut body = Vec::new();
        while !self.at(&TokKind::RBrace) {
            body.push(self.stmt()?);
        }
        self.expect(TokKind::RBrace)?;
        Ok(Kernel { name, params, body })
    }
}

/// Parse a whole SLC source file.
pub fn parse_program(src: &str) -> Result<Program, CompileError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut program = Program::default();
    while !p.at(&TokKind::Eof) {
        program.kernels.push(p.kernel()?);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_motivation_loads() {
        let p = parse_program(
            "kernel m(i64* A, i64* B, i64* C, i64 i) {
                 A[i+0] = (B[i+0] << 1) & (C[i+0] << 2);
                 A[i+1] = (C[i+1] << 3) & (B[i+1] << 4);
             }",
        )
        .unwrap();
        assert_eq!(p.kernels.len(), 1);
        let k = &p.kernels[0];
        assert_eq!(k.params.len(), 4);
        assert_eq!(k.params[0].ty, ParamType::Pointer(ScalarType::I64));
        assert_eq!(k.params[3].ty, ParamType::Scalar(ScalarType::I64));
        assert_eq!(k.body.len(), 2);
    }

    #[test]
    fn precedence_matches_c() {
        // a + b * c  →  a + (b * c)
        let p =
            parse_program("kernel k(i64* A, i64 a, i64 b, i64 c) { A[0] = a + b * c; }").unwrap();
        let Stmt::Assign { value, .. } = &p.kernels[0].body[0] else { panic!() };
        let Expr::Binary { op: BinOp::Add, rhs, .. } = value else {
            panic!("expected top-level add, got {value:?}")
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
        // a & b + c  →  a & (b + c)
        let p =
            parse_program("kernel k(i64* A, i64 a, i64 b, i64 c) { A[0] = a & b + c; }").unwrap();
        let Stmt::Assign { value, .. } = &p.kernels[0].body[0] else { panic!() };
        assert!(matches!(value, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn unary_minus_binds_tight() {
        let p = parse_program("kernel k(f64* A, f64 x) { A[0] = -x * x; }").unwrap();
        let Stmt::Assign { value, .. } = &p.kernels[0].body[0] else { panic!() };
        let Expr::Binary { op: BinOp::Mul, lhs, .. } = value else { panic!() };
        assert!(matches!(**lhs, Expr::Neg { .. }));
    }

    #[test]
    fn let_with_and_without_annotation() {
        let p = parse_program(
            "kernel k(f64* A, i64 i) {
                 let a: f64 = A[i];
                 let b = a * a;
                 A[i] = b;
             }",
        )
        .unwrap();
        assert_eq!(p.kernels[0].body.len(), 3);
        let Stmt::Let { ty, .. } = &p.kernels[0].body[0] else { panic!() };
        assert_eq!(*ty, Some(ScalarType::F64));
        let Stmt::Let { ty, .. } = &p.kernels[0].body[1] else { panic!() };
        assert_eq!(*ty, None);
    }

    #[test]
    fn multiple_kernels() {
        let p = parse_program(
            "kernel a(i64* A) { A[0] = 1; }
             kernel b(i64* B) { B[0] = 2; }",
        )
        .unwrap();
        assert_eq!(p.kernels.len(), 2);
    }

    #[test]
    fn error_positions_are_exact() {
        let err = parse_program("kernel k(i64* A) {\n    A[0] = 1 +;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 15);
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse_program("kernel k(i64* A) { A[0] = 1 }").unwrap_err();
        assert!(err.message.contains("expected `;`"), "{err}");
    }

    #[test]
    fn rejects_pointer_locals() {
        let err = parse_program("kernel k(ptr* A) { }").unwrap_err();
        assert!(err.message.contains("unknown type"), "{err}");
    }
}
