//! The SLC abstract syntax tree.

use lslp_ir::ScalarType;

/// A parameter type: a scalar or a pointer-to-scalar array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParamType {
    /// A scalar value parameter (e.g. `i64 i`).
    Scalar(ScalarType),
    /// A pointer parameter (e.g. `f64* A`); indexing yields the element.
    Pointer(ScalarType),
}

/// One kernel parameter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: ParamType,
}

/// Binary operators, with C semantics on the IR's types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed / float division)
    Div,
    /// `%` (signed remainder, integers only)
    Rem,
    /// `&` (integers only)
    And,
    /// `|` (integers only)
    Or,
    /// `^` (integers only)
    Xor,
    /// `<<` (integers only)
    Shl,
    /// `>>` arithmetic shift right (integers only)
    Shr,
    /// `>>>` logical shift right (integers only)
    LShr,
}

/// An expression, annotated with its source position for diagnostics.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal (type adapts to context).
    IntLit {
        /// The literal value.
        value: i64,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// Float literal (type adapts to `f32`/`f64` context).
    FloatLit {
        /// The literal value.
        value: f64,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// Reference to a parameter or `let` binding.
    Var {
        /// The referenced name.
        name: String,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// Array element read: `A[index]`.
    Index {
        /// The pointer parameter name.
        array: String,
        /// The element index expression (type `i64`).
        index: Box<Expr>,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// Unary negation.
    Neg {
        /// The operand.
        expr: Box<Expr>,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// Type conversion: `expr as ty` (C-style value conversion).
    Cast {
        /// The converted expression.
        expr: Box<Expr>,
        /// The target scalar type.
        ty: ScalarType,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line/column.
        pos: (usize, usize),
    },
}

impl Expr {
    /// The source position of the expression.
    pub fn pos(&self) -> (usize, usize) {
        match self {
            Expr::IntLit { pos, .. }
            | Expr::FloatLit { pos, .. }
            | Expr::Var { pos, .. }
            | Expr::Index { pos, .. }
            | Expr::Neg { pos, .. }
            | Expr::Cast { pos, .. }
            | Expr::Binary { pos, .. } => *pos,
        }
    }
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `let name[: ty] = expr;`
    Let {
        /// Binding name.
        name: String,
        /// Optional type annotation (inferred otherwise).
        ty: Option<ScalarType>,
        /// Bound expression.
        expr: Expr,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// `for var in start..end { body }` — a compile-time-unrolled loop
    /// with constant integer bounds; `var` is bound to each value in turn.
    For {
        /// Loop variable name (an `i64` compile-time constant per copy).
        var: String,
        /// Inclusive start.
        start: i64,
        /// Exclusive end.
        end: i64,
        /// The unrolled body.
        body: Vec<Stmt>,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// `array[index] = value;`
    Assign {
        /// The pointer parameter name.
        array: String,
        /// Element index expression.
        index: Expr,
        /// Stored value expression.
        value: Expr,
        /// Source line/column.
        pos: (usize, usize),
    },
}

/// One kernel definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Kernel {
    /// Kernel (function) name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Straight-line statement list.
    pub body: Vec<Stmt>,
}

/// A parsed source file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// The kernels, in definition order.
    pub kernels: Vec<Kernel>,
}
