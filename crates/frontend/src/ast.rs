//! The SLC abstract syntax tree.

use lslp_ir::ScalarType;

/// A parameter type: a scalar or a pointer-to-scalar array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParamType {
    /// A scalar value parameter (e.g. `i64 i`).
    Scalar(ScalarType),
    /// A pointer parameter (e.g. `f64* A`); indexing yields the element.
    Pointer(ScalarType),
}

/// One kernel parameter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: ParamType,
}

/// Binary operators, with C semantics on the IR's types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed / float division)
    Div,
    /// `%` (signed remainder, integers only)
    Rem,
    /// `&` (integers only)
    And,
    /// `|` (integers only)
    Or,
    /// `^` (integers only)
    Xor,
    /// `<<` (integers only)
    Shl,
    /// `>>` arithmetic shift right (integers only)
    Shr,
    /// `>>>` logical shift right (integers only)
    LShr,
}

/// Comparison operators for `if` conditions (signed on integers, ordered
/// on floats).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// An expression, annotated with its source position for diagnostics.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal (type adapts to context).
    IntLit {
        /// The literal value.
        value: i64,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// Float literal (type adapts to `f32`/`f64` context).
    FloatLit {
        /// The literal value.
        value: f64,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// Reference to a parameter or `let` binding.
    Var {
        /// The referenced name.
        name: String,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// Array element read: `A[index]`.
    Index {
        /// The pointer parameter name.
        array: String,
        /// The element index expression (type `i64`).
        index: Box<Expr>,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// Unary negation.
    Neg {
        /// The operand.
        expr: Box<Expr>,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// Type conversion: `expr as ty` (C-style value conversion).
    Cast {
        /// The converted expression.
        expr: Box<Expr>,
        /// The target scalar type.
        ty: ScalarType,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// `if a < b { then } else { else }` — an expression; both arms are
    /// mandatory and yield the same type. Lowers to a branch diamond in
    /// the IR CFG (if-conversion later turns it into a `select`).
    IfElse {
        /// Left comparison operand.
        clhs: Box<Expr>,
        /// The comparison.
        cmp: CmpOp,
        /// Right comparison operand.
        crhs: Box<Expr>,
        /// Value when the comparison holds.
        then_e: Box<Expr>,
        /// Value otherwise.
        else_e: Box<Expr>,
        /// Source line/column.
        pos: (usize, usize),
    },
}

impl Expr {
    /// The source position of the expression.
    pub fn pos(&self) -> (usize, usize) {
        match self {
            Expr::IntLit { pos, .. }
            | Expr::FloatLit { pos, .. }
            | Expr::Var { pos, .. }
            | Expr::Index { pos, .. }
            | Expr::Neg { pos, .. }
            | Expr::Cast { pos, .. }
            | Expr::Binary { pos, .. }
            | Expr::IfElse { pos, .. } => *pos,
        }
    }
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `let [mut] name[: ty] = expr;`
    Let {
        /// Binding name.
        name: String,
        /// Whether re-assignment (`name = expr;`) is allowed.
        mutable: bool,
        /// Optional type annotation (inferred otherwise).
        ty: Option<ScalarType>,
        /// Bound expression.
        expr: Expr,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// `name = expr;` — re-assignment of a `let mut` binding. Inside a
    /// `loop`, assignments to bindings declared outside the loop become
    /// loop-carried values.
    SetVar {
        /// The binding being updated.
        name: String,
        /// The new value.
        value: Expr,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// `loop var in 0..N { body }` — a *runtime* counted loop lowered to
    /// the IR's `CountedLoop` region (contrast [`Stmt::For`], which is
    /// unrolled at compile time by the frontend itself).
    Loop {
        /// Induction variable name (an `i64`, counting `0..trip`).
        var: String,
        /// Compile-time trip count.
        trip: i64,
        /// The loop body.
        body: Vec<Stmt>,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// `for var in start..end { body }` — a compile-time-unrolled loop
    /// with constant integer bounds; `var` is bound to each value in turn.
    For {
        /// Loop variable name (an `i64` compile-time constant per copy).
        var: String,
        /// Inclusive start.
        start: i64,
        /// Exclusive end.
        end: i64,
        /// The unrolled body.
        body: Vec<Stmt>,
        /// Source line/column.
        pos: (usize, usize),
    },
    /// `array[index] = value;`
    Assign {
        /// The pointer parameter name.
        array: String,
        /// Element index expression.
        index: Expr,
        /// Stored value expression.
        value: Expr,
        /// Source line/column.
        pos: (usize, usize),
    },
}

/// One kernel definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Kernel {
    /// Kernel (function) name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Straight-line statement list.
    pub body: Vec<Stmt>,
}

/// A parsed source file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// The kernels, in definition order.
    pub kernels: Vec<Kernel>,
}
