//! Type checking and lowering of SLC to IR.

use std::collections::{HashMap, HashSet};

use lslp_ir::{
    BlockId, FloatPred, Function, InstAttr, IntPred, Module, Opcode, ScalarType, Terminator, Type,
    ValueId,
};

use crate::ast::{BinOp, CmpOp, Expr, Kernel, Param, ParamType, Program, Stmt};
use crate::CompileError;

struct Lowerer {
    f: Function,
    arrays: HashMap<String, (ValueId, ScalarType)>,
    scalars: HashMap<String, (ValueId, ScalarType)>,
    /// Names declared `let mut` (re-assignable via `name = expr;`).
    muts: HashSet<String>,
    /// Current block in CFG mode; `None` keeps the straight-line path,
    /// which stays byte-for-byte what it was before control flow existed.
    cur: Option<BlockId>,
    /// Whether lowering is inside a `loop` body (nesting is rejected).
    in_loop: bool,
}

fn err(pos: (usize, usize), message: impl Into<String>) -> CompileError {
    CompileError::new(pos.0, pos.1, message)
}

/// Does this body need the CFG lowering mode? `loop` statements and `if`
/// expressions do; everything else lowers straight-line as before.
fn uses_cfg(body: &[Stmt]) -> bool {
    fn expr_has_if(e: &Expr) -> bool {
        match e {
            Expr::IfElse { .. } => true,
            Expr::IntLit { .. } | Expr::FloatLit { .. } | Expr::Var { .. } => false,
            Expr::Index { index, .. } => expr_has_if(index),
            Expr::Neg { expr, .. } | Expr::Cast { expr, .. } => expr_has_if(expr),
            Expr::Binary { lhs, rhs, .. } => expr_has_if(lhs) || expr_has_if(rhs),
        }
    }
    body.iter().any(|s| match s {
        Stmt::Loop { .. } => true,
        Stmt::For { body, .. } => uses_cfg(body),
        Stmt::Let { expr, .. } => expr_has_if(expr),
        Stmt::SetVar { value, .. } => expr_has_if(value),
        Stmt::Assign { index, value, .. } => expr_has_if(index) || expr_has_if(value),
    })
}

/// Collect (in first-assignment order) the outer-scope variables a loop
/// body re-assigns: these become the loop-carried values.
fn carried_vars(
    body: &[Stmt],
    outer: &HashMap<String, (ValueId, ScalarType)>,
    out: &mut Vec<String>,
) {
    for s in body {
        match s {
            Stmt::SetVar { name, .. } => {
                if outer.contains_key(name) && !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
            Stmt::For { body, .. } | Stmt::Loop { body, .. } => carried_vars(body, outer, out),
            Stmt::Let { .. } | Stmt::Assign { .. } => {}
        }
    }
}

impl Lowerer {
    /// Append an instruction to the current block (CFG mode) or the
    /// straight-line body.
    fn emit(&mut self, op: Opcode, ty: Type, args: Vec<ValueId>, attr: InstAttr) -> ValueId {
        match self.cur {
            Some(b) => self.f.push_in_block(b, op, ty, args, attr),
            None => self.f.push(op, ty, args, attr),
        }
    }

    /// Bottom-up type inference; literals are `None` (they adapt).
    fn infer(&self, e: &Expr) -> Result<Option<ScalarType>, CompileError> {
        Ok(match e {
            Expr::IntLit { .. } | Expr::FloatLit { .. } => None,
            Expr::Var { name, pos } => Some(
                self.scalars
                    .get(name)
                    .ok_or_else(|| err(*pos, format!("unknown variable `{name}`")))?
                    .1,
            ),
            Expr::Index { array, pos, .. } => Some(
                self.arrays
                    .get(array)
                    .ok_or_else(|| err(*pos, format!("unknown array `{array}`")))?
                    .1,
            ),
            Expr::Neg { expr, .. } => self.infer(expr)?,
            Expr::Cast { ty, .. } => Some(*ty),
            Expr::Binary { lhs, rhs, .. } => match self.infer(lhs)? {
                Some(t) => Some(t),
                None => self.infer(rhs)?,
            },
            Expr::IfElse { then_e, else_e, .. } => match self.infer(then_e)? {
                Some(t) => Some(t),
                None => self.infer(else_e)?,
            },
        })
    }

    fn binop_opcode(
        op: BinOp,
        ty: ScalarType,
        pos: (usize, usize),
    ) -> Result<Opcode, CompileError> {
        let float = ty.is_float();
        let oc = match (op, float) {
            (BinOp::Add, false) => Opcode::Add,
            (BinOp::Add, true) => Opcode::FAdd,
            (BinOp::Sub, false) => Opcode::Sub,
            (BinOp::Sub, true) => Opcode::FSub,
            (BinOp::Mul, false) => Opcode::Mul,
            (BinOp::Mul, true) => Opcode::FMul,
            (BinOp::Div, false) => Opcode::SDiv,
            (BinOp::Div, true) => Opcode::FDiv,
            (BinOp::Rem, false) => Opcode::SRem,
            (BinOp::And, false) => Opcode::And,
            (BinOp::Or, false) => Opcode::Or,
            (BinOp::Xor, false) => Opcode::Xor,
            (BinOp::Shl, false) => Opcode::Shl,
            (BinOp::Shr, false) => Opcode::AShr,
            (BinOp::LShr, false) => Opcode::LShr,
            (other, true) => {
                return Err(err(pos, format!("operator {other:?} is not defined on {ty}")))
            }
        };
        Ok(oc)
    }

    /// Lower `e`, coercing literals to `want`; non-literals must match.
    fn lower_expr(&mut self, e: &Expr, want: ScalarType) -> Result<ValueId, CompileError> {
        match e {
            Expr::IntLit { value, pos } => {
                if want.is_int() {
                    Ok(self.f.const_int(want, *value))
                } else if want.is_float() {
                    Ok(self.f.const_float(want, *value as f64))
                } else {
                    Err(err(*pos, "integer literal in pointer context"))
                }
            }
            Expr::FloatLit { value, pos } => {
                if want.is_float() {
                    Ok(self.f.const_float(want, *value))
                } else {
                    Err(err(*pos, format!("float literal where {want} expected")))
                }
            }
            Expr::Var { name, pos } => {
                let &(id, ty) = self
                    .scalars
                    .get(name)
                    .ok_or_else(|| err(*pos, format!("unknown variable `{name}`")))?;
                if ty != want {
                    return Err(err(*pos, format!("`{name}` has type {ty}, expected {want}")));
                }
                Ok(id)
            }
            Expr::Index { array, index, pos } => {
                let &(base, elem) = self
                    .arrays
                    .get(array)
                    .ok_or_else(|| err(*pos, format!("unknown array `{array}`")))?;
                if elem != want {
                    return Err(err(
                        *pos,
                        format!("`{array}` has element type {elem}, expected {want}"),
                    ));
                }
                let idx = self.lower_expr(index, ScalarType::I64)?;
                let gep = self.emit(
                    Opcode::Gep,
                    Type::PTR,
                    vec![base, idx],
                    InstAttr::ElemBytes(elem.bytes()),
                );
                Ok(self.emit(Opcode::Load, Type::Scalar(elem), vec![gep], InstAttr::None))
            }
            Expr::Neg { expr, pos } => {
                let v = self.lower_expr(expr, want)?;
                let (zero, op) = if want.is_float() {
                    (self.f.const_float(want, 0.0), Opcode::FSub)
                } else if want.is_int() {
                    (self.f.const_int(want, 0), Opcode::Sub)
                } else {
                    return Err(err(*pos, "cannot negate a pointer"));
                };
                Ok(self.emit(op, Type::Scalar(want), vec![zero, v], InstAttr::None))
            }
            Expr::Cast { expr, ty, pos } => {
                if *ty != want {
                    return Err(err(*pos, format!("cast to {ty} where {want} expected")));
                }
                let Some(src) = self.infer(expr)? else {
                    // A literal cast (`2 as f64`) lowers the literal
                    // directly at the target type.
                    return self.lower_expr(expr, want);
                };
                let v = self.lower_expr(expr, src)?;
                if src == want {
                    return Ok(v);
                }
                let op = match (src.is_int(), want.is_int()) {
                    (true, true) if src.bits() < want.bits() => Opcode::Sext,
                    (true, true) => Opcode::Trunc,
                    (true, false) => Opcode::Sitofp,
                    (false, true) => Opcode::Fptosi,
                    (false, false) if src.bits() < want.bits() => Opcode::Fpext,
                    (false, false) => Opcode::Fptrunc,
                };
                Ok(self.emit(op, Type::Scalar(want), vec![v], InstAttr::None))
            }
            Expr::Binary { op, lhs, rhs, pos } => {
                let oc = Self::binop_opcode(*op, want, *pos)?;
                let l = self.lower_expr(lhs, want)?;
                let r = self.lower_expr(rhs, want)?;
                Ok(self.emit(oc, Type::Scalar(want), vec![l, r], InstAttr::None))
            }
            Expr::IfElse { clhs, cmp, crhs, then_e, else_e, pos } => {
                self.lower_if(clhs, *cmp, crhs, then_e, else_e, want, *pos)
            }
        }
    }

    /// Lower an `if` expression to a branch diamond: compare in the current
    /// block, branch to two arm blocks that each compute one value, and
    /// reconverge at a join block whose parameter is the result.
    #[allow(clippy::too_many_arguments)]
    fn lower_if(
        &mut self,
        clhs: &Expr,
        cmp: CmpOp,
        crhs: &Expr,
        then_e: &Expr,
        else_e: &Expr,
        want: ScalarType,
        pos: (usize, usize),
    ) -> Result<ValueId, CompileError> {
        debug_assert!(self.cur.is_some(), "if-expressions force CFG mode");
        let cty = match self.infer(clhs)? {
            Some(t) => t,
            None => self.infer(crhs)?.ok_or_else(|| {
                err(pos, "cannot infer comparison type: both operands are literals")
            })?,
        };
        let l = self.lower_expr(clhs, cty)?;
        let r = self.lower_expr(crhs, cty)?;
        let (op, attr) = if cty.is_float() {
            let p = match cmp {
                CmpOp::Lt => FloatPred::Olt,
                CmpOp::Le => FloatPred::Ole,
                CmpOp::Gt => FloatPred::Ogt,
                CmpOp::Ge => FloatPred::Oge,
                CmpOp::Eq => FloatPred::Oeq,
                CmpOp::Ne => FloatPred::One,
            };
            (Opcode::FCmp, InstAttr::FloatPred(p))
        } else {
            let p = match cmp {
                CmpOp::Lt => IntPred::Slt,
                CmpOp::Le => IntPred::Sle,
                CmpOp::Gt => IntPred::Sgt,
                CmpOp::Ge => IntPred::Sge,
                CmpOp::Eq => IntPred::Eq,
                CmpOp::Ne => IntPred::Ne,
            };
            (Opcode::ICmp, InstAttr::IntPred(p))
        };
        let cond = self.emit(op, Type::Scalar(ScalarType::I8), vec![l, r], attr);

        let then_b = self.f.add_block();
        let else_b = self.f.add_block();
        let join = self.f.add_block();
        let res = self.f.add_block_param(join, None, Type::Scalar(want));
        let from = self.cur.expect("CFG mode");
        self.f.set_term(
            from,
            Terminator::Br {
                cond,
                then_to: then_b,
                then_args: Vec::new(),
                else_to: else_b,
                else_args: Vec::new(),
            },
        );
        // Arms may themselves open diamonds, so each arm's final block is
        // whatever `cur` is after lowering its value.
        self.cur = Some(then_b);
        let tv = self.lower_expr(then_e, want)?;
        let t_end = self.cur.expect("CFG mode");
        self.f.set_term(t_end, Terminator::Jump { target: join, args: vec![tv] });
        self.cur = Some(else_b);
        let ev = self.lower_expr(else_e, want)?;
        let e_end = self.cur.expect("CFG mode");
        self.f.set_term(e_end, Terminator::Jump { target: join, args: vec![ev] });
        self.cur = Some(join);
        Ok(res)
    }

    /// Lower `loop var in 0..trip { body }` to a `CountedLoop` region.
    /// Outer `let mut` bindings re-assigned in the body become the region's
    /// loop-carried values: block parameters of the body block (current
    /// value each iteration), `continue` arguments (next value), and exit
    /// block parameters (final value).
    fn lower_loop(
        &mut self,
        var: &str,
        trip: i64,
        body: &[Stmt],
        pos: (usize, usize),
    ) -> Result<(), CompileError> {
        if self.in_loop {
            return Err(err(pos, "nested `loop`s are not supported; unroll with `for`"));
        }
        if self.scalars.contains_key(var) || self.arrays.contains_key(var) {
            return Err(err(pos, format!("`{var}` is already defined")));
        }
        let header = self.cur.expect("loops force CFG mode");

        let mut carried = Vec::new();
        carried_vars(body, &self.scalars, &mut carried);
        for name in &carried {
            if !self.muts.contains(name) {
                return Err(err(
                    pos,
                    format!("`{name}` is not declared `mut` and cannot be re-assigned"),
                ));
            }
        }
        let init: Vec<ValueId> = carried.iter().map(|n| self.scalars[n].0).collect();

        let body_b = self.f.add_block();
        let exit_b = self.f.add_block();
        let iv = self.f.add_block_param(body_b, Some(var.to_string()), Type::I64);
        for name in &carried {
            let ty = self.scalars[name].1;
            let p = self.f.add_block_param(body_b, Some(name.clone()), Type::Scalar(ty));
            self.scalars.insert(name.clone(), (p, ty));
        }
        let trip_c = self.f.const_i64(trip);
        self.f
            .set_term(header, Terminator::Loop { trip: trip_c, body: body_b, init, exit: exit_b });

        // Lower the body with `var` in scope; body-local `let`s are scoped
        // to the loop, like `for`.
        self.cur = Some(body_b);
        self.in_loop = true;
        self.scalars.insert(var.to_string(), (iv, ScalarType::I64));
        let saved: Vec<String> = self.scalars.keys().cloned().collect();
        for stmt in body {
            self.lower_stmt(stmt)?;
        }
        self.scalars.retain(|k, _| saved.contains(k));
        self.scalars.remove(var);
        self.in_loop = false;

        let next: Vec<ValueId> = carried.iter().map(|n| self.scalars[n].0).collect();
        let body_end = self.cur.expect("CFG mode");
        self.f.set_term(body_end, Terminator::Continue { args: next });

        // After the loop, the carried names refer to the exit parameters
        // (the values after the final iteration).
        self.cur = Some(exit_b);
        for name in &carried {
            let ty = self.scalars[name].1;
            let p = self.f.add_block_param(exit_b, Some(name.clone()), Type::Scalar(ty));
            self.scalars.insert(name.clone(), (p, ty));
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::For { var, start, end, body, pos } => {
                if self.scalars.contains_key(var) || self.arrays.contains_key(var) {
                    return Err(err(*pos, format!("`{var}` is already defined")));
                }
                for k in *start..*end {
                    // Bind the loop variable to the iteration constant; the
                    // body is fully unrolled (SLC has no runtime control
                    // flow — this is how multi-lane kernels are written
                    // compactly).
                    let c = self.f.const_i64(k);
                    self.scalars.insert(var.clone(), (c, ScalarType::I64));
                    // Body-local `let`s are scoped per iteration.
                    let saved: Vec<String> = self.scalars.keys().cloned().collect();
                    for stmt in body {
                        self.lower_stmt(stmt)?;
                    }
                    self.scalars.retain(|k2, _| saved.contains(k2));
                    self.scalars.remove(var);
                }
                Ok(())
            }
            Stmt::Let { name, mutable, ty, expr, pos } => {
                if self.scalars.contains_key(name) || self.arrays.contains_key(name) {
                    return Err(err(*pos, format!("`{name}` is already defined")));
                }
                let want = match ty {
                    Some(t) => *t,
                    None => self.infer(expr)?.ok_or_else(|| {
                        err(*pos, format!("cannot infer type of `{name}`; add `: ty`"))
                    })?,
                };
                let v = self.lower_expr(expr, want)?;
                // Name the value for readable IR dumps (constants excluded:
                // they may be shared).
                if self.f.is_inst(v) {
                    self.f.set_value_name(v, name.clone());
                }
                if *mutable {
                    self.muts.insert(name.clone());
                }
                self.scalars.insert(name.clone(), (v, want));
                Ok(())
            }
            Stmt::SetVar { name, value, pos } => {
                let &(_, ty) = self
                    .scalars
                    .get(name)
                    .ok_or_else(|| err(*pos, format!("unknown variable `{name}`")))?;
                if !self.muts.contains(name) {
                    return Err(err(
                        *pos,
                        format!("`{name}` is not declared `mut` and cannot be re-assigned"),
                    ));
                }
                // SSA re-binding: the name now refers to the new value. A
                // re-assignment inside a `loop` to an outer binding is what
                // makes it loop-carried (see `Stmt::Loop` below).
                let v = self.lower_expr(value, ty)?;
                self.scalars.insert(name.clone(), (v, ty));
                Ok(())
            }
            Stmt::Loop { var, trip, body, pos } => self.lower_loop(var, *trip, body, *pos),
            Stmt::Assign { array, index, value, pos } => {
                let &(base, elem) = self
                    .arrays
                    .get(array)
                    .ok_or_else(|| err(*pos, format!("unknown array `{array}`")))?;
                let val = self.lower_expr(value, elem)?;
                let idx = self.lower_expr(index, ScalarType::I64)?;
                let gep = self.emit(
                    Opcode::Gep,
                    Type::PTR,
                    vec![base, idx],
                    InstAttr::ElemBytes(elem.bytes()),
                );
                self.emit(Opcode::Store, Type::Void, vec![val, gep], InstAttr::None);
                Ok(())
            }
        }
    }
}

fn lower_kernel(k: &Kernel) -> Result<Function, CompileError> {
    let mut lw = Lowerer {
        f: Function::new(k.name.clone()),
        arrays: HashMap::new(),
        scalars: HashMap::new(),
        muts: HashSet::new(),
        cur: None,
        in_loop: false,
    };
    for Param { name, ty } in &k.params {
        if lw.scalars.contains_key(name) || lw.arrays.contains_key(name) {
            return Err(CompileError::new(1, 1, format!("parameter `{name}` is duplicated")));
        }
        match ty {
            ParamType::Pointer(elem) => {
                let id = lw.f.add_param(name.clone(), Type::PTR);
                lw.arrays.insert(name.clone(), (id, *elem));
            }
            ParamType::Scalar(t) => {
                let id = lw.f.add_param(name.clone(), Type::Scalar(*t));
                lw.scalars.insert(name.clone(), (id, *t));
            }
        }
    }
    // Bodies with runtime control flow (`loop` / `if`) lower into a CFG;
    // everything else takes the original straight-line path so existing
    // kernels produce byte-identical IR.
    if uses_cfg(&k.body) {
        let entry = lw.f.init_cfg();
        lw.cur = Some(entry);
    }
    for s in &k.body {
        lw.lower_stmt(s)?;
    }
    Ok(lw.f)
}

/// Lower a parsed program to an IR module.
pub fn lower_program(p: &Program) -> Result<Module, CompileError> {
    let mut m = Module::new();
    for k in &p.kernels {
        if m.function(&k.name).is_some() {
            return Err(CompileError::new(1, 1, format!("kernel `{}` is duplicated", k.name)));
        }
        m.functions.push(lower_kernel(k)?);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn compile_ok(src: &str) -> Module {
        let m = lower_program(&parse(src).unwrap()).unwrap();
        lslp_ir::verify_module(&m).unwrap();
        m
    }

    fn compile_err(src: &str) -> CompileError {
        match parse(src) {
            Err(e) => e,
            Ok(p) => lower_program(&p).unwrap_err(),
        }
    }

    #[test]
    fn lowers_motivation_loads_shape() {
        let m = compile_ok(
            "kernel m(i64* A, i64* B, i64* C, i64 i) {
                 A[i+0] = (B[i+0] << 1) & (C[i+0] << 2);
                 A[i+1] = (C[i+1] << 3) & (B[i+1] << 4);
             }",
        );
        let text = lslp_ir::print_function(&m.functions[0]);
        assert_eq!(text.matches("shl i64").count(), 4, "{text}");
        assert_eq!(text.matches("and i64").count(), 2, "{text}");
        assert_eq!(text.matches("store i64").count(), 2, "{text}");
        assert_eq!(text.matches("load i64").count(), 4, "{text}");
    }

    #[test]
    fn int_literals_adapt_to_float_context() {
        let m = compile_ok("kernel k(f64* A, i64 i) { A[i] = A[i] + 2; }");
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("fadd f64"), "{text}");
        assert!(text.contains("2.0"), "{text}");
    }

    #[test]
    fn let_bindings_are_named_and_typed() {
        let m = compile_ok(
            "kernel k(f64* A, i64 i) {
                 let sq = A[i] * A[i];
                 A[i] = sq + sq;
             }",
        );
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("%sq = fmul f64"), "{text}");
    }

    #[test]
    fn unary_negation_lowers_to_sub_from_zero() {
        let m = compile_ok("kernel k(f64* A, i64 i) { A[i] = -A[i]; }");
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("fsub f64 0.0"), "{text}");
        let m = compile_ok("kernel k(i64* A, i64 i) { A[i] = -A[i]; }");
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("sub i64 0"), "{text}");
    }

    #[test]
    fn shift_variants_lower_distinctly() {
        let m = compile_ok(
            "kernel k(i64* A, i64 i) { A[i] = (A[i] << 1) + (A[i] >> 2) + (A[i] >>> 3); }",
        );
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("shl i64"), "{text}");
        assert!(text.contains("ashr i64"), "{text}");
        assert!(text.contains("lshr i64"), "{text}");
    }

    #[test]
    fn type_errors_are_reported() {
        let e = compile_err("kernel k(f64* A, i64 i) { A[i] = A[i] & 1; }");
        assert!(e.message.contains("not defined on f64"), "{e}");
        let e = compile_err("kernel k(i64* A, i64 i) { A[i] = 1.5; }");
        assert!(e.message.contains("float literal"), "{e}");
        let e = compile_err("kernel k(f64* A, f32* B, i64 i) { A[i] = B[i]; }");
        assert!(e.message.contains("element type f32"), "{e}");
    }

    #[test]
    fn unknown_names_are_reported() {
        let e = compile_err("kernel k(i64* A, i64 i) { A[i] = nope; }");
        assert!(e.message.contains("unknown variable"), "{e}");
        let e = compile_err("kernel k(i64* A, i64 i) { B[i] = 1; }");
        assert!(e.message.contains("unknown array"), "{e}");
    }

    #[test]
    fn inference_failure_requests_annotation() {
        let e = compile_err("kernel k(i64* A) { let x = 1 + 2; A[0] = x; }");
        assert!(e.message.contains("cannot infer"), "{e}");
    }

    #[test]
    fn redefinitions_are_rejected() {
        let e = compile_err("kernel k(i64* A, i64 i) { let i: i64 = 1; A[0] = i; }");
        assert!(e.message.contains("already defined"), "{e}");
        let e = compile_err("kernel a(i64* A) { } kernel a(i64* B) { }");
        assert!(e.message.contains("duplicated"), "{e}");
    }

    #[test]
    fn index_expressions_can_be_nonlinear() {
        let m = compile_ok("kernel k(i64* A, i64 i) { A[i*i] = 1; }");
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("mul i64 %i, %i"), "{text}");
    }
}
#[cfg(test)]
mod for_tests {
    use super::lower_program;
    use crate::parse;

    #[test]
    fn for_loops_unroll_at_compile_time() {
        let m = lower_program(
            &parse(
                "kernel k(f64* A, f64* B, i64 i) {
                     for o in 0..4 {
                         A[i+o] = B[i+o] * 2.0;
                     }
                 }",
            )
            .unwrap(),
        )
        .unwrap();
        lslp_ir::verify_module(&m).unwrap();
        let text = lslp_ir::print_function(&m.functions[0]);
        assert_eq!(text.matches("store f64").count(), 4, "{text}");
        assert_eq!(text.matches("fmul").count(), 4, "{text}");
    }

    #[test]
    fn loop_variable_folds_into_indices() {
        // `i + o` with o = 2 lowers to an add with the constant 2.
        let m = lower_program(
            &parse("kernel k(i64* A, i64 i) { for o in 2..3 { A[i+o] = o; } }").unwrap(),
        )
        .unwrap();
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("add i64 %i, 2"), "{text}");
        assert!(text.contains("store i64 2"), "{text}");
    }

    #[test]
    fn nested_loops_and_scoped_lets() {
        let m = lower_program(
            &parse(
                "kernel k(f64* A, f64* X, i64 i) {
                     for r in 0..2 {
                         for c in 0..2 {
                             let v = X[4*i + 2*r + c];
                             A[4*i + 2*r + c] = v * v;
                         }
                     }
                 }",
            )
            .unwrap(),
        )
        .unwrap();
        lslp_ir::verify_module(&m).unwrap();
        let text = lslp_ir::print_function(&m.functions[0]);
        assert_eq!(text.matches("store f64").count(), 4, "{text}");
    }

    #[test]
    fn loop_variable_leaves_scope() {
        let e = lower_program(
            &parse("kernel k(i64* A) { for o in 0..2 { A[o] = o; } A[9] = o; }").unwrap(),
        )
        .unwrap_err();
        assert!(e.message.contains("unknown variable"), "{e}");
    }

    #[test]
    fn shadowing_the_index_is_rejected() {
        let e = lower_program(
            &parse("kernel k(i64* A, i64 i) { for i in 0..2 { A[i] = 1; } }").unwrap(),
        )
        .unwrap_err();
        assert!(e.message.contains("already defined"), "{e}");
    }

    #[test]
    fn giant_ranges_are_rejected_at_parse_time() {
        let e = parse("kernel k(i64* A) { for o in 0..5000 { A[o] = 1; } }").unwrap_err();
        assert!(e.message.contains("1024"), "{e}");
    }

    #[test]
    fn for_bodies_without_control_flow_stay_straight_line() {
        let m = lower_program(
            &parse("kernel k(i64* A, i64 i) { for o in 0..2 { A[i+o] = o; } }").unwrap(),
        )
        .unwrap();
        assert!(m.functions[0].cfg().is_none());
    }

    #[test]
    fn for_kernels_vectorize_like_manual_ones() {
        // The unrolled loop is indistinguishable from hand-written lanes.
        let m = lower_program(
            &parse(
                "kernel k(f64* A, f64* B, f64* C, i64 i) {
                     for o in 0..4 {
                         A[i+o] = B[i+o] + C[i+o];
                     }
                 }",
            )
            .unwrap(),
        )
        .unwrap();
        // Just the lowering is checked here; the vectorizer integration is
        // covered by tests/pipeline.rs. Per lane: 3 index adds, 3 geps,
        // 2 loads, 1 fadd, 1 store = 10 instructions.
        assert_eq!(m.functions[0].body_len(), 4 * 10);
    }
}
#[cfg(test)]
mod cfg_tests {
    use super::lower_program;
    use crate::parse;
    use lslp_ir::Module;

    fn compile_ok(src: &str) -> Module {
        let m = lower_program(&parse(src).unwrap()).unwrap();
        lslp_ir::verify_module(&m).unwrap();
        m
    }

    fn compile_err(src: &str) -> crate::CompileError {
        match parse(src) {
            Err(e) => e,
            Ok(p) => lower_program(&p).unwrap_err(),
        }
    }

    #[test]
    fn loop_lowers_to_counted_loop_region() {
        let m = compile_ok(
            "kernel dot(f64* X, f64* Y, f64* OUT) {
                 let mut s: f64 = 0.0;
                 loop k in 0..8 {
                     s = s + X[k] * Y[k];
                 }
                 OUT[0] = s;
             }",
        );
        let text = lslp_ir::print_function(&m.functions[0]);
        // Header launches the region with the accumulator's init value;
        // the body carries it via a block parameter and `continue`; the
        // exit block receives the final value.
        assert!(text.contains("loop 8, bb1(0.0), bb2"), "{text}");
        assert!(text.contains("bb1(%k: i64, %s: f64):"), "{text}");
        assert!(text.contains("continue"), "{text}");
        assert!(text.contains("bb2(%s1: f64):"), "{text}");
        assert!(text.contains("store f64 %s1"), "{text}");
    }

    #[test]
    fn loop_without_carried_values_has_bare_edges() {
        let m = compile_ok(
            "kernel scale(f64* A, f64* B) {
                 loop k in 0..4 { A[k] = B[k] * 2.0; }
             }",
        );
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("loop 4, bb1, bb2"), "{text}");
        assert!(text.contains("continue\n"), "{text}");
    }

    #[test]
    fn if_expression_lowers_to_branch_diamond() {
        let m = compile_ok(
            "kernel clamp(f64* X, f64* OUT, i64 i) {
                 let v = X[i];
                 let c = if v < 0.0 { 0.0 } else { v };
                 OUT[i] = c;
             }",
        );
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("fcmp olt f64 %v, 0.0"), "{text}");
        assert!(text.contains("br %1, bb1, bb2"), "{text}");
        assert!(text.contains("jump bb3(0.0)"), "{text}");
        assert!(text.contains("jump bb3(%v)"), "{text}");
        assert!(text.contains("bb3(%2: f64):"), "{text}");
    }

    #[test]
    fn integer_comparisons_use_signed_predicates() {
        let m = compile_ok(
            "kernel k(i64* A, i64 i) {
                 A[0] = if i >= 3 { A[1] } else { A[2] };
             }",
        );
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("icmp sge i64 %i, 3"), "{text}");
    }

    #[test]
    fn branchy_loop_combines_regions() {
        let m = compile_ok(
            "kernel cl(f64* X, f64* OUT, i64 i) {
                 loop k in 0..4 {
                     let v = X[i+k];
                     let c = if v < 0.0 { 0.0 } else { v };
                     OUT[i+k] = c;
                 }
             }",
        );
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("loop 4"), "{text}");
        assert!(text.contains("br "), "{text}");
        assert!(text.contains("continue"), "{text}");
    }

    #[test]
    fn assignment_requires_mut() {
        let e = compile_err(
            "kernel k(f64* A) { let s: f64 = 0.0; loop i in 0..2 { s = s + A[i]; } A[0] = s; }",
        );
        assert!(e.message.contains("not declared `mut`"), "{e}");
        let e = compile_err("kernel k(i64* A, i64 i) { i = 3; A[0] = i; }");
        assert!(e.message.contains("not declared `mut`"), "{e}");
    }

    #[test]
    fn nested_runtime_loops_are_rejected() {
        let e =
            compile_err("kernel k(f64* A) { loop i in 0..2 { loop j in 0..2 { A[i+j] = 0.0; } } }");
        assert!(e.message.contains("nested `loop`"), "{e}");
    }

    #[test]
    fn loop_variable_and_locals_leave_scope() {
        let e = compile_err("kernel k(i64* A) { loop o in 0..2 { A[o] = o; } A[9] = o; }");
        assert!(e.message.contains("unknown variable"), "{e}");
        let e = compile_err(
            "kernel k(i64* A) { loop o in 0..2 { let t: i64 = o; A[o] = t; } A[9] = t; }",
        );
        assert!(e.message.contains("unknown variable"), "{e}");
    }

    #[test]
    fn for_inside_runtime_loop_unrolls_in_the_body() {
        let m = compile_ok(
            "kernel k(f64* A, f64* B) {
                 loop i in 0..2 {
                     for o in 0..2 { A[2*i+o] = B[2*i+o]; }
                 }
             }",
        );
        let text = lslp_ir::print_function(&m.functions[0]);
        assert_eq!(text.matches("store f64").count(), 2, "{text}");
        assert!(text.contains("loop 2"), "{text}");
    }

    #[test]
    fn straight_line_kernels_get_no_cfg() {
        let m = compile_ok("kernel k(f64* A, i64 i) { A[i] = A[i] * 2.0; }");
        assert!(m.functions[0].cfg().is_none());
        assert!(!lslp_ir::print_function(&m.functions[0]).contains("bb0"));
    }
}
