//! Type checking and lowering of SLC to IR.

use std::collections::HashMap;

use lslp_ir::{Function, InstAttr, Module, Opcode, ScalarType, Type, ValueId};

use crate::ast::{BinOp, Expr, Kernel, Param, ParamType, Program, Stmt};
use crate::CompileError;

struct Lowerer {
    f: Function,
    arrays: HashMap<String, (ValueId, ScalarType)>,
    scalars: HashMap<String, (ValueId, ScalarType)>,
}

fn err(pos: (usize, usize), message: impl Into<String>) -> CompileError {
    CompileError::new(pos.0, pos.1, message)
}

impl Lowerer {
    /// Bottom-up type inference; literals are `None` (they adapt).
    fn infer(&self, e: &Expr) -> Result<Option<ScalarType>, CompileError> {
        Ok(match e {
            Expr::IntLit { .. } | Expr::FloatLit { .. } => None,
            Expr::Var { name, pos } => Some(
                self.scalars
                    .get(name)
                    .ok_or_else(|| err(*pos, format!("unknown variable `{name}`")))?
                    .1,
            ),
            Expr::Index { array, pos, .. } => Some(
                self.arrays
                    .get(array)
                    .ok_or_else(|| err(*pos, format!("unknown array `{array}`")))?
                    .1,
            ),
            Expr::Neg { expr, .. } => self.infer(expr)?,
            Expr::Cast { ty, .. } => Some(*ty),
            Expr::Binary { lhs, rhs, .. } => match self.infer(lhs)? {
                Some(t) => Some(t),
                None => self.infer(rhs)?,
            },
        })
    }

    fn binop_opcode(
        op: BinOp,
        ty: ScalarType,
        pos: (usize, usize),
    ) -> Result<Opcode, CompileError> {
        let float = ty.is_float();
        let oc = match (op, float) {
            (BinOp::Add, false) => Opcode::Add,
            (BinOp::Add, true) => Opcode::FAdd,
            (BinOp::Sub, false) => Opcode::Sub,
            (BinOp::Sub, true) => Opcode::FSub,
            (BinOp::Mul, false) => Opcode::Mul,
            (BinOp::Mul, true) => Opcode::FMul,
            (BinOp::Div, false) => Opcode::SDiv,
            (BinOp::Div, true) => Opcode::FDiv,
            (BinOp::Rem, false) => Opcode::SRem,
            (BinOp::And, false) => Opcode::And,
            (BinOp::Or, false) => Opcode::Or,
            (BinOp::Xor, false) => Opcode::Xor,
            (BinOp::Shl, false) => Opcode::Shl,
            (BinOp::Shr, false) => Opcode::AShr,
            (BinOp::LShr, false) => Opcode::LShr,
            (other, true) => {
                return Err(err(pos, format!("operator {other:?} is not defined on {ty}")))
            }
        };
        Ok(oc)
    }

    /// Lower `e`, coercing literals to `want`; non-literals must match.
    fn lower_expr(&mut self, e: &Expr, want: ScalarType) -> Result<ValueId, CompileError> {
        match e {
            Expr::IntLit { value, pos } => {
                if want.is_int() {
                    Ok(self.f.const_int(want, *value))
                } else if want.is_float() {
                    Ok(self.f.const_float(want, *value as f64))
                } else {
                    Err(err(*pos, "integer literal in pointer context"))
                }
            }
            Expr::FloatLit { value, pos } => {
                if want.is_float() {
                    Ok(self.f.const_float(want, *value))
                } else {
                    Err(err(*pos, format!("float literal where {want} expected")))
                }
            }
            Expr::Var { name, pos } => {
                let &(id, ty) = self
                    .scalars
                    .get(name)
                    .ok_or_else(|| err(*pos, format!("unknown variable `{name}`")))?;
                if ty != want {
                    return Err(err(*pos, format!("`{name}` has type {ty}, expected {want}")));
                }
                Ok(id)
            }
            Expr::Index { array, index, pos } => {
                let &(base, elem) = self
                    .arrays
                    .get(array)
                    .ok_or_else(|| err(*pos, format!("unknown array `{array}`")))?;
                if elem != want {
                    return Err(err(
                        *pos,
                        format!("`{array}` has element type {elem}, expected {want}"),
                    ));
                }
                let idx = self.lower_expr(index, ScalarType::I64)?;
                let gep = self.f.push(
                    Opcode::Gep,
                    Type::PTR,
                    vec![base, idx],
                    InstAttr::ElemBytes(elem.bytes()),
                );
                Ok(self.f.push(Opcode::Load, Type::Scalar(elem), vec![gep], InstAttr::None))
            }
            Expr::Neg { expr, pos } => {
                let v = self.lower_expr(expr, want)?;
                let (zero, op) = if want.is_float() {
                    (self.f.const_float(want, 0.0), Opcode::FSub)
                } else if want.is_int() {
                    (self.f.const_int(want, 0), Opcode::Sub)
                } else {
                    return Err(err(*pos, "cannot negate a pointer"));
                };
                Ok(self.f.push(op, Type::Scalar(want), vec![zero, v], InstAttr::None))
            }
            Expr::Cast { expr, ty, pos } => {
                if *ty != want {
                    return Err(err(*pos, format!("cast to {ty} where {want} expected")));
                }
                let Some(src) = self.infer(expr)? else {
                    // A literal cast (`2 as f64`) lowers the literal
                    // directly at the target type.
                    return self.lower_expr(expr, want);
                };
                let v = self.lower_expr(expr, src)?;
                if src == want {
                    return Ok(v);
                }
                let op = match (src.is_int(), want.is_int()) {
                    (true, true) if src.bits() < want.bits() => Opcode::Sext,
                    (true, true) => Opcode::Trunc,
                    (true, false) => Opcode::Sitofp,
                    (false, true) => Opcode::Fptosi,
                    (false, false) if src.bits() < want.bits() => Opcode::Fpext,
                    (false, false) => Opcode::Fptrunc,
                };
                Ok(self.f.push(op, Type::Scalar(want), vec![v], InstAttr::None))
            }
            Expr::Binary { op, lhs, rhs, pos } => {
                let oc = Self::binop_opcode(*op, want, *pos)?;
                let l = self.lower_expr(lhs, want)?;
                let r = self.lower_expr(rhs, want)?;
                Ok(self.f.push(oc, Type::Scalar(want), vec![l, r], InstAttr::None))
            }
        }
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::For { var, start, end, body, pos } => {
                if self.scalars.contains_key(var) || self.arrays.contains_key(var) {
                    return Err(err(*pos, format!("`{var}` is already defined")));
                }
                for k in *start..*end {
                    // Bind the loop variable to the iteration constant; the
                    // body is fully unrolled (SLC has no runtime control
                    // flow — this is how multi-lane kernels are written
                    // compactly).
                    let c = self.f.const_i64(k);
                    self.scalars.insert(var.clone(), (c, ScalarType::I64));
                    // Body-local `let`s are scoped per iteration.
                    let saved: Vec<String> = self.scalars.keys().cloned().collect();
                    for stmt in body {
                        self.lower_stmt(stmt)?;
                    }
                    self.scalars.retain(|k2, _| saved.contains(k2));
                    self.scalars.remove(var);
                }
                Ok(())
            }
            Stmt::Let { name, ty, expr, pos } => {
                if self.scalars.contains_key(name) || self.arrays.contains_key(name) {
                    return Err(err(*pos, format!("`{name}` is already defined")));
                }
                let want = match ty {
                    Some(t) => *t,
                    None => self.infer(expr)?.ok_or_else(|| {
                        err(*pos, format!("cannot infer type of `{name}`; add `: ty`"))
                    })?,
                };
                let v = self.lower_expr(expr, want)?;
                // Name the value for readable IR dumps (constants excluded:
                // they may be shared).
                if self.f.is_inst(v) {
                    self.f.set_value_name(v, name.clone());
                }
                self.scalars.insert(name.clone(), (v, want));
                Ok(())
            }
            Stmt::Assign { array, index, value, pos } => {
                let &(base, elem) = self
                    .arrays
                    .get(array)
                    .ok_or_else(|| err(*pos, format!("unknown array `{array}`")))?;
                let val = self.lower_expr(value, elem)?;
                let idx = self.lower_expr(index, ScalarType::I64)?;
                let gep = self.f.push(
                    Opcode::Gep,
                    Type::PTR,
                    vec![base, idx],
                    InstAttr::ElemBytes(elem.bytes()),
                );
                self.f.push(Opcode::Store, Type::Void, vec![val, gep], InstAttr::None);
                Ok(())
            }
        }
    }
}

fn lower_kernel(k: &Kernel) -> Result<Function, CompileError> {
    let mut lw = Lowerer {
        f: Function::new(k.name.clone()),
        arrays: HashMap::new(),
        scalars: HashMap::new(),
    };
    for Param { name, ty } in &k.params {
        if lw.scalars.contains_key(name) || lw.arrays.contains_key(name) {
            return Err(CompileError::new(1, 1, format!("parameter `{name}` is duplicated")));
        }
        match ty {
            ParamType::Pointer(elem) => {
                let id = lw.f.add_param(name.clone(), Type::PTR);
                lw.arrays.insert(name.clone(), (id, *elem));
            }
            ParamType::Scalar(t) => {
                let id = lw.f.add_param(name.clone(), Type::Scalar(*t));
                lw.scalars.insert(name.clone(), (id, *t));
            }
        }
    }
    for s in &k.body {
        lw.lower_stmt(s)?;
    }
    Ok(lw.f)
}

/// Lower a parsed program to an IR module.
pub fn lower_program(p: &Program) -> Result<Module, CompileError> {
    let mut m = Module::new();
    for k in &p.kernels {
        if m.function(&k.name).is_some() {
            return Err(CompileError::new(1, 1, format!("kernel `{}` is duplicated", k.name)));
        }
        m.functions.push(lower_kernel(k)?);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn compile_ok(src: &str) -> Module {
        let m = lower_program(&parse(src).unwrap()).unwrap();
        lslp_ir::verify_module(&m).unwrap();
        m
    }

    fn compile_err(src: &str) -> CompileError {
        match parse(src) {
            Err(e) => e,
            Ok(p) => lower_program(&p).unwrap_err(),
        }
    }

    #[test]
    fn lowers_motivation_loads_shape() {
        let m = compile_ok(
            "kernel m(i64* A, i64* B, i64* C, i64 i) {
                 A[i+0] = (B[i+0] << 1) & (C[i+0] << 2);
                 A[i+1] = (C[i+1] << 3) & (B[i+1] << 4);
             }",
        );
        let text = lslp_ir::print_function(&m.functions[0]);
        assert_eq!(text.matches("shl i64").count(), 4, "{text}");
        assert_eq!(text.matches("and i64").count(), 2, "{text}");
        assert_eq!(text.matches("store i64").count(), 2, "{text}");
        assert_eq!(text.matches("load i64").count(), 4, "{text}");
    }

    #[test]
    fn int_literals_adapt_to_float_context() {
        let m = compile_ok("kernel k(f64* A, i64 i) { A[i] = A[i] + 2; }");
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("fadd f64"), "{text}");
        assert!(text.contains("2.0"), "{text}");
    }

    #[test]
    fn let_bindings_are_named_and_typed() {
        let m = compile_ok(
            "kernel k(f64* A, i64 i) {
                 let sq = A[i] * A[i];
                 A[i] = sq + sq;
             }",
        );
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("%sq = fmul f64"), "{text}");
    }

    #[test]
    fn unary_negation_lowers_to_sub_from_zero() {
        let m = compile_ok("kernel k(f64* A, i64 i) { A[i] = -A[i]; }");
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("fsub f64 0.0"), "{text}");
        let m = compile_ok("kernel k(i64* A, i64 i) { A[i] = -A[i]; }");
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("sub i64 0"), "{text}");
    }

    #[test]
    fn shift_variants_lower_distinctly() {
        let m = compile_ok(
            "kernel k(i64* A, i64 i) { A[i] = (A[i] << 1) + (A[i] >> 2) + (A[i] >>> 3); }",
        );
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("shl i64"), "{text}");
        assert!(text.contains("ashr i64"), "{text}");
        assert!(text.contains("lshr i64"), "{text}");
    }

    #[test]
    fn type_errors_are_reported() {
        let e = compile_err("kernel k(f64* A, i64 i) { A[i] = A[i] & 1; }");
        assert!(e.message.contains("not defined on f64"), "{e}");
        let e = compile_err("kernel k(i64* A, i64 i) { A[i] = 1.5; }");
        assert!(e.message.contains("float literal"), "{e}");
        let e = compile_err("kernel k(f64* A, f32* B, i64 i) { A[i] = B[i]; }");
        assert!(e.message.contains("element type f32"), "{e}");
    }

    #[test]
    fn unknown_names_are_reported() {
        let e = compile_err("kernel k(i64* A, i64 i) { A[i] = nope; }");
        assert!(e.message.contains("unknown variable"), "{e}");
        let e = compile_err("kernel k(i64* A, i64 i) { B[i] = 1; }");
        assert!(e.message.contains("unknown array"), "{e}");
    }

    #[test]
    fn inference_failure_requests_annotation() {
        let e = compile_err("kernel k(i64* A) { let x = 1 + 2; A[0] = x; }");
        assert!(e.message.contains("cannot infer"), "{e}");
    }

    #[test]
    fn redefinitions_are_rejected() {
        let e = compile_err("kernel k(i64* A, i64 i) { let i: i64 = 1; A[0] = i; }");
        assert!(e.message.contains("already defined"), "{e}");
        let e = compile_err("kernel a(i64* A) { } kernel a(i64* B) { }");
        assert!(e.message.contains("duplicated"), "{e}");
    }

    #[test]
    fn index_expressions_can_be_nonlinear() {
        let m = compile_ok("kernel k(i64* A, i64 i) { A[i*i] = 1; }");
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("mul i64 %i, %i"), "{text}");
    }
}
#[cfg(test)]
mod for_tests {
    use super::lower_program;
    use crate::parse;

    #[test]
    fn for_loops_unroll_at_compile_time() {
        let m = lower_program(
            &parse(
                "kernel k(f64* A, f64* B, i64 i) {
                     for o in 0..4 {
                         A[i+o] = B[i+o] * 2.0;
                     }
                 }",
            )
            .unwrap(),
        )
        .unwrap();
        lslp_ir::verify_module(&m).unwrap();
        let text = lslp_ir::print_function(&m.functions[0]);
        assert_eq!(text.matches("store f64").count(), 4, "{text}");
        assert_eq!(text.matches("fmul").count(), 4, "{text}");
    }

    #[test]
    fn loop_variable_folds_into_indices() {
        // `i + o` with o = 2 lowers to an add with the constant 2.
        let m = lower_program(
            &parse("kernel k(i64* A, i64 i) { for o in 2..3 { A[i+o] = o; } }").unwrap(),
        )
        .unwrap();
        let text = lslp_ir::print_function(&m.functions[0]);
        assert!(text.contains("add i64 %i, 2"), "{text}");
        assert!(text.contains("store i64 2"), "{text}");
    }

    #[test]
    fn nested_loops_and_scoped_lets() {
        let m = lower_program(
            &parse(
                "kernel k(f64* A, f64* X, i64 i) {
                     for r in 0..2 {
                         for c in 0..2 {
                             let v = X[4*i + 2*r + c];
                             A[4*i + 2*r + c] = v * v;
                         }
                     }
                 }",
            )
            .unwrap(),
        )
        .unwrap();
        lslp_ir::verify_module(&m).unwrap();
        let text = lslp_ir::print_function(&m.functions[0]);
        assert_eq!(text.matches("store f64").count(), 4, "{text}");
    }

    #[test]
    fn loop_variable_leaves_scope() {
        let e = lower_program(
            &parse("kernel k(i64* A) { for o in 0..2 { A[o] = o; } A[9] = o; }").unwrap(),
        )
        .unwrap_err();
        assert!(e.message.contains("unknown variable"), "{e}");
    }

    #[test]
    fn shadowing_the_index_is_rejected() {
        let e = lower_program(
            &parse("kernel k(i64* A, i64 i) { for i in 0..2 { A[i] = 1; } }").unwrap(),
        )
        .unwrap_err();
        assert!(e.message.contains("already defined"), "{e}");
    }

    #[test]
    fn giant_ranges_are_rejected_at_parse_time() {
        let e = parse("kernel k(i64* A) { for o in 0..5000 { A[o] = 1; } }").unwrap_err();
        assert!(e.message.contains("1024"), "{e}");
    }

    #[test]
    fn for_kernels_vectorize_like_manual_ones() {
        // The unrolled loop is indistinguishable from hand-written lanes.
        let m = lower_program(
            &parse(
                "kernel k(f64* A, f64* B, f64* C, i64 i) {
                     for o in 0..4 {
                         A[i+o] = B[i+o] + C[i+o];
                     }
                 }",
            )
            .unwrap(),
        )
        .unwrap();
        // Just the lowering is checked here; the vectorizer integration is
        // covered by tests/pipeline.rs. Per lane: 3 index adds, 3 geps,
        // 2 loads, 1 fadd, 1 store = 10 instructions.
        assert_eq!(m.functions[0].body_len(), 4 * 10);
    }
}
