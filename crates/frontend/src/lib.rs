//! # lslp-frontend
//!
//! **SLC** ("straight-line C") — a miniature C-like kernel language that
//! lowers to [`lslp_ir`]. It exists so the evaluation kernels of the LSLP
//! reproduction can be written in the same shape as the paper's C sources:
//!
//! ```text
//! kernel motivation_loads(i64* A, i64* B, i64* C, i64 i) {
//!     A[i+0] = (B[i+0] << 1) & (C[i+0] << 2);
//!     A[i+1] = (C[i+1] << 3) & (B[i+1] << 4);
//! }
//! ```
//!
//! The language is deliberately small: straight-line statements only
//! (`let` bindings and array-element assignments), C operator precedence,
//! signed integer (`i8`–`i64`) and float (`f32`, `f64`) arithmetic, and
//! pointer parameters indexed with arbitrary affine (or not) expressions.
//!
//! ```
//! let m = lslp_frontend::compile(
//!     "kernel scale(f64* A, f64* B, i64 i) { A[i] = B[i] * 2.0; }",
//! )?;
//! assert_eq!(m.functions[0].name(), "scale");
//! # Ok::<(), lslp_frontend::CompileError>(())
//! ```

#![warn(missing_docs)]

mod ast;
mod lex;
mod lower;
mod parse;

use std::error::Error;
use std::fmt;

use lslp_ir::Module;

pub use ast::{BinOp, Expr, Kernel, Param, ParamType, Program, Stmt};

/// A frontend failure (lexing, parsing, or type checking) with position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompileError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    pub(crate) fn new(line: usize, col: usize, message: impl Into<String>) -> CompileError {
        CompileError { line, col, message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slc error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for CompileError {}

/// Parse an SLC source file into its AST.
///
/// # Errors
///
/// Returns a [`CompileError`] with position information on malformed input.
pub fn parse(src: &str) -> Result<Program, CompileError> {
    parse::parse_program(src)
}

/// Compile SLC source to an IR module (one function per kernel).
///
/// The output is verified before being returned.
///
/// # Errors
///
/// Returns a [`CompileError`] for syntax or type errors.
pub fn compile(src: &str) -> Result<Module, CompileError> {
    let program = parse(src)?;
    let m = lower::lower_program(&program)?;
    if let Err(e) = lslp_ir::verify_module(&m) {
        // A verifier failure out of the lowerer is a frontend bug; surface
        // it as an internal error rather than panicking.
        return Err(CompileError::new(0, 0, format!("internal: lowered IR invalid: {e}")));
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile() {
        let m = compile(
            "kernel k(f64* A, f64* B, i64 i) {
                 let t: f64 = B[i] + 1.0;
                 A[i] = t * t;
             }",
        )
        .expect("compiles");
        let f = &m.functions[0];
        assert_eq!(f.name(), "k");
        assert_eq!(f.params().len(), 3);
        let text = lslp_ir::print_function(f);
        assert!(text.contains("fmul"), "{text}");
        assert!(text.contains("store f64"), "{text}");
    }

    #[test]
    fn errors_carry_positions() {
        let err = compile("kernel k(f64* A, i64 i) {\n  A[i] = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("slc error"));
    }
}
