//! The SLC lexer.

use crate::CompileError;

/// A token with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum TokKind {
    Ident(String),
    Int(i64),
    Float(f64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    LShr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Equals,
    DotDot,
    Eof,
}

impl std::fmt::Display for TokKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokKind::Ident(s) => write!(f, "`{s}`"),
            TokKind::Int(v) => write!(f, "`{v}`"),
            TokKind::Float(v) => write!(f, "`{v}`"),
            TokKind::LParen => f.write_str("`(`"),
            TokKind::RParen => f.write_str("`)`"),
            TokKind::LBrace => f.write_str("`{`"),
            TokKind::RBrace => f.write_str("`}`"),
            TokKind::LBracket => f.write_str("`[`"),
            TokKind::RBracket => f.write_str("`]`"),
            TokKind::Comma => f.write_str("`,`"),
            TokKind::Semi => f.write_str("`;`"),
            TokKind::Colon => f.write_str("`:`"),
            TokKind::Star => f.write_str("`*`"),
            TokKind::Plus => f.write_str("`+`"),
            TokKind::Minus => f.write_str("`-`"),
            TokKind::Slash => f.write_str("`/`"),
            TokKind::Percent => f.write_str("`%`"),
            TokKind::Amp => f.write_str("`&`"),
            TokKind::Pipe => f.write_str("`|`"),
            TokKind::Caret => f.write_str("`^`"),
            TokKind::Shl => f.write_str("`<<`"),
            TokKind::Shr => f.write_str("`>>`"),
            TokKind::LShr => f.write_str("`>>>`"),
            TokKind::Lt => f.write_str("`<`"),
            TokKind::Le => f.write_str("`<=`"),
            TokKind::Gt => f.write_str("`>`"),
            TokKind::Ge => f.write_str("`>=`"),
            TokKind::EqEq => f.write_str("`==`"),
            TokKind::Ne => f.write_str("`!=`"),
            TokKind::Equals => f.write_str("`=`"),
            TokKind::DotDot => f.write_str("`..`"),
            TokKind::Eof => f.write_str("end of input"),
        }
    }
}

/// Tokenize SLC source. `//` comments run to end of line.
pub fn tokenize(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let (mut i, mut line, mut col) = (0usize, 1usize, 1usize);
    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let kind = match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                bump!();
                continue;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
                continue;
            }
            b'(' => {
                bump!();
                TokKind::LParen
            }
            b')' => {
                bump!();
                TokKind::RParen
            }
            b'{' => {
                bump!();
                TokKind::LBrace
            }
            b'}' => {
                bump!();
                TokKind::RBrace
            }
            b'[' => {
                bump!();
                TokKind::LBracket
            }
            b']' => {
                bump!();
                TokKind::RBracket
            }
            b',' => {
                bump!();
                TokKind::Comma
            }
            b';' => {
                bump!();
                TokKind::Semi
            }
            b':' => {
                bump!();
                TokKind::Colon
            }
            b'*' => {
                bump!();
                TokKind::Star
            }
            b'+' => {
                bump!();
                TokKind::Plus
            }
            b'-' => {
                bump!();
                TokKind::Minus
            }
            b'/' => {
                bump!();
                TokKind::Slash
            }
            b'%' => {
                bump!();
                TokKind::Percent
            }
            b'&' => {
                bump!();
                TokKind::Amp
            }
            b'|' => {
                bump!();
                TokKind::Pipe
            }
            b'^' => {
                bump!();
                TokKind::Caret
            }
            b'=' if bytes.get(i + 1) == Some(&b'=') => {
                bump!();
                bump!();
                TokKind::EqEq
            }
            b'=' => {
                bump!();
                TokKind::Equals
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                bump!();
                bump!();
                TokKind::Ne
            }
            b'.' if bytes.get(i + 1) == Some(&b'.') => {
                bump!();
                bump!();
                TokKind::DotDot
            }
            b'<' if bytes.get(i + 1) == Some(&b'<') => {
                bump!();
                bump!();
                TokKind::Shl
            }
            b'<' if bytes.get(i + 1) == Some(&b'=') => {
                bump!();
                bump!();
                TokKind::Le
            }
            b'<' => {
                bump!();
                TokKind::Lt
            }
            b'>' if bytes.get(i + 1) == Some(&b'>') => {
                bump!();
                bump!();
                if bytes.get(i) == Some(&b'>') {
                    bump!();
                    TokKind::LShr
                } else {
                    TokKind::Shr
                }
            }
            b'>' if bytes.get(i + 1) == Some(&b'=') => {
                bump!();
                bump!();
                TokKind::Ge
            }
            b'>' => {
                bump!();
                TokKind::Gt
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' | b'_' => bump!(),
                        b'x' | b'X' if i == start + 1 && bytes[start] == b'0' => bump!(),
                        b'a'..=b'f' | b'A'..=b'F'
                            if src[start..].starts_with("0x") || src[start..].starts_with("0X") =>
                        {
                            bump!()
                        }
                        b'.' if !is_float && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                            is_float = true;
                            bump!();
                        }
                        b'e' | b'E'
                            if !src[start..].starts_with("0x")
                                && bytes.get(i + 1).is_some_and(|&d| {
                                    d.is_ascii_digit() || d == b'-' || d == b'+'
                                }) =>
                        {
                            is_float = true;
                            bump!();
                            bump!();
                        }
                        _ => break,
                    }
                }
                let text: String = src[start..i].chars().filter(|&ch| ch != '_').collect();
                if is_float {
                    TokKind::Float(text.parse().map_err(|e| {
                        CompileError::new(tline, tcol, format!("bad float `{text}`: {e}"))
                    })?)
                } else if let Some(hex) =
                    text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"))
                {
                    TokKind::Int(i64::from_str_radix(hex, 16).map_err(|e| {
                        CompileError::new(tline, tcol, format!("bad hex `{text}`: {e}"))
                    })?)
                } else {
                    TokKind::Int(text.parse().map_err(|e| {
                        CompileError::new(tline, tcol, format!("bad integer `{text}`: {e}"))
                    })?)
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                TokKind::Ident(src[start..i].to_string())
            }
            other => {
                return Err(CompileError::new(
                    tline,
                    tcol,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        toks.push(Token { kind, line: tline, col: tcol });
    }
    toks.push(Token { kind: TokKind::Eof, line, col });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("a << 1 >> 2 >>> 3 & | ^"),
            vec![
                TokKind::Ident("a".into()),
                TokKind::Shl,
                TokKind::Int(1),
                TokKind::Shr,
                TokKind::Int(2),
                TokKind::LShr,
                TokKind::Int(3),
                TokKind::Amp,
                TokKind::Pipe,
                TokKind::Caret,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 0x11 3.5 1e-3 2.5e2 1_000"),
            vec![
                TokKind::Int(42),
                TokKind::Int(0x11),
                TokKind::Float(3.5),
                TokKind::Float(1e-3),
                TokKind::Float(2.5e2),
                TokKind::Int(1000),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn comparisons_disambiguate_from_shifts() {
        assert_eq!(
            kinds("a < b <= c > d >= e == f != g << h >> i"),
            vec![
                TokKind::Ident("a".into()),
                TokKind::Lt,
                TokKind::Ident("b".into()),
                TokKind::Le,
                TokKind::Ident("c".into()),
                TokKind::Gt,
                TokKind::Ident("d".into()),
                TokKind::Ge,
                TokKind::Ident("e".into()),
                TokKind::EqEq,
                TokKind::Ident("f".into()),
                TokKind::Ne,
                TokKind::Ident("g".into()),
                TokKind::Shl,
                TokKind::Ident("h".into()),
                TokKind::Shr,
                TokKind::Ident("i".into()),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_positions() {
        let toks = tokenize("a // hi\n  b").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].kind, TokKind::Ident("b".into()));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn rejects_garbage() {
        let err = tokenize("a $ b").unwrap_err();
        assert_eq!((err.line, err.col), (1, 3));
    }

    #[test]
    fn dot_without_digit_is_not_float() {
        // `1.x` is invalid at parse level but lexes as Int(1) then garbage.
        let err = tokenize("1.x").unwrap_err();
        assert!(err.message.contains("unexpected character"), "{err}");
    }
}
