//! Symbolic address analysis ("SCEV-lite").
//!
//! Every pointer reachable through `gep` chains is decomposed into
//! `base + Σ coeffᵢ·varᵢ + const` (all in bytes). Two memory accesses are
//! *consecutive* when they share the base and variable terms and their
//! constant offsets differ by exactly the access size — the check the SLP
//! seed collection and load grouping rely on.

use std::collections::HashMap;

use lslp_ir::{Function, Opcode, ValueId};

/// A linear integer expression `Σ coeffᵢ·varᵢ + konst` with opaque variables.
///
/// Terms are kept sorted by variable handle with no zero coefficients, so
/// structural equality is semantic equality of the symbolic form.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LinExpr {
    /// `(variable, coefficient)` pairs, sorted by variable, coefficients
    /// non-zero.
    pub terms: Vec<(ValueId, i64)>,
    /// The constant part.
    pub konst: i64,
}

impl LinExpr {
    /// The constant expression `k`.
    pub fn constant(k: i64) -> LinExpr {
        LinExpr { terms: Vec::new(), konst: k }
    }

    /// The single-variable expression `v`.
    pub fn var(v: ValueId) -> LinExpr {
        LinExpr { terms: vec![(v, 1)], konst: 0 }
    }

    fn normalize(mut self) -> LinExpr {
        self.terms.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(ValueId, i64)> = Vec::with_capacity(self.terms.len());
        for (v, c) in self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc = lc.wrapping_add(c),
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c != 0);
        self.terms = out;
        self
    }

    /// `self + other`.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut terms = self.terms.clone();
        terms.extend_from_slice(&other.terms);
        LinExpr { terms, konst: self.konst.wrapping_add(other.konst) }.normalize()
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().map(|&(v, c)| (v, c.wrapping_neg())));
        LinExpr { terms, konst: self.konst.wrapping_sub(other.konst) }.normalize()
    }

    /// `self * k`.
    pub fn scale(&self, k: i64) -> LinExpr {
        LinExpr {
            terms: self.terms.iter().map(|&(v, c)| (v, c.wrapping_mul(k))).collect(),
            konst: self.konst.wrapping_mul(k),
        }
        .normalize()
    }

    /// Whether the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

/// A symbolic byte address: an opaque `base` pointer plus a [`LinExpr`]
/// byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AddrExpr {
    /// The pointer origin (typically a pointer parameter).
    pub base: ValueId,
    /// Byte offset from `base`.
    pub offset: LinExpr,
}

impl AddrExpr {
    /// The constant byte distance `other - self`, when both addresses share
    /// the base and the variable terms. `None` means "unknown distance".
    pub fn distance_to(&self, other: &AddrExpr) -> Option<i64> {
        if self.base != other.base {
            return None;
        }
        let d = other.offset.sub(&self.offset);
        d.is_constant().then_some(d.konst)
    }
}

/// One analyzed memory access: its address and size in bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemLoc {
    /// The symbolic address of the first byte.
    pub addr: AddrExpr,
    /// Access width in bytes.
    pub bytes: u32,
}

impl MemLoc {
    /// Whether `other` starts exactly where `self` ends (same symbolic
    /// region) — the "consecutive access" test of the paper.
    pub fn consecutive(&self, other: &MemLoc) -> bool {
        self.addr.distance_to(&other.addr) == Some(self.bytes as i64)
    }
}

/// Address analysis results for every load and store of a function.
///
/// Snapshot semantics: positions and addresses reflect the function at
/// [`AddrInfo::analyze`] time.
#[derive(Clone, Debug)]
pub struct AddrInfo {
    locs: HashMap<ValueId, MemLoc>,
}

/// Bound on the expression-walk depth; beyond it addresses become opaque.
const MAX_DEPTH: u32 = 32;

fn linearize(f: &Function, v: ValueId, depth: u32) -> LinExpr {
    if depth == 0 {
        return LinExpr::var(v);
    }
    if let Some(c) = f.as_const(v).and_then(|c| c.as_int()) {
        return LinExpr::constant(c);
    }
    let Some(inst) = f.inst(v) else {
        return LinExpr::var(v);
    };
    let args = &inst.args;
    match inst.op {
        Opcode::Add => linearize(f, args[0], depth - 1).add(&linearize(f, args[1], depth - 1)),
        Opcode::Sub => linearize(f, args[0], depth - 1).sub(&linearize(f, args[1], depth - 1)),
        Opcode::Mul => {
            let a = linearize(f, args[0], depth - 1);
            let b = linearize(f, args[1], depth - 1);
            if a.is_constant() {
                b.scale(a.konst)
            } else if b.is_constant() {
                a.scale(b.konst)
            } else {
                LinExpr::var(v)
            }
        }
        Opcode::Shl => {
            let b = linearize(f, args[1], depth - 1);
            if b.is_constant() && (0..63).contains(&b.konst) {
                linearize(f, args[0], depth - 1).scale(1i64 << b.konst)
            } else {
                LinExpr::var(v)
            }
        }
        _ => LinExpr::var(v),
    }
}

fn pointer_addr(f: &Function, ptr: ValueId, depth: u32) -> AddrExpr {
    if depth == 0 {
        return AddrExpr { base: ptr, offset: LinExpr::constant(0) };
    }
    match f.inst(ptr) {
        Some(inst) if inst.op == Opcode::Gep => {
            let lslp_ir::InstAttr::ElemBytes(elem) = inst.attr else {
                unreachable!("gep without stride");
            };
            let base = pointer_addr(f, inst.args[0], depth - 1);
            let idx = linearize(f, inst.args[1], MAX_DEPTH).scale(elem as i64);
            AddrExpr { base: base.base, offset: base.offset.add(&idx) }
        }
        _ => AddrExpr { base: ptr, offset: LinExpr::constant(0) },
    }
}

impl AddrInfo {
    /// Analyze every load and store of the function body.
    pub fn analyze(f: &Function) -> AddrInfo {
        let mut locs = HashMap::new();
        for (_, id, inst) in f.iter_body() {
            let (ptr, ty) = match inst.op {
                Opcode::Load => (inst.args[0], inst.ty),
                Opcode::Store => (inst.args[1], f.ty(inst.args[0])),
                _ => continue,
            };
            let addr = pointer_addr(f, ptr, MAX_DEPTH);
            locs.insert(id, MemLoc { addr, bytes: ty.bytes() });
        }
        AddrInfo { locs }
    }

    /// The analyzed location of a load/store, if `v` is one.
    pub fn loc(&self, v: ValueId) -> Option<&MemLoc> {
        self.locs.get(&v)
    }

    /// Whether accesses `a` then `b` are consecutive (`b` starts where `a`
    /// ends). Returns `false` when either is unanalyzed.
    pub fn consecutive(&self, a: ValueId, b: ValueId) -> bool {
        match (self.loc(a), self.loc(b)) {
            (Some(la), Some(lb)) => la.consecutive(lb),
            _ => false,
        }
    }

    /// The constant byte distance from access `a` to access `b`, when known.
    pub fn distance(&self, a: ValueId, b: ValueId) -> Option<i64> {
        self.loc(a)?.addr.distance_to(&self.loc(b)?.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, ScalarType, Type};

    /// Builds `load A[i+o]` for each given offset and returns the load ids.
    fn loads_at(offsets: &[i64]) -> (Function, Vec<ValueId>) {
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut ids = Vec::new();
        for &o in offsets {
            let mut b = FunctionBuilder::new(&mut f);
            let off = b.func().const_i64(o);
            let idx = b.add(i, off);
            let p = b.gep(a, idx, 8);
            ids.push(b.load(Type::F64, p));
        }
        (f, ids)
    }

    #[test]
    fn consecutive_loads_detected() {
        let (f, ids) = loads_at(&[0, 1, 2, 4]);
        let ai = AddrInfo::analyze(&f);
        assert!(ai.consecutive(ids[0], ids[1]));
        assert!(ai.consecutive(ids[1], ids[2]));
        assert!(!ai.consecutive(ids[2], ids[3]));
        assert!(!ai.consecutive(ids[1], ids[0]));
        assert_eq!(ai.distance(ids[0], ids[3]), Some(32));
    }

    #[test]
    fn different_bases_have_unknown_distance() {
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let b_ = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let pa = b.gep(a, i, 8);
        let pb = b.gep(b_, i, 8);
        let la = b.load(Type::F64, pa);
        let lb = b.load(Type::F64, pb);
        let ai = AddrInfo::analyze(&f);
        assert_eq!(ai.distance(la, lb), None);
        assert!(!ai.consecutive(la, lb));
    }

    #[test]
    fn scaled_and_shifted_indices_linearize() {
        // A[(i*2 + 3)] and A[(i<<1) + 4] with 4-byte elements: distance 4.
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let two = b.func().const_i64(2);
        let three = b.func().const_i64(3);
        let one = b.func().const_i64(1);
        let four = b.func().const_i64(4);
        let m = b.mul(i, two);
        let idx1 = b.add(m, three);
        let p1 = b.gep(a, idx1, 4);
        let l1 = b.load(Type::Scalar(ScalarType::I32), p1);
        let sh = b.shl(i, one);
        let idx2 = b.add(sh, four);
        let p2 = b.gep(a, idx2, 4);
        let l2 = b.load(Type::Scalar(ScalarType::I32), p2);
        let ai = AddrInfo::analyze(&f);
        assert_eq!(ai.distance(l1, l2), Some(4));
        assert!(ai.consecutive(l1, l2));
    }

    #[test]
    fn nested_geps_accumulate() {
        // gep(gep(A, i, 8), 1, 8) == A + 8i + 8.
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let p0 = b.gep(a, i, 8);
        let l0 = b.load(Type::F64, p0);
        let one = b.func().const_i64(1);
        let p1 = b.gep(p0, one, 8);
        let l1 = b.load(Type::F64, p1);
        let ai = AddrInfo::analyze(&f);
        assert!(ai.consecutive(l0, l1));
    }

    #[test]
    fn nonlinear_index_is_opaque_but_consistent() {
        // A[i*i] vs A[i*i]: same opaque term, distance 0.
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let sq = b.mul(i, i);
        let p1 = b.gep(a, sq, 8);
        let l1 = b.load(Type::F64, p1);
        let p2 = b.gep(a, sq, 8);
        let l2 = b.load(Type::F64, p2);
        let ai = AddrInfo::analyze(&f);
        assert_eq!(ai.distance(l1, l2), Some(0));
        assert!(!ai.consecutive(l1, l2));
    }

    #[test]
    fn store_sizes_follow_value_type() {
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::Scalar(ScalarType::I16));
        let mut b = FunctionBuilder::new(&mut f);
        let s = b.store(x, a);
        let ai = AddrInfo::analyze(&f);
        assert_eq!(ai.loc(s).unwrap().bytes, 2);
    }

    #[test]
    fn linexpr_algebra() {
        let v = ValueId::from_raw(1);
        let w = ValueId::from_raw(2);
        let e = LinExpr::var(v).scale(3).add(&LinExpr::var(w)).add(&LinExpr::constant(5));
        let f = e.sub(&LinExpr::var(w));
        assert_eq!(f.terms, vec![(v, 3)]);
        assert_eq!(f.konst, 5);
        let z = f.sub(&LinExpr::var(v).scale(3));
        assert!(z.is_constant());
        assert_eq!(z.konst, 5);
    }
}

#[cfg(test)]
mod negative_offset_tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    #[test]
    fn negative_offsets_and_subtracted_indices() {
        // A[i-1] and A[i] are consecutive; A[i-(j+1)] and A[i-j] are
        // consecutive too (symbolic subtraction).
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let j = f.add_param("j", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let im1 = b.sub(i, one);
        let pm1 = b.gep(a, im1, 8);
        let lm1 = b.load(Type::F64, pm1);
        let p0 = b.gep(a, i, 8);
        let l0 = b.load(Type::F64, p0);
        let jp1 = b.add(j, one);
        let imj1 = b.sub(i, jp1);
        let pj1 = b.gep(a, imj1, 8);
        let lj1 = b.load(Type::F64, pj1);
        let imj = b.sub(i, j);
        let pj = b.gep(a, imj, 8);
        let lj = b.load(Type::F64, pj);
        let ai = AddrInfo::analyze(&f);
        assert!(ai.consecutive(lm1, l0));
        assert_eq!(ai.distance(l0, lm1), Some(-8));
        assert!(ai.consecutive(lj1, lj));
        assert_eq!(ai.distance(lj, lj1), Some(-8));
    }
}
