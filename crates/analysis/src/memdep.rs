//! Memory-dependence summary ("MemorySSA-lite").
//!
//! For every load in a straight-line function, precompute which *memory
//! epoch* it reads from: the index (1-based) of the most recent preceding
//! store that may alias the load's address, or 0 when no such store exists.
//! Two loads of the same address are redundant exactly when they share a
//! memory epoch — the query local CSE performs. Centralizing the summary
//! here lets the [`crate::AnalysisManager`] cache it alongside the address
//! analysis instead of every consumer re-deriving aliasing pairwise.

use std::collections::HashMap;

use lslp_ir::{Function, Opcode, ValueId};

use crate::addr::AddrInfo;
use crate::alias::may_alias;

/// Per-load memory epochs for one function (snapshot semantics: reflects
/// the function at analysis time, like [`AddrInfo`]).
#[derive(Clone, Debug, Default)]
pub struct MemDep {
    load_epoch: HashMap<ValueId, usize>,
    num_stores: usize,
}

impl MemDep {
    /// Analyze `f` against an address analysis computed for the same
    /// function state.
    pub fn analyze(f: &Function, addr: &AddrInfo) -> MemDep {
        let mut load_epoch = HashMap::new();
        let mut stores: Vec<ValueId> = Vec::new();
        for (_, id, inst) in f.iter_body() {
            match inst.op {
                Opcode::Store => stores.push(id),
                Opcode::Load => {
                    // The load's epoch is the most recent store that may
                    // alias it; a load with no address expression
                    // conservatively depends on every store so far.
                    let epoch = match addr.loc(id) {
                        Some(lloc) => stores
                            .iter()
                            .rposition(|&s| match addr.loc(s) {
                                Some(sloc) => may_alias(f, lloc, sloc),
                                None => true,
                            })
                            .map(|p| p + 1)
                            .unwrap_or(0),
                        None => stores.len(),
                    };
                    load_epoch.insert(id, epoch);
                }
                _ => {}
            }
        }
        MemDep { load_epoch, num_stores: stores.len() }
    }

    /// The memory epoch of load `v`: 1-based index of the latest preceding
    /// may-aliasing store, 0 when the load reads initial memory. `None` if
    /// `v` is not a load of the analyzed body.
    pub fn load_epoch(&self, v: ValueId) -> Option<usize> {
        self.load_epoch.get(&v).copied()
    }

    /// Number of stores in the analyzed body.
    pub fn num_stores(&self) -> usize {
        self.num_stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    #[test]
    fn epochs_split_around_aliasing_stores() {
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let b_ = f.add_param("B", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let ga = b.gep(a, i, 8);
        let l1 = b.load(Type::I64, ga);
        let gb = b.gep(b_, i, 8);
        b.store(x, gb); // distinct base: does not advance A's epoch
        let l2 = b.load(Type::I64, ga);
        b.store(x, ga); // overwrites A[i]
        let l3 = b.load(Type::I64, ga);
        let addr = AddrInfo::analyze(&f);
        let md = MemDep::analyze(&f, &addr);
        assert_eq!(md.load_epoch(l1), Some(0));
        assert_eq!(md.load_epoch(l2), Some(0), "store to B must not block");
        assert_eq!(md.load_epoch(l3), Some(2), "store to A[i] advances the epoch");
        assert_eq!(md.num_stores(), 2);
        assert_eq!(md.load_epoch(ga), None, "geps are not loads");
    }
}
