//! # lslp-analysis
//!
//! The program analyses the SLP/LSLP vectorizer depends on:
//!
//! * [`addr`] — symbolic address analysis ("SCEV-lite"): expresses every
//!   load/store address as `base + Σ coeff·var + const` so the vectorizer can
//!   test whether two accesses are *consecutive* (the test the paper performs
//!   with LLVM's scalar-evolution analysis).
//! * [`alias`] — a simple alias analysis over the same address expressions
//!   (distinct pointer parameters are assumed not to alias, matching the
//!   `restrict`-style semantics of the evaluation kernels).
//! * [`sched`] — bundle scheduling legality: whether a group of isomorphic
//!   instructions can be fused into one vector instruction placed at the
//!   position of the group's last member without violating SSA or memory
//!   dependences (footnote 1 of the paper: bundles must be *schedulable*).
//! * [`memdep`] — per-load memory-dependence epochs over the same address
//!   expressions (which store each load reads past), the summary local CSE
//!   keys on.
//! * [`manager`] — the [`AnalysisManager`]: lazy, epoch-keyed caching of
//!   all of the above, LLVM-new-PM style, so passes share analyses instead
//!   of recomputing them. Consumers outside this crate should obtain
//!   analyses through the manager, never by calling `analyze` directly on
//!   the hot path.

#![warn(missing_docs)]

pub mod addr;
pub mod alias;
pub mod manager;
pub mod memdep;
pub mod sched;

pub use addr::{AddrExpr, AddrInfo, LinExpr, MemLoc};
pub use alias::may_alias;
pub use manager::{
    AnalysisKind, AnalysisManager, CacheStats, PositionMap, PreservedAnalyses, ANALYSIS_KINDS,
};
pub use memdep::MemDep;
pub use sched::{bundle_hoistable, bundle_schedulable};
