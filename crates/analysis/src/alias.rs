//! Alias analysis over symbolic addresses.
//!
//! Pointer parameters are treated as pairwise non-aliasing (`restrict`
//! semantics), which matches the arrays of the paper's evaluation kernels.
//! Accesses whose symbolic distance is known are disambiguated exactly;
//! everything else is conservatively assumed to alias.

use lslp_ir::Function;

use crate::addr::MemLoc;

/// Whether two memory accesses may touch overlapping bytes.
///
/// * Known constant distance → exact interval-overlap test.
/// * Same base, unknown distance → may alias.
/// * Distinct bases that are both pointer *parameters* → no alias
///   (`restrict` assumption).
/// * Anything else → may alias.
pub fn may_alias(f: &Function, a: &MemLoc, b: &MemLoc) -> bool {
    if let Some(d) = a.addr.distance_to(&b.addr) {
        // b starts d bytes after a. Overlap unless b is entirely after a's
        // end or entirely before a's start.
        return !(d >= a.bytes as i64 || -d >= b.bytes as i64);
    }
    if a.addr.base == b.addr.base {
        return true;
    }
    let both_params = f.is_arg(a.addr.base) && f.is_arg(b.addr.base);
    !both_params
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrInfo;
    use lslp_ir::{FunctionBuilder, Type};

    struct Setup {
        f: Function,
        locs: Vec<lslp_ir::ValueId>,
    }

    /// A[i], A[i+1], B[i], A[i*i] (opaque), and a load through a loaded
    /// pointer (unknown base).
    fn setup() -> Setup {
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let bp = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let p0 = b.gep(a, i, 8);
        let l0 = b.load(Type::F64, p0);
        let one = b.func().const_i64(1);
        let i1 = b.add(i, one);
        let p1 = b.gep(a, i1, 8);
        let l1 = b.load(Type::F64, p1);
        let pb = b.gep(bp, i, 8);
        let l2 = b.load(Type::F64, pb);
        let sq = b.mul(i, i);
        let p3 = b.gep(a, sq, 8);
        let l3 = b.load(Type::F64, p3);
        // A pointer loaded from memory: unknown base.
        let pp = b.load(Type::PTR, p0);
        let l4 = b.load(Type::F64, pp);
        Setup { f, locs: vec![l0, l1, l2, l3, l4] }
    }

    #[test]
    fn disjoint_same_array_elements_do_not_alias() {
        let s = setup();
        let ai = AddrInfo::analyze(&s.f);
        let l0 = ai.loc(s.locs[0]).unwrap();
        let l1 = ai.loc(s.locs[1]).unwrap();
        assert!(!may_alias(&s.f, l0, l1));
        assert!(!may_alias(&s.f, l1, l0));
        assert!(may_alias(&s.f, l0, l0));
    }

    #[test]
    fn distinct_params_do_not_alias() {
        let s = setup();
        let ai = AddrInfo::analyze(&s.f);
        let l0 = ai.loc(s.locs[0]).unwrap();
        let l2 = ai.loc(s.locs[2]).unwrap();
        assert!(!may_alias(&s.f, l0, l2));
    }

    #[test]
    fn unknown_distance_same_base_aliases() {
        let s = setup();
        let ai = AddrInfo::analyze(&s.f);
        let l0 = ai.loc(s.locs[0]).unwrap();
        let l3 = ai.loc(s.locs[3]).unwrap();
        assert!(may_alias(&s.f, l0, l3));
    }

    #[test]
    fn unknown_base_aliases_everything() {
        let s = setup();
        let ai = AddrInfo::analyze(&s.f);
        let l0 = ai.loc(s.locs[0]).unwrap();
        let l4 = ai.loc(s.locs[4]).unwrap();
        assert!(may_alias(&s.f, l0, l4));
        assert!(may_alias(&s.f, l4, l0));
    }

    #[test]
    fn partial_overlap_detected() {
        // An 8-byte access at offset 0 overlaps a 4-byte access at offset 4.
        let s = setup();
        let ai = AddrInfo::analyze(&s.f);
        let mut wide = ai.loc(s.locs[0]).unwrap().clone();
        wide.bytes = 8;
        let mut narrow = ai.loc(s.locs[0]).unwrap().clone();
        narrow.addr.offset = narrow.addr.offset.add(&crate::addr::LinExpr::constant(4));
        narrow.bytes = 4;
        assert!(may_alias(&s.f, &wide, &narrow));
        narrow.addr.offset = narrow.addr.offset.add(&crate::addr::LinExpr::constant(4));
        assert!(!may_alias(&s.f, &wide, &narrow));
    }
}
