//! Bundle scheduling legality.
//!
//! The SLP code generator replaces a bundle (one scalar instruction per
//! vector lane) with a single vector instruction placed at the body position
//! of the bundle's *last* member. That is legal when:
//!
//! 1. no member depends (transitively, through SSA operands) on another
//!    member — lanes must be computable simultaneously; and
//! 2. sinking each memory-accessing member down to the last member's
//!    position crosses no conflicting memory operation outside the bundle.
//!
//! This is a conservative re-statement of LLVM's SLP scheduler sufficient
//! for straight-line code.

use std::collections::{HashMap, HashSet};

use lslp_ir::{Function, Opcode, ValueId};

use crate::addr::AddrInfo;
use crate::alias::may_alias;

/// Whether `from` transitively depends on `to` through SSA operands.
fn depends_on(
    f: &Function,
    from: ValueId,
    to: ValueId,
    cache: &mut HashMap<(ValueId, ValueId), bool>,
) -> bool {
    if from == to {
        return true;
    }
    if let Some(&hit) = cache.get(&(from, to)) {
        return hit;
    }
    let mut result = false;
    for &arg in f.args_of(from) {
        if f.is_inst(arg) && depends_on(f, arg, to, cache) {
            result = true;
            break;
        }
    }
    cache.insert((from, to), result);
    result
}

/// Whether sinking memory access `m` past memory access `x` changes
/// program behaviour (assuming at least one is a store).
fn mem_conflict(f: &Function, addr: &AddrInfo, m: ValueId, x: ValueId) -> bool {
    let m_store = f.opcode(m) == Some(Opcode::Store);
    let x_store = f.opcode(x) == Some(Opcode::Store);
    if !m_store && !x_store {
        return false; // load/load never conflicts
    }
    match (addr.loc(m), addr.loc(x)) {
        (Some(lm), Some(lx)) => may_alias(f, lm, lx),
        _ => true,
    }
}

fn ssa_independent(f: &Function, bundle: &[ValueId]) -> bool {
    let mut cache = HashMap::new();
    for (i, &a) in bundle.iter().enumerate() {
        for &b in &bundle[i + 1..] {
            if depends_on(f, a, b, &mut cache) || depends_on(f, b, a, &mut cache) {
                return false;
            }
        }
    }
    true
}

/// Test whether a bundle of body instructions can be scheduled as one vector
/// instruction at the position of its last member (members conceptually
/// *sink* down to that point).
///
/// `positions` must be the current [`Function::position_map`]; every bundle
/// member must be present in it.
pub fn bundle_schedulable(
    f: &Function,
    positions: &HashMap<ValueId, usize>,
    addr: &AddrInfo,
    bundle: &[ValueId],
) -> bool {
    debug_assert!(!bundle.is_empty());
    // All members must be in the body.
    if bundle.iter().any(|v| !positions.contains_key(v)) {
        return false;
    }
    // 1. No intra-bundle SSA dependence.
    if !ssa_independent(f, bundle) {
        return false;
    }
    // 2. Memory legality when sinking members down to the bundle's last
    //    position.
    let last_pos = bundle.iter().map(|v| positions[v]).max().unwrap();
    let in_bundle: HashSet<ValueId> = bundle.iter().copied().collect();
    for &m in bundle {
        if !f.opcode(m).is_some_and(Opcode::is_memory) {
            continue;
        }
        let from = positions[&m];
        for x in &f.body()[from + 1..=last_pos] {
            if in_bundle.contains(x) {
                continue;
            }
            if f.opcode(*x).is_some_and(Opcode::is_memory) && mem_conflict(f, addr, m, *x) {
                return false;
            }
        }
    }
    true
}

/// Test whether a bundle of *loads* can be scheduled as one vector load at
/// the position of its first member (members conceptually *hoist* up).
///
/// Only meaningful for load bundles: the emitted vector load needs nothing
/// but lane 0's pointer, which dominates the first member by SSA
/// construction, so hoisting is legal whenever no aliasing store sits
/// between the first member and each hoisted load. This is what lets
/// `A[i] = A[i] & ...; A[i+1] = ... & A[i+1]` patterns vectorize: the lane-1
/// load of `A[i+1]` hoists above the lane-0 store to `A[i]`.
pub fn bundle_hoistable(
    f: &Function,
    positions: &HashMap<ValueId, usize>,
    addr: &AddrInfo,
    bundle: &[ValueId],
) -> bool {
    debug_assert!(!bundle.is_empty());
    if bundle.iter().any(|v| !positions.contains_key(v)) {
        return false;
    }
    if bundle.iter().any(|&v| f.opcode(v) != Some(Opcode::Load)) {
        return false;
    }
    if !ssa_independent(f, bundle) {
        return false;
    }
    let first_pos = bundle.iter().map(|v| positions[v]).min().unwrap();
    // The emitted vector load takes lane 0's pointer operand, so that
    // pointer must already be defined at the hoist point. When the seed
    // group was written in reverse address order, lane 0's member (lowest
    // address) can sit *later* in the body than the first member — its
    // address computation would not dominate the hoisted load.
    let lane0_ptr = f.args_of(bundle[0])[0];
    if f.is_inst(lane0_ptr) && positions.get(&lane0_ptr).is_none_or(|&p| p >= first_pos) {
        return false;
    }
    let in_bundle: HashSet<ValueId> = bundle.iter().copied().collect();
    for &m in bundle {
        let to = positions[&m];
        for x in &f.body()[first_pos..to] {
            if in_bundle.contains(x) {
                continue;
            }
            if f.opcode(*x).is_some_and(Opcode::is_memory) && mem_conflict(f, addr, m, *x) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    fn pos(f: &Function) -> HashMap<ValueId, usize> {
        f.position_map()
    }

    #[test]
    fn independent_loads_schedulable() {
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let p0 = b.gep(a, i, 8);
        let l0 = b.load(Type::F64, p0);
        let i1 = b.add(i, one);
        let p1 = b.gep(a, i1, 8);
        let l1 = b.load(Type::F64, p1);
        let ai = AddrInfo::analyze(&f);
        assert!(bundle_schedulable(&f, &pos(&f), &ai, &[l0, l1]));
    }

    #[test]
    fn dependent_members_rejected() {
        fn b2(f: &mut Function, x: ValueId) -> ValueId {
            let mut b = FunctionBuilder::new(f);
            b.add(x, x)
        }
        let mut f = Function::new("t");
        let x = f.add_param("x", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let s1 = b.add(x, x);
        let mid = b.mul(s1, x);
        let s2 = b.add(mid, x); // s2 transitively depends on s1
        let ai = AddrInfo::analyze(&f);
        assert!(!bundle_schedulable(&f, &pos(&f), &ai, &[s1, s2]));
        // Duplicate members are also rejected (the vectorizer gathers them).
        assert!(!bundle_schedulable(&f, &pos(&f), &ai, &[s1, s1]));
        let indep = b2(&mut f, x);
        let ai = AddrInfo::analyze(&f);
        assert!(bundle_schedulable(&f, &pos(&f), &ai, &[s1, indep]));
    }

    #[test]
    fn aliasing_store_between_loads_rejected() {
        // load A[i]; store A[i] = c; load A[i+1]  — the first load cannot
        // sink past the store.
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let p0 = b.gep(a, i, 8);
        let l0 = b.load(Type::F64, p0);
        let c = b.func().const_float(lslp_ir::ScalarType::F64, 9.0);
        b.store(c, p0);
        let i1 = b.add(i, one);
        let p1 = b.gep(a, i1, 8);
        let l1 = b.load(Type::F64, p1);
        let ai = AddrInfo::analyze(&f);
        assert!(!bundle_schedulable(&f, &pos(&f), &ai, &[l0, l1]));
    }

    #[test]
    fn non_aliasing_store_between_loads_accepted() {
        // The intervening store goes to a different parameter array.
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let bp = f.add_param("B", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let p0 = b.gep(a, i, 8);
        let l0 = b.load(Type::F64, p0);
        let pb = b.gep(bp, i, 8);
        let c = b.func().const_float(lslp_ir::ScalarType::F64, 9.0);
        b.store(c, pb);
        let i1 = b.add(i, one);
        let p1 = b.gep(a, i1, 8);
        let l1 = b.load(Type::F64, p1);
        let ai = AddrInfo::analyze(&f);
        assert!(bundle_schedulable(&f, &pos(&f), &ai, &[l0, l1]));
    }

    #[test]
    fn aliasing_load_between_stores_rejected() {
        // store A[i]; load A[i]; store A[i+1] — sinking the first store past
        // the load would change the loaded value.
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let x = f.add_param("x", Type::F64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let p0 = b.gep(a, i, 8);
        let s0 = b.store(x, p0);
        let _l = b.load(Type::F64, p0);
        let i1 = b.add(i, one);
        let p1 = b.gep(a, i1, 8);
        let s1 = b.store(x, p1);
        let ai = AddrInfo::analyze(&f);
        assert!(!bundle_schedulable(&f, &pos(&f), &ai, &[s0, s1]));
    }

    #[test]
    fn disjoint_load_between_stores_accepted() {
        // store A[i]; load A[i+7]; store A[i+1] — provably disjoint.
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let x = f.add_param("x", Type::F64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let seven = b.func().const_i64(7);
        let p0 = b.gep(a, i, 8);
        let s0 = b.store(x, p0);
        let i7 = b.add(i, seven);
        let p7 = b.gep(a, i7, 8);
        let _l = b.load(Type::F64, p7);
        let i1 = b.add(i, one);
        let p1 = b.gep(a, i1, 8);
        let s1 = b.store(x, p1);
        let ai = AddrInfo::analyze(&f);
        assert!(bundle_schedulable(&f, &pos(&f), &ai, &[s0, s1]));
    }

    #[test]
    fn fig4_load_pattern_hoists_but_does_not_sink() {
        // load A[i]; store A[i]; load A[i+1]; store A[i+1] — the load bundle
        // cannot sink (lane 0 would cross its own store) but can hoist
        // (A[i+1] does not alias the store to A[i]).
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let p0 = b.gep(a, i, 8);
        let l0 = b.load(Type::I64, p0);
        let v0 = b.add(l0, one);
        b.store(v0, p0);
        let i1 = b.add(i, one);
        let p1 = b.gep(a, i1, 8);
        let l1 = b.load(Type::I64, p1);
        let v1 = b.add(l1, one);
        b.store(v1, p1);
        let ai = AddrInfo::analyze(&f);
        assert!(!bundle_schedulable(&f, &pos(&f), &ai, &[l0, l1]));
        assert!(bundle_hoistable(&f, &pos(&f), &ai, &[l0, l1]));
    }

    #[test]
    fn hoist_rejects_aliasing_store_and_non_loads() {
        // store A[i+1] between the loads: hoisting l1 would cross it.
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let x = f.add_param("x", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        let p0 = b.gep(a, i, 8);
        let l0 = b.load(Type::I64, p0);
        let i1 = b.add(i, one);
        let p1 = b.gep(a, i1, 8);
        b.store(x, p1);
        let l1 = b.load(Type::I64, p1);
        let s0 = b.add(l0, one);
        let s1 = b.add(l1, one);
        let ai = AddrInfo::analyze(&f);
        assert!(!bundle_hoistable(&f, &pos(&f), &ai, &[l0, l1]));
        // Non-load bundles are not eligible for hoisting.
        assert!(!bundle_hoistable(&f, &pos(&f), &ai, &[s0, s1]));
        assert!(bundle_schedulable(&f, &pos(&f), &ai, &[s0, s1]));
    }

    #[test]
    fn orphaned_member_rejected() {
        let mut f = Function::new("t");
        let x = f.add_param("x", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let s1 = b.add(x, x);
        let s2 = b.add(x, x);
        let mut dead = HashSet::new();
        dead.insert(s2);
        let positions_before = pos(&f);
        f.remove_from_body(&dead);
        let ai = AddrInfo::analyze(&f);
        // Stale positions map would still contain s2; fresh one must not.
        assert!(positions_before.contains_key(&s2));
        assert!(!bundle_schedulable(&f, &pos(&f), &ai, &[s1, s2]));
    }
}

#[cfg(test)]
mod hoist_dominance_tests {
    use super::*;
    use crate::addr::AddrInfo;
    use lslp_ir::{FunctionBuilder, Type};

    /// Reverse-address-order statements: lane 0's load (lowest address)
    /// sits later in the body, so its pointer does not dominate the hoist
    /// point — the bundle must be rejected (found by review; previously
    /// produced use-before-def vector code).
    #[test]
    fn hoist_rejects_lane0_pointer_defined_after_first_member() {
        let mut f = Function::new("t");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.func().const_i64(1);
        // A[i+1] first...
        let i1 = b.add(i, one);
        let p1 = b.gep(a, i1, 8);
        let l1 = b.load(Type::I64, p1);
        let v1 = b.add(l1, one);
        b.store(v1, p1);
        // ...then A[i+0].
        let p0 = b.gep(a, i, 8);
        let l0 = b.load(Type::I64, p0);
        let v0 = b.add(l0, one);
        b.store(v0, p0);
        let ai = AddrInfo::analyze(&f);
        let positions = f.position_map();
        // Lane order is address order: [l0, l1].
        assert!(!bundle_schedulable(&f, &positions, &ai, &[l0, l1]));
        assert!(
            !bundle_hoistable(&f, &positions, &ai, &[l0, l1]),
            "lane 0's gep is defined after the first member; hoisting would \
             emit a use-before-def vector load"
        );
    }
}
