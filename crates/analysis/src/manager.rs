//! The analysis manager: lazy, epoch-keyed caching of function analyses.
//!
//! Modeled on LLVM's new-pass-manager `FunctionAnalysisManager`. Consumers
//! ask the manager for an analysis instead of computing it; the manager
//! computes on first request and serves cached results until the function's
//! mutation epoch ([`lslp_ir::Function::epoch`]) moves. Because epochs are
//! globally unique and preserved by `Clone`, a transactional rollback that
//! restores a snapshot also restores its epoch — so a rolled-back
//! vectorization attempt leaves the cache warm, while any committed
//! mutation invalidates it automatically.
//!
//! Passes that mutate the function but provably keep some analyses valid
//! declare them through [`PreservedAnalyses`]; [`AnalysisManager::
//! mark_preserved`] then re-keys the surviving entries to the new epoch
//! instead of recomputing them.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::{Duration, Instant};

use lslp_ir::{Function, UseMap, ValueId};

use crate::addr::AddrInfo;
use crate::memdep::MemDep;

/// Map from each body instruction to its position (cached analysis form of
/// [`lslp_ir::Function::position_map`]).
pub type PositionMap = HashMap<ValueId, usize>;

/// The analyses the manager knows how to compute and cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnalysisKind {
    /// Symbolic address analysis ([`AddrInfo`]).
    Addr,
    /// Body position map.
    Positions,
    /// Use-def map ([`UseMap`]).
    Uses,
    /// Memory-dependence summary ([`MemDep`]).
    MemDep,
}

/// All analysis kinds, in display order.
pub const ANALYSIS_KINDS: [AnalysisKind; 4] =
    [AnalysisKind::Addr, AnalysisKind::Positions, AnalysisKind::Uses, AnalysisKind::MemDep];

impl AnalysisKind {
    /// Stable display name (used in statistics output).
    pub fn name(self) -> &'static str {
        match self {
            AnalysisKind::Addr => "addr",
            AnalysisKind::Positions => "positions",
            AnalysisKind::Uses => "uses",
            AnalysisKind::MemDep => "memdep",
        }
    }

    fn index(self) -> usize {
        match self {
            AnalysisKind::Addr => 0,
            AnalysisKind::Positions => 1,
            AnalysisKind::Uses => 2,
            AnalysisKind::MemDep => 3,
        }
    }
}

/// The set of analyses a pass declares intact after running (LLVM's
/// `PreservedAnalyses`). A pass that did not mutate the function at all
/// should return [`PreservedAnalyses::all`]; a mutating pass returns
/// [`PreservedAnalyses::none`] unless it can prove better.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PreservedAnalyses {
    preserved: [bool; 4],
}

impl PreservedAnalyses {
    /// Every analysis survives (the function is semantically unchanged for
    /// analysis purposes).
    pub fn all() -> PreservedAnalyses {
        PreservedAnalyses { preserved: [true; 4] }
    }

    /// No analysis survives (safe default after arbitrary mutation).
    pub fn none() -> PreservedAnalyses {
        PreservedAnalyses { preserved: [false; 4] }
    }

    /// Additionally declare `kind` preserved.
    #[must_use]
    pub fn preserve(mut self, kind: AnalysisKind) -> PreservedAnalyses {
        self.preserved[kind.index()] = true;
        self
    }

    /// Whether `kind` is declared preserved.
    pub fn is_preserved(&self, kind: AnalysisKind) -> bool {
        self.preserved[kind.index()]
    }

    /// Whether every analysis is preserved.
    pub fn preserves_all(&self) -> bool {
        self.preserved.iter().all(|&p| p)
    }
}

/// Cache effectiveness counters, cumulative over the manager's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to compute the analysis.
    pub misses: u64,
    /// Times cached entries were dropped because the function's epoch
    /// moved without a preservation claim.
    pub invalidations: u64,
}

impl CacheStats {
    fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
    }
}

/// Lazily computes and caches per-function analyses, keyed by the
/// function's mutation epoch.
///
/// ```
/// use lslp_analysis::AnalysisManager;
/// use lslp_ir::{Function, Type};
///
/// let mut f = Function::new("k");
/// f.add_param("A", Type::PTR);
/// let mut am = AnalysisManager::new();
/// let a1 = am.addr_info(&f);
/// let a2 = am.addr_info(&f); // served from cache
/// assert!(std::rc::Rc::ptr_eq(&a1, &a2));
/// assert_eq!(am.cache_stats().hits, 1);
/// assert_eq!(am.cache_stats().misses, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AnalysisManager {
    /// Epoch the cached entries were computed at (`None` = empty cache).
    epoch: Option<u64>,
    addr: Option<Rc<AddrInfo>>,
    positions: Option<Rc<PositionMap>>,
    uses: Option<Rc<UseMap>>,
    memdep: Option<Rc<MemDep>>,
    total: CacheStats,
    per_kind: [CacheStats; 4],
    analysis_time: Duration,
}

impl AnalysisManager {
    /// An empty manager.
    pub fn new() -> AnalysisManager {
        AnalysisManager::default()
    }

    /// Cumulative cache counters (all analyses combined).
    pub fn cache_stats(&self) -> CacheStats {
        self.total
    }

    /// Cache counters for one analysis kind.
    pub fn cache_stats_for(&self, kind: AnalysisKind) -> CacheStats {
        self.per_kind[kind.index()]
    }

    /// Total wall-clock time spent *computing* analyses (cache misses).
    pub fn analysis_time(&self) -> Duration {
        self.analysis_time
    }

    /// Fold another manager's counters into this one (used when a nested
    /// run keeps its own manager).
    pub fn absorb_stats(&mut self, other: &AnalysisManager) {
        self.total.absorb(&other.total);
        for (mine, theirs) in self.per_kind.iter_mut().zip(&other.per_kind) {
            mine.absorb(theirs);
        }
        self.analysis_time += other.analysis_time;
    }

    /// Drop every cached entry.
    pub fn invalidate_all(&mut self) {
        if self.has_entries() {
            self.total.invalidations += 1;
        }
        self.epoch = None;
        self.addr = None;
        self.positions = None;
        self.uses = None;
        self.memdep = None;
    }

    fn has_entries(&self) -> bool {
        self.addr.is_some()
            || self.positions.is_some()
            || self.uses.is_some()
            || self.memdep.is_some()
    }

    /// Re-key the cache after a pass reported `preserved`: surviving
    /// entries move to `f`'s current epoch, the rest are dropped. With
    /// [`PreservedAnalyses::all`] the whole cache stays warm even though
    /// the epoch moved.
    pub fn mark_preserved(&mut self, f: &Function, preserved: &PreservedAnalyses) {
        if self.epoch == Some(f.epoch()) {
            return; // nothing moved
        }
        if !preserved.is_preserved(AnalysisKind::Addr) {
            self.addr = None;
        }
        if !preserved.is_preserved(AnalysisKind::Positions) {
            self.positions = None;
        }
        if !preserved.is_preserved(AnalysisKind::Uses) {
            self.uses = None;
        }
        if !preserved.is_preserved(AnalysisKind::MemDep) {
            self.memdep = None;
        }
        if !preserved.preserves_all() {
            self.total.invalidations += 1;
        }
        self.epoch = Some(f.epoch());
    }

    /// Invalidate stale entries if `f` moved past the cached epoch.
    fn refresh(&mut self, f: &Function) {
        if self.epoch != Some(f.epoch()) {
            self.invalidate_all();
            self.epoch = Some(f.epoch());
        }
    }

    /// The address analysis for the current state of `f`.
    pub fn addr_info(&mut self, f: &Function) -> Rc<AddrInfo> {
        self.refresh(f);
        if self.addr.is_some() {
            self.hit(AnalysisKind::Addr);
            return Rc::clone(self.addr.as_ref().expect("checked above"));
        }
        let start = Instant::now();
        let a = Rc::new(AddrInfo::analyze(f));
        self.miss(AnalysisKind::Addr, start);
        self.addr = Some(Rc::clone(&a));
        a
    }

    /// The body position map for the current state of `f`.
    pub fn positions(&mut self, f: &Function) -> Rc<PositionMap> {
        self.refresh(f);
        if self.positions.is_some() {
            self.hit(AnalysisKind::Positions);
            return Rc::clone(self.positions.as_ref().expect("checked above"));
        }
        let start = Instant::now();
        let p = Rc::new(f.position_map());
        self.miss(AnalysisKind::Positions, start);
        self.positions = Some(Rc::clone(&p));
        p
    }

    /// The use-def map for the current state of `f`.
    pub fn use_map(&mut self, f: &Function) -> Rc<UseMap> {
        self.refresh(f);
        if self.uses.is_some() {
            self.hit(AnalysisKind::Uses);
            return Rc::clone(self.uses.as_ref().expect("checked above"));
        }
        let start = Instant::now();
        let u = Rc::new(f.use_map());
        self.miss(AnalysisKind::Uses, start);
        self.uses = Some(Rc::clone(&u));
        u
    }

    /// The memory-dependence summary for the current state of `f`
    /// (computes the address analysis first if needed).
    pub fn memdep(&mut self, f: &Function) -> Rc<MemDep> {
        self.refresh(f);
        if self.memdep.is_some() {
            self.hit(AnalysisKind::MemDep);
            return Rc::clone(self.memdep.as_ref().expect("checked above"));
        }
        let addr = self.addr_info(f);
        let start = Instant::now();
        let m = Rc::new(MemDep::analyze(f, &addr));
        self.miss(AnalysisKind::MemDep, start);
        self.memdep = Some(Rc::clone(&m));
        m
    }

    fn hit(&mut self, kind: AnalysisKind) {
        self.total.hits += 1;
        self.per_kind[kind.index()].hits += 1;
    }

    fn miss(&mut self, kind: AnalysisKind, started: Instant) {
        self.total.misses += 1;
        self.per_kind[kind.index()].misses += 1;
        self.analysis_time += started.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lslp_ir::{FunctionBuilder, Type};

    fn kernel() -> Function {
        let mut f = Function::new("k");
        let a = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let g = b.gep(a, i, 8);
        let l = b.load(Type::I64, g);
        let s = b.add(l, x);
        b.store(s, g);
        f
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let f = kernel();
        let mut am = AnalysisManager::new();
        let a1 = am.addr_info(&f);
        let p1 = am.positions(&f);
        let u1 = am.use_map(&f);
        let a2 = am.addr_info(&f);
        let p2 = am.positions(&f);
        let u2 = am.use_map(&f);
        assert!(Rc::ptr_eq(&a1, &a2));
        assert!(Rc::ptr_eq(&p1, &p2));
        assert!(Rc::ptr_eq(&u1, &u2));
        assert_eq!(am.cache_stats(), CacheStats { hits: 3, misses: 3, invalidations: 0 });
        assert_eq!(am.cache_stats_for(AnalysisKind::Addr).hits, 1);
    }

    #[test]
    fn mutation_invalidates() {
        let mut f = kernel();
        let mut am = AnalysisManager::new();
        let a1 = am.addr_info(&f);
        f.add_param("junk", Type::I64);
        let a2 = am.addr_info(&f);
        assert!(!Rc::ptr_eq(&a1, &a2), "stale analysis must not be served");
        assert_eq!(am.cache_stats().misses, 2);
        assert_eq!(am.cache_stats().invalidations, 1);
    }

    #[test]
    fn rollback_to_snapshot_keeps_cache_warm() {
        let mut f = kernel();
        let snapshot = f.clone();
        let mut am = AnalysisManager::new();
        let a1 = am.addr_info(&f);
        f.add_param("junk", Type::I64); // aborted attempt mutates...
        f = snapshot; // ...and is rolled back
        let a2 = am.addr_info(&f);
        assert!(Rc::ptr_eq(&a1, &a2), "identical content ⇒ cache hit");
        assert_eq!(am.cache_stats().hits, 1);
    }

    #[test]
    fn memdep_rides_on_addr() {
        let f = kernel();
        let mut am = AnalysisManager::new();
        let _ = am.memdep(&f);
        // memdep computed addr internally; both are now cached.
        let _ = am.addr_info(&f);
        let _ = am.memdep(&f);
        assert_eq!(am.cache_stats_for(AnalysisKind::MemDep).misses, 1);
        assert_eq!(am.cache_stats_for(AnalysisKind::MemDep).hits, 1);
        assert_eq!(am.cache_stats_for(AnalysisKind::Addr).hits, 1);
    }

    #[test]
    fn preserved_analyses_rekey_without_recompute() {
        let mut f = kernel();
        let mut am = AnalysisManager::new();
        let a1 = am.addr_info(&f);
        let u1 = am.use_map(&f);
        // A "pass" that mutates only debug names: analyses survive.
        let v = f.params()[0];
        f.set_value_name(v, "renamed");
        am.mark_preserved(&f, &PreservedAnalyses::all());
        let a2 = am.addr_info(&f);
        let u2 = am.use_map(&f);
        assert!(Rc::ptr_eq(&a1, &a2));
        assert!(Rc::ptr_eq(&u1, &u2));
        assert_eq!(am.cache_stats().invalidations, 0);
        // Partial preservation drops only the unlisted entries.
        f.set_value_name(v, "renamed-again");
        am.mark_preserved(&f, &PreservedAnalyses::none().preserve(AnalysisKind::Addr));
        let a3 = am.addr_info(&f);
        assert!(Rc::ptr_eq(&a1, &a3), "addr was preserved");
        let u3 = am.use_map(&f);
        assert!(!Rc::ptr_eq(&u1, &u3), "uses were not preserved");
    }

    #[test]
    fn preserved_set_composes() {
        let pa = PreservedAnalyses::none()
            .preserve(AnalysisKind::Positions)
            .preserve(AnalysisKind::Uses);
        assert!(pa.is_preserved(AnalysisKind::Positions));
        assert!(pa.is_preserved(AnalysisKind::Uses));
        assert!(!pa.is_preserved(AnalysisKind::Addr));
        assert!(!pa.preserves_all());
        assert!(PreservedAnalyses::all().preserves_all());
    }
}
