//! End-to-end tests for the `lslpd` service: real sockets, real worker
//! pool, real shutdown — including the self-healing paths (injected
//! worker panics, persistent-cache restarts, health probes).

use std::time::Duration;

use lslp_server::chaos::ChaosConfig;
use lslp_server::protocol::{CompileRequest, ErrorKind};
use lslp_server::{Client, RetryPolicy, Server, ServerConfig};

const SRC: &str = "kernel k(f64* A, f64* B, i64 i) {
    A[i+0] = B[i+0] * B[i+0];
    A[i+1] = B[i+1] * B[i+1];
    A[i+2] = B[i+2] * B[i+2];
    A[i+3] = B[i+3] * B[i+3];
}";

fn test_config() -> ServerConfig {
    ServerConfig { addr: "127.0.0.1:0".into(), workers: 4, ..ServerConfig::default() }
}

/// A big-but-valid kernel for load/timeout tests: `groups` chains of 4
/// consecutive stores with commutative fodder.
fn big_kernel(name: &str, groups: usize) -> String {
    let mut src = format!("kernel {name}(f64* A, f64* B, f64* C, i64 i) {{\n");
    for g in 0..groups {
        for l in 0..4 {
            let idx = g * 4 + l;
            src.push_str(&format!(
                "  A[i+{idx}] = (B[i+{idx}] * C[i+{idx}] + B[i+{idx}]) * (C[i+{idx}] + {g}.0);\n"
            ));
        }
    }
    src.push('}');
    src
}

#[test]
fn ping_compile_stats_shutdown() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    assert_eq!(client.ping().unwrap().payload, "pong");

    let r = client.compile(&CompileRequest::new(SRC)).unwrap();
    assert!(r.ok, "{r:?}");
    assert_eq!(r.field("cached"), Some("miss"));
    assert!(r.payload.contains("<4 x f64>"), "{}", r.payload);

    let stats = client.stats().unwrap();
    assert!(stats.ok);
    assert!(stats.payload.contains("server - requests-ok"), "{}", stats.payload);
    assert!(stats.payload.contains("vectorize - trees-vectorized"), "{}", stats.payload);
    assert!(stats.payload.contains("latency: count=1"), "{}", stats.payload);
    assert!(stats.payload.contains("queue: depth=0"), "{}", stats.payload);

    assert_eq!(client.shutdown().unwrap().payload, "draining");
    daemon.join().unwrap().unwrap();
}

#[test]
fn cache_roundtrip_over_the_wire() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let first = client.compile(&CompileRequest::new(SRC)).unwrap();
    let second = client.compile(&CompileRequest::new(SRC)).unwrap();
    assert_eq!(first.field("cached"), Some("miss"));
    assert_eq!(second.field("cached"), Some("hit"));
    assert_eq!(first.payload, second.payload, "hits serve byte-identical output");
    assert_eq!(first.field("key"), second.field("key"));

    // A different configuration is a different content key.
    let o3 = client
        .compile(&CompileRequest { config: "O3".into(), ..CompileRequest::new(SRC) })
        .unwrap();
    assert_eq!(o3.field("cached"), Some("miss"));
    assert_ne!(o3.field("key"), first.field("key"));
    assert!(!o3.payload.contains('<'), "O3 output is scalar");

    let stats = client.stats().unwrap();
    assert!(stats.payload.contains("1  server - cache-hits"), "{}", stats.payload);
    assert!(stats.payload.contains("2  server - cache-misses"), "{}", stats.payload);

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn malformed_and_user_errors_do_not_kill_the_connection() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let bad = client.roundtrip("FROBNICATE the vectorizer").unwrap();
    assert_eq!(bad.error, Some(ErrorKind::Proto));

    let parse = client.compile(&CompileRequest::new("kernel broken(")).unwrap();
    assert_eq!(parse.error, Some(ErrorKind::Parse));

    let cfg = client
        .compile(&CompileRequest { config: "GCC".into(), ..CompileRequest::new(SRC) })
        .unwrap();
    assert_eq!(cfg.error, Some(ErrorKind::Config));

    // The same connection still serves good requests afterwards.
    let ok = client.compile(&CompileRequest::new(SRC)).unwrap();
    assert!(ok.ok, "{ok:?}");

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn tight_budget_degrades_instead_of_stalling() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let src = big_kernel("big", 128);
    let r = client
        .compile(&CompileRequest { timeout_ms: Some(0), ..CompileRequest::new(&src) })
        .unwrap();
    assert!(r.ok, "budget exhaustion is not an error: {r:?}");
    assert!(r.payload.contains("@big"), "{}", r.payload);

    // An ample budget on the same source is a different content key (the
    // budget shapes the output), so it must not be served from the
    // tight-budget entry.
    let full = client
        .compile(&CompileRequest { timeout_ms: Some(60_000), ..CompileRequest::new(&src) })
        .unwrap();
    assert!(full.ok);
    assert_eq!(full.field("cached"), Some("miss"));
    assert!(full.payload.contains("<4 x f64>"), "{}", full.payload);

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();

    // Expected outputs, computed through the service itself first (the
    // cache-consistency property below is what matters: every concurrent
    // response must equal the sequential one).
    let sources: Vec<String> = (0..4).map(|k| big_kernel(&format!("k{k}"), 4 + k)).collect();
    let mut expected = Vec::new();
    {
        let mut client = Client::connect(addr).unwrap();
        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
        for src in &sources {
            let r = client.compile(&CompileRequest::new(src)).unwrap();
            assert!(r.ok);
            expected.push(r.payload);
        }
    }

    std::thread::scope(|s| {
        for t in 0..8usize {
            let sources = &sources;
            let expected = &expected;
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                for round in 0..4 {
                    let k = (t + round) % sources.len();
                    let r = client.compile(&CompileRequest::new(&sources[k])).unwrap();
                    assert!(r.ok, "thread {t}: {r:?}");
                    assert_eq!(r.payload, expected[k], "thread {t} kernel {k} corrupted");
                }
            });
        }
    });

    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.payload.contains("server - cache-hits"), "{}", stats.payload);
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn health_probe_reports_ready_with_live_workers() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // Give the watchdog a tick to take its first census.
    std::thread::sleep(Duration::from_millis(100));
    let h = client.health().unwrap();
    assert!(h.ok, "{h:?}");
    assert_eq!(h.field("status"), Some("ready"));
    assert_eq!(h.field("degraded"), Some("0"));
    let alive: u64 = h.field("workers-alive").unwrap().parse().unwrap();
    assert!(alive >= 1, "worker pool is up: {h:?}");
    assert_eq!(h.field("worker-restarts"), Some("0"));

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn injected_worker_panics_are_typed_healed_and_drained() {
    // Every job panics its worker (panic=1.0): the client must get a typed
    // internal error — never a hang — the watchdog must respawn workers,
    // and the daemon must still drain and exit cleanly on SHUTDOWN.
    let cfg = ServerConfig {
        chaos: Some(ChaosConfig { seed: 1, worker_panic: 1.0, ..ChaosConfig::default() }),
        workers: 2,
        ..test_config()
    };
    let (addr, daemon) = Server::spawn(cfg).unwrap();
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let r = client.compile(&CompileRequest::new(SRC)).unwrap();
    assert_eq!(r.error, Some(ErrorKind::Internal), "{r:?}");
    assert!(r.payload.contains("worker dropped the request"), "{}", r.payload);

    // The retrying client classifies that error as transient and keeps
    // trying until its budget runs out — still no hang, still typed.
    let policy = RetryPolicy {
        max_retries: 2,
        deadline: Some(Duration::from_secs(30)),
        ..RetryPolicy::default()
    };
    let outcome = client.compile_with_retry(&CompileRequest::new(SRC), &policy);
    assert!(outcome.gave_up, "every attempt hits a panicking worker");
    assert_eq!(outcome.attempts, 3);
    assert!(outcome.response.is_some(), "typed ERR, not a dead transport");

    // Let the watchdog census catch up, then check the healing is visible.
    std::thread::sleep(Duration::from_millis(200));
    let h = client.health().unwrap();
    let restarts: u64 = h.field("worker-restarts").unwrap().parse().unwrap();
    assert!(restarts >= 1, "watchdog respawned panicked workers: {h:?}");
    let stats = client.stats().unwrap();
    assert!(stats.payload.contains("server - worker-restarts"), "{}", stats.payload);
    assert!(stats.payload.contains("chaos: active=1"), "{}", stats.payload);

    assert_eq!(client.shutdown().unwrap().payload, "draining");
    daemon.join().unwrap().unwrap();
}

#[test]
fn persistent_cache_survives_a_clean_restart_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("lslp-service-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg =
        || ServerConfig { cache_dir: Some(dir.to_string_lossy().into_owned()), ..test_config() };

    let (addr, daemon) = Server::spawn(cfg()).unwrap();
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let first = client.compile(&CompileRequest::new(SRC)).unwrap();
    assert_eq!(first.field("cached"), Some("miss"));
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();

    let (addr, daemon) = Server::spawn(cfg()).unwrap();
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.payload.contains("persist: enabled=1 warm=1"), "{}", stats.payload);
    let warm = client.compile(&CompileRequest::new(SRC)).unwrap();
    assert_eq!(warm.field("cached"), Some("hit"), "restart serves from the disk tier");
    assert_eq!(warm.payload, first.payload, "byte-identical across restart");
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retry_client_reconnects_across_a_daemon_generation() {
    // A client holding a connection to a killed-and-replaced daemon on the
    // same port must transparently reconnect and complete the request.
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    let mut client = Client::connect(addr).unwrap();
    assert!(client.compile(&CompileRequest::new(SRC)).unwrap().ok);
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();

    // Same port, fresh daemon.
    let cfg = ServerConfig { addr: addr.to_string(), ..test_config() };
    let (_, daemon) = Server::spawn(cfg).unwrap();
    let policy = RetryPolicy { deadline: Some(Duration::from_secs(30)), ..RetryPolicy::default() };
    let outcome = client.compile_with_retry(&CompileRequest::new(SRC), &policy);
    assert!(outcome.is_ok(), "{outcome:?}");
    assert!(outcome.reconnects >= 1, "the dead connection forced a reconnect: {outcome:?}");

    let _ = client.retry_line("SHUTDOWN", &policy);
    daemon.join().unwrap().unwrap();
}

#[test]
fn shutdown_rejects_new_work_and_drains() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    assert!(client.compile(&CompileRequest::new(SRC)).unwrap().ok);
    assert_eq!(client.shutdown().unwrap().payload, "draining");

    // Work submitted on the surviving connection is refused (queue closed)
    // rather than silently dropped — as long as the daemon is still
    // draining; afterwards the connection may simply be gone.
    if let Ok(r) = client.compile(&CompileRequest::new(SRC)) {
        assert_eq!(r.error, Some(ErrorKind::Shutdown), "{r:?}");
    }
    drop(client);
    daemon.join().unwrap().unwrap();

    // And the port is released.
    assert!(Client::connect(addr).is_err(), "daemon must have exited");
}
