//! Protocol-robustness fuzzing for `lslpd`: random and structurally
//! mutated request lines, at the parser level and over a real socket.
//!
//! Invariants under test:
//!
//! * `parse_request`/`unescape`/`Response::parse` never panic, whatever
//!   the input (the functions are total over `&str`);
//! * every parser rejection renders as a typed `ERR kind=proto` line that
//!   round-trips through `Response::parse`;
//! * the live server answers *every* line — random garbage, truncated
//!   escapes, oversized payloads, unknown options, interleaved `HELLO`s —
//!   with exactly one well-formed response, and keeps serving afterwards.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use lslp_server::protocol::{
    escape, parse_request, unescape, CompileRequest, ErrorKind, Response, MAX_TAG_LEN,
};
use lslp_server::{Client, Server, ServerConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Deterministic seed: failures reproduce anywhere.
const SEED: u64 = 0x5150_F022;

/// A printable-ish random line (no `\n`/`\r`: framing is the reader's
/// job, one line per request is the contract being fuzzed).
fn random_line(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..200usize);
    (0..len)
        .map(|_| {
            // Bias toward protocol-relevant bytes so mutations reach deep
            // into the option parser instead of dying at the verb.
            match rng.gen_range(0..10u32) {
                0 => '=',
                1 => ' ',
                2 => '\\',
                3..=5 => (b'a' + rng.gen_range(0..26u8)) as char,
                6 => (b'A' + rng.gen_range(0..26u8)) as char,
                7 => (b'0' + rng.gen_range(0..10u8)) as char,
                _ => char::from_u32(rng.gen_range(0x21..0x7f)).unwrap_or('?'),
            }
        })
        .collect()
}

/// A valid COMPILE line with randomized fields, as mutation stock.
fn valid_line(rng: &mut StdRng) -> String {
    let configs = ["LSLP", "SLP", "O3", "LSLP-LA4"];
    let req = CompileRequest {
        config: configs[rng.gen_range(0..configs.len())].into(),
        target: if rng.gen_bool(0.5) { Some("sse4.2".into()) } else { None },
        pipeline: rng.gen_bool(0.5),
        guard: if rng.gen_bool(0.3) { Some("strict".into()) } else { None },
        timeout_ms: if rng.gen_bool(0.3) { Some(rng.gen_range(1..1000u64)) } else { None },
        src: "kernel k(i64* A, i64 i) {\nA[i + 0] = A[i + 0] + 1;\n}".into(),
        ..CompileRequest::default()
    };
    req.to_line()
}

/// Structurally mutate a valid line: truncations (possibly mid-escape),
/// unknown options, verb damage, duplicated keys, planted bad escapes.
fn mutate(rng: &mut StdRng, line: &str) -> String {
    let mut s = line.to_string();
    for _ in 0..rng.gen_range(1..4usize) {
        match rng.gen_range(0..8u32) {
            0 => {
                // Truncate anywhere (all-ASCII stock), happily splitting
                // an escape pair.
                let at = rng.gen_range(0..=s.len());
                s.truncate(at);
            }
            1 => s.push('\\'), // trailing lone backslash
            2 => s = s.replacen("COMPILE", "COMPILE frob=1", 1),
            3 => s = s.replace("config=", "konfig="),
            4 => s = s.replacen("src=", "src=\\q", 1), // unknown escape
            5 => s = format!("{} pipeline=2", s),      // duplicate, bad value
            6 => {
                let at = rng.gen_range(0..=s.len());
                s.insert(at.min(s.len()), ['=', ' ', '\\'][rng.gen_range(0..3usize)]);
            }
            _ => {
                if !s.is_empty() {
                    let at = rng.gen_range(0..s.len());
                    s.remove(at);
                }
            }
        }
    }
    s
}

/// Parser-level fuzz: total functions, typed errors. No sockets, so this
/// leg affords a large iteration count.
#[test]
fn parser_survives_random_and_mutated_lines() {
    let mut rng = StdRng::seed_from_u64(SEED);
    for i in 0..4000 {
        let line = if i % 2 == 0 {
            random_line(&mut rng)
        } else {
            let stock = valid_line(&mut rng);
            mutate(&mut rng, &stock)
        };
        // Must not panic; on rejection the message must fit on an ERR line.
        if let Err(msg) = parse_request(&line) {
            let err = Response::err_line(ErrorKind::Proto, &msg);
            let parsed = Response::parse(&err)
                .unwrap_or_else(|e| panic!("ERR line for {line:?} unparseable: {e}"));
            assert!(!parsed.ok);
            assert_eq!(parsed.error, Some(ErrorKind::Proto), "typed kind for {line:?}");
            assert_eq!(parsed.payload, msg, "message survives the wire for {line:?}");
        }
        // unescape is total too, and escape/unescape round-trips.
        let _ = unescape(&line);
        assert_eq!(unescape(&escape(&line)).as_deref(), Ok(line.as_str()));
        // Response::parse is total over garbage as well.
        let _ = Response::parse(&line);
    }
}

/// Live-socket fuzz: the daemon answers every line with one well-formed
/// response and keeps serving. Interleaves valid HELLOs, bad HELLOs,
/// oversized payloads, and garbage on one connection.
#[test]
fn server_answers_every_mutated_line() {
    let cfg = ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServerConfig::default() };
    let (addr, daemon) = Server::spawn(cfg).unwrap();
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);

    for i in 0..120 {
        let line = match i % 5 {
            0 => random_line(&mut rng),
            1 | 2 => {
                let stock = valid_line(&mut rng);
                mutate(&mut rng, &stock)
            }
            3 => format!("HELLO proto={}", rng.gen_range(0..4u32)),
            _ => {
                // Oversized-but-escaped payload: a legal line the parser
                // must absorb without truncation or stack abuse.
                let big = "x".repeat(rng.gen_range(64..256usize) * 1024);
                format!("COMPILE src={}", escape(&big))
            }
        };
        let line = line.replace(['\n', '\r'], " "); // keep one-line framing
        if line.trim().is_empty() || line.trim() == "SHUTDOWN" {
            continue; // an empty send would read as connection close
        }
        let resp =
            client.roundtrip(&line).unwrap_or_else(|e| panic!("no response to {line:?}: {e}"));
        if !resp.ok {
            assert!(resp.error.is_some(), "ERR without a typed kind for {line:?}");
        }
    }

    // The connection and the daemon both survived the abuse.
    assert_eq!(client.ping().unwrap().payload, "pong");
    let r = client.compile(&CompileRequest::new("kernel k(i64* A, i64 i) { A[i + 0] = 1; }"));
    assert!(r.unwrap().ok, "server still compiles after the fuzz run");
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

/// A kernel slow enough that a request stays in flight while the frames
/// behind it in the same burst are decoded.
fn slow_kernel(name: &str) -> String {
    let mut src = format!("kernel {name}(f64* A, f64* B, f64* C, i64 i) {{\n");
    for idx in 0..256 {
        src.push_str(&format!(
            "  A[i+{idx}] = (B[i+{idx}] * C[i+{idx}] + B[i+{idx}]) * C[i+{idx}];\n"
        ));
    }
    src.push('}');
    src
}

/// Read exactly `n` response lines, parsing each.
fn read_responses(reader: &mut BufReader<TcpStream>, n: usize) -> Vec<Response> {
    let mut out = Vec::with_capacity(n);
    let mut line = String::new();
    while out.len() < n {
        line.clear();
        let got = reader.read_line(&mut line).unwrap();
        assert!(got > 0, "server closed early: got {}/{n} responses", out.len());
        out.push(
            Response::parse(&line).unwrap_or_else(|e| panic!("garbled response {line:?}: {e}")),
        );
    }
    out
}

/// Pipelining-layer fuzz (protocol v4): duplicate in-flight tags, missing
/// and malformed tags, and frames torn across arbitrarily small writes.
/// The server must answer every frame with one typed response — echoing
/// the offending tag where one can be extracted — never hang, and never
/// route a response to the wrong tag.
#[test]
fn server_rejects_v4_tag_mutations_and_never_mixes_responses() {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        pipeline_depth: 32,
        ..ServerConfig::default()
    };
    let (addr, daemon) = Server::spawn(cfg).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x7a67);
    let src = "kernel k(i64* A, i64 i) {\nA[i + 0] = A[i + 0] + 1;\n}";

    for round in 0..24u32 {
        match round % 4 {
            0 => {
                // Duplicate in-flight tag: a slow tagged compile, then the
                // same tag again in the same burst. Exactly one OK and one
                // `ERR tag=<tag> kind=proto`, first request undisturbed.
                let tag = format!("dup{round}");
                let heavy = slow_kernel(&format!("h{round}"));
                let first = CompileRequest {
                    timeout_ms: Some(60_000),
                    tag: Some(tag.clone()),
                    ..CompileRequest::new(&heavy)
                };
                let second = CompileRequest { tag: Some(tag.clone()), ..CompileRequest::new(src) };
                let burst = format!("{}\n{}\n", first.to_line(), second.to_line());
                stream.write_all(burst.as_bytes()).unwrap();
                let responses = read_responses(&mut reader, 2);
                let errs: Vec<_> = responses.iter().filter(|r| !r.ok).collect();
                assert_eq!(errs.len(), 1, "round {round}: {responses:?}");
                assert_eq!(errs[0].error, Some(ErrorKind::Proto));
                assert_eq!(errs[0].tag(), Some(tag.as_str()), "offending tag echoed");
                assert!(errs[0].payload.contains("already in flight"), "{}", errs[0].payload);
                let ok = responses.iter().find(|r| r.ok).unwrap();
                assert_eq!(ok.tag(), Some(tag.as_str()));
                assert!(ok.payload.contains(&format!("@h{round}")), "first request compiled");
            }
            1 => {
                // Missing and malformed tags: every line draws one typed
                // proto error; the connection keeps serving.
                let bads = [
                    format!("COMPILE tag= src={}", escape(src)),
                    format!("COMPILE tag={} src={}", "y".repeat(MAX_TAG_LEN + 1), escape(src)),
                    format!("COMPILE tag=sp%ce src={}", escape(src)),
                    format!("COMPILE tag=a\\b src={}", escape(src)),
                ];
                stream.write_all(bads.join("\n").as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                for (i, r) in read_responses(&mut reader, bads.len()).iter().enumerate() {
                    assert!(!r.ok, "bad tag {i} accepted: {r:?}");
                    assert_eq!(r.error, Some(ErrorKind::Proto), "typed kind for bad tag {i}");
                }
            }
            2 => {
                // Interleaved partial frames: 8 uniquely tagged compiles of
                // 8 distinct kernels, the whole burst torn into 1–24-byte
                // writes. Reassembly must answer each tag exactly once with
                // the matching kernel — proof against response mixups.
                let mut burst = String::new();
                for i in 0..8u32 {
                    let name = format!("k{round}x{i}");
                    let req = CompileRequest {
                        tag: Some(format!("t{round}x{i}")),
                        ..CompileRequest::new(&format!(
                            "kernel {name}(i64* A, i64 i) {{\nA[i + 0] = A[i + 0] + {i};\n}}"
                        ))
                    };
                    burst.push_str(&req.to_line());
                    burst.push('\n');
                }
                let bytes = burst.as_bytes();
                let mut at = 0;
                while at < bytes.len() {
                    let n = rng.gen_range(1..24usize).min(bytes.len() - at);
                    stream.write_all(&bytes[at..at + n]).unwrap();
                    stream.flush().unwrap();
                    at += n;
                    if rng.gen_bool(0.2) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                let responses = read_responses(&mut reader, 8);
                let mut seen = std::collections::HashSet::new();
                for r in &responses {
                    assert!(r.ok, "{r:?}");
                    let tag = r.tag().expect("tagged in, tagged out").to_string();
                    let i: u32 = tag.rsplit('x').next().unwrap().parse().unwrap();
                    assert!(
                        r.payload.contains(&format!("@k{round}x{i}")),
                        "tag {tag} answered with the wrong kernel: {}",
                        r.payload.lines().next().unwrap_or("")
                    );
                    assert!(seen.insert(tag), "tag answered twice: {responses:?}");
                }
                assert_eq!(seen.len(), 8);
            }
            _ => {
                // Random structural mutations of tagged lines: one line,
                // one response, typed on rejection.
                let stock =
                    CompileRequest { tag: Some(format!("m{round}")), ..CompileRequest::new(src) }
                        .to_line();
                let line = mutate(&mut rng, &stock).replace(['\n', '\r'], " ");
                if line.trim().is_empty() {
                    continue;
                }
                stream.write_all(line.as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                let r = &read_responses(&mut reader, 1)[0];
                if !r.ok {
                    assert!(r.error.is_some(), "untyped ERR for {line:?}");
                }
            }
        }
    }

    // The pipelined connection survived every mutation category.
    stream.write_all(b"PING\n").unwrap();
    assert_eq!(read_responses(&mut reader, 1)[0].payload, "pong");
    let mut ctl = Client::connect(addr).unwrap();
    ctl.set_timeout(Some(Duration::from_secs(30))).unwrap();
    ctl.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}
