//! Protocol-robustness fuzzing for `lslpd`: random and structurally
//! mutated request lines, at the parser level and over a real socket.
//!
//! Invariants under test:
//!
//! * `parse_request`/`unescape`/`Response::parse` never panic, whatever
//!   the input (the functions are total over `&str`);
//! * every parser rejection renders as a typed `ERR kind=proto` line that
//!   round-trips through `Response::parse`;
//! * the live server answers *every* line — random garbage, truncated
//!   escapes, oversized payloads, unknown options, interleaved `HELLO`s —
//!   with exactly one well-formed response, and keeps serving afterwards.

use std::time::Duration;

use lslp_server::protocol::{escape, parse_request, unescape, CompileRequest, ErrorKind, Response};
use lslp_server::{Client, Server, ServerConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Deterministic seed: failures reproduce anywhere.
const SEED: u64 = 0x5150_F022;

/// A printable-ish random line (no `\n`/`\r`: framing is the reader's
/// job, one line per request is the contract being fuzzed).
fn random_line(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..200usize);
    (0..len)
        .map(|_| {
            // Bias toward protocol-relevant bytes so mutations reach deep
            // into the option parser instead of dying at the verb.
            match rng.gen_range(0..10u32) {
                0 => '=',
                1 => ' ',
                2 => '\\',
                3..=5 => (b'a' + rng.gen_range(0..26u8)) as char,
                6 => (b'A' + rng.gen_range(0..26u8)) as char,
                7 => (b'0' + rng.gen_range(0..10u8)) as char,
                _ => char::from_u32(rng.gen_range(0x21..0x7f)).unwrap_or('?'),
            }
        })
        .collect()
}

/// A valid COMPILE line with randomized fields, as mutation stock.
fn valid_line(rng: &mut StdRng) -> String {
    let configs = ["LSLP", "SLP", "O3", "LSLP-LA4"];
    let req = CompileRequest {
        config: configs[rng.gen_range(0..configs.len())].into(),
        target: if rng.gen_bool(0.5) { Some("sse4.2".into()) } else { None },
        pipeline: rng.gen_bool(0.5),
        guard: if rng.gen_bool(0.3) { Some("strict".into()) } else { None },
        timeout_ms: if rng.gen_bool(0.3) { Some(rng.gen_range(1..1000u64)) } else { None },
        src: "kernel k(i64* A, i64 i) {\nA[i + 0] = A[i + 0] + 1;\n}".into(),
        ..CompileRequest::default()
    };
    req.to_line()
}

/// Structurally mutate a valid line: truncations (possibly mid-escape),
/// unknown options, verb damage, duplicated keys, planted bad escapes.
fn mutate(rng: &mut StdRng, line: &str) -> String {
    let mut s = line.to_string();
    for _ in 0..rng.gen_range(1..4usize) {
        match rng.gen_range(0..8u32) {
            0 => {
                // Truncate anywhere (all-ASCII stock), happily splitting
                // an escape pair.
                let at = rng.gen_range(0..=s.len());
                s.truncate(at);
            }
            1 => s.push('\\'), // trailing lone backslash
            2 => s = s.replacen("COMPILE", "COMPILE frob=1", 1),
            3 => s = s.replace("config=", "konfig="),
            4 => s = s.replacen("src=", "src=\\q", 1), // unknown escape
            5 => s = format!("{} pipeline=2", s),      // duplicate, bad value
            6 => {
                let at = rng.gen_range(0..=s.len());
                s.insert(at.min(s.len()), ['=', ' ', '\\'][rng.gen_range(0..3usize)]);
            }
            _ => {
                if !s.is_empty() {
                    let at = rng.gen_range(0..s.len());
                    s.remove(at);
                }
            }
        }
    }
    s
}

/// Parser-level fuzz: total functions, typed errors. No sockets, so this
/// leg affords a large iteration count.
#[test]
fn parser_survives_random_and_mutated_lines() {
    let mut rng = StdRng::seed_from_u64(SEED);
    for i in 0..4000 {
        let line = if i % 2 == 0 {
            random_line(&mut rng)
        } else {
            let stock = valid_line(&mut rng);
            mutate(&mut rng, &stock)
        };
        // Must not panic; on rejection the message must fit on an ERR line.
        if let Err(msg) = parse_request(&line) {
            let err = Response::err_line(ErrorKind::Proto, &msg);
            let parsed = Response::parse(&err)
                .unwrap_or_else(|e| panic!("ERR line for {line:?} unparseable: {e}"));
            assert!(!parsed.ok);
            assert_eq!(parsed.error, Some(ErrorKind::Proto), "typed kind for {line:?}");
            assert_eq!(parsed.payload, msg, "message survives the wire for {line:?}");
        }
        // unescape is total too, and escape/unescape round-trips.
        let _ = unescape(&line);
        assert_eq!(unescape(&escape(&line)).as_deref(), Ok(line.as_str()));
        // Response::parse is total over garbage as well.
        let _ = Response::parse(&line);
    }
}

/// Live-socket fuzz: the daemon answers every line with one well-formed
/// response and keeps serving. Interleaves valid HELLOs, bad HELLOs,
/// oversized payloads, and garbage on one connection.
#[test]
fn server_answers_every_mutated_line() {
    let cfg = ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServerConfig::default() };
    let (addr, daemon) = Server::spawn(cfg).unwrap();
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);

    for i in 0..120 {
        let line = match i % 5 {
            0 => random_line(&mut rng),
            1 | 2 => {
                let stock = valid_line(&mut rng);
                mutate(&mut rng, &stock)
            }
            3 => format!("HELLO proto={}", rng.gen_range(0..4u32)),
            _ => {
                // Oversized-but-escaped payload: a legal line the parser
                // must absorb without truncation or stack abuse.
                let big = "x".repeat(rng.gen_range(64..256usize) * 1024);
                format!("COMPILE src={}", escape(&big))
            }
        };
        let line = line.replace(['\n', '\r'], " "); // keep one-line framing
        if line.trim().is_empty() || line.trim() == "SHUTDOWN" {
            continue; // an empty send would read as connection close
        }
        let resp =
            client.roundtrip(&line).unwrap_or_else(|e| panic!("no response to {line:?}: {e}"));
        if !resp.ok {
            assert!(resp.error.is_some(), "ERR without a typed kind for {line:?}");
        }
    }

    // The connection and the daemon both survived the abuse.
    assert_eq!(client.ping().unwrap().payload, "pong");
    let r = client.compile(&CompileRequest::new("kernel k(i64* A, i64 i) { A[i + 0] = 1; }"));
    assert!(r.unwrap().ok, "server still compiles after the fuzz run");
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}
