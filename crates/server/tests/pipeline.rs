//! End-to-end tests for the protocol-v4 pipelining path: one connection
//! carrying many tagged in-flight `COMPILE`s (out-of-order completion,
//! duplicate-tag rejection, FIFO preserved for untagged traffic), a
//! mid-burst `SHUTDOWN` drain, and the pooled `compile_many` client.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use lslp_server::protocol::{CompileRequest, ErrorKind, Response};
use lslp_server::{Client, Pool, PoolConfig, RetryPolicy, Server, ServerConfig};

const SRC: &str = "kernel k(f64* A, f64* B, i64 i) {
    A[i+0] = B[i+0] * B[i+0];
    A[i+1] = B[i+1] * B[i+1];
    A[i+2] = B[i+2] * B[i+2];
    A[i+3] = B[i+3] * B[i+3];
}";

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_capacity: 256,
        pipeline_depth: 64,
        ..ServerConfig::default()
    }
}

/// A big-but-valid kernel: `groups` chains of 4 consecutive stores with
/// commutative fodder, slow enough that cheap requests overtake it.
fn big_kernel(name: &str, groups: usize) -> String {
    let mut src = format!("kernel {name}(f64* A, f64* B, f64* C, i64 i) {{\n");
    for g in 0..groups {
        for l in 0..4 {
            let idx = g * 4 + l;
            src.push_str(&format!(
                "  A[i+{idx}] = (B[i+{idx}] * C[i+{idx}] + B[i+{idx}]) * (C[i+{idx}] + {g}.0);\n"
            ));
        }
    }
    src.push('}');
    src
}

/// A small kernel unique to `n` (cache-miss fodder).
fn small_kernel(n: usize) -> String {
    format!(
        "kernel s{n}(f64* A, f64* B, i64 i) {{\n  A[i+0] = B[i+0] + {n}.0;\n  A[i+1] = B[i+1] + {n}.0;\n}}"
    )
}

/// Raw pipelining harness: write every line in one burst, then read
/// until `expected` responses arrived. Returns them in arrival order.
fn burst(stream: &mut TcpStream, lines: &[String], expected: usize) -> Vec<Response> {
    let mut payload = String::new();
    for l in lines {
        payload.push_str(l);
        payload.push('\n');
    }
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut responses = Vec::with_capacity(expected);
    let mut line = String::new();
    while responses.len() < expected {
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "server closed early: got {}/{expected} responses", responses.len());
        responses.push(Response::parse(&line).unwrap());
    }
    responses
}

#[test]
fn sixty_four_pipelined_compiles_are_tag_matched_and_complete_out_of_order() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();

    // Prime the cache so a slice of the burst are hits.
    let mut warm = Client::connect(addr).unwrap();
    warm.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let hit_req = CompileRequest::new(SRC);
    let primed = warm.compile(&hit_req).unwrap();
    assert!(primed.ok, "{primed:?}");

    // 64 tagged requests on ONE connection: t0 is a heavy miss, a third
    // are cache hits, the rest are distinct misses, and a few carry
    // timeout-ms=0 (budget-exhausting: they must degrade, not stall).
    let heavy = big_kernel("heavy", 96);
    let mut lines = Vec::new();
    let mut kinds: HashMap<String, &str> = HashMap::new();
    for i in 0..64usize {
        let tag = format!("t{i}");
        let (kind, mut req) = if i == 0 {
            ("heavy", CompileRequest { timeout_ms: Some(60_000), ..CompileRequest::new(&heavy) })
        } else if i % 3 == 0 {
            ("hit", hit_req.clone())
        } else if i % 13 == 0 {
            (
                "budget",
                CompileRequest { timeout_ms: Some(0), ..CompileRequest::new(&small_kernel(i)) },
            )
        } else {
            ("miss", CompileRequest::new(&small_kernel(i)))
        };
        req.tag = Some(tag.clone());
        kinds.insert(tag, kind);
        lines.push(req.to_line());
    }

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let responses = burst(&mut stream, &lines, 64);

    // Every response is OK, tagged, and every tag is answered exactly once.
    let mut seen = HashMap::new();
    for r in &responses {
        assert!(r.ok, "{r:?}");
        let tag = r.tag().expect("v4 responses echo the tag").to_string();
        assert!(kinds.contains_key(&tag), "unknown tag {tag}");
        *seen.entry(tag.clone()).or_insert(0u32) += 1;
        match kinds[&tag] {
            "hit" => {
                assert_eq!(r.field("cached"), Some("hit"), "{r:?}");
                assert_eq!(r.payload, primed.payload, "hits serve byte-identical output");
            }
            "heavy" | "budget" | "miss" => {
                assert!(r.payload.contains("kernel") || r.payload.contains('@'), "{r:?}")
            }
            _ => unreachable!(),
        }
    }
    assert_eq!(seen.len(), 64, "all 64 tags answered");
    assert!(seen.values().all(|&c| c == 1), "no tag answered twice: {seen:?}");

    // Out-of-order completion: the heavy t0 was sent first but cheap
    // requests overtake it on other workers.
    let t0_pos = responses.iter().position(|r| r.tag() == Some("t0")).unwrap();
    assert!(t0_pos > 0, "heavy first request must not finish first (pipelining is live)");

    let mut ctl = Client::connect(addr).unwrap();
    ctl.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let stats = ctl.stats().unwrap();
    assert!(stats.payload.contains("pipeline-depth-hwm="), "{}", stats.payload);
    let net_row = stats.payload.lines().find(|l| l.trim_start().starts_with("net:")).unwrap();
    let hwm: u64 = net_row
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("pipeline-depth-hwm="))
        .unwrap()
        .parse()
        .unwrap();
    assert!(hwm >= 8, "the burst drove a deep pipeline (hwm={hwm})");
    ctl.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn untagged_burst_keeps_strict_fifo_order() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    // Slow first request, then quick ones: responses must still come
    // back in send order (the v1–v3 contract, via the reorder buffer).
    let heavy = big_kernel("h2", 64);
    let mut lines =
        vec![CompileRequest { timeout_ms: Some(60_000), ..CompileRequest::new(&heavy) }.to_line()];
    for i in 0..15usize {
        lines.push(CompileRequest::new(&small_kernel(100 + i)).to_line());
    }
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let responses = burst(&mut stream, &lines, 16);
    assert!(responses.iter().all(|r| r.ok), "{responses:?}");
    assert!(responses.iter().all(|r| r.tag().is_none()), "untagged in, untagged out");
    assert!(
        responses[0].payload.contains("@h2"),
        "first response answers the first (heavy) request despite finishing last"
    );
    for (i, r) in responses.iter().enumerate().skip(1) {
        assert!(
            r.payload.contains(&format!("@s{}", 99 + i)),
            "response {i} out of order: {}",
            r.payload.lines().next().unwrap_or("")
        );
    }
    let mut ctl = Client::connect(addr).unwrap();
    ctl.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn duplicate_inflight_tag_is_rejected_typed_and_first_still_answers() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    let heavy = big_kernel("h3", 64);
    let mut first = CompileRequest { timeout_ms: Some(60_000), ..CompileRequest::new(&heavy) };
    first.tag = Some("dup".into());
    let mut second = CompileRequest::new(SRC);
    second.tag = Some("dup".into());
    // One write burst: the duplicate arrives while the first is in
    // flight, deterministically.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let responses = burst(&mut stream, &[first.to_line(), second.to_line()], 2);
    let errs: Vec<_> = responses.iter().filter(|r| !r.ok).collect();
    let oks: Vec<_> = responses.iter().filter(|r| r.ok).collect();
    assert_eq!(errs.len(), 1, "{responses:?}");
    assert_eq!(oks.len(), 1, "{responses:?}");
    assert_eq!(errs[0].error, Some(ErrorKind::Proto));
    assert_eq!(errs[0].tag(), Some("dup"), "the offending tag is echoed");
    assert!(errs[0].payload.contains("already in flight"), "{}", errs[0].payload);
    assert_eq!(oks[0].tag(), Some("dup"));
    assert!(oks[0].payload.contains("@h3"), "the first request still compiles");
    let mut ctl = Client::connect(addr).unwrap();
    ctl.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn tags_require_protocol_four() {
    // A connection that negotiated v3 sends a tagged compile: typed
    // proto error echoing the tag, connection stays usable.
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut tagged = CompileRequest::new(SRC);
    tagged.tag = Some("t0".into());
    let responses = burst(
        &mut stream,
        &["HELLO proto=3".to_string(), tagged.to_line(), CompileRequest::new(SRC).to_line()],
        3,
    );
    assert!(responses[0].ok, "{:?}", responses[0]);
    assert_eq!(responses[1].error, Some(ErrorKind::Proto), "{:?}", responses[1]);
    assert_eq!(responses[1].tag(), Some("t0"));
    assert!(responses[1].payload.contains("requires protocol 4"), "{}", responses[1].payload);
    assert!(responses[2].ok, "untagged traffic unaffected: {:?}", responses[2]);
    let mut ctl = Client::connect(addr).unwrap();
    ctl.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn mid_burst_shutdown_drains_cleanly() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();

    // 32 tagged compiles in flight, then SHUTDOWN arrives on another
    // connection mid-burst.
    let mut payload = String::new();
    for i in 0..32usize {
        let mut req = CompileRequest::new(&small_kernel(200 + i));
        req.tag = Some(format!("t{i}"));
        payload.push_str(&req.to_line());
        payload.push('\n');
    }
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();

    let mut ctl = Client::connect(addr).unwrap();
    ctl.set_timeout(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(ctl.shutdown().unwrap().payload, "draining");

    // Every request already admitted is answered (OK or a typed
    // shutdown rejection for the ones that arrived after the drain
    // began); then the server closes the connection; then the daemon
    // exits cleanly. No hangs, no dropped tags.
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut seen = HashMap::new();
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // drained and closed
            Ok(_) => {
                let r = Response::parse(&line).unwrap();
                let tag = r.tag().expect("every burst response is tagged").to_string();
                *seen.entry(tag).or_insert(0u32) += 1;
                if !r.ok {
                    assert_eq!(
                        r.error,
                        Some(ErrorKind::Shutdown),
                        "only shutdown rejections are acceptable: {r:?}"
                    );
                }
            }
            Err(e) => panic!("read failed while draining: {e}"),
        }
    }
    assert_eq!(seen.len(), 32, "every tag answered before close: {seen:?}");
    assert!(seen.values().all(|&c| c == 1));
    daemon.join().unwrap().unwrap();
}

#[test]
fn pooled_compile_many_fans_out_and_preserves_input_order() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    let pool = Pool::new(PoolConfig { max_size: 4, ..PoolConfig::new(addr.to_string()) });

    let reqs: Vec<CompileRequest> =
        (0..24).map(|i| CompileRequest::new(&small_kernel(300 + i))).collect();
    let policy = RetryPolicy { deadline: Some(Duration::from_secs(60)), ..RetryPolicy::default() };
    let outcomes = pool.compile_many(&reqs, 8, &policy);
    assert_eq!(outcomes.len(), 24);
    for (i, o) in outcomes.iter().enumerate() {
        assert!(o.is_ok(), "request {i}: {o:?}");
        let r = o.response.as_ref().unwrap();
        assert!(
            r.payload.contains(&format!("@s{}", 300 + i)),
            "outcome {i} matches its request: {}",
            r.payload.lines().next().unwrap_or("")
        );
        assert!(o.elapsed > Duration::ZERO);
    }
    let created = pool.counters().created.load(std::sync::atomic::Ordering::Relaxed);
    assert!(created <= 4, "pool respects max_size (created={created})");

    // A second batch re-uses pooled connections.
    let again = pool.compile_many(&reqs[..8], 4, &policy);
    assert!(again.iter().all(|o| o.is_ok()));
    assert!(
        again.iter().all(|o| o.response.as_ref().unwrap().field("cached") == Some("hit")),
        "second batch is served from cache"
    );
    assert!(
        pool.counters().reused.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "connections were re-used"
    );

    let mut ctl = Client::connect(addr).unwrap();
    ctl.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn pool_evicts_broken_and_reaps_idle_connections() {
    let (addr, daemon) = Server::spawn(test_config()).unwrap();
    let pool = Pool::new(PoolConfig {
        max_size: 2,
        idle_timeout: Duration::from_millis(50),
        health_check_after: Duration::from_millis(10),
        ..PoolConfig::new(addr.to_string())
    });

    // Broken eviction: a marked connection is dropped, not pooled.
    {
        let mut c = pool.acquire().unwrap();
        assert!(c.ping().unwrap().ok);
        c.mark_broken();
    }
    assert_eq!(pool.counters().evicted_broken.load(std::sync::atomic::Ordering::Relaxed), 1);

    // Idle reaping: a pooled connection past idle_timeout is closed on
    // the next acquire and replaced by a fresh dial.
    {
        let _c = pool.acquire().unwrap();
    }
    std::thread::sleep(Duration::from_millis(80));
    {
        let mut c = pool.acquire().unwrap();
        assert!(c.ping().unwrap().ok, "fresh connection works");
    }
    assert!(
        pool.counters().reaped_idle.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "idle connection was reaped"
    );

    // Health-checked reuse: a pooled connection idle past
    // health_check_after (but under idle_timeout) is PINGed before reuse.
    std::thread::sleep(Duration::from_millis(20));
    {
        let mut c = pool.acquire().unwrap();
        assert!(c.ping().unwrap().ok);
    }
    assert!(
        pool.counters().health_checks.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "stale connection was health-checked before reuse"
    );

    let mut ctl = Client::connect(addr).unwrap();
    ctl.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}
