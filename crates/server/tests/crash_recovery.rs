//! Crash-recovery end-to-end test: a real `lslpd` process is populated,
//! killed with SIGKILL (no drain, no flush — the crash the persistent
//! tier is built for), damaged on disk, and restarted. The restart must
//! come up warm, quarantine the damaged entry instead of failing, and
//! serve byte-identical artifacts for the surviving one.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use lslp_server::protocol::CompileRequest;
use lslp_server::Client;

const SRC_A: &str = "kernel ka(f64* A, f64* B, i64 i) {
    A[i+0] = B[i+0] * B[i+0];
    A[i+1] = B[i+1] * B[i+1];
    A[i+2] = B[i+2] * B[i+2];
    A[i+3] = B[i+3] * B[i+3];
}";

const SRC_B: &str = "kernel kb(f64* A, f64* B, i64 i) {
    A[i+0] = B[i+0] + 1.0;
    A[i+1] = B[i+1] + 2.0;
    A[i+2] = B[i+2] + 3.0;
    A[i+3] = B[i+3] + 4.0;
}";

/// A request whose key material is identical across daemon generations
/// (the budget participates in the cache key, so pin it).
fn request(src: &str) -> CompileRequest {
    CompileRequest { timeout_ms: Some(60_000), ..CompileRequest::new(src) }
}

/// Start the real `lslpd` binary on a free port with the given cache dir,
/// parse the bound address off its stderr banner, and keep draining the
/// rest of its stderr so the daemon can never block on a full pipe.
fn spawn_daemon(dir: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lslpd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--cache-dir",
            dir.to_str().expect("utf-8 temp path"),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lslpd");
    let mut reader = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read lslpd stderr");
        assert!(n > 0, "lslpd exited before printing its address");
        if let Some(rest) = line.trim().strip_prefix("lslpd: serving on ") {
            break rest.to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    (child, addr)
}

fn connect(addr: &str) -> Client {
    let mut client = Client::connect(addr).expect("connect to lslpd");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    client
}

#[test]
fn kill_dash_nine_restart_comes_up_warm_and_quarantines_damage() {
    let dir = std::env::temp_dir().join(format!("lslp-crash-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Generation 1: populate two entries, then die without any shutdown.
    let (mut child, addr) = spawn_daemon(&dir);
    let mut client = connect(&addr);
    let a1 = client.compile(&request(SRC_A)).unwrap();
    let b1 = client.compile(&request(SRC_B)).unwrap();
    assert!(a1.ok && b1.ok, "{a1:?} {b1:?}");
    let b_key = b1.field("key").expect("key field").to_string();
    drop(client);
    child.kill().expect("SIGKILL lslpd");
    child.wait().expect("reap killed lslpd");

    // The entries survived the kill (they were written via atomic rename
    // before the responses went out).
    let entries = dir.join("entries");
    assert!(entries.join(format!("{b_key}.entry")).is_file(), "entry on disk after kill -9");

    // Flip a byte in entry B's payload: bit-rot / torn write.
    let victim = entries.join(format!("{b_key}.entry"));
    let mut bytes = std::fs::read(&victim).unwrap();
    let at = bytes.len() - 2;
    bytes[at] ^= 0xff;
    std::fs::write(&victim, &bytes).unwrap();

    // Generation 2: must start (damage is quarantined, not fatal), report
    // the warm/quarantined split, and serve identical bytes for A.
    let (mut child, addr) = spawn_daemon(&dir);
    let mut client = connect(&addr);

    let stats = client.stats().unwrap();
    assert!(
        stats.payload.contains("persist: enabled=1 warm=1 quarantined=1"),
        "one survivor, one quarantined:\n{}",
        stats.payload
    );

    let a2 = client.compile(&request(SRC_A)).unwrap();
    assert_eq!(a2.field("cached"), Some("hit"), "survivor served warm: {a2:?}");
    assert_eq!(a2.payload, a1.payload, "byte-identical artifact across kill -9");

    // The damaged entry is a miss — recompiled, same bytes as before, and
    // the quarantine file is preserved for inspection.
    let b2 = client.compile(&request(SRC_B)).unwrap();
    assert_eq!(b2.field("cached"), Some("miss"), "{b2:?}");
    assert_eq!(b2.payload, b1.payload, "recompile reproduces the artifact");
    assert!(
        dir.join("quarantine").join(format!("{b_key}.entry")).is_file(),
        "damaged entry moved aside, not deleted"
    );

    // Health is ready — a quarantine is recovery working, not degradation.
    let h = client.health().unwrap();
    assert_eq!(h.field("degraded"), Some("0"), "{h:?}");

    assert_eq!(client.shutdown().unwrap().payload, "draining");
    let status = child.wait().expect("wait for drained lslpd");
    assert!(status.success(), "clean exit after drain: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_kill_while_warm_keeps_the_cache_consistent() {
    // Crash-loop resilience: kill a *warmed* daemon (whose memory cache was
    // seeded from disk) and verify the next generation still recovers — the
    // warm-load path must not rewrite or damage the disk tier.
    let dir = std::env::temp_dir().join(format!("lslp-crashloop-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (mut child, addr) = spawn_daemon(&dir);
    let mut client = connect(&addr);
    let first = client.compile(&request(SRC_A)).unwrap();
    assert!(first.ok);
    drop(client);
    child.kill().unwrap();
    child.wait().unwrap();

    for generation in 2..4 {
        let (mut child, addr) = spawn_daemon(&dir);
        let mut client = connect(&addr);
        let r = client.compile(&request(SRC_A)).unwrap();
        assert_eq!(r.field("cached"), Some("hit"), "generation {generation}: {r:?}");
        assert_eq!(r.payload, first.payload, "generation {generation} artifact drifted");
        drop(client);
        child.kill().unwrap();
        child.wait().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
