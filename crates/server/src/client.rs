//! A blocking `lslpd` client: one request line out, one response line in.
//!
//! Used by `lslpc --serve`-adjacent tooling, the integration tests, and
//! the `serve_throughput` load generator.
//!
//! Two layers:
//!
//! * the plain calls ([`Client::compile`], [`Client::stats`], ...) do one
//!   roundtrip and surface every failure to the caller;
//! * [`Client::compile_with_retry`] / [`Client::retry_line`] add the
//!   resilience the chaos layer assumes clients have — a per-operation
//!   wall-clock deadline, jittered exponential backoff on `overload`
//!   rejections, and transparent reconnect-on-broken-pipe — governed by a
//!   [`RetryPolicy`] and reported through a [`RetryOutcome`] so load
//!   generators can surface attempt/reconnect/gave-up counts.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::chaos::splitmix64;
use crate::protocol::{CompileRequest, ErrorKind, Response, PROTOCOL_VERSION};

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The daemon's address, kept for reconnect-on-broken-pipe.
    peer: SocketAddr,
    /// The configured read timeout, re-applied after a reconnect.
    timeout: Option<Duration>,
}

/// Client-side failure: transport error or an unparseable response.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something that is not a protocol response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// How [`Client::retry_line`] behaves under failure.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Additional attempts after the first (so `max_retries = 0` means
    /// exactly one attempt).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Wall-clock budget for the whole operation, including backoff
    /// sleeps and the time spent waiting for responses (`None` = no
    /// deadline). When set, it is also installed as the read timeout.
    pub deadline: Option<Duration>,
    /// Jitter seed: backoff delays are deterministic per seed, so load
    /// tests with a fixed seed are reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(200),
            deadline: Some(Duration::from_secs(10)),
            seed: 0x5ca1ab1e,
        }
    }
}

/// What a retried operation amounted to.
#[derive(Debug)]
pub struct RetryOutcome {
    /// The final response — `OK` or a non-retryable `ERR` — or the last
    /// retryable `ERR` when the budget ran out; `None` when every attempt
    /// died on the transport.
    pub response: Option<Response>,
    /// Total attempts made (≥ 1).
    pub attempts: u32,
    /// Successful reconnects after transport failures.
    pub reconnects: u32,
    /// The retry budget or deadline ran out while the operation was still
    /// failing retryably.
    pub gave_up: bool,
    /// Wall clock from first attempt to final outcome (backoffs
    /// included), for latency accounting in load generators.
    pub elapsed: Duration,
}

impl RetryOutcome {
    /// Did the operation end in an `OK` response?
    pub fn is_ok(&self) -> bool {
        self.response.as_ref().is_some_and(|r| r.ok)
    }
}

/// Is this response worth retrying? `overload` is the queue shedding load
/// (the server explicitly asks for backoff), and the worker-lost internal
/// error is transient by construction — the watchdog is respawning the
/// worker that died holding the request.
fn retryable(resp: &Response) -> bool {
    match resp.error {
        Some(ErrorKind::Overload) => true,
        Some(ErrorKind::Internal) => resp.payload.contains("worker dropped the request"),
        _ => false,
    }
}

impl Client {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr()?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, peer, timeout: None })
    }

    /// Bound how long [`Client::roundtrip`] may block waiting for a
    /// response (`None` = wait forever, the default). Survives
    /// [`Client::reconnect`].
    ///
    /// # Errors
    ///
    /// Propagates `set_read_timeout` failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.timeout = timeout;
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Drop the (possibly broken) connection and dial the daemon again,
    /// re-applying the configured read timeout.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (e.g. the daemon is mid-restart).
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.peer)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.timeout)?;
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        Ok(())
    }

    /// Send one raw request line (no trailing newline) and read the
    /// response line.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure (including a server that
    /// closed mid-request), [`ClientError::Protocol`] on a malformed
    /// response.
    pub fn roundtrip(&mut self, line: &str) -> Result<Response, ClientError> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Response::parse(&response).map_err(ClientError::Protocol)
    }

    /// Pipelining: send one request line without waiting for the
    /// response. Pair with [`Client::recv_line_step`]; on a v4 server,
    /// tagged requests may be answered out of order.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Pipelining: send a pre-rendered batch of `\n`-terminated request
    /// lines in one write, so a window refill costs one syscall instead
    /// of one per request.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_batch(&mut self, batch: &str) -> std::io::Result<()> {
        debug_assert!(batch.is_empty() || batch.ends_with('\n'), "batches are newline-terminated");
        self.writer.write_all(batch.as_bytes())?;
        self.writer.flush()
    }

    /// Pipelining: is a complete response line already sitting in the read
    /// buffer? When true, [`Client::recv_line_step`] returns it without
    /// touching the socket — the drain loop of a pipelined client uses
    /// this to consume a whole burst of responses on one read syscall.
    pub fn has_buffered_response(&self) -> bool {
        self.reader.buffer().contains(&b'\n')
    }

    /// Pipelining: try to read one response line, accumulating partial
    /// bytes in `buf` across read-timeout ticks so a slow response is
    /// never torn. Returns `Ok(None)` on a read timeout (call again),
    /// `Ok(Some(..))` when a full line arrived (`buf` is cleared).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure or EOF,
    /// [`ClientError::Protocol`] on a malformed response line.
    pub fn recv_line_step(&mut self, buf: &mut String) -> Result<Option<Response>, ClientError> {
        match self.reader.read_line(buf) {
            Ok(0) => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            Ok(_) => {
                if buf.ends_with('\n') {
                    let parsed = Response::parse(buf).map_err(ClientError::Protocol)?;
                    buf.clear();
                    Ok(Some(parsed))
                } else {
                    // `read_line` only stops short of a newline at EOF.
                    Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed mid-response",
                    )))
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// [`Client::roundtrip`] with resilience: retry `overload` rejections
    /// and transient worker-lost errors with jittered exponential backoff,
    /// reconnect and retry on transport failure, and give up at the retry
    /// budget or wall-clock deadline. Never returns an error: transport
    /// death after all retries is `response: None, gave_up: true`.
    pub fn retry_line(&mut self, line: &str, policy: &RetryPolicy) -> RetryOutcome {
        let started = Instant::now();
        if policy.deadline.is_some() {
            let _ = self.set_timeout(policy.deadline);
        }
        let mut attempts = 0u32;
        let mut reconnects = 0u32;
        let mut last: Option<Response>;
        loop {
            attempts += 1;
            match self.roundtrip(line) {
                Ok(resp) => {
                    let retry = retryable(&resp);
                    last = Some(resp);
                    if !retry {
                        return RetryOutcome {
                            response: last,
                            attempts,
                            reconnects,
                            gave_up: false,
                            elapsed: started.elapsed(),
                        };
                    }
                }
                Err(ClientError::Protocol(_)) => {
                    // A garbled response is a bug, not load: don't retry.
                    return RetryOutcome {
                        response: None,
                        attempts,
                        reconnects,
                        gave_up: true,
                        elapsed: started.elapsed(),
                    };
                }
                Err(ClientError::Io(_)) => {
                    last = None;
                    // The old stream is unusable either way; if the dial
                    // fails (daemon mid-restart) the next attempt's
                    // roundtrip fails fast and we back off again.
                    if self.reconnect().is_ok() {
                        reconnects += 1;
                    }
                }
            }
            if attempts > policy.max_retries {
                return RetryOutcome {
                    response: last,
                    attempts,
                    reconnects,
                    gave_up: true,
                    elapsed: started.elapsed(),
                };
            }
            // Exponential backoff with deterministic jitter in [0.5, 1.0]×.
            let shift = (attempts - 1).min(16);
            let exp = policy.base_delay.saturating_mul(1u32 << shift).min(policy.max_delay);
            let frac = (splitmix64(policy.seed.wrapping_add(attempts as u64)) >> 11) as f64
                / (1u64 << 53) as f64;
            let delay = exp.mul_f64(0.5 + 0.5 * frac);
            if let Some(deadline) = policy.deadline {
                if started.elapsed() + delay >= deadline {
                    return RetryOutcome {
                        response: last,
                        attempts,
                        reconnects,
                        gave_up: true,
                        elapsed: started.elapsed(),
                    };
                }
            }
            std::thread::sleep(delay);
        }
    }

    /// Submit a compile request.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`]; an `ERR` response is returned as a
    /// successful [`Response`] with `ok == false`.
    pub fn compile(&mut self, req: &CompileRequest) -> Result<Response, ClientError> {
        self.roundtrip(&req.to_line())
    }

    /// Submit a compile request under a [`RetryPolicy`]; see
    /// [`Client::retry_line`].
    pub fn compile_with_retry(
        &mut self,
        req: &CompileRequest,
        policy: &RetryPolicy,
    ) -> RetryOutcome {
        self.retry_line(&req.to_line(), policy)
    }

    /// Version handshake: announce this build's
    /// [`PROTOCOL_VERSION`](crate::protocol::PROTOCOL_VERSION). An `ERR
    /// kind=proto` response means the server does not speak it.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn hello(&mut self) -> Result<Response, ClientError> {
        self.roundtrip(&format!("HELLO proto={PROTOCOL_VERSION}"))
    }

    /// Fetch the metrics dump.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.roundtrip("STATS")
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.roundtrip("PING")
    }

    /// Readiness probe: `status=ready|degraded|draining` plus worker
    /// liveness fields.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn health(&mut self) -> Result<Response, ClientError> {
        self.roundtrip("HEALTH")
    }

    /// Ask the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.roundtrip("SHUTDOWN")
    }
}
