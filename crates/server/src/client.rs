//! A blocking `lslpd` client: one request line out, one response line in.
//!
//! Used by `lslpc --serve`-adjacent tooling, the integration tests, and
//! the `serve_throughput` load generator.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{CompileRequest, Response, PROTOCOL_VERSION};

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Client-side failure: transport error or an unparseable response.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something that is not a protocol response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Bound how long [`Client::roundtrip`] may block waiting for a
    /// response (`None` = wait forever, the default).
    ///
    /// # Errors
    ///
    /// Propagates `set_read_timeout` failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one raw request line (no trailing newline) and read the
    /// response line.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure (including a server that
    /// closed mid-request), [`ClientError::Protocol`] on a malformed
    /// response.
    pub fn roundtrip(&mut self, line: &str) -> Result<Response, ClientError> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Response::parse(&response).map_err(ClientError::Protocol)
    }

    /// Submit a compile request.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`]; an `ERR` response is returned as a
    /// successful [`Response`] with `ok == false`.
    pub fn compile(&mut self, req: &CompileRequest) -> Result<Response, ClientError> {
        self.roundtrip(&req.to_line())
    }

    /// Version handshake: announce this build's
    /// [`PROTOCOL_VERSION`](crate::protocol::PROTOCOL_VERSION). An `ERR
    /// kind=proto` response means the server does not speak it.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn hello(&mut self) -> Result<Response, ClientError> {
        self.roundtrip(&format!("HELLO proto={PROTOCOL_VERSION}"))
    }

    /// Fetch the metrics dump.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.roundtrip("STATS")
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.roundtrip("PING")
    }

    /// Ask the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.roundtrip("SHUTDOWN")
    }
}
