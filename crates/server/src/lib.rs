//! # lslp-server — `lslpd`, the concurrent LSLP compile service
//!
//! A long-lived, multi-threaded compile daemon over [`lslp`]'s guarded
//! pass pipeline: SLC source in, vectorized IR (or a report) out, with a
//! line-delimited protocol ([`protocol`]), a bounded work queue with
//! rejection backpressure ([`queue`]), a worker pool where every worker
//! owns its own analysis state, and a sharded content-addressed result
//! cache ([`cache`]) so repeated traffic is served without re-running the
//! pipeline. Metrics (per-pass counters, cache hits, queue depth, latency
//! percentiles) accumulate in a [`lslp::SyncStatistics`] registry and are
//! served by the `STATS` verb ([`metrics`]).
//!
//! `std`-only by design: nonblocking `TcpListener` + `thread` (the build
//! environment has no package registry), which also keeps the concurrency
//! model auditable — one readiness-driven event-loop thread owning every
//! connection ([`net`]: poll-based registration, per-connection buffers
//! and frame decoding, protocol-v4 pipelining with tagged out-of-order
//! responses), and a supervised pool of compile workers behind the
//! queue, joined to the loop by a completion seam. The client side adds
//! a bounded connection pool with a pipelined `compile_many`
//! ([`pool`]).
//!
//! Crash safety is layered (see `docs/SERVER.md` §Recovery):
//!
//! * per-request compile budgets ride the pass guard's time-budget fuel
//!   ([`lslp::VectorizerConfig::time_budget_ms`]), so a pathological
//!   input degrades to (partially) scalar output instead of stalling a
//!   worker; panics and miscompiles inside passes are isolated by the
//!   transactional guard (`docs/GUARD.md`). The guard's default delta-log
//!   strategy means workers no longer pay a defensive whole-function
//!   clone per guarded pass and seed attempt — rollback state is the
//!   reversible mutation log inside the [`Function`](lslp_ir::Function)
//!   itself (`guard=snapshot` per request brings the old behavior back
//!   for debugging);
//! * a **watchdog** supervises the worker pool: a worker thread that
//!   dies outside a drain is respawned (`worker-restarts`), a worker
//!   busy past the stall threshold gets a supplementary worker spawned
//!   beside it (`worker-stalls`);
//! * an optional **persistent tier** ([`persist`]) mirrors the result
//!   cache to `--cache-dir` through checksummed, atomically-renamed
//!   entry files plus an append-only journal, so a restarted daemon —
//!   even after `kill -9` — starts warm, quarantining any corrupt
//!   entries instead of failing;
//! * a seeded **fault-injection layer** ([`chaos`]) drops connections,
//!   delays/drops responses, panics workers, and corrupts disk entries
//!   on demand, so all of the above is exercised by tests;
//! * the `HEALTH` verb reports `ready`/`degraded`/`draining` for probes.

#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod metrics;
pub(crate) mod net;
pub mod persist;
pub mod pool;
pub mod protocol;
pub mod queue;

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lslp::api::CompileOptions;
use lslp::{try_run_pipeline_with, try_run_vectorize_only, PipelineReport, SyncStatistics};
use lslp_analysis::AnalysisManager;

use cache::{content_key, CachedResult, ResultCache};
use chaos::{Chaos, ChaosConfig};
use metrics::LatencyReservoir;
use persist::PersistentCache;
use protocol::{CompileRequest, Emit, ErrorKind, Request, Response, PROTOCOL_VERSION};
use queue::{Bounded, PushError};

pub use client::{Client, RetryOutcome, RetryPolicy};
pub use pool::{Pool, PoolConfig};

/// Tunables for one daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Compile worker threads.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it are rejected with
    /// `ERR kind=overload`.
    pub queue_capacity: usize,
    /// Total cache entries across all shards.
    pub cache_capacity: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Default per-request compile budget (ms) when the request does not
    /// carry `timeout-ms=`.
    pub default_time_budget_ms: u64,
    /// Directory for the persistent cache tier (`None` = memory-only).
    pub cache_dir: Option<String>,
    /// Fault-injection spec (`None` = no injected faults).
    pub chaos: Option<ChaosConfig>,
    /// A worker busy on one job past this threshold is counted stalled
    /// and a supplementary worker is spawned beside it.
    pub stall_after_ms: u64,
    /// Connection limit: accepts beyond it get one `ERR kind=overload`
    /// line and are closed.
    pub max_conns: usize,
    /// Per-connection pipelining budget: a connection at this many
    /// in-flight compiles stops being read (TCP backpressure) until
    /// completions drain.
    pub pipeline_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            queue_capacity: 64,
            cache_capacity: 1024,
            cache_shards: 16,
            default_time_budget_ms: 500,
            cache_dir: None,
            chaos: None,
            stall_after_ms: 10_000,
            max_conns: 1024,
            pipeline_depth: 32,
        }
    }
}

/// One unit of compile work: the parsed request plus the completion
/// handle that routes the response back through the event loop. Dropping
/// the handle unsent (a worker panic) reports the job worker-lost.
struct Job {
    req: CompileRequest,
    done: net::Completion,
}

/// Watchdog-visible worker-pool gauges.
#[derive(Default)]
struct Supervision {
    /// Workers respawned after a panic death.
    restarts: AtomicU64,
    /// Stall incidents (worker busy past the threshold).
    stalls: AtomicU64,
    /// Workers currently alive (watchdog's last census).
    alive: AtomicU64,
}

/// State shared by the acceptor, connection threads, workers, and the
/// watchdog.
struct Shared {
    cfg: ServerConfig,
    queue: Bounded<Job>,
    cache: ResultCache,
    persist: Option<PersistentCache>,
    chaos: Option<Chaos>,
    supervision: Supervision,
    net: net::NetGauges,
    registry: SyncStatistics,
    latency: LatencyReservoir,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    /// Allocate shared state: open the persistent tier (when configured)
    /// and warm the memory cache from it.
    fn new(cfg: ServerConfig) -> Shared {
        let (persist, warm) = match &cfg.cache_dir {
            Some(dir) => {
                let (p, warm) = PersistentCache::open(std::path::Path::new(dir));
                (Some(p), warm)
            }
            None => (None, Vec::new()),
        };
        let shared = Shared {
            queue: Bounded::new(cfg.queue_capacity),
            cache: ResultCache::new(cfg.cache_capacity, cfg.cache_shards),
            persist,
            chaos: cfg.chaos.clone().filter(|c| c.is_active()).map(Chaos::new),
            supervision: Supervision::default(),
            net: net::NetGauges::default(),
            registry: SyncStatistics::new(),
            latency: LatencyReservoir::new(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            cfg,
        };
        for entry in &warm {
            // Disk already holds these; only memory (and any overflow
            // tombstones) need updating.
            tiered_insert(&shared, entry.key, &entry.material, &entry.result, false);
        }
        if let Some(p) = &shared.persist {
            let c = p.counters();
            if c.quarantined > 0 {
                shared.registry.add("server", "quarantined-entries", c.quarantined);
            }
        }
        shared
    }

    /// Has graceful shutdown been requested?
    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Insert into the memory tier and mirror the consequences to disk: the
/// new artifact is persisted (unless it came *from* disk) and any entry
/// the LRU pushed out is tombstoned in the journal so the disk tier never
/// resurrects it.
fn tiered_insert(shared: &Shared, key: u64, material: &str, result: &CachedResult, to_disk: bool) {
    // Disk before memory: an eviction can only target a key that is
    // already resident, so writing the entry file (and its `I` journal
    // record) *before* the memory insert guarantees a concurrent
    // evictor's unlink + tombstone always land after this key's write —
    // a restart can never resurrect an entry the LRU already dropped.
    // The inverse race (an entry unlinked while being re-inserted) only
    // loses a disk copy, which degrades to a cold miss, never to a
    // superset.
    if to_disk {
        if let Some(p) = &shared.persist {
            let corrupt = shared.chaos.as_ref().is_some_and(|c| c.corrupt_entry());
            p.record_insert(key, material, result, corrupt);
        }
    }
    let evicted = shared.cache.insert(key, material, result.clone());
    if let Some(victim) = evicted {
        if let Some(p) = &shared.persist {
            p.record_eviction(victim);
        }
    }
}

/// A bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and allocate the shared state (including the
    /// warm-start replay of `--cache-dir`, when configured).
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bad address, port in use). Disk problems
    /// never fail the bind — the cache degrades to memory-only instead.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(cfg));
        Ok(Server { listener, local_addr, shared })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Bind and run on a background thread; returns the address and the
    /// join handle (which resolves when the daemon has fully drained).
    ///
    /// # Errors
    ///
    /// See [`Server::bind`].
    pub fn spawn(
        cfg: ServerConfig,
    ) -> std::io::Result<(SocketAddr, JoinHandle<std::io::Result<()>>)> {
        let server = Server::bind(cfg)?;
        let addr = server.local_addr();
        Ok((addr, std::thread::spawn(move || server.run())))
    }

    /// Serve until a `SHUTDOWN` request arrives, then drain: the event
    /// loop exits once every connection is quiesced (nothing in flight,
    /// owed, or buffered), and the watchdog joins once the worker pool
    /// has drained the queue.
    ///
    /// # Errors
    ///
    /// Propagates event-loop socket/poller errors.
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, local_addr: _, shared } = self;
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || watchdog_loop(&shared))
        };
        let result = net::EventLoop::new(listener, Arc::clone(&shared))
            .and_then(|mut event_loop| event_loop.run());
        // The SHUTDOWN handler already closed the queue (waking idle
        // workers); close again for the error path, idempotently, so the
        // watchdog's drain condition can be met.
        shared.queue.close();
        let _ = watchdog.join();
        result
    }
}

/// Watchdog census interval: the upper bound on how long a panicked
/// worker's slot stays empty.
const WATCHDOG_TICK: Duration = Duration::from_millis(20);

/// Per-worker heartbeat block, shared between the worker thread and the
/// watchdog.
#[derive(Default)]
struct WorkerState {
    /// Bumped on every dequeue and every completed job.
    epoch: AtomicU64,
    /// Millis-since-server-start when the current job began; 0 = idle.
    busy_since_ms: AtomicU64,
    /// Set just before `worker_loop` returns normally (drain complete),
    /// so the watchdog can tell a drained worker from a crashed one.
    clean_exit: AtomicBool,
}

fn spawn_worker(shared: &Arc<Shared>) -> (Arc<WorkerState>, JoinHandle<()>) {
    let state = Arc::new(WorkerState::default());
    let handle = {
        let shared = Arc::clone(shared);
        let state = Arc::clone(&state);
        std::thread::spawn(move || worker_loop(&shared, &state))
    };
    (state, handle)
}

/// The self-healing supervisor: spawns the worker pool, then once per
/// tick takes a census. A worker that died without its clean-exit flag —
/// a panic, injected or real — is respawned in place while there is still
/// work to serve (`worker-restarts`); a worker stuck on one job past the
/// stall threshold gets a supplementary worker spawned beside it
/// (`worker-stalls`, pool capped at 2× configured). Returns once every
/// worker has exited and the queue is drained.
fn watchdog_loop(shared: &Arc<Shared>) {
    let configured = shared.cfg.workers.max(1);
    let mut slots: Vec<(Arc<WorkerState>, Option<JoinHandle<()>>)> =
        (0..configured).map(|_| spawn_worker(shared)).map(|(s, h)| (s, Some(h))).collect();
    let mut stall_flagged = vec![false; slots.len()];
    shared.supervision.alive.store(configured as u64, Ordering::Relaxed);
    loop {
        std::thread::sleep(WATCHDOG_TICK);
        let drained = shared.queue.is_closed() && shared.queue.is_empty();
        let now_ms = shared.started.elapsed().as_millis() as u64;
        let mut alive = 0u64;
        for i in 0..slots.len() {
            let finished = slots[i].1.as_ref().map(JoinHandle::is_finished).unwrap_or(true);
            if !finished {
                alive += 1;
                let busy = slots[i].0.busy_since_ms.load(Ordering::Relaxed);
                if busy > 0 && now_ms.saturating_sub(busy) > shared.cfg.stall_after_ms {
                    if !stall_flagged[i] {
                        stall_flagged[i] = true;
                        shared.supervision.stalls.fetch_add(1, Ordering::Relaxed);
                        shared.registry.add("server", "worker-stalls", 1);
                        if slots.len() < configured * 2 {
                            let (s, h) = spawn_worker(shared);
                            slots.push((s, Some(h)));
                            stall_flagged.push(false);
                        }
                    }
                } else if busy == 0 {
                    stall_flagged[i] = false;
                }
                continue;
            }
            if let Some(handle) = slots[i].1.take() {
                // Collect the thread (and swallow its panic payload — the
                // panic is the fault we are healing from).
                let _ = handle.join();
                if !slots[i].0.clean_exit.load(Ordering::Relaxed) && !drained {
                    shared.supervision.restarts.fetch_add(1, Ordering::Relaxed);
                    shared.registry.add("server", "worker-restarts", 1);
                    let (s, h) = spawn_worker(shared);
                    slots[i] = (s, Some(h));
                    stall_flagged[i] = false;
                    alive += 1;
                }
            }
        }
        shared.supervision.alive.store(alive, Ordering::Relaxed);
        if alive == 0 && drained {
            return;
        }
    }
}

/// Answer a control verb synchronously (the event loop serializes the
/// response through the connection's reorder buffer so control answers
/// keep their place among in-flight untagged compiles).
fn control_response(request: &Request, shared: &Shared) -> String {
    match request {
        Request::Hello { proto } => {
            // Every protocol revision so far is a superset of the previous
            // one, so any version up to ours is spoken verbatim.
            if *proto == 0 || *proto > PROTOCOL_VERSION {
                shared.registry.add("server", "errors-proto", 1);
                return Response::err_line(
                    ErrorKind::Proto,
                    &format!("unsupported protocol version {proto} (server speaks 1..={PROTOCOL_VERSION})"),
                );
            }
            Response::ok_line(&[("proto", PROTOCOL_VERSION.to_string())], "lslpd")
        }
        Request::Ping => Response::ok_line(&[], "pong"),
        Request::Health => render_health(shared),
        Request::Stats => {
            let payload = render_stats_payload(shared);
            Response::ok_line(&[], &payload)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Close the queue *now*: this wakes every worker parked on an
            // empty queue, so the drain cannot hang waiting for work that
            // will never come (the run-loop teardown closes again,
            // idempotently). New pushes now fail Closed → ERR shutdown.
            shared.queue.close();
            Response::ok_line(&[], "draining")
        }
        Request::Compile(_) => unreachable!("compiles go through dispatch_compile"),
    }
}

/// Hand one `COMPILE` to the worker queue. `Err` carries the response
/// line to send instead (draining / overload) — the completion handle is
/// disarmed on that path, so no worker-lost report is fabricated.
fn dispatch_compile(
    shared: &Shared,
    req: CompileRequest,
    done: net::Completion,
) -> Result<(), String> {
    // The queue closes in the SHUTDOWN handler; check the flag too so
    // work arriving after the SHUTDOWN response is refused
    // deterministically, not raced against the drain.
    if shared.is_shutting_down() {
        done.disarm();
        return Err(Response::err_line(ErrorKind::Shutdown, "server is draining"));
    }
    match shared.queue.push(Job { req, done }) {
        Ok(()) => Ok(()),
        Err(PushError::Full(job)) => {
            job.done.disarm();
            shared.registry.add("server", "rejected-overload", 1);
            Err(Response::err_line(ErrorKind::Overload, "work queue full, retry with backoff"))
        }
        Err(PushError::Closed(job)) => {
            job.done.disarm();
            Err(Response::err_line(ErrorKind::Shutdown, "server is draining"))
        }
    }
}

/// The `HEALTH` response: `draining` once shutdown began, `degraded`
/// when the disk tier failed or the worker pool is empty, else `ready`.
fn render_health(shared: &Shared) -> String {
    let draining = shared.shutdown.load(Ordering::SeqCst);
    let disk_degraded = shared.persist.as_ref().is_some_and(PersistentCache::is_degraded);
    let alive = shared.supervision.alive.load(Ordering::Relaxed);
    let status = if draining {
        "draining"
    } else if disk_degraded || alive == 0 {
        "degraded"
    } else {
        "ready"
    };
    Response::ok_line(
        &[
            ("status", status.to_string()),
            ("workers-alive", alive.to_string()),
            ("worker-restarts", shared.supervision.restarts.load(Ordering::Relaxed).to_string()),
            ("degraded", u32::from(disk_degraded).to_string()),
            ("connections", shared.net.connections_open.load(Ordering::Relaxed).to_string()),
            ("inflight", shared.net.inflight.load(Ordering::Relaxed).to_string()),
        ],
        "health",
    )
}

fn render_stats_payload(shared: &Shared) -> String {
    let c = shared.cache.counters();
    let p = shared.persist.as_ref().map(PersistentCache::counters).unwrap_or_default();
    let extra = [
        (
            "cache",
            format!(
                "entries={} capacity={} hits={} misses={} evictions={}",
                c.entries, shared.cfg.cache_capacity, c.hits, c.misses, c.evictions
            ),
        ),
        (
            "persist",
            format!(
                "enabled={} warm={} quarantined={} disk-errors={} degraded={}",
                u32::from(shared.persist.is_some()),
                p.warm_entries,
                p.quarantined,
                p.disk_errors,
                u32::from(p.degraded),
            ),
        ),
        (
            "queue",
            format!(
                "depth={} max={} capacity={}",
                shared.queue.len(),
                shared.queue.max_depth(),
                shared.queue.capacity()
            ),
        ),
        (
            "net",
            format!(
                "connections-open={} inflight-requests={} pipeline-depth-hwm={} accepted={} rejected-conn-limit={} max-conns={} pipeline-depth={}",
                shared.net.connections_open.load(Ordering::Relaxed),
                shared.net.inflight.load(Ordering::Relaxed),
                shared.net.pipeline_hwm.load(Ordering::Relaxed),
                shared.net.accepted_total.load(Ordering::Relaxed),
                shared.net.rejected_conn_limit.load(Ordering::Relaxed),
                shared.cfg.max_conns,
                shared.cfg.pipeline_depth,
            ),
        ),
        (
            "workers",
            format!(
                "configured={} alive={} restarts={} stalls={}",
                shared.cfg.workers,
                shared.supervision.alive.load(Ordering::Relaxed),
                shared.supervision.restarts.load(Ordering::Relaxed),
                shared.supervision.stalls.load(Ordering::Relaxed),
            ),
        ),
        (
            "chaos",
            format!(
                "active={} injected={}",
                u32::from(shared.chaos.is_some()),
                shared.chaos.as_ref().map(Chaos::injected_total).unwrap_or(0),
            ),
        ),
    ];
    metrics::render_stats(&shared.registry, &shared.latency, &extra)
}

/// One worker: owns its analysis manager for the lifetime of the thread
/// (the pass manager is instantiated per pipeline run under it) and drains
/// the queue until close, keeping its heartbeat block current for the
/// watchdog.
fn worker_loop(shared: &Shared, state: &WorkerState) {
    let mut am = AnalysisManager::new();
    while let Some(job) = shared.queue.pop() {
        state.epoch.fetch_add(1, Ordering::Relaxed);
        state
            .busy_since_ms
            .store((shared.started.elapsed().as_millis() as u64).max(1), Ordering::Relaxed);
        if let Some(chaos) = &shared.chaos {
            // An injected mid-compile death: the thread unwinds holding the
            // job, the reply channel drops (the client gets a typed
            // internal error), and the watchdog respawns this worker.
            chaos.maybe_panic_worker();
        }
        let response = compile_request(&job.req, shared, &mut am);
        state.busy_since_ms.store(0, Ordering::Relaxed);
        state.epoch.fetch_add(1, Ordering::Relaxed);
        // A vanished connection is not a worker error: the loop discards
        // completions whose connection token is stale.
        job.done.send(response);
    }
    state.clean_exit.store(true, Ordering::Relaxed);
}

/// Cache identity of a request: every field that changes the output
/// participates (`tag` does not — it is routing, not content). `target`
/// participates so the same source compiled for two targets yields two
/// distinct cache entries.
fn request_cache_key(req: &CompileRequest, shared: &Shared) -> (u64, String) {
    let budget_ms = req.timeout_ms.unwrap_or(shared.cfg.default_time_budget_ms).to_string();
    let parts = request_key_parts(req, &budget_ms);
    (content_key(&parts), parts.join("\0"))
}

/// The ordered key-material segments of [`request_cache_key`].
fn request_key_parts<'a>(req: &'a CompileRequest, budget_ms: &'a str) -> [&'a str; 8] {
    [
        req.src.as_str(),
        req.config.as_str(),
        req.target.as_deref().unwrap_or("-"),
        if req.pipeline { "1" } else { "0" },
        match req.emit {
            Emit::Ir => "ir",
            Emit::Report => "report",
        },
        req.guard.as_deref().unwrap_or("-"),
        req.packing.as_deref().unwrap_or("-"),
        budget_ms,
    ]
}

/// Inline cache probe for the event loop: a warm hit is answered on the
/// loop thread without a worker round-trip, so a pipelined batch of hits
/// costs one read and one coalesced write instead of a cross-thread
/// ping-pong per request. Returns `None` on a miss, during drain (the
/// dispatch path owns shutdown refusal), and under chaos (the injected
/// worker-death site must stay reachable for every request).
pub(crate) fn cached_fast_path(shared: &Shared, req: &CompileRequest) -> Option<String> {
    if shared.chaos.is_some() || shared.is_shutting_down() {
        return None;
    }
    let start = Instant::now();
    let budget_ms = req.timeout_ms.unwrap_or(shared.cfg.default_time_budget_ms).to_string();
    let parts = request_key_parts(req, &budget_ms);
    let key = content_key(&parts);
    let hit = shared.cache.get_parts(key, &parts)?;
    shared.registry.add("server", "cache-hits", 1);
    shared.registry.add("server", "requests-ok", 1);
    let us = start.elapsed().as_micros() as u64;
    shared.latency.record(us);
    Some(ok_response(key, "hit", &hit, us))
}

/// Serve one compile request: cache lookup, pipeline run on miss, tiered
/// cache fill, metrics.
fn compile_request(req: &CompileRequest, shared: &Shared, am: &mut AnalysisManager) -> String {
    let start = Instant::now();
    let budget_ms = req.timeout_ms.unwrap_or(shared.cfg.default_time_budget_ms);
    let (key, material) = request_cache_key(req, shared);

    if let Some(hit) = shared.cache.get(key, &material) {
        shared.registry.add("server", "cache-hits", 1);
        shared.registry.add("server", "requests-ok", 1);
        let us = start.elapsed().as_micros() as u64;
        shared.latency.record(us);
        return ok_response(key, "hit", &hit, us);
    }
    shared.registry.add("server", "cache-misses", 1);

    // The per-request timeout rides on the guard's compile-fuel budget: the
    // vectorizer stops attempting seeds at the deadline and the function
    // ships (partially) scalar, so a pathological input cannot pin a
    // worker.
    let mut builder = CompileOptions::preset(&req.config).time_budget_ms(budget_ms.max(1));
    if let Some(t) = &req.target {
        builder = builder.target(t);
    }
    if let Some(mode) = &req.guard {
        builder = builder.guard(mode);
    }
    if let Some(p) = &req.packing {
        builder = builder.packing(p);
    }
    if !req.pipeline {
        builder = builder.vectorize_only();
    }
    let opts = match builder.build() {
        Ok(o) => o,
        Err(e) => {
            shared.registry.add("server", "errors-config", 1);
            return Response::err_line(ErrorKind::Config, &e.to_string());
        }
    };
    let cfg = opts.config();
    let tm = opts.target();

    let mut module = match lslp_frontend::compile(&req.src) {
        Ok(m) => m,
        Err(e) => {
            shared.registry.add("server", "errors-parse", 1);
            return Response::err_line(ErrorKind::Parse, &e.to_string());
        }
    };

    let mut reports: Vec<PipelineReport> = Vec::with_capacity(module.functions.len());
    for f in &mut module.functions {
        let run = if opts.pipeline() {
            try_run_pipeline_with(f, cfg, tm, am)
        } else {
            try_run_vectorize_only(f, cfg, tm)
        };
        match run {
            Ok(r) => reports.push(r),
            Err(e) => {
                shared.registry.add("server", "errors-internal", 1);
                return Response::err_line(ErrorKind::Internal, &format!("@{}: {e}", f.name()));
            }
        }
    }

    let mut trees = 0usize;
    let mut cost = 0i64;
    let mut incidents = 0usize;
    for r in &reports {
        trees += r.vectorize.trees_vectorized;
        cost += r.vectorize.applied_cost;
        incidents += r.incidents.len() + r.vectorize.incidents.len();
        shared.registry.absorb(&r.stats);
    }
    if incidents > 0 {
        shared.registry.add("server", "guard-incidents", incidents as u64);
    }

    let output = match req.emit {
        Emit::Ir => lslp_ir::print_module(&module),
        Emit::Report => render_report(&module, &reports),
    };
    let result = CachedResult { output, trees, cost, incidents };
    tiered_insert(shared, key, &material, &result, true);
    shared.registry.add("server", "requests-ok", 1);
    let us = start.elapsed().as_micros() as u64;
    shared.latency.record(us);
    ok_response(key, "miss", &result, us)
}

fn ok_response(key: u64, cached: &str, result: &CachedResult, us: u64) -> String {
    use std::fmt::Write as _;
    // Rendered in one pass into one buffer: this runs for every served
    // request, and the field-vector form of `ok_line` costs six interim
    // strings plus a second payload-sized allocation for the escape.
    let mut line = String::with_capacity(result.output.len() + result.output.len() / 8 + 96);
    let _ = write!(
        line,
        "OK key={key:016x} cached={cached} trees={} cost={} incidents={} us={} out=",
        result.trees, result.cost, result.incidents, us
    );
    protocol::escape_into(&mut line, &result.output);
    line
}

/// The `emit=report` payload: one summary line per function plus incident
/// lines (mirrors `lslpc --emit report` at service granularity).
fn render_report(module: &lslp_ir::Module, reports: &[PipelineReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (f, pr) in module.functions.iter().zip(reports) {
        let r = &pr.vectorize;
        let _ = writeln!(
            out,
            "@{}: {} attempt(s), {} vectorized, applied cost {}, {} incident(s)",
            f.name(),
            r.attempts.len(),
            r.trees_vectorized,
            r.applied_cost,
            pr.incidents.len() + r.incidents.len(),
        );
        for inc in r.incidents.iter().chain(&pr.incidents) {
            let _ = writeln!(out, "  incident {inc}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    const SRC: &str = "kernel k(f64* A, f64* B, i64 i) {
                           A[i+0] = B[i+0] * B[i+0];
                           A[i+1] = B[i+1] * B[i+1];
                           A[i+2] = B[i+2] * B[i+2];
                           A[i+3] = B[i+3] * B[i+3];
                       }";

    fn shared() -> Shared {
        Shared::new(ServerConfig { workers: 1, ..ServerConfig::default() })
    }

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lslp-server-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn run(req: &CompileRequest, shared: &Shared) -> Response {
        let mut am = AnalysisManager::new();
        Response::parse(&compile_request(req, shared, &mut am)).unwrap()
    }

    #[test]
    fn compile_vectorizes_and_reports_fields() {
        let s = shared();
        let r = run(&CompileRequest::new(SRC), &s);
        assert!(r.ok, "{r:?}");
        assert_eq!(r.field("cached"), Some("miss"));
        assert_eq!(r.field("trees"), Some("1"));
        assert_eq!(r.field("incidents"), Some("0"));
        assert!(r.payload.contains("<4 x f64>"), "{}", r.payload);
        assert_eq!(s.registry.get("server", "requests-ok"), 1);
        assert_eq!(s.registry.get("server", "cache-misses"), 1);
        assert!(s.registry.get("vectorize", "trees-vectorized") >= 1, "pipeline stats absorbed");
    }

    #[test]
    fn second_request_hits_the_cache_byte_identically() {
        let s = shared();
        let first = run(&CompileRequest::new(SRC), &s);
        let second = run(&CompileRequest::new(SRC), &s);
        assert_eq!(second.field("cached"), Some("hit"));
        assert_eq!(first.payload, second.payload, "cache must serve identical bytes");
        assert_eq!(first.field("trees"), second.field("trees"));
        assert_eq!(s.registry.get("server", "cache-misses"), 1, "exactly one miss");
        assert_eq!(s.registry.get("server", "cache-hits"), 1, "exactly one hit");
    }

    #[test]
    fn differing_config_does_not_hit() {
        let s = shared();
        let lslp = run(&CompileRequest::new(SRC), &s);
        let o3 = run(&CompileRequest { config: "O3".into(), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(o3.field("cached"), Some("miss"), "different config is a different key");
        assert_ne!(lslp.payload, o3.payload);
        assert_eq!(s.registry.get("server", "cache-hits"), 0);
        assert_eq!(s.registry.get("server", "cache-misses"), 2);
    }

    #[test]
    fn target_participates_in_the_cache_key() {
        // Same source, two targets: two cache entries with byte-distinct
        // artifacts (the 4×f64 chain fits one avx2 register but needs two
        // sse4.2-sized stores).
        let s = shared();
        let avx2 = run(&CompileRequest::new(SRC), &s);
        let sse =
            run(&CompileRequest { target: Some("sse4.2".into()), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(avx2.field("cached"), Some("miss"));
        assert_eq!(sse.field("cached"), Some("miss"), "different target is a different key");
        assert_ne!(avx2.field("key"), sse.field("key"));
        assert_ne!(avx2.payload, sse.payload, "artifacts must differ per target");
        assert!(avx2.payload.contains("<4 x f64>"), "{}", avx2.payload);
        assert!(sse.payload.contains("<2 x f64>"), "{}", sse.payload);
        assert_eq!(s.registry.get("server", "cache-misses"), 2);
        // Repeats of both hit their own entries.
        assert_eq!(run(&CompileRequest::new(SRC), &s).field("cached"), Some("hit"));
        let sse2 =
            run(&CompileRequest { target: Some("sse4.2".into()), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(sse2.field("cached"), Some("hit"));
        assert_eq!(sse2.payload, sse.payload);
        assert_eq!(s.registry.get("server", "cache-hits"), 2);
    }

    #[test]
    fn packing_participates_in_the_cache_key() {
        // Same source under greedy and global packing: distinct cache
        // entries, even when the artifacts agree (the strategy changes
        // what the compiler *may* emit, so it must key the cache).
        let s = shared();
        let greedy = run(&CompileRequest::new(SRC), &s);
        let global =
            run(&CompileRequest { packing: Some("global".into()), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(greedy.field("cached"), Some("miss"));
        assert_eq!(global.field("cached"), Some("miss"), "different packing is a different key");
        assert_ne!(greedy.field("key"), global.field("key"));
        assert!(global.ok, "{global:?}");
        assert!(global.payload.contains("<4 x f64>"), "{}", global.payload);
        assert_eq!(s.registry.get("server", "cache-misses"), 2);
        // Both repeat warm against their own entries.
        let again =
            run(&CompileRequest { packing: Some("global".into()), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(again.field("cached"), Some("hit"));
        assert_eq!(again.payload, global.payload);
    }

    #[test]
    fn unknown_target_is_a_config_error() {
        let s = shared();
        let r =
            run(&CompileRequest { target: Some("itanium".into()), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(r.error, Some(ErrorKind::Config), "{r:?}");
        assert!(r.payload.contains("unknown target"), "{}", r.payload);
    }

    fn control(line: &str, s: &Shared) -> Response {
        let req = protocol::parse_request(line).unwrap();
        Response::parse(&control_response(&req, s)).unwrap()
    }

    #[test]
    fn hello_negotiates_the_protocol_version() {
        let s = shared();
        let ok = control("HELLO proto=5", &s);
        assert!(ok.ok, "{ok:?}");
        assert_eq!(ok.field("proto"), Some("5"));
        assert_eq!(ok.payload, "lslpd");
        for older in ["HELLO proto=1", "HELLO proto=2", "HELLO proto=3", "HELLO proto=4"] {
            let r = control(older, &s);
            assert!(r.ok, "older versions are spoken too: {r:?}");
            assert_eq!(r.field("proto"), Some("5"), "server always states its own version");
        }
        for bad in ["HELLO proto=99", "HELLO proto=0"] {
            let r = control(bad, &s);
            assert_eq!(r.error, Some(ErrorKind::Proto), "{bad}: {r:?}");
        }
    }

    #[test]
    fn user_errors_are_typed() {
        let s = shared();
        let parse = run(&CompileRequest::new("kernel broken("), &s);
        assert_eq!(parse.error, Some(ErrorKind::Parse), "{parse:?}");
        let config = run(&CompileRequest { config: "GCC".into(), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(config.error, Some(ErrorKind::Config));
        let guard =
            run(&CompileRequest { guard: Some("yolo".into()), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(guard.error, Some(ErrorKind::Config));
        assert_eq!(s.registry.get("server", "errors-parse"), 1);
        assert_eq!(s.registry.get("server", "errors-config"), 2);
    }

    #[test]
    fn guard_strategy_spellings_are_accepted() {
        // The rollback-strategy spellings reach the options builder and
        // compile identically to the delta default on clean input.
        let s = shared();
        for mode in ["snapshot", "differential", "rollback"] {
            let r =
                run(&CompileRequest { guard: Some(mode.into()), ..CompileRequest::new(SRC) }, &s);
            assert!(r.ok, "guard={mode}: {r:?}");
            assert!(r.payload.contains("<4 x f64>"), "guard={mode} vectorizes");
        }
    }

    #[test]
    fn exhausted_budget_degrades_to_scalar_output() {
        // timeout-ms=1 with an already-spent deadline is hard to force
        // deterministically, so use a large kernel and the smallest budget:
        // the vectorizer must stop at the deadline, ship what it has, and
        // record an incident — never an error response.
        let mut src = String::from("kernel big(f64* A, f64* B, i64 i) {\n");
        for g in 0..64 {
            for l in 0..4 {
                let idx = g * 4 + l;
                src.push_str(&format!(
                    "  A[i+{idx}] = (B[i+{idx}] * B[i+{idx}] + {g}.0) * B[i+{idx}];\n"
                ));
            }
        }
        src.push('}');
        let s = shared();
        let r = run(&CompileRequest { timeout_ms: Some(0), ..CompileRequest::new(&src) }, &s);
        assert!(r.ok, "a timed-out compile still responds: {r:?}");
        // Budget 0 is clamped to 1ms; the compile may or may not finish
        // within it, but the response is always well-formed IR.
        assert!(r.payload.contains("@big"), "{}", r.payload);
    }

    #[test]
    fn shutdown_closes_the_queue_eagerly() {
        // The queue must close in the SHUTDOWN handler itself — not when
        // the event loop notices the flag — so workers blocked on an empty
        // queue wake immediately and the drain cannot hang.
        let s = shared();
        assert!(!s.queue.is_closed());
        let r = control("SHUTDOWN", &s);
        assert_eq!(r.payload, "draining");
        assert!(s.queue.is_closed(), "SHUTDOWN closes the queue in its own handler");
        let refused = dispatch_compile(&s, CompileRequest::new(SRC), net::detached_completion())
            .expect_err("compiles are refused while draining");
        let again = Response::parse(&refused).unwrap();
        assert_eq!(again.error, Some(ErrorKind::Shutdown));
    }

    #[test]
    fn health_reports_ready_then_draining() {
        let s = shared();
        s.supervision.alive.store(1, Ordering::Relaxed);
        let h = control("HEALTH", &s);
        assert!(h.ok, "{h:?}");
        assert_eq!(h.field("status"), Some("ready"));
        assert_eq!(h.field("degraded"), Some("0"));
        assert_eq!(h.field("workers-alive"), Some("1"));
        assert_eq!(h.field("connections"), Some("0"), "connection gauge surfaces in HEALTH");
        control("SHUTDOWN", &s);
        let h = control("HEALTH", &s);
        assert_eq!(h.field("status"), Some("draining"));
    }

    #[test]
    fn persistent_tier_warms_a_fresh_instance() {
        let dir = temp_dir("warm");
        let cfg = || ServerConfig {
            workers: 1,
            cache_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServerConfig::default()
        };
        let s1 = Shared::new(cfg());
        let first = run(&CompileRequest::new(SRC), &s1);
        assert_eq!(first.field("cached"), Some("miss"));
        drop(s1); // no clean handoff: the disk state alone must suffice

        let s2 = Shared::new(cfg());
        let c = s2.persist.as_ref().unwrap().counters();
        assert_eq!(c.warm_entries, 1, "restart recovered the entry");
        assert_eq!(c.quarantined, 0);
        let warm = run(&CompileRequest::new(SRC), &s2);
        assert_eq!(warm.field("cached"), Some("hit"), "warm start serves from cache");
        assert_eq!(warm.payload, first.payload, "byte-identical across restart");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_storm_tombstones_the_disk_tier() {
        // Tiny memory capacity + distinct requests: every LRU eviction
        // must tombstone the journal and unlink its entry file, so a
        // restart recovers exactly the resident set, never a superset.
        let dir = temp_dir("storm");
        let cfg = || ServerConfig {
            workers: 1,
            cache_capacity: 4,
            cache_shards: 1,
            cache_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServerConfig::default()
        };
        let s = Shared::new(cfg());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = &s;
                scope.spawn(move || {
                    let mut am = AnalysisManager::new();
                    for i in 0..4u64 {
                        let n = t * 4 + i;
                        let src = format!(
                            "kernel k{n}(f64* A, f64* B, i64 i) {{\n  A[i+0] = B[i+0] + {n}.0;\n  A[i+1] = B[i+1] + {n}.0;\n}}"
                        );
                        let r = Response::parse(&compile_request(
                            &CompileRequest::new(&src),
                            s,
                            &mut am,
                        ))
                        .unwrap();
                        assert!(r.ok, "{r:?}");
                    }
                });
            }
        });
        let evictions = s.cache.counters().evictions;
        assert!(evictions > 0, "16 distinct requests over 4 slots must evict");
        let journal = persist::read_journal(&dir);
        assert_eq!(
            journal.matches("\nT ").count() + usize::from(journal.starts_with("T ")),
            evictions as usize,
            "every eviction tombstoned exactly once:\n{journal}"
        );
        let (stamps, clock) = s.cache.debug_stamps();
        assert!(stamps.iter().all(|&st| st < clock), "stamps monotone under churn");
        drop(s);

        // Restart: the survivors come back, the tombstoned entries do not.
        let s2 = Shared::new(cfg());
        let c = s2.persist.as_ref().unwrap().counters();
        assert!(c.warm_entries <= 4, "no resurrection past capacity: {}", c.warm_entries);
        assert_eq!(c.quarantined, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_dump_includes_resilience_gauges() {
        let s = shared();
        let dump = render_stats_payload(&s);
        let persist_at = dump.find("persist: enabled=0").expect("persist gauge row");
        let workers_at = dump.find("workers: configured=1 alive=0 restarts=0 stalls=0").unwrap();
        let chaos_at = dump.find("chaos: active=0 injected=0").unwrap();
        assert!(persist_at < workers_at && workers_at < chaos_at, "fixed gauge order:\n{dump}");
        assert_eq!(render_stats_payload(&s), dump, "dump is deterministic");
    }
}
