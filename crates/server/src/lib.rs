//! # lslp-server — `lslpd`, the concurrent LSLP compile service
//!
//! A long-lived, multi-threaded compile daemon over [`lslp`]'s guarded
//! pass pipeline: SLC source in, vectorized IR (or a report) out, with a
//! line-delimited protocol ([`protocol`]), a bounded work queue with
//! rejection backpressure ([`queue`]), a worker pool where every worker
//! owns its own analysis state, and a sharded content-addressed result
//! cache ([`cache`]) so repeated traffic is served without re-running the
//! pipeline. Metrics (per-pass counters, cache hits, queue depth, latency
//! percentiles) accumulate in a [`lslp::SyncStatistics`] registry and are
//! served by the `STATS` verb ([`metrics`]).
//!
//! `std`-only by design: `TcpListener` + `thread` (the build environment
//! has no package registry), which also keeps the concurrency model
//! auditable — one acceptor, one lightweight thread per connection doing
//! framing only, and a fixed pool of compile workers behind the queue.
//!
//! Failure containment: per-request compile budgets are fed into the pass
//! guard's time-budget fuel ([`lslp::VectorizerConfig::time_budget_ms`]),
//! so a pathological input degrades to (partially) scalar output and a
//! `FuelExhausted` incident instead of stalling a worker; panics and
//! miscompiles inside passes are already isolated by the transactional
//! guard (see `docs/GUARD.md`).
//!
//! See `docs/SERVER.md` for the protocol and operational semantics.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod queue;

use std::io::{BufRead, BufReader, ErrorKind as IoErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lslp::api::CompileOptions;
use lslp::{try_run_pipeline_with, try_run_vectorize_only, PipelineReport, SyncStatistics};
use lslp_analysis::AnalysisManager;

use cache::{content_key, CachedResult, ResultCache};
use metrics::LatencyReservoir;
use protocol::{CompileRequest, Emit, ErrorKind, Request, Response, PROTOCOL_VERSION};
use queue::{Bounded, PushError};

pub use client::Client;

/// Tunables for one daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Compile worker threads.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it are rejected with
    /// `ERR kind=overload`.
    pub queue_capacity: usize,
    /// Total cache entries across all shards.
    pub cache_capacity: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Default per-request compile budget (ms) when the request does not
    /// carry `timeout-ms=`.
    pub default_time_budget_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            queue_capacity: 64,
            cache_capacity: 1024,
            cache_shards: 16,
            default_time_budget_ms: 500,
        }
    }
}

/// One unit of compile work: the parsed request plus the channel the
/// connection thread is blocked on.
struct Job {
    req: CompileRequest,
    reply: mpsc::Sender<String>,
}

/// State shared by the acceptor, connection threads, and workers.
struct Shared {
    cfg: ServerConfig,
    queue: Bounded<Job>,
    cache: ResultCache,
    registry: SyncStatistics,
    latency: LatencyReservoir,
    shutdown: AtomicBool,
}

/// A bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and allocate the shared state.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bad address, port in use).
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Bounded::new(cfg.queue_capacity),
            cache: ResultCache::new(cfg.cache_capacity, cfg.cache_shards),
            registry: SyncStatistics::new(),
            latency: LatencyReservoir::new(),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        Ok(Server { listener, local_addr, shared })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Bind and run on a background thread; returns the address and the
    /// join handle (which resolves when the daemon has fully drained).
    ///
    /// # Errors
    ///
    /// See [`Server::bind`].
    pub fn spawn(
        cfg: ServerConfig,
    ) -> std::io::Result<(SocketAddr, JoinHandle<std::io::Result<()>>)> {
        let server = Server::bind(cfg)?;
        let addr = server.local_addr();
        Ok((addr, std::thread::spawn(move || server.run())))
    }

    /// Serve until a `SHUTDOWN` request arrives, then drain queued work,
    /// join every worker and connection thread, and return.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop socket errors.
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, local_addr, shared } = self;
        let workers: Vec<JoinHandle<()>> = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let shared = Arc::clone(&shared);
            connections.push(std::thread::spawn(move || {
                // Connection errors only affect that client.
                let _ = serve_connection(stream, &shared, local_addr);
            }));
            // Reap finished connection threads so a long-lived daemon does
            // not accumulate handles.
            connections.retain(|h| !h.is_finished());
        }

        // Graceful shutdown: stop accepting, let workers drain everything
        // already admitted to the queue, then join the framing threads
        // (they observe the shutdown flag via their read timeout).
        shared.queue.close();
        for w in workers {
            let _ = w.join();
        }
        for c in connections {
            let _ = c.join();
        }
        Ok(())
    }
}

/// How long a connection thread blocks in `read` before re-checking the
/// shutdown flag.
const READ_TICK: Duration = Duration::from_millis(100);

fn serve_connection(
    stream: TcpStream,
    shared: &Shared,
    local_addr: SocketAddr,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {
                let response = handle_line(&line, shared, local_addr);
                line.clear();
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                // `read_line` keeps partial bytes in `line`; just re-poll.
                if shared.shutdown.load(Ordering::SeqCst) && line.is_empty() {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == IoErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn handle_line(line: &str, shared: &Shared, local_addr: SocketAddr) -> String {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err(msg) => {
            shared.registry.add("server", "errors-proto", 1);
            return Response::err_line(ErrorKind::Proto, &msg);
        }
    };
    match request {
        Request::Hello { proto } => {
            // Every protocol revision so far is a superset of the previous
            // one, so any version up to ours is spoken verbatim.
            if proto == 0 || proto > PROTOCOL_VERSION {
                shared.registry.add("server", "errors-proto", 1);
                return Response::err_line(
                    ErrorKind::Proto,
                    &format!("unsupported protocol version {proto} (server speaks 1..={PROTOCOL_VERSION})"),
                );
            }
            Response::ok_line(&[("proto", PROTOCOL_VERSION.to_string())], "lslpd")
        }
        Request::Ping => Response::ok_line(&[], "pong"),
        Request::Stats => {
            let payload = render_stats_payload(shared);
            Response::ok_line(&[], &payload)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Unblock the acceptor, which is parked in `accept`.
            let _ = TcpStream::connect(local_addr);
            Response::ok_line(&[], "draining")
        }
        Request::Compile(req) => {
            // The queue closes only once the acceptor has unparked; check
            // the flag too so work arriving after the SHUTDOWN response is
            // refused deterministically, not raced against the drain.
            if shared.shutdown.load(Ordering::SeqCst) {
                return Response::err_line(ErrorKind::Shutdown, "server is draining");
            }
            let (tx, rx) = mpsc::channel();
            match shared.queue.push(Job { req, reply: tx }) {
                Ok(()) => rx.recv().unwrap_or_else(|_| {
                    Response::err_line(ErrorKind::Internal, "worker dropped the request")
                }),
                Err(PushError::Full(_)) => {
                    shared.registry.add("server", "rejected-overload", 1);
                    Response::err_line(ErrorKind::Overload, "work queue full, retry with backoff")
                }
                Err(PushError::Closed(_)) => {
                    Response::err_line(ErrorKind::Shutdown, "server is draining")
                }
            }
        }
    }
}

fn render_stats_payload(shared: &Shared) -> String {
    let c = shared.cache.counters();
    let extra = [
        (
            "cache",
            format!(
                "entries={} capacity={} hits={} misses={} evictions={}",
                c.entries, shared.cfg.cache_capacity, c.hits, c.misses, c.evictions
            ),
        ),
        (
            "queue",
            format!(
                "depth={} max={} capacity={}",
                shared.queue.len(),
                shared.queue.max_depth(),
                shared.queue.capacity()
            ),
        ),
        ("workers", shared.cfg.workers.to_string()),
    ];
    metrics::render_stats(&shared.registry, &shared.latency, &extra)
}

/// One worker: owns its analysis manager for the lifetime of the thread
/// (the pass manager is instantiated per pipeline run under it) and drains
/// the queue until close.
fn worker_loop(shared: &Shared) {
    let mut am = AnalysisManager::new();
    while let Some(job) = shared.queue.pop() {
        let response = compile_request(&job.req, shared, &mut am);
        // A vanished connection is not a worker error.
        let _ = job.reply.send(response);
    }
}

/// Serve one compile request: cache lookup, pipeline run on miss, cache
/// fill, metrics.
fn compile_request(req: &CompileRequest, shared: &Shared, am: &mut AnalysisManager) -> String {
    let start = Instant::now();
    let budget_ms = req.timeout_ms.unwrap_or(shared.cfg.default_time_budget_ms);
    let emit_name = match req.emit {
        Emit::Ir => "ir",
        Emit::Report => "report",
    };
    let guard_name = req.guard.as_deref().unwrap_or("-");
    // `target` participates in the key: the same source compiled for two
    // targets yields two distinct cache entries.
    let target_name = req.target.as_deref().unwrap_or("-");
    let parts = [
        req.src.as_str(),
        req.config.as_str(),
        target_name,
        if req.pipeline { "1" } else { "0" },
        emit_name,
        guard_name,
        &budget_ms.to_string(),
    ];
    let material = parts.join("\0");
    let key = content_key(&parts);

    if let Some(hit) = shared.cache.get(key, &material) {
        shared.registry.add("server", "cache-hits", 1);
        shared.registry.add("server", "requests-ok", 1);
        let us = start.elapsed().as_micros() as u64;
        shared.latency.record(us);
        return ok_response(key, "hit", &hit, us);
    }
    shared.registry.add("server", "cache-misses", 1);

    // The per-request timeout rides on the guard's compile-fuel budget: the
    // vectorizer stops attempting seeds at the deadline and the function
    // ships (partially) scalar, so a pathological input cannot pin a
    // worker.
    let mut builder = CompileOptions::preset(&req.config).time_budget_ms(budget_ms.max(1));
    if let Some(t) = &req.target {
        builder = builder.target(t);
    }
    if let Some(mode) = &req.guard {
        builder = builder.guard(mode);
    }
    if !req.pipeline {
        builder = builder.vectorize_only();
    }
    let opts = match builder.build() {
        Ok(o) => o,
        Err(e) => {
            shared.registry.add("server", "errors-config", 1);
            return Response::err_line(ErrorKind::Config, &e.to_string());
        }
    };
    let cfg = opts.config();
    let tm = opts.target();

    let mut module = match lslp_frontend::compile(&req.src) {
        Ok(m) => m,
        Err(e) => {
            shared.registry.add("server", "errors-parse", 1);
            return Response::err_line(ErrorKind::Parse, &e.to_string());
        }
    };

    let mut reports: Vec<PipelineReport> = Vec::with_capacity(module.functions.len());
    for f in &mut module.functions {
        let run = if opts.pipeline() {
            try_run_pipeline_with(f, cfg, tm, am)
        } else {
            try_run_vectorize_only(f, cfg, tm)
        };
        match run {
            Ok(r) => reports.push(r),
            Err(e) => {
                shared.registry.add("server", "errors-internal", 1);
                return Response::err_line(ErrorKind::Internal, &format!("@{}: {e}", f.name()));
            }
        }
    }

    let mut trees = 0usize;
    let mut cost = 0i64;
    let mut incidents = 0usize;
    for r in &reports {
        trees += r.vectorize.trees_vectorized;
        cost += r.vectorize.applied_cost;
        incidents += r.incidents.len() + r.vectorize.incidents.len();
        shared.registry.absorb(&r.stats);
    }
    if incidents > 0 {
        shared.registry.add("server", "guard-incidents", incidents as u64);
    }

    let output = match req.emit {
        Emit::Ir => lslp_ir::print_module(&module),
        Emit::Report => render_report(&module, &reports),
    };
    let result = CachedResult { output, trees, cost, incidents };
    shared.cache.insert(key, &material, result.clone());
    shared.registry.add("server", "requests-ok", 1);
    let us = start.elapsed().as_micros() as u64;
    shared.latency.record(us);
    ok_response(key, "miss", &result, us)
}

fn ok_response(key: u64, cached: &str, result: &CachedResult, us: u64) -> String {
    Response::ok_line(
        &[
            ("key", format!("{key:016x}")),
            ("cached", cached.to_string()),
            ("trees", result.trees.to_string()),
            ("cost", result.cost.to_string()),
            ("incidents", result.incidents.to_string()),
            ("us", us.to_string()),
        ],
        &result.output,
    )
}

/// The `emit=report` payload: one summary line per function plus incident
/// lines (mirrors `lslpc --emit report` at service granularity).
fn render_report(module: &lslp_ir::Module, reports: &[PipelineReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (f, pr) in module.functions.iter().zip(reports) {
        let r = &pr.vectorize;
        let _ = writeln!(
            out,
            "@{}: {} attempt(s), {} vectorized, applied cost {}, {} incident(s)",
            f.name(),
            r.attempts.len(),
            r.trees_vectorized,
            r.applied_cost,
            pr.incidents.len() + r.incidents.len(),
        );
        for inc in r.incidents.iter().chain(&pr.incidents) {
            let _ = writeln!(out, "  incident {inc}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "kernel k(f64* A, f64* B, i64 i) {
                           A[i+0] = B[i+0] * B[i+0];
                           A[i+1] = B[i+1] * B[i+1];
                           A[i+2] = B[i+2] * B[i+2];
                           A[i+3] = B[i+3] * B[i+3];
                       }";

    fn shared() -> Shared {
        let cfg = ServerConfig { workers: 1, ..ServerConfig::default() };
        Shared {
            queue: Bounded::new(cfg.queue_capacity),
            cache: ResultCache::new(cfg.cache_capacity, cfg.cache_shards),
            registry: SyncStatistics::new(),
            latency: LatencyReservoir::new(),
            shutdown: AtomicBool::new(false),
            cfg,
        }
    }

    fn run(req: &CompileRequest, shared: &Shared) -> Response {
        let mut am = AnalysisManager::new();
        Response::parse(&compile_request(req, shared, &mut am)).unwrap()
    }

    #[test]
    fn compile_vectorizes_and_reports_fields() {
        let s = shared();
        let r = run(&CompileRequest::new(SRC), &s);
        assert!(r.ok, "{r:?}");
        assert_eq!(r.field("cached"), Some("miss"));
        assert_eq!(r.field("trees"), Some("1"));
        assert_eq!(r.field("incidents"), Some("0"));
        assert!(r.payload.contains("<4 x f64>"), "{}", r.payload);
        assert_eq!(s.registry.get("server", "requests-ok"), 1);
        assert_eq!(s.registry.get("server", "cache-misses"), 1);
        assert!(s.registry.get("vectorize", "trees-vectorized") >= 1, "pipeline stats absorbed");
    }

    #[test]
    fn second_request_hits_the_cache_byte_identically() {
        let s = shared();
        let first = run(&CompileRequest::new(SRC), &s);
        let second = run(&CompileRequest::new(SRC), &s);
        assert_eq!(second.field("cached"), Some("hit"));
        assert_eq!(first.payload, second.payload, "cache must serve identical bytes");
        assert_eq!(first.field("trees"), second.field("trees"));
        assert_eq!(s.registry.get("server", "cache-misses"), 1, "exactly one miss");
        assert_eq!(s.registry.get("server", "cache-hits"), 1, "exactly one hit");
    }

    #[test]
    fn differing_config_does_not_hit() {
        let s = shared();
        let lslp = run(&CompileRequest::new(SRC), &s);
        let o3 = run(&CompileRequest { config: "O3".into(), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(o3.field("cached"), Some("miss"), "different config is a different key");
        assert_ne!(lslp.payload, o3.payload);
        assert_eq!(s.registry.get("server", "cache-hits"), 0);
        assert_eq!(s.registry.get("server", "cache-misses"), 2);
    }

    #[test]
    fn target_participates_in_the_cache_key() {
        // Same source, two targets: two cache entries with byte-distinct
        // artifacts (the 4×f64 chain fits one avx2 register but needs two
        // sse4.2-sized stores).
        let s = shared();
        let avx2 = run(&CompileRequest::new(SRC), &s);
        let sse =
            run(&CompileRequest { target: Some("sse4.2".into()), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(avx2.field("cached"), Some("miss"));
        assert_eq!(sse.field("cached"), Some("miss"), "different target is a different key");
        assert_ne!(avx2.field("key"), sse.field("key"));
        assert_ne!(avx2.payload, sse.payload, "artifacts must differ per target");
        assert!(avx2.payload.contains("<4 x f64>"), "{}", avx2.payload);
        assert!(sse.payload.contains("<2 x f64>"), "{}", sse.payload);
        assert_eq!(s.registry.get("server", "cache-misses"), 2);
        // Repeats of both hit their own entries.
        assert_eq!(run(&CompileRequest::new(SRC), &s).field("cached"), Some("hit"));
        let sse2 =
            run(&CompileRequest { target: Some("sse4.2".into()), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(sse2.field("cached"), Some("hit"));
        assert_eq!(sse2.payload, sse.payload);
        assert_eq!(s.registry.get("server", "cache-hits"), 2);
    }

    #[test]
    fn unknown_target_is_a_config_error() {
        let s = shared();
        let r =
            run(&CompileRequest { target: Some("itanium".into()), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(r.error, Some(ErrorKind::Config), "{r:?}");
        assert!(r.payload.contains("unknown target"), "{}", r.payload);
    }

    #[test]
    fn hello_negotiates_the_protocol_version() {
        let s = shared();
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let ok = Response::parse(&handle_line("HELLO proto=2", &s, addr)).unwrap();
        assert!(ok.ok, "{ok:?}");
        assert_eq!(ok.field("proto"), Some("2"));
        assert_eq!(ok.payload, "lslpd");
        let v1 = Response::parse(&handle_line("HELLO proto=1", &s, addr)).unwrap();
        assert!(v1.ok, "older versions are spoken too: {v1:?}");
        for bad in ["HELLO proto=99", "HELLO proto=0"] {
            let r = Response::parse(&handle_line(bad, &s, addr)).unwrap();
            assert_eq!(r.error, Some(ErrorKind::Proto), "{bad}: {r:?}");
        }
    }

    #[test]
    fn user_errors_are_typed() {
        let s = shared();
        let parse = run(&CompileRequest::new("kernel broken("), &s);
        assert_eq!(parse.error, Some(ErrorKind::Parse), "{parse:?}");
        let config = run(&CompileRequest { config: "GCC".into(), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(config.error, Some(ErrorKind::Config));
        let guard =
            run(&CompileRequest { guard: Some("yolo".into()), ..CompileRequest::new(SRC) }, &s);
        assert_eq!(guard.error, Some(ErrorKind::Config));
        assert_eq!(s.registry.get("server", "errors-parse"), 1);
        assert_eq!(s.registry.get("server", "errors-config"), 2);
    }

    #[test]
    fn exhausted_budget_degrades_to_scalar_output() {
        // timeout-ms=1 with an already-spent deadline is hard to force
        // deterministically, so use a large kernel and the smallest budget:
        // the vectorizer must stop at the deadline, ship what it has, and
        // record an incident — never an error response.
        let mut src = String::from("kernel big(f64* A, f64* B, i64 i) {\n");
        for g in 0..64 {
            for l in 0..4 {
                let idx = g * 4 + l;
                src.push_str(&format!(
                    "  A[i+{idx}] = (B[i+{idx}] * B[i+{idx}] + {g}.0) * B[i+{idx}];\n"
                ));
            }
        }
        src.push('}');
        let s = shared();
        let r = run(&CompileRequest { timeout_ms: Some(0), ..CompileRequest::new(&src) }, &s);
        assert!(r.ok, "a timed-out compile still responds: {r:?}");
        // Budget 0 is clamped to 1ms; the compile may or may not finish
        // within it, but the response is always well-formed IR.
        assert!(r.payload.contains("@big"), "{}", r.payload);
    }
}
