//! Sharded, content-addressed result cache for the compile service.
//!
//! Keyed by an FNV-1a hash of the *full request content* — source text
//! plus every compile-relevant option (config preset, pipeline flag, emit
//! mode, guard override, effective time budget) — so two requests share an
//! entry exactly when the service would produce byte-identical output for
//! both. The key material itself is stored alongside each entry and
//! compared on lookup, so a 64-bit hash collision degrades to a miss, never
//! to serving the wrong artifact.
//!
//! Shards are independent `Mutex`-protected maps selected by the key's top
//! bits; workers contend only within a shard. Eviction is LRU-ish: every
//! entry carries a last-access stamp from a global monotonic counter, and
//! an insert into a full shard evicts that shard's least-recently-stamped
//! entry (a linear scan — shards are small by construction).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters describing cache effectiveness, wired into the service's
/// [`lslp::SyncStatistics`] registry by the caller.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a compile.
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// The cached artifact for one `(source, options)` content key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedResult {
    /// The response payload (IR text or report).
    pub output: String,
    /// Vectorized tree count summed over the module's functions.
    pub trees: usize,
    /// Applied vectorization cost summed over the module's functions.
    pub cost: i64,
    /// Guard incidents observed while compiling (kept so a cache hit
    /// reports the same diagnostics as the original compile).
    pub incidents: usize,
}

/// Does `material` equal `parts.join("\0")`, compared without building
/// the joined string?
fn material_matches(material: &str, parts: &[&str]) -> bool {
    let m = material.as_bytes();
    let mut off = 0usize;
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            if m.get(off) != Some(&0) {
                return false;
            }
            off += 1;
        }
        let end = off + p.len();
        if m.len() < end || &m[off..end] != p.as_bytes() {
            return false;
        }
        off = end;
    }
    off == m.len()
}

/// FNV-1a over the request's content fields, with `\0` separators so field
/// boundaries cannot alias (`("ab","c")` vs `("a","bc")`).
pub fn content_key(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for part in parts {
        for &b in part.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The same FNV-1a construction over raw byte slices — used by the disk
/// tier ([`crate::persist`]) to checksum entry files (header + payload).
pub fn content_key_bytes(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct Entry {
    /// Full key material, compared on lookup to rule out hash collisions.
    material: String,
    result: CachedResult,
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
}

/// The sharded cache proper.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Capacity per shard (total capacity / shard count, at least 1).
    shard_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries across `shards` shards.
    pub fn new(capacity: usize, shards: usize) -> ResultCache {
        let shards = shards.max(1);
        ResultCache {
            shard_capacity: (capacity.max(1)).div_ceil(shards),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // Top bits: FNV mixes low bits heavily, top bits are fine too and
        // keep shard choice independent of map bucketing.
        let idx = (key >> 56) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Look up `key` (with its full `material` for collision rejection).
    /// Counts a hit or a miss.
    pub fn get(&self, key: u64, material: &str) -> Option<CachedResult> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        match shard.map.get_mut(&key) {
            Some(entry) if entry.material == material => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.result.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// [`ResultCache::get`] for a caller holding the key material as
    /// parts (the serve fast path): the collision check compares the
    /// stored joined material piecewise, so no joined string is
    /// allocated per probe.
    pub fn get_parts(&self, key: u64, parts: &[&str]) -> Option<CachedResult> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        match shard.map.get_mut(&key) {
            Some(entry) if material_matches(&entry.material, parts) => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.result.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a result, evicting the shard's least-recently-used entry when
    /// the shard is at capacity. Returns the evicted key (if any) so a
    /// tiered caller can tombstone the disk copy.
    pub fn insert(&self, key: u64, material: &str, result: CachedResult) -> Option<u64> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        let mut evicted = None;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.shard_capacity {
            let victim = shard.map.iter().min_by_key(|(_, entry)| entry.stamp).map(|(&k, _)| k);
            if let Some(victim) = victim {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                evicted = Some(victim);
            }
        }
        shard.map.insert(key, Entry { material: material.to_string(), result, stamp });
        evicted
    }

    /// Every resident entry's last-access stamp, plus the clock's current
    /// value. Test/diagnostic aid: stamps must all be strictly below the
    /// clock, and distinct per assignment (the clock only moves forward).
    #[doc(hidden)]
    pub fn debug_stamps(&self) -> (Vec<u64>, u64) {
        let stamps = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("cache shard lock")
                    .map
                    .values()
                    .map(|e| e.stamp)
                    .collect::<Vec<_>>()
            })
            .collect();
        (stamps, self.clock.load(Ordering::Relaxed))
    }

    /// Point-in-time counters.
    pub fn counters(&self) -> CacheCounters {
        let entries =
            self.shards.iter().map(|s| s.lock().expect("cache shard lock").map.len() as u64).sum();
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: &str) -> CachedResult {
        CachedResult { output: tag.to_string(), trees: 1, cost: -4, incidents: 0 }
    }

    #[test]
    fn key_separators_prevent_aliasing() {
        assert_ne!(content_key(&["ab", "c"]), content_key(&["a", "bc"]));
        assert_ne!(content_key(&["x"]), content_key(&["x", ""]));
        assert_eq!(content_key(&["src", "LSLP"]), content_key(&["src", "LSLP"]));
    }

    #[test]
    fn miss_then_hit() {
        let cache = ResultCache::new(8, 2);
        let key = content_key(&["src", "LSLP"]);
        assert_eq!(cache.get(key, "src\0LSLP"), None);
        cache.insert(key, "src\0LSLP", result("out"));
        assert_eq!(cache.get(key, "src\0LSLP").unwrap().output, "out");
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.entries), (1, 1, 1));
    }

    #[test]
    fn colliding_key_with_different_material_is_a_miss() {
        let cache = ResultCache::new(8, 1);
        cache.insert(42, "materialA", result("A"));
        assert_eq!(cache.get(42, "materialB"), None, "same hash, different content");
        assert_eq!(cache.get(42, "materialA").unwrap().output, "A");
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let cache = ResultCache::new(2, 1);
        cache.insert(1, "k1", result("1"));
        cache.insert(2, "k2", result("2"));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1, "k1").is_some());
        cache.insert(3, "k3", result("3"));
        assert_eq!(cache.counters().evictions, 1);
        assert!(cache.get(1, "k1").is_some(), "recently used survives");
        assert!(cache.get(2, "k2").is_none(), "LRU entry evicted");
        assert!(cache.get(3, "k3").is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ResultCache::new(2, 1);
        cache.insert(1, "k1", result("1"));
        cache.insert(2, "k2", result("2"));
        cache.insert(1, "k1", result("1b"));
        assert_eq!(cache.counters().evictions, 0);
        assert_eq!(cache.get(1, "k1").unwrap().output, "1b");
        assert!(cache.get(2, "k2").is_some());
    }

    #[test]
    fn eviction_storm_keeps_stamps_monotone_and_reports_victims() {
        // Tiny capacity + concurrent hit/miss/evict churn: every eviction
        // must be reported exactly once (the tier-2 tombstone contract),
        // and LRU stamps must stay monotone — strictly below the clock and
        // unique among residents (each assignment gets a fresh tick).
        let cache = ResultCache::new(4, 1);
        let evicted = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let (cache, evicted) = (&cache, &evicted);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let material = format!("m{}", (t * 31 + i) % 16);
                        let key = content_key(&[&material]);
                        if cache.get(key, &material).is_none() {
                            if let Some(v) = cache.insert(key, &material, result(&material)) {
                                evicted.lock().unwrap().push(v);
                            }
                        }
                    }
                });
            }
        });
        let c = cache.counters();
        assert!(c.entries <= 4, "capacity respected: {}", c.entries);
        assert_eq!(
            evicted.lock().unwrap().len() as u64,
            c.evictions,
            "every eviction reported exactly once"
        );
        assert!(c.evictions > 0, "a 16-key storm over 4 slots must evict");
        let (stamps, clock) = cache.debug_stamps();
        assert!(stamps.iter().all(|&s| s < clock), "stamps below clock: {stamps:?} vs {clock}");
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), stamps.len(), "stamps unique per assignment: {stamps:?}");
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = ResultCache::new(64, 8);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..100u64 {
                        let material = format!("m{}", (t * 100 + i) % 32);
                        let key = content_key(&[&material]);
                        if cache.get(key, &material).is_none() {
                            cache.insert(key, &material, result(&material));
                        }
                    }
                });
            }
        });
        let c = cache.counters();
        assert_eq!(c.hits + c.misses, 800);
        assert!(c.entries <= 64);
        // Every resident entry serves its own content back.
        for m in 0..32u64 {
            let material = format!("m{m}");
            if let Some(r) = cache.get(content_key(&[&material]), &material) {
                assert_eq!(r.output, material);
            }
        }
    }
}
