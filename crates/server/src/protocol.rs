//! The `lslpd` wire protocol: line-delimited requests and responses.
//!
//! One request per line, one response line per request, both framed by a
//! single `\n`. Multi-line payloads (SLC source in, IR out) travel on one
//! line via a two-character escape ([`escape`]/[`unescape`]): `\n` → `\\n`,
//! `\r` → `\\r`, `\\` → `\\\\`. This keeps clients trivial — a client is a
//! `writeln!` plus a `read_line` — and makes requests greppable in traffic
//! captures.
//!
//! Grammar (see `docs/SERVER.md` for the full description):
//!
//! ```text
//! request  := "COMPILE" (SP option)* SP "src=" escaped-source
//!           | "HELLO" SP "proto=" N
//!           | "STATS" | "HEALTH" | "PING" | "SHUTDOWN"
//! option   := "config=" NAME      (preset, default LSLP)
//!           | "target=" SPEC      (target machine, default skylake-avx2)
//!           | "pipeline=" 0|1     (full scalar+vector pipeline, default 1)
//!           | "emit=" ir|report   (default ir)
//!           | "guard=" off|rollback|strict|snapshot|differential
//!           | "packing=" greedy|global  (v5: statement-packing strategy)
//!           | "timeout-ms=" N    (compile budget, default server-wide)
//!           | "tag=" TOKEN       (v4: pipelining tag, echoed in the response)
//! response := "OK" (SP field)* SP "out=" escaped-payload
//!           | "ERR" [SP "tag=" TOKEN] SP "kind=" KIND SP "msg=" escaped-message
//! ```
//!
//! `src=`/`out=`/`msg=` always come last so the escaped payload may contain
//! spaces and `=` freely.
//!
//! The protocol is versioned: clients may open with `HELLO proto=N` and
//! the server answers `OK proto=<version> out=lslpd` when it speaks
//! version `N`, or `ERR kind=proto` when it does not. `HELLO` is optional
//! for backward compatibility — version-1 clients that skip the handshake
//! keep working because every version-2 addition is a new optional field.
//! Unknown request options are rejected with `ERR kind=proto`, never
//! silently ignored, so a client using a newer field fails loudly on an
//! older server.
//!
//! **Pipelining (v4).** A `COMPILE` may carry a client-chosen `tag=`
//! ([`valid_tag`]): the response echoes the tag and may arrive **out of
//! order** relative to other tagged responses on the same connection, so
//! one connection can keep many compiles in flight. Untagged requests
//! keep the strict one-in-one-out FIFO ordering of v1–v3 — the server
//! holds their responses in a per-connection reorder buffer — which is
//! what keeps old clients working unmodified against a v4 server. A tag
//! that is already in flight on the same connection is rejected with
//! `ERR tag=<tag> kind=proto` without disturbing the first request.

use std::fmt::Write as _;

/// The wire-protocol version this build speaks.
///
/// History: 1 = the initial `COMPILE`/`STATS`/`PING`/`SHUTDOWN` protocol;
/// 2 = adds the `HELLO` handshake and the `target=` compile option;
/// 3 = adds the `HEALTH` readiness verb;
/// 4 = adds the `tag=` compile option and out-of-order tagged responses
/// (request pipelining / multiplexing);
/// 5 = adds the `packing=` compile option (statement-packing strategy).
pub const PROTOCOL_VERSION: u32 = 5;

/// Maximum length of a pipelining tag.
pub const MAX_TAG_LEN: usize = 64;

/// Is `s` a legal pipelining tag? Tags are wire *atoms* — they are echoed
/// verbatim as a response field — so they are restricted to 1–64 chars of
/// `[A-Za-z0-9._:-]`: no spaces, no `=`, no escapes.
pub fn valid_tag(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= MAX_TAG_LEN
        && s.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b':' | b'-'))
}

/// Escape a payload onto a single protocol line.
///
/// Scans bytes and copies unescaped runs wholesale instead of pushing
/// char-by-char — this runs once per response on the serve hot path, and
/// payloads are mostly literal text. The specials are all ASCII, so byte
/// positions are always UTF-8 boundaries.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + s.len() / 8);
    escape_into(&mut out, s);
    out
}

/// [`escape`] appended onto an existing buffer — lets a response renderer
/// build its whole line in one allocation.
pub fn escape_into(out: &mut String, s: &str) {
    let mut start = 0;
    for (i, b) in s.bytes().enumerate() {
        let rep = match b {
            b'\\' => "\\\\",
            b'\n' => "\\n",
            b'\r' => "\\r",
            _ => continue,
        };
        out.push_str(&s[start..i]);
        out.push_str(rep);
        start = i + 1;
    }
    out.push_str(&s[start..]);
}

/// Invert [`escape`]. Unknown escapes and a trailing lone `\` error.
pub fn unescape(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'\\' {
            i += 1;
            continue;
        }
        out.push_str(&s[start..i]);
        match bytes.get(i + 1) {
            Some(b'\\') => out.push('\\'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(_) => {
                let other = s[i + 1..].chars().next().expect("byte after backslash");
                return Err(format!("bad escape `\\{other}`"));
            }
            None => return Err("truncated escape at end of line".into()),
        }
        i += 2;
        start = i;
    }
    out.push_str(&s[start..]);
    Ok(out)
}

/// Why a request was refused (the `kind=` field of an `ERR` response).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorKind {
    /// The request line itself is malformed (unknown verb, bad option,
    /// broken escape).
    Proto,
    /// The submitted source does not lex/parse/verify — a *user* error.
    Parse,
    /// Unknown configuration preset or guard mode.
    Config,
    /// The bounded work queue is full; retry with backoff.
    Overload,
    /// The server is draining for shutdown and accepts no new work.
    Shutdown,
    /// The compiler itself failed (strict-guard abort, internal bug).
    Internal,
}

impl ErrorKind {
    /// Wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Proto => "proto",
            ErrorKind::Parse => "parse",
            ErrorKind::Config => "config",
            ErrorKind::Overload => "overload",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parse a wire name back into a kind.
    pub fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "proto" => ErrorKind::Proto,
            "parse" => ErrorKind::Parse,
            "config" => ErrorKind::Config,
            "overload" => ErrorKind::Overload,
            "shutdown" => ErrorKind::Shutdown,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// What the response payload contains.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Emit {
    /// The optimized module IR.
    #[default]
    Ir,
    /// A per-function vectorization report.
    Report,
}

/// A parsed `COMPILE` request.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    /// Configuration preset name (`O3` | `SLP-NR` | `SLP` | `LSLP` | ...).
    pub config: String,
    /// Target machine spec (`sse4.2`, `avx512+hw-gather`, ...); `None` =
    /// the server's default target. Participates in the result-cache key.
    pub target: Option<String>,
    /// Run the full scalar+vector pipeline (default) or the vectorizer
    /// alone.
    pub pipeline: bool,
    /// Payload selection.
    pub emit: Emit,
    /// Guard-mode override (`None` keeps the preset default: rollback with
    /// delta-log undo). Also accepts the rollback-strategy spellings
    /// `snapshot` and `differential`.
    pub guard: Option<String>,
    /// Statement-packing strategy (v5): `greedy` | `global`; `None` keeps
    /// the preset default (greedy). Changes the artifact, so it
    /// participates in the result-cache key. Validated at parse time —
    /// an unknown spelling is `ERR kind=proto`.
    pub packing: Option<String>,
    /// Per-request compile budget in milliseconds (`None` = the server's
    /// default). Fed into the guard's time-budget fuel, so a pathological
    /// input degrades to (partially) scalar output instead of stalling a
    /// worker.
    pub timeout_ms: Option<u64>,
    /// Pipelining tag (v4): echoed in the response, which may then
    /// complete out of order relative to other tagged requests on the
    /// same connection. `None` keeps the serial v1–v3 FIFO ordering.
    /// Does **not** participate in the result-cache key.
    pub tag: Option<String>,
    /// The SLC source (unescaped).
    pub src: String,
}

impl Default for CompileRequest {
    fn default() -> CompileRequest {
        CompileRequest {
            config: "LSLP".into(),
            target: None,
            pipeline: true,
            emit: Emit::Ir,
            guard: None,
            packing: None,
            timeout_ms: None,
            tag: None,
            src: String::new(),
        }
    }
}

impl CompileRequest {
    /// A default-configured request for `src`.
    pub fn new(src: &str) -> CompileRequest {
        CompileRequest { src: src.to_string(), ..CompileRequest::default() }
    }

    /// Render the request as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut line = String::with_capacity(self.src.len() + self.src.len() / 8 + 64);
        self.line_into(self.tag.as_deref(), &mut line);
        line
    }

    /// Append this request's wire line onto `buf`, with `tag` overriding
    /// `self.tag`. A pipelining client renders a whole window of requests
    /// into one write buffer this way, with no interim line strings.
    pub fn line_into(&self, tag: Option<&str>, buf: &mut String) {
        buf.push_str("COMPILE");
        let _ = write!(buf, " config={}", self.config);
        if let Some(t) = &self.target {
            let _ = write!(buf, " target={t}");
        }
        let _ = write!(buf, " pipeline={}", if self.pipeline { 1 } else { 0 });
        if self.emit == Emit::Report {
            buf.push_str(" emit=report");
        }
        if let Some(g) = &self.guard {
            let _ = write!(buf, " guard={g}");
        }
        if let Some(p) = &self.packing {
            let _ = write!(buf, " packing={p}");
        }
        if let Some(ms) = self.timeout_ms {
            let _ = write!(buf, " timeout-ms={ms}");
        }
        if let Some(tag) = tag {
            debug_assert!(valid_tag(tag), "tags must be wire atoms");
            let _ = write!(buf, " tag={tag}");
        }
        buf.push_str(" src=");
        escape_into(buf, &self.src);
    }
}

/// Any parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Compile a source payload.
    Compile(CompileRequest),
    /// Version handshake: the client announces the protocol version it
    /// intends to speak.
    Hello {
        /// The client's protocol version.
        proto: u32,
    },
    /// Dump the metrics registry.
    Stats,
    /// Readiness/degradation probe: `OK status=ready|degraded|draining`
    /// with worker-liveness fields. Unlike `PING` (pure liveness), the
    /// answer reflects whether the daemon is healthy enough to serve.
    Health,
    /// Liveness check.
    Ping,
    /// Begin graceful shutdown: drain queued work, then exit.
    Shutdown,
}

/// Parse one request line (without its trailing newline).
///
/// # Errors
///
/// Returns a [`ErrorKind::Proto`]-ready message for malformed lines.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r),
        None => (line, ""),
    };
    match verb {
        "STATS" => Ok(Request::Stats),
        "HEALTH" => Ok(Request::Health),
        "PING" => Ok(Request::Ping),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "COMPILE" => parse_compile(rest).map(Request::Compile),
        "HELLO" => parse_hello(rest),
        "" => Err("empty request".into()),
        other => Err(format!("unknown verb `{other}`")),
    }
}

fn parse_hello(rest: &str) -> Result<Request, String> {
    let mut proto = None;
    for token in rest.split(' ').filter(|t| !t.is_empty()) {
        let (key, value) =
            token.split_once('=').ok_or_else(|| format!("expected key=value, got `{token}`"))?;
        match key {
            "proto" => {
                proto = Some(value.parse().map_err(|e| format!("bad proto value: {e}"))?);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Request::Hello { proto: proto.ok_or("HELLO requires proto=")? })
}

fn parse_compile(rest: &str) -> Result<CompileRequest, String> {
    let mut req = CompileRequest::default();
    // Walk tokens by byte offset so `src=` can swallow the untouched tail
    // of the line (the escaped payload may contain spaces) without
    // re-joining previously split pieces.
    let mut cursor = 0usize;
    loop {
        if cursor >= rest.len() {
            return Err("missing src= payload".into());
        }
        let token_end = rest[cursor..].find(' ').map_or(rest.len(), |p| cursor + p);
        let token = &rest[cursor..token_end];
        let (key, value) =
            token.split_once('=').ok_or_else(|| format!("expected key=value, got `{token}`"))?;
        match key {
            "src" => {
                req.src = unescape(&rest[cursor + key.len() + 1..])?;
                return Ok(req);
            }
            "config" => req.config = value.to_string(),
            "target" => req.target = Some(value.to_string()),
            "pipeline" => {
                req.pipeline = match value {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("bad pipeline value `{other}`")),
                }
            }
            "emit" => {
                req.emit = match value {
                    "ir" => Emit::Ir,
                    "report" => Emit::Report,
                    other => return Err(format!("unknown emit mode `{other}`")),
                }
            }
            "guard" => req.guard = Some(value.to_string()),
            "packing" => match value {
                "greedy" | "global" => req.packing = Some(value.to_string()),
                other => {
                    return Err(format!("unknown packing strategy `{other}` (try greedy, global)"))
                }
            },
            "timeout-ms" => {
                req.timeout_ms =
                    Some(value.parse().map_err(|e| format!("bad timeout-ms value: {e}"))?)
            }
            "tag" => {
                if !valid_tag(value) {
                    return Err(format!(
                        "bad tag `{value}` (1..={MAX_TAG_LEN} chars of [A-Za-z0-9._:-])"
                    ));
                }
                req.tag = Some(value.to_string());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        cursor = token_end + 1;
    }
}

/// A parsed response line.
#[derive(Clone, Debug)]
pub struct Response {
    /// `OK` vs `ERR`.
    pub ok: bool,
    /// The `kind=` of an `ERR` response.
    pub error: Option<ErrorKind>,
    /// All `key=value` fields before the payload, verbatim in wire order.
    /// Kept as one undissected slice of the line — fields are atoms (no
    /// escapes, no spaces), so [`Response::field`] scans on demand instead
    /// of paying a map and two string allocations per field on every
    /// response a pipelining client drains.
    raw_fields: String,
    /// The unescaped `out=` / `msg=` payload.
    pub payload: String,
}

impl Response {
    /// Render an `OK` response line. `fields` must not contain `out`.
    pub fn ok_line(fields: &[(&str, String)], payload: &str) -> String {
        let mut line = String::from("OK");
        for (k, v) in fields {
            debug_assert!(!v.contains([' ', '\n']), "field values must be atoms");
            let _ = write!(line, " {k}={v}");
        }
        let _ = write!(line, " out={}", escape(payload));
        line
    }

    /// Render an `ERR` response line.
    pub fn err_line(kind: ErrorKind, msg: &str) -> String {
        format!("ERR kind={} msg={}", kind.name(), escape(msg))
    }

    /// Render an `ERR` response line echoing a pipelining tag.
    pub fn err_line_tagged(tag: &str, kind: ErrorKind, msg: &str) -> String {
        debug_assert!(valid_tag(tag), "tags must be wire atoms");
        format!("ERR tag={tag} kind={} msg={}", kind.name(), escape(msg))
    }

    /// Inject `tag=<tag>` into an already-rendered response line, right
    /// after the `OK`/`ERR` verb. Used by the server to stamp a worker's
    /// response with the connection-level pipelining tag the worker never
    /// sees.
    pub fn tag_line(tag: &str, line: &str) -> String {
        debug_assert!(valid_tag(tag), "tags must be wire atoms");
        match line.split_once(' ') {
            Some((verb, rest)) => format!("{verb} tag={tag} {rest}"),
            None => format!("{line} tag={tag}"),
        }
    }

    /// The echoed pipelining tag, when present.
    pub fn tag(&self) -> Option<&str> {
        self.field("tag")
    }

    /// A named field, when present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.raw_fields.split(' ').find_map(|t| {
            let (k, v) = t.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Parse one response line.
    ///
    /// # Errors
    ///
    /// Returns a message for lines that are not well-formed responses.
    pub fn parse(line: &str) -> Result<Response, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) =
            line.split_once(' ').ok_or_else(|| format!("malformed response `{line}`"))?;
        let ok = match verb {
            "OK" => true,
            "ERR" => false,
            other => return Err(format!("unknown response verb `{other}`")),
        };
        // Walk tokens by byte offset: everything before the payload marker
        // becomes the raw field region verbatim (one allocation), and the
        // escaped payload is the untouched tail of the line.
        let mut payload = None;
        let mut fields_end = 0usize;
        let mut cursor = 0usize;
        while cursor < rest.len() {
            let token_end = rest[cursor..].find(' ').map_or(rest.len(), |p| cursor + p);
            let token = &rest[cursor..token_end];
            let (key, _) = token
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{token}`"))?;
            if key == "out" || key == "msg" {
                payload = Some(unescape(&rest[cursor + key.len() + 1..])?);
                break;
            }
            fields_end = token_end;
            cursor = token_end + 1;
        }
        let payload = payload.ok_or("response has no out=/msg= payload")?;
        let mut resp =
            Response { ok, error: None, raw_fields: rest[..fields_end].to_string(), payload };
        if !ok {
            resp.error = Some(
                resp.field("kind")
                    .and_then(ErrorKind::parse)
                    .ok_or("ERR response without a known kind=")?,
            );
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips() {
        for s in ["", "plain", "a\nb\r\nc", "back\\slash\\n", "kernel k() {\n  A[i] = 1;\n}"] {
            assert_eq!(unescape(&escape(s)).unwrap(), s, "{s:?}");
        }
        assert!(escape("a\nb").lines().count() == 1, "escaped payloads are single-line");
        assert!(unescape("bad\\q").is_err());
        assert!(unescape("trailing\\").is_err());
    }

    #[test]
    fn hello_handshake_parses() {
        match parse_request("HELLO proto=2").unwrap() {
            Request::Hello { proto } => assert_eq!(proto, 2),
            other => panic!("wrong request: {other:?}"),
        }
        assert!(parse_request("HELLO").is_err(), "proto= is mandatory");
        assert!(parse_request("HELLO proto=soon").is_err());
        assert!(parse_request("HELLO proto=2 color=blue").is_err(), "unknown fields rejected");
    }

    #[test]
    fn target_option_roundtrips_and_defaults_off_the_wire() {
        let req =
            CompileRequest { target: Some("avx512+hw-gather".into()), ..CompileRequest::new("x") };
        match parse_request(&req.to_line()).unwrap() {
            Request::Compile(r) => assert_eq!(r.target.as_deref(), Some("avx512+hw-gather")),
            other => panic!("wrong request: {other:?}"),
        }
        // A version-1 line without target= still parses (target = None).
        match parse_request("COMPILE config=LSLP pipeline=1 src=x").unwrap() {
            Request::Compile(r) => assert_eq!(r.target, None),
            other => panic!("wrong request: {other:?}"),
        }
        let default_line = CompileRequest::new("x").to_line();
        assert!(!default_line.contains("target="), "default target stays off the wire");
    }

    #[test]
    fn compile_request_roundtrips() {
        let req = CompileRequest {
            config: "SLP".into(),
            target: Some("sse4.2".into()),
            pipeline: false,
            emit: Emit::Report,
            guard: Some("strict".into()),
            packing: Some("global".into()),
            timeout_ms: Some(25),
            tag: None,
            src: "kernel k(f64* A, i64 i) {\n  A[i] = A[i] + 1.0;\n}".into(),
        };
        let line = req.to_line();
        assert!(!line.contains('\n'));
        match parse_request(&line).unwrap() {
            Request::Compile(r) => {
                assert_eq!(r.config, "SLP");
                assert_eq!(r.target.as_deref(), Some("sse4.2"));
                assert!(!r.pipeline);
                assert_eq!(r.emit, Emit::Report);
                assert_eq!(r.guard.as_deref(), Some("strict"));
                assert_eq!(r.packing.as_deref(), Some("global"));
                assert_eq!(r.timeout_ms, Some(25));
                assert_eq!(r.src, req.src);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn tags_roundtrip_and_validate() {
        let req = CompileRequest { tag: Some("t-42.x:y_z".into()), ..CompileRequest::new("x") };
        match parse_request(&req.to_line()).unwrap() {
            Request::Compile(r) => assert_eq!(r.tag.as_deref(), Some("t-42.x:y_z")),
            other => panic!("wrong request: {other:?}"),
        }
        // Untagged lines stay untagged (v1-v3 lines are valid v4 lines).
        let untagged = CompileRequest::new("x").to_line();
        assert!(!untagged.contains("tag="), "default tag stays off the wire");

        assert!(valid_tag("a"));
        assert!(valid_tag(&"x".repeat(MAX_TAG_LEN)));
        assert!(!valid_tag(""));
        assert!(!valid_tag(&"x".repeat(MAX_TAG_LEN + 1)));
        assert!(!valid_tag("has space"));
        assert!(!valid_tag("has=eq"));
        assert!(!valid_tag("esc\\ape"));
        assert!(parse_request("COMPILE tag= src=x").is_err(), "empty tag rejected");
        assert!(parse_request("COMPILE tag=a b src=x").is_err(), "tag is one token");
        assert!(parse_request(&format!("COMPILE tag={} src=x", "y".repeat(65))).is_err());
    }

    #[test]
    fn packing_option_roundtrips_and_validates() {
        // Spellings are checked at parse time — a typo is a proto error
        // before the request ever reaches a worker.
        match parse_request("COMPILE packing=global src=x").unwrap() {
            Request::Compile(r) => assert_eq!(r.packing.as_deref(), Some("global")),
            other => panic!("wrong request: {other:?}"),
        }
        let err = parse_request("COMPILE packing=exhaustive src=x").unwrap_err();
        assert!(err.contains("try greedy, global"), "{err}");
        // Old clients never send packing=, and the default stays off the
        // wire, so v1-v4 lines are valid v5 lines.
        let default_line = CompileRequest::new("x").to_line();
        assert!(!default_line.contains("packing="), "default packing stays off the wire");
    }

    #[test]
    fn tagged_responses_roundtrip() {
        let ok = Response::tag_line("t7", &Response::ok_line(&[("cached", "hit".into())], "ir"));
        let r = Response::parse(&ok).unwrap();
        assert!(r.ok);
        assert_eq!(r.tag(), Some("t7"));
        assert_eq!(r.field("cached"), Some("hit"));
        assert_eq!(r.payload, "ir");

        let e = Response::parse(&Response::err_line_tagged("t7", ErrorKind::Proto, "duplicate"))
            .unwrap();
        assert!(!e.ok);
        assert_eq!(e.tag(), Some("t7"));
        assert_eq!(e.error, Some(ErrorKind::Proto));
        assert_eq!(e.payload, "duplicate");

        // An untagged response has no tag.
        let plain = Response::parse(&Response::ok_line(&[], "x")).unwrap();
        assert_eq!(plain.tag(), None);
    }

    #[test]
    fn control_verbs_parse() {
        assert!(matches!(parse_request("STATS").unwrap(), Request::Stats));
        assert!(matches!(parse_request("PING\n").unwrap(), Request::Ping));
        assert!(matches!(parse_request("HEALTH\n").unwrap(), Request::Health));
        assert!(matches!(parse_request("SHUTDOWN\r\n").unwrap(), Request::Shutdown));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(parse_request("").is_err());
        assert!(parse_request("FROBNICATE now").is_err());
        assert!(parse_request("COMPILE nonsense").is_err());
        assert!(parse_request("COMPILE config=LSLP").is_err(), "missing src=");
        assert!(parse_request("COMPILE pipeline=maybe src=x").is_err());
        assert!(parse_request("COMPILE timeout-ms=soon src=x").is_err());
        assert!(parse_request("COMPILE src=bad\\escape\\q").is_err());
        assert!(
            parse_request("COMPILE vectorwidth=8 src=x").is_err(),
            "unknown options are rejected, not ignored"
        );
    }

    #[test]
    fn responses_roundtrip() {
        let line =
            Response::ok_line(&[("cached", "hit".into()), ("trees", "2".into())], "v0 = add\n");
        let r = Response::parse(&line).unwrap();
        assert!(r.ok);
        assert_eq!(r.field("cached"), Some("hit"));
        assert_eq!(r.field("trees"), Some("2"));
        assert_eq!(r.payload, "v0 = add\n");

        let e = Response::parse(&Response::err_line(ErrorKind::Overload, "queue full")).unwrap();
        assert!(!e.ok);
        assert_eq!(e.error, Some(ErrorKind::Overload));
        assert_eq!(e.payload, "queue full");
    }

    #[test]
    fn every_error_kind_roundtrips() {
        for kind in [
            ErrorKind::Proto,
            ErrorKind::Parse,
            ErrorKind::Config,
            ErrorKind::Overload,
            ErrorKind::Shutdown,
            ErrorKind::Internal,
        ] {
            assert_eq!(ErrorKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ErrorKind::parse("nope"), None);
    }
}
