//! A bounded MPMC work queue with rejection-style backpressure.
//!
//! `std`-only (`Mutex` + `Condvar`). Producers never block: [`Bounded::
//! push`] on a full queue returns the job back immediately so the caller
//! can answer `ERR kind=overload` and let the client retry with backoff —
//! under overload the service sheds load at the door instead of growing an
//! unbounded backlog. Consumers block in [`Bounded::pop`] until work
//! arrives or the queue is closed *and* drained, which is exactly the
//! graceful-shutdown contract: close, let workers finish what was already
//! accepted, join.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the job is handed back.
    Full(T),
    /// The queue was closed for shutdown; the job is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of the queue depth, for the metrics dump.
    max_depth: usize,
}

/// The bounded queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue accepting at most `capacity` (≥ 1) queued items.
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            state: Mutex::new(State { items: VecDeque::new(), closed: false, max_depth: 0 }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity, [`PushError::Closed`] after
    /// [`Bounded::close`]; both return the item to the caller.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        state.max_depth = state.max_depth.max(state.items.len());
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue, blocking until an item arrives. Returns `None` once the
    /// queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Close the queue: rejects new pushes, wakes **all** Condvar waiters
    /// (so consumers blocked on an empty queue observe the close
    /// immediately — drain cannot hang); items already accepted are still
    /// handed out (drain semantics). Idempotent: the `SHUTDOWN` handler
    /// closes eagerly and the accept-loop teardown closes again.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Whether [`Bounded::close`] has been called. The worker watchdog
    /// uses `is_closed() && is_empty()` to distinguish a drained pool
    /// (workers exiting is expected) from a crashed worker (respawn).
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the depth since creation.
    pub fn max_depth(&self) -> usize {
        self.state.lock().expect("queue lock").max_depth
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn rejects_when_full() {
        let q = Bounded::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(PushError::Full(3)), "no blocking, the job comes back");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn close_drains_accepted_work() {
        let q = Bounded::new(4);
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.close();
        assert_eq!(q.push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"), "already-accepted work still drains");
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None, "drained + closed terminates consumers");
    }

    #[test]
    fn close_wakes_all_blocked_poppers_on_an_empty_queue() {
        // Regression test for shutdown-during-drain: several consumers are
        // parked in `pop()` on an *empty* queue; `close()` must wake every
        // one of them promptly, not rely on a future push or a dequeue-time
        // flag check. A hang here is exactly the "drain never finishes"
        // failure the SHUTDOWN handler's eager close prevents.
        use std::sync::mpsc;
        use std::time::Duration;

        let q: &'static Bounded<u32> = Box::leak(Box::new(Bounded::new(4)));
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                let got = q.pop();
                tx.send(got).unwrap();
            }));
        }
        // Give the poppers time to park in the Condvar wait.
        std::thread::sleep(Duration::from_millis(50));
        assert!(!q.is_closed());
        q.close();
        q.close(); // idempotent
        for _ in 0..4 {
            let got = rx
                .recv_timeout(Duration::from_secs(5))
                .expect("popper must wake on close, not hang");
            assert_eq!(got, None, "empty + closed yields None");
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.is_closed());
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let q = Bounded::new(8);
        let consumed = AtomicUsize::new(0);
        const PER_PRODUCER: usize = 200;
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(|| {
                    let mut sent = 0;
                    while sent < PER_PRODUCER {
                        match q.push(sent) {
                            Ok(()) => sent += 1,
                            Err(PushError::Full(_)) => std::thread::yield_now(),
                            Err(PushError::Closed(_)) => panic!("closed early"),
                        }
                    }
                });
            }
            // Producers and consumers run to completion inside the scope only
            // if we close once producers are done — do that from a watcher.
            s.spawn(|| {
                while consumed.load(Ordering::Relaxed) < 2 * PER_PRODUCER {
                    std::thread::yield_now();
                }
                q.close();
            });
        });
        assert_eq!(consumed.load(Ordering::Relaxed), 2 * PER_PRODUCER);
        assert!(q.max_depth() <= 8, "bound respected: {}", q.max_depth());
    }
}
