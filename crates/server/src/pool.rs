//! A bounded connection pool over [`Client`] plus a pipelined batch
//! compile API.
//!
//! The pool dials lazily and re-uses connections across acquisitions:
//!
//! * **acquire/release** — [`Pool::acquire`] hands out a [`PooledClient`]
//!   guard that returns its connection on drop; at `max_size` checked-out
//!   connections it blocks until one comes back;
//! * **idle reaping** — connections idle past `idle_timeout` are closed
//!   instead of re-used (the reap is lazy, on the next acquire);
//! * **health-checked reuse** — a connection idle past
//!   `health_check_after` is `PING`ed before being handed out and
//!   replaced if the probe fails;
//! * **broken-connection eviction** — callers mark a connection broken
//!   ([`PooledClient::mark_broken`]) and it is dropped instead of pooled.
//!
//! [`Pool::compile_many`] fans a batch of requests across pooled
//! connections, pipelining up to `depth` tagged in-flight requests per
//! connection (protocol v4) with per-request deadlines and the same
//! retry/backoff/reconnect policy as [`Client::retry_line`]. Keep
//! `depth` at or below the server's `--pipeline-depth`; a deeper client
//! window is safe but the surplus just waits in socket buffers.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::chaos::splitmix64;
use crate::client::{Client, ClientError, RetryOutcome, RetryPolicy};
use crate::protocol::{CompileRequest, ErrorKind, Response};

/// Pool tunables.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Maximum connections alive at once (pooled + checked out).
    pub max_size: usize,
    /// An idle pooled connection older than this is closed on the next
    /// acquire instead of re-used.
    pub idle_timeout: Duration,
    /// An idle pooled connection older than this is `PING`ed before
    /// re-use and replaced if the probe fails.
    pub health_check_after: Duration,
}

impl PoolConfig {
    /// Defaults: 8 connections, 60 s idle reap, health checks after 5 s.
    pub fn new(addr: impl Into<String>) -> PoolConfig {
        PoolConfig {
            addr: addr.into(),
            max_size: 8,
            idle_timeout: Duration::from_secs(60),
            health_check_after: Duration::from_secs(5),
        }
    }
}

/// Monotonic pool activity counters (for load-generator reporting).
#[derive(Default)]
pub struct PoolCounters {
    /// Fresh connections dialed.
    pub created: AtomicU64,
    /// Acquisitions served by a pooled connection.
    pub reused: AtomicU64,
    /// Idle connections closed by the reap.
    pub reaped_idle: AtomicU64,
    /// Connections dropped after being marked broken or failing their
    /// health probe.
    pub evicted_broken: AtomicU64,
    /// Health probes sent before re-use.
    pub health_checks: AtomicU64,
}

struct IdleConn {
    client: Client,
    since: Instant,
}

struct PoolState {
    idle: Vec<IdleConn>,
    /// Connections alive: pooled + checked out.
    total: usize,
}

/// A bounded, health-checked connection pool.
pub struct Pool {
    cfg: PoolConfig,
    state: Mutex<PoolState>,
    returned: Condvar,
    counters: PoolCounters,
}

impl Pool {
    /// Create an empty pool (connections are dialed on demand).
    pub fn new(cfg: PoolConfig) -> Pool {
        Pool {
            cfg,
            state: Mutex::new(PoolState { idle: Vec::new(), total: 0 }),
            returned: Condvar::new(),
            counters: PoolCounters::default(),
        }
    }

    /// The pool's activity counters.
    pub fn counters(&self) -> &PoolCounters {
        &self.counters
    }

    /// Check out a connection: re-use a healthy pooled one, dial a fresh
    /// one under the size limit, or block until a checkout returns.
    ///
    /// # Errors
    ///
    /// Propagates dial failures (the slot is released, so a later
    /// acquire may succeed once the daemon is back).
    pub fn acquire(&self) -> std::io::Result<PooledClient<'_>> {
        let mut state = self.state.lock().expect("pool lock");
        loop {
            // Lazy idle reap: drop from the cold end first.
            let now = Instant::now();
            let before = state.idle.len();
            state.idle.retain(|c| now.duration_since(c.since) < self.cfg.idle_timeout);
            let reaped = before - state.idle.len();
            if reaped > 0 {
                state.total -= reaped;
                self.counters.reaped_idle.fetch_add(reaped as u64, Ordering::Relaxed);
            }

            if let Some(mut idle) = state.idle.pop() {
                let needs_probe = now.duration_since(idle.since) >= self.cfg.health_check_after;
                if !needs_probe {
                    self.counters.reused.fetch_add(1, Ordering::Relaxed);
                    return Ok(PooledClient {
                        pool: self,
                        client: Some(idle.client),
                        broken: false,
                    });
                }
                // Probe outside the lock: a slow/dead daemon must not
                // serialize every other acquire behind this one.
                drop(state);
                self.counters.health_checks.fetch_add(1, Ordering::Relaxed);
                let prior_timeout = Some(Duration::from_secs(1));
                let healthy = idle.client.set_timeout(prior_timeout).is_ok()
                    && idle.client.ping().is_ok_and(|r| r.ok);
                state = self.state.lock().expect("pool lock");
                if healthy {
                    let _ = idle.client.set_timeout(None);
                    self.counters.reused.fetch_add(1, Ordering::Relaxed);
                    return Ok(PooledClient {
                        pool: self,
                        client: Some(idle.client),
                        broken: false,
                    });
                }
                state.total -= 1;
                self.counters.evicted_broken.fetch_add(1, Ordering::Relaxed);
                continue; // try the next idle conn / dial / wait
            }

            if state.total < self.cfg.max_size {
                state.total += 1;
                drop(state); // dial outside the lock
                match Client::connect(&self.cfg.addr) {
                    Ok(client) => {
                        self.counters.created.fetch_add(1, Ordering::Relaxed);
                        return Ok(PooledClient {
                            pool: self,
                            client: Some(client),
                            broken: false,
                        });
                    }
                    Err(e) => {
                        let mut state = self.state.lock().expect("pool lock");
                        state.total -= 1;
                        drop(state);
                        self.returned.notify_one();
                        return Err(e);
                    }
                }
            }

            state = self.returned.wait(state).expect("pool lock");
        }
    }

    fn release(&self, client: Option<Client>, broken: bool) {
        let mut state = self.state.lock().expect("pool lock");
        match client {
            Some(client) if !broken => {
                state.idle.push(IdleConn { client, since: Instant::now() });
            }
            _ => {
                state.total -= 1;
                if broken {
                    self.counters.evicted_broken.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        drop(state);
        self.returned.notify_one();
    }

    /// Compile a batch: requests fan out across up to `max_size` pooled
    /// connections, each pipelining up to `depth` tagged requests
    /// (protocol v4, out-of-order completion). Every request gets its own
    /// deadline/retry budget from `policy`; the returned outcomes are in
    /// input order. Requests that carry no tag are assigned `b{index}`.
    pub fn compile_many(
        &self,
        reqs: &[CompileRequest],
        depth: usize,
        policy: &RetryPolicy,
    ) -> Vec<RetryOutcome> {
        let depth = depth.max(1);
        let conns = self.cfg.max_size.clamp(1, reqs.len().div_ceil(depth).max(1));
        let mut outcomes: Vec<Option<RetryOutcome>> = Vec::with_capacity(reqs.len());
        outcomes.resize_with(reqs.len(), || None);
        let chunks: Vec<Vec<usize>> =
            (0..conns).map(|c| (c..reqs.len()).step_by(conns).collect()).collect();
        let results = Mutex::new(&mut outcomes);
        std::thread::scope(|scope| {
            for chunk in chunks {
                if chunk.is_empty() {
                    continue;
                }
                let results = &results;
                scope.spawn(move || {
                    let done = self.run_pipelined(reqs, &chunk, depth, policy);
                    let mut results = results.lock().expect("results lock");
                    for (idx, outcome) in done {
                        results[idx] = Some(outcome);
                    }
                });
            }
        });
        outcomes.into_iter().map(|o| o.expect("every request resolved")).collect()
    }

    /// Drive one connection's share of the batch: a sliding window of
    /// `depth` tagged in-flight requests, retry/backoff per request,
    /// reconnect-and-resend on transport failure.
    fn run_pipelined(
        &self,
        reqs: &[CompileRequest],
        chunk: &[usize],
        depth: usize,
        policy: &RetryPolicy,
    ) -> Vec<(usize, RetryOutcome)> {
        let mut results: Vec<(usize, RetryOutcome)> = Vec::with_capacity(chunk.len());
        let now = Instant::now();
        let mut pending: VecDeque<FlightRecord> = chunk
            .iter()
            .map(|&idx| FlightRecord {
                idx,
                attempts: 0,
                reconnects: 0,
                started: now,
                not_before: now,
            })
            .collect();

        let mut conn = match self.acquire() {
            Ok(c) => c,
            Err(_) => {
                // The daemon is unreachable; fail the whole chunk the way
                // retry_line reports transport death.
                return pending
                    .into_iter()
                    .map(|f| {
                        (
                            f.idx,
                            RetryOutcome {
                                response: None,
                                attempts: f.attempts.max(1),
                                reconnects: 0,
                                gave_up: true,
                                elapsed: f.started.elapsed(),
                            },
                        )
                    })
                    .collect();
            }
        };
        // Short ticks so per-request deadlines and backoff releases are
        // observed while blocked on slow responses.
        let _ = conn.set_timeout(Some(Duration::from_millis(20)));

        let mut inflight: HashMap<String, FlightRecord> = HashMap::new();
        let mut partial = String::new();
        let mut batch = String::new();
        let mut last_expire = Instant::now();
        while !pending.is_empty() || !inflight.is_empty() {
            let now = Instant::now();

            // Expire in-flight requests past their deadline: record the
            // give-up and forget the tag (a late response is discarded).
            // Deadlines are clock-bound, so this O(window) scan runs at
            // most every 20 ms, not once per response.
            if let Some(deadline) = policy
                .deadline
                .filter(|_| now.duration_since(last_expire) >= Duration::from_millis(20))
            {
                last_expire = now;
                let expired: Vec<String> = inflight
                    .iter()
                    .filter(|(_, f)| now.duration_since(f.started) >= deadline)
                    .map(|(t, _)| t.clone())
                    .collect();
                for tag in expired {
                    let f = inflight.remove(&tag).expect("expired tag in flight");
                    results.push((
                        f.idx,
                        RetryOutcome {
                            response: None,
                            attempts: f.attempts,
                            reconnects: f.reconnects,
                            gave_up: true,
                            elapsed: f.started.elapsed(),
                        },
                    ));
                }
            }

            // Fill the window with released pending requests — the whole
            // refill renders into one buffer and goes out in one write.
            // Hysteresis: wait until the window has drained to half before
            // topping up, so steady-state refills are depth/2-sized batches
            // rather than echoing back whatever trickle just settled.
            let mut transport_down = false;
            let mut batched = 0usize;
            batch.clear();
            let room = if inflight.len() * 2 <= depth { depth - inflight.len() } else { 0 };
            while batched < room {
                let ready = pending.front().is_some_and(|f| f.not_before <= now);
                if !ready {
                    break;
                }
                let mut f = pending.pop_front().expect("front checked");
                f.attempts += 1;
                if f.attempts == 1 {
                    // Latency is measured from the first send, not from
                    // batch admission (a deep chunk parks records here for
                    // a long time before the window reaches them).
                    f.started = Instant::now();
                }
                let tag = batch_tag(reqs, f.idx);
                reqs[f.idx].line_into(Some(&tag), &mut batch);
                batch.push('\n');
                batched += 1;
                inflight.insert(tag, f);
            }
            if batched > 0 && conn.send_batch(&batch).is_err() {
                // The batched records are already in `inflight`; the
                // transport path below resends them.
                transport_down = true;
            }

            // Collect responses: block up to one 20 ms tick for the first,
            // then sweep every response already sitting in the read buffer
            // — a whole burst costs one read syscall.
            if !transport_down && !inflight.is_empty() {
                loop {
                    match conn.recv_line_step(&mut partial) {
                        Ok(Some(resp)) => {
                            let flight = resp.tag().and_then(|t| inflight.remove(t));
                            if let Some(f) = flight {
                                settle(resp, f, policy, &mut pending, &mut results);
                            }
                            // Untagged or already-expired responses fall
                            // through: nothing is waiting on them.
                            if inflight.is_empty() || !conn.has_buffered_response() {
                                break;
                            }
                        }
                        Ok(None) => break, // tick: re-check deadlines/backoffs
                        Err(ClientError::Protocol(_)) | Err(ClientError::Io(_)) => {
                            // A garbled response line desyncs the stream;
                            // either way the transport is dead — resend the
                            // in-flight work on a fresh connection.
                            transport_down = true;
                            break;
                        }
                    }
                }
            }

            if transport_down {
                partial.clear();
                conn.mark_broken();
                drop(conn);
                // In-flight requests go back to the front of the queue;
                // their attempts already counted the send that died.
                let mut resent: Vec<FlightRecord> = inflight.drain().map(|(_, f)| f).collect();
                resent.sort_by_key(|f| f.idx);
                for f in resent.into_iter().rev() {
                    pending.push_front(f);
                }
                let reconnect_deadline = policy.deadline;
                conn = loop {
                    match self.acquire() {
                        Ok(mut c) => {
                            let _ = c.set_timeout(Some(Duration::from_millis(20)));
                            for f in pending.iter_mut() {
                                f.reconnects += 1;
                            }
                            break c;
                        }
                        Err(_) => {
                            // Dial failed (daemon mid-restart): give up on
                            // requests past deadline, keep trying briefly.
                            let now = Instant::now();
                            let all_expired = reconnect_deadline.is_some_and(|d| {
                                pending.iter().all(|f| now.duration_since(f.started) >= d)
                            });
                            if all_expired {
                                return results
                                    .into_iter()
                                    .chain(pending.into_iter().map(|f| {
                                        (
                                            f.idx,
                                            RetryOutcome {
                                                response: None,
                                                attempts: f.attempts.max(1),
                                                reconnects: f.reconnects,
                                                gave_up: true,
                                                elapsed: f.started.elapsed(),
                                            },
                                        )
                                    }))
                                    .collect();
                            }
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    }
                };
                continue;
            }

            if inflight.is_empty() && pending.front().is_some_and(|f| f.not_before > now) {
                // Nothing on the wire; sleep out the nearest backoff.
                let wake = pending.iter().map(|f| f.not_before).min().expect("pending non-empty");
                std::thread::sleep(
                    wake.saturating_duration_since(now).min(Duration::from_millis(50)),
                );
            }
        }
        results
    }
}

/// Resolve one tagged response against its flight record: final
/// outcomes are recorded, retryable errors go back to the pending
/// queue with jittered exponential backoff (unless the budget or
/// deadline ran out).
fn settle(
    resp: Response,
    f: FlightRecord,
    policy: &RetryPolicy,
    pending: &mut VecDeque<FlightRecord>,
    results: &mut Vec<(usize, RetryOutcome)>,
) {
    let retry = match resp.error {
        Some(ErrorKind::Overload) => true,
        Some(ErrorKind::Internal) => resp.payload.contains("worker dropped the request"),
        _ => false,
    };
    if !retry {
        results.push((
            f.idx,
            RetryOutcome {
                response: Some(resp),
                attempts: f.attempts,
                reconnects: f.reconnects,
                gave_up: false,
                elapsed: f.started.elapsed(),
            },
        ));
        return;
    }
    let now = Instant::now();
    let over_budget = f.attempts > policy.max_retries;
    let shift = f.attempts.saturating_sub(1).min(16);
    let exp = policy.base_delay.saturating_mul(1u32 << shift).min(policy.max_delay);
    let frac = (splitmix64(policy.seed.wrapping_add(f.idx as u64 * 31 + f.attempts as u64)) >> 11)
        as f64
        / (1u64 << 53) as f64;
    let delay = exp.mul_f64(0.5 + 0.5 * frac);
    let over_deadline = policy.deadline.is_some_and(|d| now.duration_since(f.started) + delay >= d);
    if over_budget || over_deadline {
        results.push((
            f.idx,
            RetryOutcome {
                response: Some(resp),
                attempts: f.attempts,
                reconnects: f.reconnects,
                gave_up: true,
                elapsed: f.started.elapsed(),
            },
        ));
        return;
    }
    let mut f = f;
    f.not_before = now + delay;
    pending.push_back(f);
}

/// The flight record `run_pipelined` threads through `settle`.
struct FlightRecord {
    idx: usize,
    attempts: u32,
    reconnects: u32,
    started: Instant,
    not_before: Instant,
}

/// The deterministic tag `compile_many` puts on request `idx` when the
/// caller did not choose one.
fn batch_tag(reqs: &[CompileRequest], idx: usize) -> String {
    reqs[idx].tag.clone().unwrap_or_else(|| format!("b{idx}"))
}

/// A checked-out connection; returns to the pool on drop unless marked
/// broken.
pub struct PooledClient<'a> {
    pool: &'a Pool,
    client: Option<Client>,
    broken: bool,
}

impl PooledClient<'_> {
    /// Evict this connection instead of pooling it (transport died, or
    /// the stream state is suspect).
    pub fn mark_broken(&mut self) {
        self.broken = true;
    }
}

impl std::ops::Deref for PooledClient<'_> {
    type Target = Client;
    fn deref(&self) -> &Client {
        self.client.as_ref().expect("live pooled client")
    }
}

impl std::ops::DerefMut for PooledClient<'_> {
    fn deref_mut(&mut self) -> &mut Client {
        self.client.as_mut().expect("live pooled client")
    }
}

impl Drop for PooledClient<'_> {
    fn drop(&mut self) {
        self.pool.release(self.client.take(), self.broken);
    }
}
