//! Persistent tier-2 cache: content-addressed artifacts on disk, so a
//! restarted daemon starts warm.
//!
//! Layout under `--cache-dir`:
//!
//! ```text
//! <dir>/entries/<key:016x>.entry   one checksummed artifact per content key
//! <dir>/journal.log                append-only insert/tombstone records
//! <dir>/quarantine/                corrupt entries moved aside at startup
//! ```
//!
//! Entry files carry an FNV-1a checksum over header+payload and are
//! written to a temp name then atomically renamed, so a crash — up to and
//! including `kill -9` — leaves either the old entry, the new entry, or a
//! stray temp file, never a half-written entry under its real name. The
//! journal records `I <key>` on insert and `T <key>` on eviction; startup
//! replays it, validates every surviving entry file, **quarantines**
//! corrupt or truncated ones (moved to `quarantine/`, counted, served as
//! misses) instead of failing, and adopts valid orphan entries whose
//! journal record was lost to a crash.
//!
//! Failure policy: a disk error at runtime (full disk, permissions,
//! yanked volume) flips the cache into **degraded** memory-only mode —
//! counted in `disk-errors` and visible in `HEALTH`/`STATS` — and the
//! daemon keeps serving; durability is shed before availability.

use std::fs::{self, File, OpenOptions};
use std::io::{ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::cache::{content_key_bytes, CachedResult};

const MAGIC: &str = "LSLPCACHE1";

/// One artifact recovered from disk at startup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmEntry {
    /// The content key (also the entry's file name).
    pub key: u64,
    /// Full key material, for collision rejection on lookup.
    pub material: String,
    /// The cached artifact.
    pub result: CachedResult,
}

/// Point-in-time persistence counters for `STATS`/`HEALTH`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistCounters {
    /// Entries recovered into the memory cache at startup.
    pub warm_entries: u64,
    /// Corrupt/truncated entries moved to `quarantine/` at startup.
    pub quarantined: u64,
    /// Runtime disk failures absorbed (each degrades one operation).
    pub disk_errors: u64,
    /// Whether the cache has degraded to memory-only.
    pub degraded: bool,
}

/// The disk tier. All operations are infallible from the caller's view:
/// errors degrade the tier instead of propagating.
pub struct PersistentCache {
    entries_dir: PathBuf,
    journal: Mutex<Option<File>>,
    degraded: AtomicBool,
    disk_errors: AtomicU64,
    warm_entries: AtomicU64,
    quarantined: AtomicU64,
    tmp_counter: AtomicU64,
}

impl PersistentCache {
    /// Open (or create) the cache directory, replay the journal, validate
    /// and quarantine entries, and return the warm set to seed the memory
    /// cache with. Never fails: unusable directories yield an empty,
    /// degraded cache.
    pub fn open(dir: &Path) -> (PersistentCache, Vec<WarmEntry>) {
        let entries_dir = dir.join("entries");
        let quarantine_dir = dir.join("quarantine");
        let journal_path = dir.join("journal.log");
        let cache = PersistentCache {
            entries_dir: entries_dir.clone(),
            journal: Mutex::new(None),
            degraded: AtomicBool::new(false),
            disk_errors: AtomicU64::new(0),
            warm_entries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        };
        if fs::create_dir_all(&entries_dir).is_err() || fs::create_dir_all(&quarantine_dir).is_err()
        {
            cache.note_disk_error();
            return (cache, Vec::new());
        }

        // Replay the journal into per-key liveness, preserving first-insert
        // order so warm entries re-enter the memory cache oldest-first
        // (their LRU stamps then reflect on-disk age).
        let mut order: Vec<u64> = Vec::new();
        let mut live: std::collections::HashMap<u64, bool> = std::collections::HashMap::new();
        if let Ok(text) = fs::read_to_string(&journal_path) {
            for line in text.lines() {
                let parsed = match line.split_once(' ') {
                    Some(("I", k)) => u64::from_str_radix(k, 16).ok().map(|k| (k, true)),
                    Some(("T", k)) => u64::from_str_radix(k, 16).ok().map(|k| (k, false)),
                    _ => None,
                };
                match parsed {
                    Some((key, alive)) => {
                        if live.insert(key, alive).is_none() {
                            order.push(key);
                        }
                    }
                    // A torn tail (crash mid-append) or scribbled line: stop
                    // trusting the journal here; entry files self-validate.
                    None => break,
                }
            }
        }

        // Scan the entries directory: it is the ground truth, the journal
        // only contributes tombstones and ordering.
        let mut on_disk: Vec<(u64, PathBuf)> = Vec::new();
        if let Ok(rd) = fs::read_dir(&entries_dir) {
            for de in rd.flatten() {
                let path = de.path();
                let key = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .and_then(|n| n.strip_suffix(".entry"))
                    .and_then(|n| u64::from_str_radix(n, 16).ok());
                match key {
                    Some(key) => on_disk.push((key, path)),
                    // Stray temp files from an interrupted write.
                    None => {
                        let _ = fs::remove_file(&path);
                    }
                }
            }
        }
        // Journal order first, then orphans (valid entries that lost their
        // journal record to a crash between rename and append).
        let rank = |key: u64| order.iter().position(|&k| k == key).unwrap_or(usize::MAX);
        on_disk.sort_by_key(|&(key, _)| (rank(key), key));

        let mut warm = Vec::new();
        for (key, path) in on_disk {
            if live.get(&key) == Some(&false) {
                // Tombstoned; the unlink itself was lost to a crash.
                let _ = fs::remove_file(&path);
                continue;
            }
            match fs::read(&path).map_err(|e| e.to_string()).and_then(|b| decode_entry(key, &b)) {
                Ok(entry) => warm.push(entry),
                Err(_) => {
                    let dst = quarantine_dir.join(path.file_name().expect("entry file name"));
                    if fs::rename(&path, &dst).is_err() {
                        let _ = fs::remove_file(&path);
                    }
                    cache.quarantined.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        cache.warm_entries.store(warm.len() as u64, Ordering::Relaxed);

        match OpenOptions::new().create(true).append(true).open(&journal_path) {
            Ok(f) => *cache.journal.lock().expect("journal lock") = Some(f),
            Err(_) => cache.note_disk_error(),
        }
        (cache, warm)
    }

    /// Persist one artifact: checksummed entry file written via atomic
    /// rename, then a journal `I` record. `corrupt` flips a payload byte
    /// *after* the checksum is computed (chaos injection), so the entry is
    /// quarantined on the next startup.
    pub fn record_insert(&self, key: u64, material: &str, result: &CachedResult, corrupt: bool) {
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        let mut bytes = encode_entry(key, material, result);
        if corrupt {
            let payload_at = bytes.len() - (material.len() + result.output.len()).max(1);
            let at = payload_at + (splitmix_index(key, bytes.len() - payload_at));
            bytes[at] ^= 0x5a;
        }
        let tmp = self.entries_dir.join(format!(
            ".tmp-{:016x}-{}",
            key,
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let written = fs::write(&tmp, &bytes)
            .and_then(|()| fs::rename(&tmp, self.entries_dir.join(format!("{key:016x}.entry"))));
        if written.is_err() {
            let _ = fs::remove_file(&tmp);
            self.note_disk_error();
            return;
        }
        self.append_journal(&format!("I {key:016x}\n"));
    }

    /// Record an eviction: journal `T` record plus entry-file unlink, so
    /// the disk tier never resurrects an entry the memory tier chose to
    /// drop.
    pub fn record_eviction(&self, key: u64) {
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        self.append_journal(&format!("T {key:016x}\n"));
        match fs::remove_file(self.entries_dir.join(format!("{key:016x}.entry"))) {
            Ok(()) => {}
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            Err(_) => self.note_disk_error(),
        }
    }

    fn append_journal(&self, record: &str) {
        let mut guard = self.journal.lock().expect("journal lock");
        let failed = match guard.as_mut() {
            Some(f) => f.write_all(record.as_bytes()).is_err(),
            None => true,
        };
        if failed {
            drop(guard);
            self.note_disk_error();
        }
    }

    /// A disk operation failed: count it and degrade to memory-only (the
    /// daemon keeps serving; durability is shed before availability).
    fn note_disk_error(&self) {
        self.disk_errors.fetch_add(1, Ordering::Relaxed);
        self.degraded.store(true, Ordering::Relaxed);
    }

    /// Whether the tier has degraded to memory-only.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Point-in-time counters.
    pub fn counters(&self) -> PersistCounters {
        PersistCounters {
            warm_entries: self.warm_entries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            disk_errors: self.disk_errors.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

/// Deterministic index in `[0, len)` for the chaos byte-flip.
fn splitmix_index(key: u64, len: usize) -> usize {
    (crate::chaos::splitmix64(key) % len.max(1) as u64) as usize
}

/// Serialize one entry: a single header line then raw payload bytes.
///
/// ```text
/// LSLPCACHE1 key=<16hex> trees=<n> cost=<n> incidents=<n> mlen=<n> olen=<n> sum=<16hex>\n
/// <material bytes><output bytes>
/// ```
///
/// `sum` is FNV-1a over the header prefix (everything before ` sum=`)
/// plus the payload, so both metadata and artifact corruption are caught.
fn encode_entry(key: u64, material: &str, result: &CachedResult) -> Vec<u8> {
    let prefix = format!(
        "{MAGIC} key={key:016x} trees={} cost={} incidents={} mlen={} olen={}",
        result.trees,
        result.cost,
        result.incidents,
        material.len(),
        result.output.len()
    );
    let mut payload = Vec::with_capacity(material.len() + result.output.len());
    payload.extend_from_slice(material.as_bytes());
    payload.extend_from_slice(result.output.as_bytes());
    // Hash prefix and payload as exactly two parts — the decoder checksums
    // `[header-prefix, payload]` without knowing the material/output split.
    let sum = content_key_bytes(&[prefix.as_bytes(), &payload]);
    let mut bytes = Vec::with_capacity(prefix.len() + 32 + payload.len());
    bytes.extend_from_slice(prefix.as_bytes());
    bytes.extend_from_slice(format!(" sum={sum:016x}\n").as_bytes());
    bytes.extend_from_slice(&payload);
    bytes
}

/// Parse and validate one entry file; any inconsistency (bad magic, bad
/// checksum, short payload, key mismatch with the file name) is an error
/// — the caller quarantines.
fn decode_entry(expect_key: u64, bytes: &[u8]) -> Result<WarmEntry, String> {
    let newline = bytes.iter().position(|&b| b == b'\n').ok_or("no header line")?;
    let header = std::str::from_utf8(&bytes[..newline]).map_err(|_| "header not utf-8")?;
    let payload = &bytes[newline + 1..];

    let mut fields = header.split(' ');
    if fields.next() != Some(MAGIC) {
        return Err("bad magic".into());
    }
    let mut key = None;
    let mut trees = None;
    let mut cost = None;
    let mut incidents = None;
    let mut mlen = None;
    let mut olen = None;
    let mut sum = None;
    for f in fields {
        let (k, v) = f.split_once('=').ok_or("malformed header field")?;
        match k {
            "key" => key = u64::from_str_radix(v, 16).ok(),
            "trees" => trees = v.parse::<usize>().ok(),
            "cost" => cost = v.parse::<i64>().ok(),
            "incidents" => incidents = v.parse::<usize>().ok(),
            "mlen" => mlen = v.parse::<usize>().ok(),
            "olen" => olen = v.parse::<usize>().ok(),
            "sum" => sum = u64::from_str_radix(v, 16).ok(),
            _ => return Err(format!("unknown header field `{k}`")),
        }
    }
    let (key, trees, cost, incidents, mlen, olen, sum) =
        match (key, trees, cost, incidents, mlen, olen, sum) {
            (Some(a), Some(b), Some(c), Some(d), Some(e), Some(f), Some(g)) => {
                (a, b, c, d, e, f, g)
            }
            _ => return Err("incomplete header".into()),
        };
    if key != expect_key {
        return Err("key does not match file name".into());
    }
    if payload.len() != mlen + olen {
        return Err(format!("payload length {} != mlen+olen {}", payload.len(), mlen + olen));
    }
    let prefix_end = header.rfind(" sum=").ok_or("no sum field")?;
    let computed = content_key_bytes(&[&header.as_bytes()[..prefix_end], payload]);
    if computed != sum {
        return Err("checksum mismatch".into());
    }
    let material = String::from_utf8(payload[..mlen].to_vec()).map_err(|_| "material not utf-8")?;
    let output = String::from_utf8(payload[mlen..].to_vec()).map_err(|_| "output not utf-8")?;
    Ok(WarmEntry { key, material, result: CachedResult { output, trees, cost, incidents } })
}

/// Read a file fully (test helper shared with the crash-recovery test).
#[doc(hidden)]
pub fn read_journal(dir: &Path) -> String {
    let mut s = String::new();
    if let Ok(mut f) = File::open(dir.join("journal.log")) {
        let _ = f.read_to_string(&mut s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lslp-persist-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn result(tag: &str) -> CachedResult {
        CachedResult { output: format!("out-{tag}\nline2"), trees: 2, cost: -8, incidents: 1 }
    }

    #[test]
    fn entry_roundtrips_and_detects_corruption() {
        let r = result("x");
        let bytes = encode_entry(0xabc, "mat\0LSLP", &r);
        let entry = decode_entry(0xabc, &bytes).unwrap();
        assert_eq!(entry.material, "mat\0LSLP");
        assert_eq!(entry.result, r);
        assert!(decode_entry(0xdef, &bytes).is_err(), "key mismatch");
        for at in [0, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0xff;
            assert!(decode_entry(0xabc, &bad).is_err(), "flip at {at} must be caught");
        }
        assert!(decode_entry(0xabc, &bytes[..bytes.len() - 3]).is_err(), "truncation caught");
    }

    #[test]
    fn restart_recovers_inserted_entries() {
        let dir = temp_dir("warm");
        let (cache, warm) = PersistentCache::open(&dir);
        assert!(warm.is_empty());
        cache.record_insert(1, "m1", &result("1"), false);
        cache.record_insert(2, "m2", &result("2"), false);
        assert!(!cache.is_degraded());
        drop(cache);

        let (cache, warm) = PersistentCache::open(&dir);
        assert_eq!(warm.len(), 2);
        assert_eq!(warm[0].key, 1, "journal order preserved");
        assert_eq!(warm[1].key, 2);
        assert_eq!(warm[0].result, result("1"));
        let c = cache.counters();
        assert_eq!((c.warm_entries, c.quarantined, c.disk_errors, c.degraded), (2, 0, 0, false));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_tombstones_and_survives_restart() {
        let dir = temp_dir("evict");
        let (cache, _) = PersistentCache::open(&dir);
        cache.record_insert(1, "m1", &result("1"), false);
        cache.record_insert(2, "m2", &result("2"), false);
        cache.record_eviction(1);
        let journal = read_journal(&dir);
        assert!(journal.contains("T 0000000000000001"), "tombstone journaled: {journal}");
        drop(cache);

        let (_, warm) = PersistentCache::open(&dir);
        assert_eq!(warm.len(), 1);
        assert_eq!(warm[0].key, 2, "evicted entry stays dead across restart");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_fatal() {
        let dir = temp_dir("quarantine");
        let (cache, _) = PersistentCache::open(&dir);
        cache.record_insert(1, "m1", &result("1"), false);
        cache.record_insert(2, "m2", &result("2"), false);
        cache.record_insert(3, "m3", &result("3"), true); // chaos-corrupted at write
        drop(cache);

        // Scribble over entry 1 and truncate entry 2's tail.
        let e1 = dir.join("entries").join(format!("{:016x}.entry", 1u64));
        let mut bytes = fs::read(&e1).unwrap();
        let at = bytes.len() - 2;
        bytes[at] ^= 0xff;
        fs::write(&e1, &bytes).unwrap();
        let e2 = dir.join("entries").join(format!("{:016x}.entry", 2u64));
        let bytes = fs::read(&e2).unwrap();
        fs::write(&e2, &bytes[..bytes.len() - 4]).unwrap();

        let (cache, warm) = PersistentCache::open(&dir);
        assert!(warm.is_empty(), "all three entries were damaged");
        let c = cache.counters();
        assert_eq!(c.quarantined, 3);
        assert!(!c.degraded, "quarantine is recovery, not degradation");
        assert_eq!(fs::read_dir(dir.join("quarantine")).unwrap().count(), 3);
        assert_eq!(fs::read_dir(dir.join("entries")).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_entries_are_adopted_and_torn_journal_tolerated() {
        let dir = temp_dir("orphan");
        let (cache, _) = PersistentCache::open(&dir);
        cache.record_insert(1, "m1", &result("1"), false);
        drop(cache);
        // Simulate a crash between entry rename and journal append: a valid
        // entry file with no journal record...
        fs::write(
            dir.join("entries").join(format!("{:016x}.entry", 9u64)),
            encode_entry(9, "m9", &result("9")),
        )
        .unwrap();
        // ...and a torn journal tail.
        let mut j = OpenOptions::new().append(true).open(dir.join("journal.log")).unwrap();
        j.write_all(b"I 00000000000").unwrap();
        drop(j);

        let (_, warm) = PersistentCache::open(&dir);
        let keys: Vec<u64> = warm.iter().map(|w| w.key).collect();
        assert!(keys.contains(&1) && keys.contains(&9), "orphan adopted: {keys:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_directory_degrades_instead_of_failing() {
        // A path that cannot be a directory (a file stands in its place).
        let dir = temp_dir("degraded");
        fs::create_dir_all(dir.parent().unwrap()).ok();
        fs::write(&dir, b"not a directory").unwrap();
        let (cache, warm) = PersistentCache::open(&dir);
        assert!(warm.is_empty());
        assert!(cache.is_degraded());
        assert!(cache.counters().disk_errors >= 1);
        // Writes after degradation are silent no-ops.
        cache.record_insert(1, "m", &result("m"), false);
        cache.record_eviction(1);
        let _ = fs::remove_file(&dir);
    }
}
