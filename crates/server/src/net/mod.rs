//! `lslp-net`: the readiness-driven serving layer.
//!
//! One thread owns every connection. It parks in [`sys::poll_wait`] over
//! the listener, a self-wakeup channel, and each live connection's
//! descriptor (read interest gated by pipeline depth and write
//! backlog, write interest only while bytes are queued), then:
//!
//! * **accepts** new connections — beyond `--max-conns` they get one
//!   `ERR kind=overload` line and are closed;
//! * **decodes** complete frames from readable connections and either
//!   answers control verbs inline or dispatches `COMPILE`s to the
//!   existing bounded queue + worker pool, attaching a [`Completion`]
//!   handle that routes the response back here;
//! * **applies** completions: tagged responses are written as they
//!   arrive (out of order), untagged ones flow through the
//!   per-connection serial reorder buffer so v1–v3 clients still see
//!   strict FIFO;
//! * **flushes** write buffers as sockets accept bytes.
//!
//! Workers never touch sockets and the loop never compiles: the
//! [`Completion`] handle is the entire seam. Dropping one unsent (a
//! worker panic mid-compile) reports the job as worker-lost, so the
//! client gets the same typed retryable `ERR` the thread-per-connection
//! design produced — never a hang.
//!
//! Chaos sites moved here with the I/O they fault: `accept-drop` at
//! accept, `read-drop` after a complete frame decode, `write-drop` and
//! `delay` when a response is enqueued — `delay` gates the connection's
//! flush instead of sleeping, so an injected delay never stalls the
//! loop or other connections.

pub mod conn;
pub mod sys;

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::protocol::{self, ErrorKind, Request, Response, PROTOCOL_VERSION};
use crate::Shared;
use conn::{Conn, ReadEvent, WRITE_HARD_LIMIT};
use sys::{PollFd, WakeReader, Waker};

/// Generational connection identity: a slot index plus the generation it
/// was issued under, so a completion for a reaped connection can never be
/// delivered to the slot's next tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    idx: usize,
    gen: u64,
}

/// Where a response line is delivered on its connection.
#[derive(Clone, Debug)]
pub enum Route {
    /// v4 tagged request: write immediately, tag echoed.
    Tag(String),
    /// Untagged request: release through the serial reorder buffer.
    Serial(u64),
}

/// A completed (or lost) job traveling from a worker to the loop.
struct CompletionMsg {
    token: Token,
    route: Route,
    /// `None` = the worker died holding the job (worker-lost).
    line: Option<String>,
}

/// The reply half of a dispatched job: workers call [`Completion::send`]
/// exactly once. Dropping it unsent reports the job worker-lost, which
/// the loop turns into the typed retryable internal `ERR` — the event
/// never goes missing, whatever path the worker thread takes out.
pub struct Completion {
    token: Token,
    route: Option<Route>,
    tx: mpsc::Sender<CompletionMsg>,
    waker: Waker,
    wake_pending: Arc<AtomicBool>,
}

impl Completion {
    /// Deliver the response line for this job.
    pub fn send(mut self, line: String) {
        if let Some(route) = self.route.take() {
            let _ = self.tx.send(CompletionMsg { token: self.token, route, line: Some(line) });
            self.wake();
        }
    }

    /// Consume the handle without reporting worker-lost (the dispatch
    /// itself failed and the caller already answered the client).
    pub fn disarm(mut self) {
        self.route = None;
    }

    /// Wake the loop, coalescing: a burst of completions costs one wakeup
    /// syscall, not one per job. The flag is set *after* the channel send
    /// and cleared by the loop *before* it drains, so a completion can
    /// never slip between a drain and the next poll unannounced.
    fn wake(&self) {
        if !self.wake_pending.swap(true, Ordering::AcqRel) {
            self.waker.wake();
        }
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if let Some(route) = self.route.take() {
            let _ = self.tx.send(CompletionMsg { token: self.token, route, line: None });
            self.wake();
        }
    }
}

/// Loop-owned gauges surfaced through `STATS` (`net:` row) and `HEALTH`.
/// These rise *and* fall, so they live outside the monotonic
/// [`lslp::SyncStatistics`] registry.
#[derive(Default)]
pub struct NetGauges {
    /// Connections currently registered with the poller.
    pub connections_open: AtomicU64,
    /// Dispatched-but-unanswered compiles across all connections.
    pub inflight: AtomicU64,
    /// High-water mark of any single connection's in-flight count.
    pub pipeline_hwm: AtomicU64,
    /// Connections accepted since start.
    pub accepted_total: AtomicU64,
    /// Connections refused at the `--max-conns` limit.
    pub rejected_conn_limit: AtomicU64,
}

/// One registered connection plus its loop-side bookkeeping.
struct Slot {
    conn: Conn,
    token: Token,
    /// Frames decoded but not yet processed (a read burst can outrun the
    /// pipeline-depth budget; the surplus parks here and [`EventLoop::pump`]
    /// drains it as completions free depth).
    pending: VecDeque<String>,
    /// Protocol violation observed: flush what is owed, then close.
    poisoned: bool,
}

/// How long the poller may sleep with nothing to do. Completions cut it
/// short via the waker; it only bounds how quickly an expired chaos
/// write gate is noticed.
const POLL_TICK: Duration = Duration::from_millis(100);

/// The event loop. [`EventLoop::run`] serves until shutdown has been
/// requested *and* every connection is quiesced (nothing in flight,
/// nothing owed, nothing buffered).
pub struct EventLoop {
    listener: TcpListener,
    shared: Arc<Shared>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    next_gen: u64,
    waker: Waker,
    wake_rx: WakeReader,
    /// Completion-wakeup coalescing flag shared with every [`Completion`].
    wake_pending: Arc<AtomicBool>,
    tx: mpsc::Sender<CompletionMsg>,
    rx: mpsc::Receiver<CompletionMsg>,
}

/// What a poll-set entry maps back to.
enum PollTarget {
    Listener,
    WakeChannel,
    Connection(usize),
}

impl EventLoop {
    /// Wrap a bound listener (made nonblocking here).
    ///
    /// # Errors
    ///
    /// Propagates nonblocking-mode and waker-creation failures.
    pub fn new(listener: TcpListener, shared: Arc<Shared>) -> std::io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        let (waker, wake_rx) = Waker::pair()?;
        let (tx, rx) = mpsc::channel();
        Ok(EventLoop {
            listener,
            shared,
            slots: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            waker,
            wake_rx,
            wake_pending: Arc::new(AtomicBool::new(false)),
            tx,
            rx,
        })
    }

    /// Serve until drained. See the module docs for the per-iteration
    /// shape.
    ///
    /// # Errors
    ///
    /// Propagates poller failures (`poll(2)` errors other than `EINTR`).
    pub fn run(&mut self) -> std::io::Result<()> {
        loop {
            self.drain_completions();
            let now = Instant::now();
            self.flush_and_reap(now);
            if self.shared.is_shutting_down() && self.all_quiesced() {
                return Ok(());
            }
            let (mut fds, targets) = self.build_poll_set(now);
            sys::poll_wait(&mut fds, self.poll_timeout(now))?;
            for (fd, target) in fds.iter().zip(&targets) {
                match target {
                    PollTarget::Listener => {
                        if fd.readable || fd.error {
                            self.accept_ready();
                        }
                    }
                    PollTarget::WakeChannel => {
                        if fd.readable {
                            self.wake_rx.drain();
                        }
                    }
                    PollTarget::Connection(idx) => {
                        if fd.readable || fd.error {
                            self.read_ready(*idx);
                        }
                    }
                }
            }
            self.flush_and_reap(Instant::now());
        }
    }

    /// The number of live connections.
    fn open_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Shutdown-drain condition: nothing in flight, owed, parked, or
    /// buffered on any connection.
    fn all_quiesced(&self) -> bool {
        self.slots.iter().flatten().all(|s| s.conn.is_quiesced() && s.pending.is_empty())
    }

    fn build_poll_set(&self, now: Instant) -> (Vec<PollFd>, Vec<PollTarget>) {
        let mut fds = Vec::with_capacity(self.slots.len() + 2);
        let mut targets = Vec::with_capacity(self.slots.len() + 2);
        fds.push(PollFd::new(self.listener_fd(), true, false));
        targets.push(PollTarget::Listener);
        fds.push(PollFd::new(self.wake_rx.fd(), true, false));
        targets.push(PollTarget::WakeChannel);
        let depth = self.shared.cfg.pipeline_depth;
        for (idx, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let want_read =
                slot.pending.is_empty() && !slot.poisoned && slot.conn.wants_read(depth);
            let want_write = slot.conn.wants_write(now);
            if want_read || want_write {
                fds.push(PollFd::new(slot.conn.fd(), want_read, want_write));
                targets.push(PollTarget::Connection(idx));
            }
        }
        (fds, targets)
    }

    #[cfg(unix)]
    fn listener_fd(&self) -> sys::RawFd {
        use std::os::fd::AsRawFd;
        self.listener.as_raw_fd()
    }

    #[cfg(not(unix))]
    fn listener_fd(&self) -> sys::RawFd {
        0
    }

    /// Sleep no longer than the nearest chaos write gate needs.
    fn poll_timeout(&self, now: Instant) -> Duration {
        let mut timeout = POLL_TICK;
        for slot in self.slots.iter().flatten() {
            if let Some(gate) = slot.conn.write_gate {
                timeout =
                    timeout.min(gate.saturating_duration_since(now).max(Duration::from_millis(1)));
            }
        }
        timeout
    }

    /// Apply every completion the workers have queued.
    fn drain_completions(&mut self) {
        // Re-arm the coalesced wakeup before draining: anything sent after
        // this point wakes the next poll even if we happen to drain it now.
        self.wake_pending.store(false, Ordering::Release);
        while let Ok(msg) = self.rx.try_recv() {
            let Some(slot) = self.slots.get_mut(msg.token.idx).and_then(Option::as_mut) else {
                continue; // connection reaped while the job was in flight
            };
            if slot.token != msg.token {
                continue; // slot re-used for a newer connection
            }
            slot.conn.inflight -= 1;
            gauge_dec(&self.shared.net.inflight, 1);
            if let Route::Tag(tag) = &msg.route {
                slot.conn.inflight_tags.remove(tag);
            }
            let line = msg.line.unwrap_or_else(|| {
                // The worker died (e.g. a panic) with the job in hand; the
                // watchdog is already respawning it. The client gets a
                // typed, retryable error — never a hang.
                self.shared.registry.add("server", "errors-worker-lost", 1);
                Response::err_line(ErrorKind::Internal, "worker dropped the request")
            });
            if self.deliver(msg.token.idx, msg.route, line) {
                self.pump(msg.token.idx);
            }
        }
    }

    /// Enqueue one response line on connection `idx`, drawing the chaos
    /// write-site faults. Returns `false` when the fault killed the
    /// connection.
    fn deliver(&mut self, idx: usize, route: Route, line: String) -> bool {
        if let Some(chaos) = &self.shared.chaos {
            if let Some(delay) = chaos.response_delay() {
                // Gate the flush instead of sleeping: the delay applies to
                // this connection only, never to the loop.
                if let Some(slot) = self.slots[idx].as_mut() {
                    slot.conn.write_gate = Some(Instant::now() + delay);
                }
            }
            if chaos.drop_write() {
                // Injected connection reset instead of the response.
                self.close(idx);
                return false;
            }
        }
        let Some(slot) = self.slots[idx].as_mut() else { return false };
        match route {
            Route::Tag(tag) => slot.conn.queue_write_tagged(&tag, &line),
            Route::Serial(serial) => slot.conn.complete_serial(serial, line),
        }
        true
    }

    /// Accept every pending connection.
    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if self.shared.chaos.as_ref().is_some_and(|c| c.drop_accept()) {
                drop(stream);
                continue;
            }
            if self.open_count() >= self.shared.cfg.max_conns {
                self.shared.net.rejected_conn_limit.fetch_add(1, Ordering::Relaxed);
                self.shared.registry.add("server", "rejected-conn-limit", 1);
                reject_over_limit(stream, self.shared.cfg.max_conns);
                continue;
            }
            let conn = match Conn::new(stream, PROTOCOL_VERSION) {
                Ok(c) => c,
                Err(_) => continue,
            };
            self.next_gen += 1;
            let idx = self.free.pop().unwrap_or_else(|| {
                self.slots.push(None);
                self.slots.len() - 1
            });
            let token = Token { idx, gen: self.next_gen };
            self.slots[idx] = Some(Slot { conn, token, pending: VecDeque::new(), poisoned: false });
            self.shared.net.accepted_total.fetch_add(1, Ordering::Relaxed);
            self.shared.net.connections_open.fetch_add(1, Ordering::Relaxed);
            self.shared.registry.add("server", "connections-accepted", 1);
        }
    }

    /// Pull bytes off a readable connection and process what frames fit
    /// the pipeline budget (the rest park in `pending`).
    fn read_ready(&mut self, idx: usize) {
        let Some(slot) = self.slots[idx].as_mut() else { return };
        let frames = match slot.conn.read_frames() {
            ReadEvent::Frames(frames) | ReadEvent::Eof(frames) => frames,
            ReadEvent::Overflow => {
                self.shared.registry.add("server", "errors-proto", 1);
                slot.conn.queue_write(&Response::err_line(
                    ErrorKind::Proto,
                    &format!("request exceeds {} bytes", conn::MAX_FRAME_BYTES),
                ));
                slot.poisoned = true;
                return;
            }
            ReadEvent::Broken => {
                self.close(idx);
                return;
            }
        };
        slot.pending.extend(frames);
        self.pump(idx);
    }

    /// Process parked frames while the connection has pipeline budget.
    fn pump(&mut self, idx: usize) {
        let depth = self.shared.cfg.pipeline_depth.max(1);
        loop {
            let Some(slot) = self.slots[idx].as_mut() else { return };
            if slot.conn.inflight >= depth {
                return;
            }
            let Some(frame) = slot.pending.pop_front() else { return };
            if !self.process_frame(idx, &frame) {
                return; // connection killed mid-burst
            }
        }
    }

    /// Handle one decoded request line. Returns `false` when the
    /// connection was killed (chaos or delivery fault).
    fn process_frame(&mut self, idx: usize, line: &str) -> bool {
        if self.shared.chaos.as_ref().is_some_and(|c| c.drop_read()) {
            // Injected connection reset after the request was decoded.
            self.close(idx);
            return false;
        }
        let request = match protocol::parse_request(line) {
            Ok(r) => r,
            Err(msg) => {
                self.shared.registry.add("server", "errors-proto", 1);
                let err = Response::err_line(ErrorKind::Proto, &msg);
                // Best effort: echo the tag of a malformed tagged frame so
                // a pipelining client can fail just that request.
                let route = match extract_tag(line) {
                    Some(tag) => Route::Tag(tag),
                    None => Route::Serial(self.next_serial(idx)),
                };
                return self.deliver(idx, route, err);
            }
        };
        match request {
            Request::Compile(req) => self.dispatch(idx, req),
            control => {
                if let Request::Hello { proto } = control {
                    if (1..=PROTOCOL_VERSION).contains(&proto) {
                        if let Some(slot) = self.slots[idx].as_mut() {
                            slot.conn.proto = proto;
                        }
                    }
                }
                let serial = self.next_serial(idx);
                let line = crate::control_response(&control, &self.shared);
                self.deliver(idx, Route::Serial(serial), line)
            }
        }
    }

    fn next_serial(&mut self, idx: usize) -> u64 {
        let slot = self.slots[idx].as_mut().expect("serial for a live connection");
        let serial = slot.conn.next_serial;
        slot.conn.next_serial += 1;
        serial
    }

    /// Route one `COMPILE` to the worker queue (or answer its failure).
    fn dispatch(&mut self, idx: usize, req: protocol::CompileRequest) -> bool {
        let route = match req.tag.clone() {
            Some(tag) => {
                let slot = self.slots[idx].as_mut().expect("dispatch on a live connection");
                if slot.conn.proto < 4 {
                    self.shared.registry.add("server", "errors-proto", 1);
                    let err = Response::err_line(
                        ErrorKind::Proto,
                        &format!(
                            "tag= requires protocol 4 (connection negotiated {})",
                            slot.conn.proto
                        ),
                    );
                    return self.deliver(idx, Route::Tag(tag), err);
                }
                if slot.conn.inflight_tags.contains(&tag) {
                    self.shared.registry.add("server", "errors-proto", 1);
                    let err = Response::err_line(
                        ErrorKind::Proto,
                        &format!("tag `{tag}` is already in flight on this connection"),
                    );
                    return self.deliver(idx, Route::Tag(tag), err);
                }
                Route::Tag(tag)
            }
            None => Route::Serial(self.next_serial(idx)),
        };
        // Warm hit: answered inline on the loop thread. This is the fast
        // path that makes deep pipelining pay — the proto/duplicate-tag
        // checks above already ran, and `deliver` keeps tag/serial
        // ordering semantics identical to the worker path.
        if let Some(line) = crate::cached_fast_path(&self.shared, &req) {
            return self.deliver(idx, route, line);
        }
        let token = self.slots[idx].as_ref().expect("dispatch on a live connection").token;
        let done = Completion {
            token,
            route: Some(route.clone()),
            tx: self.tx.clone(),
            waker: self.waker.clone(),
            wake_pending: Arc::clone(&self.wake_pending),
        };
        match crate::dispatch_compile(&self.shared, req, done) {
            Ok(()) => {
                let slot = self.slots[idx].as_mut().expect("slot survives dispatch");
                slot.conn.inflight += 1;
                if let Route::Tag(tag) = &route {
                    slot.conn.inflight_tags.insert(tag.clone());
                }
                let inflight = slot.conn.inflight as u64;
                self.shared.net.inflight.fetch_add(1, Ordering::Relaxed);
                self.shared.net.pipeline_hwm.fetch_max(inflight, Ordering::Relaxed);
                true
            }
            Err(err) => self.deliver(idx, route, err),
        }
    }

    /// Flush writable connections and reap the finished, broken, and
    /// over-limit ones.
    fn flush_and_reap(&mut self, now: Instant) {
        for idx in 0..self.slots.len() {
            let Some(slot) = self.slots[idx].as_mut() else { continue };
            if !slot.conn.flush(now) {
                self.close(idx);
                continue;
            }
            let slot = self.slots[idx].as_mut().expect("slot survives flush");
            if slot.conn.pending_write_len() > WRITE_HARD_LIMIT {
                // The client stopped reading entirely; cut it loose rather
                // than pin server memory.
                self.close(idx);
                continue;
            }
            let done_for_good = slot.conn.pending_write_len() == 0
                && (slot.poisoned
                    || (slot.conn.peer_closed
                        && slot.conn.is_quiesced()
                        && slot.pending.is_empty()));
            if done_for_good {
                self.close(idx);
            }
        }
    }

    /// Unregister a connection and release its gauges. In-flight jobs
    /// keep running; their completions arrive with a stale token and are
    /// discarded.
    fn close(&mut self, idx: usize) {
        if let Some(slot) = self.slots[idx].take() {
            gauge_dec(&self.shared.net.inflight, slot.conn.inflight as u64);
            gauge_dec(&self.shared.net.connections_open, 1);
            self.free.push(idx);
        }
    }
}

/// Saturating decrement for gauges (never wraps below zero).
fn gauge_dec(gauge: &AtomicU64, by: u64) {
    if by == 0 {
        return;
    }
    let mut cur = gauge.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_sub(by);
        match gauge.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// One-line courtesy rejection for a connection over `--max-conns`: best
/// effort — the socket is closed either way.
fn reject_over_limit(stream: TcpStream, max_conns: usize) {
    let line = Response::err_line(
        ErrorKind::Overload,
        &format!("connection limit reached (max-conns={max_conns}), retry later"),
    );
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let mut stream = stream;
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// Test helper: a completion wired to nowhere — sends and worker-lost
/// reports alike are discarded (receiver ends are leaked for the test's
/// lifetime so sends keep succeeding).
#[cfg(test)]
pub fn detached_completion() -> Completion {
    let (tx, rx) = mpsc::channel();
    std::mem::forget(rx);
    let (waker, reader) = Waker::pair().expect("waker pair");
    std::mem::forget(reader);
    Completion {
        token: Token { idx: 0, gen: 0 },
        route: Some(Route::Serial(0)),
        tx,
        waker,
        wake_pending: Arc::new(AtomicBool::new(false)),
    }
}

/// Pull a plausible `tag=` value out of a line that failed to parse, so
/// the error can be routed to the request the client thinks it sent.
fn extract_tag(line: &str) -> Option<String> {
    for word in line.split_whitespace() {
        if let Some(value) = word.strip_prefix("tag=") {
            if protocol::valid_tag(value) {
                return Some(value.to_string());
            }
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_extracted_from_malformed_lines_best_effort() {
        assert_eq!(extract_tag("COMPILE tag=t7 bogus"), Some("t7".to_string()));
        assert_eq!(extract_tag("COMPILE pipeline=maybe tag=a.b:c-d src=x"), Some("a.b:c-d".into()));
        assert_eq!(extract_tag("COMPILE src=x"), None);
        assert_eq!(extract_tag("COMPILE tag= src=x"), None, "empty tag is not a tag");
        assert_eq!(extract_tag("COMPILE tag=bad*chars src=x"), None);
    }

    #[test]
    fn gauge_decrement_saturates() {
        let g = AtomicU64::new(3);
        gauge_dec(&g, 2);
        assert_eq!(g.load(Ordering::Relaxed), 1);
        gauge_dec(&g, 5);
        assert_eq!(g.load(Ordering::Relaxed), 0);
        gauge_dec(&g, 0);
        assert_eq!(g.load(Ordering::Relaxed), 0);
    }
}
