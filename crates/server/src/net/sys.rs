//! OS readiness primitives for the event loop: a thin `poll(2)` wrapper
//! and a self-wakeup channel.
//!
//! The build environment has no package registry, so there is no `mio` /
//! `libc` to lean on. On Unix we declare the two-line `poll(2)` ABI
//! ourselves (every Rust binary already links libc on these platforms)
//! — the single `unsafe` block in the whole workspace. On other
//! platforms [`poll_wait`] degrades to a bounded sleep that reports every
//! descriptor ready; all socket I/O is nonblocking, so the fallback costs
//! spurious `WouldBlock` syscalls, never correctness.

/// One descriptor's registered interest and, after [`poll_wait`], its
/// readiness.
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The raw descriptor.
    pub fd: RawFd,
    /// Interest: wake when readable.
    pub want_read: bool,
    /// Interest: wake when writable.
    pub want_write: bool,
    /// Result: the descriptor is readable (or at EOF/HUP — a read will
    /// not block either way).
    pub readable: bool,
    /// Result: the descriptor is writable.
    pub writable: bool,
    /// Result: error/hangup condition; the owner should try I/O and reap
    /// the connection on failure.
    pub error: bool,
}

impl PollFd {
    /// Register `fd` with the given interest, readiness cleared.
    pub fn new(fd: RawFd, want_read: bool, want_write: bool) -> PollFd {
        PollFd { fd, want_read, want_write, readable: false, writable: false, error: false }
    }
}

#[cfg(unix)]
pub use unix_impl::{poll_wait, RawFd, Waker};

#[cfg(unix)]
mod unix_impl {
    use super::PollFd;
    use std::io::{ErrorKind, Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    /// Raw descriptor type (std's, re-exported so `mod net` stays
    /// platform-agnostic).
    pub type RawFd = std::os::fd::RawFd;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` from `<poll.h>`: identical layout on every Unix we
    /// can run on (fd, events, revents — no padding surprises; the kernel
    /// ABI fixes it).
    #[repr(C)]
    struct RawPollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        // int poll(struct pollfd *fds, nfds_t nfds, int timeout);
        // nfds_t is `unsigned long` on Linux and the BSDs.
        fn poll(
            fds: *mut RawPollFd,
            nfds: std::os::raw::c_ulong,
            timeout: std::os::raw::c_int,
        ) -> std::os::raw::c_int;
    }

    /// Block until at least one registered descriptor is ready or the
    /// timeout elapses; fills in the readiness fields of `fds`. Returns
    /// the number of ready descriptors (0 = timeout).
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures other than `EINTR` (which is
    /// reported as a zero-ready wakeup so the caller just loops).
    pub fn poll_wait(fds: &mut [PollFd], timeout: Duration) -> std::io::Result<usize> {
        let mut raw: Vec<RawPollFd> = fds
            .iter()
            .map(|f| RawPollFd {
                fd: f.fd,
                events: if f.want_read { POLLIN } else { 0 }
                    | if f.want_write { POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let ms: i32 = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `raw` is a live, exclusively-borrowed slice of
        // `#[repr(C)]` pollfd records whose length is passed alongside;
        // poll(2) only writes the `revents` field of each record and
        // never retains the pointer past the call.
        let rc = unsafe { poll(raw.as_mut_ptr(), raw.len() as std::os::raw::c_ulong, ms) };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for (f, r) in fds.iter_mut().zip(&raw) {
            f.readable = r.revents & (POLLIN | POLLHUP) != 0;
            f.writable = r.revents & POLLOUT != 0;
            f.error = r.revents & (POLLERR | POLLNVAL | POLLHUP) != 0;
        }
        Ok(rc as usize)
    }

    /// A self-wakeup channel: the read end sits in the poll set, and any
    /// thread holding a [`Waker`] clone can make the poll return early by
    /// writing a byte. Built on a nonblocking `UnixStream` pair — a full
    /// pipe means a wakeup is already pending, so `WouldBlock` on the
    /// write side is success, not failure.
    pub struct Waker {
        write: UnixStream,
    }

    /// The pollable read side of a [`Waker`] pair.
    pub struct WakeReader {
        read: UnixStream,
    }

    impl Waker {
        /// Create the pair. The returned reader is registered with the
        /// poller; the writer is cloned into completion handles.
        pub fn pair() -> std::io::Result<(Waker, WakeReader)> {
            let (read, write) = UnixStream::pair()?;
            read.set_nonblocking(true)?;
            write.set_nonblocking(true)?;
            Ok((Waker { write }, WakeReader { read }))
        }

        /// Make the event loop's current (or next) poll return.
        pub fn wake(&self) {
            // Any outcome is fine: a written byte wakes the poller, a
            // full buffer means a wakeup is already pending, and a
            // closed pair means the loop is gone.
            let _ = (&self.write).write(&[1]);
        }
    }

    impl Clone for Waker {
        fn clone(&self) -> Waker {
            Waker { write: self.write.try_clone().expect("clone waker stream") }
        }
    }

    impl WakeReader {
        /// The descriptor to register for read interest.
        pub fn fd(&self) -> RawFd {
            self.read.as_raw_fd()
        }

        /// Swallow all pending wakeup bytes.
        pub fn drain(&mut self) {
            let mut buf = [0u8; 64];
            while matches!((&self.read).read(&mut buf), Ok(n) if n > 0) {}
        }
    }
}

#[cfg(not(unix))]
pub use portable_impl::{poll_wait, RawFd, Waker};

#[cfg(not(unix))]
mod portable_impl {
    use super::PollFd;
    use std::time::Duration;

    /// Raw descriptor stand-in: readiness is not observable without an OS
    /// poller, so the value is never dereferenced — only carried.
    pub type RawFd = i64;

    /// Fallback "poller": sleep briefly, then report everything ready.
    /// All I/O in the event loop is nonblocking, so optimistic readiness
    /// costs spurious `WouldBlock`s, never blocking or lost events.
    ///
    /// # Errors
    ///
    /// Never fails.
    pub fn poll_wait(fds: &mut [PollFd], timeout: Duration) -> std::io::Result<usize> {
        std::thread::sleep(timeout.min(Duration::from_millis(2)));
        for f in fds.iter_mut() {
            f.readable = f.want_read;
            f.writable = f.want_write;
            f.error = false;
        }
        Ok(fds.len())
    }

    /// No-op waker: the fallback poller never sleeps more than 2 ms, so
    /// completions are picked up on the next tick anyway.
    #[derive(Clone)]
    pub struct Waker;

    /// The pollable side of the no-op waker.
    pub struct WakeReader;

    impl Waker {
        /// Create the (inert) pair.
        pub fn pair() -> std::io::Result<(Waker, WakeReader)> {
            Ok((Waker, WakeReader))
        }

        /// Nothing to wake: the fallback poll tick is the wakeup.
        pub fn wake(&self) {}
    }

    impl WakeReader {
        /// A sentinel descriptor (never polled on this platform).
        pub fn fd(&self) -> RawFd {
            -1
        }

        /// Nothing buffered to drain.
        pub fn drain(&mut self) {}
    }
}

#[cfg(not(unix))]
pub use portable_impl::WakeReader;
#[cfg(unix)]
pub use unix_impl::WakeReader;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let (waker, mut reader) = Waker::pair().unwrap();
        let t0 = std::time::Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut fds = [PollFd::new(reader.fd(), true, false)];
        // Generous timeout: the wake must cut it short.
        poll_wait(&mut fds, Duration::from_secs(10)).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5), "wake cut the poll short");
        reader.drain();
        handle.join().unwrap();
    }

    #[test]
    fn poll_times_out_without_events() {
        let (_waker, reader) = Waker::pair().unwrap();
        let mut fds = [PollFd::new(reader.fd(), true, false)];
        let t0 = std::time::Instant::now();
        let n = poll_wait(&mut fds, Duration::from_millis(20)).unwrap();
        // Unix: a clean timeout reports zero ready; the portable fallback
        // reports optimistic readiness instead — both return promptly.
        assert!(t0.elapsed() < Duration::from_secs(5));
        let _ = n;
    }
}
