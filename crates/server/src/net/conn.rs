//! Per-connection state for the event loop: nonblocking buffers, the
//! line-frame decoder, and the v4 ordering machinery.
//!
//! A connection owns
//!
//! * a **read buffer** the loop fills whenever the socket is readable,
//!   from which complete `\n`-terminated frames are split off;
//! * a **write buffer** the loop drains whenever the socket is writable,
//!   absorbing partial writes;
//! * the **reorder buffer** for untagged responses: every untagged
//!   request is assigned a per-connection serial at decode time, and its
//!   response — synchronous or from a worker — is released strictly in
//!   serial order, preserving the v1–v3 FIFO contract even though the
//!   worker pool completes out of order. Tagged responses bypass the
//!   buffer and are written the moment they complete;
//! * the **in-flight set**: dispatched-but-unanswered compiles, bounded
//!   by the server's pipeline depth. A connection at its depth limit
//!   simply stops being polled for reads — backpressure by not reading,
//!   so a pipelining client experiences TCP flow control, never a lost
//!   request.

use std::collections::{BTreeMap, HashSet};
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// A connection must consume a frame within this many buffered bytes;
/// beyond it the line cannot be a legal request and the connection is
/// poisoned (one `ERR kind=proto`, then close).
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Stop reading from a connection whose client is not draining its
/// responses once this many bytes are queued for write.
pub const WRITE_HIGH_WATER: usize = 4 * 1024 * 1024;

/// Kill a connection outright if its write backlog exceeds this bound
/// (a client that stopped reading entirely must not pin server memory).
pub const WRITE_HARD_LIMIT: usize = 64 * 1024 * 1024;

/// What `Conn::read_frames` observed on the socket.
pub enum ReadEvent {
    /// Zero or more complete frames were decoded.
    Frames(Vec<String>),
    /// The peer closed its write side (EOF after any decoded frames).
    Eof(Vec<String>),
    /// The buffered partial line exceeded [`MAX_FRAME_BYTES`].
    Overflow,
    /// Transport error: the connection is dead.
    Broken,
}

/// One live client connection.
pub struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    /// Bytes of `read_buf` already scanned for `\n` (avoids re-scanning a
    /// long partial frame on every readiness event).
    scanned: usize,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Negotiated protocol version (`HELLO proto=N`); defaults to the
    /// server's version for clients that skip the handshake.
    pub proto: u32,
    /// Serial assigned to the next untagged request.
    pub next_serial: u64,
    /// Serial whose response is released next.
    next_release: u64,
    /// Completed-but-unreleased untagged responses.
    reorder: BTreeMap<u64, String>,
    /// Tags currently in flight on this connection.
    pub inflight_tags: HashSet<String>,
    /// Dispatched compiles (tagged + untagged) awaiting completion.
    pub inflight: usize,
    /// Peer closed its write side; serve what is in flight, then drop.
    pub peer_closed: bool,
    /// Chaos write gate: nothing is flushed before this instant.
    pub write_gate: Option<Instant>,
}

impl Conn {
    /// Wrap a freshly accepted stream (made nonblocking here).
    ///
    /// # Errors
    ///
    /// Propagates `set_nonblocking` failures.
    pub fn new(stream: TcpStream, server_proto: u32) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(Conn {
            stream,
            read_buf: Vec::new(),
            scanned: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            proto: server_proto,
            next_serial: 0,
            next_release: 0,
            reorder: BTreeMap::new(),
            inflight_tags: HashSet::new(),
            inflight: 0,
            peer_closed: false,
            write_gate: None,
        })
    }

    /// The raw descriptor for poll registration.
    #[cfg(unix)]
    pub fn fd(&self) -> super::sys::RawFd {
        use std::os::fd::AsRawFd;
        self.stream.as_raw_fd()
    }

    /// Portable fallback: descriptors are never polled, only carried.
    #[cfg(not(unix))]
    pub fn fd(&self) -> super::sys::RawFd {
        0
    }

    /// Should the loop poll this connection for readability? Not once the
    /// peer half-closed, not at the pipeline-depth limit, and not while
    /// the client is sitting on a large unread response backlog.
    pub fn wants_read(&self, pipeline_depth: usize) -> bool {
        !self.peer_closed
            && self.inflight < pipeline_depth.max(1)
            && self.pending_write_len() < WRITE_HIGH_WATER
    }

    /// Should the loop poll this connection for writability?
    pub fn wants_write(&self, now: Instant) -> bool {
        self.pending_write_len() > 0 && self.write_gate.is_none_or(|gate| gate <= now)
    }

    /// Bytes queued for write and not yet accepted by the kernel.
    pub fn pending_write_len(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Responses completed but still held for in-order release, plus
    /// dispatched work: when all three are zero the connection is fully
    /// quiesced (nothing owed to the client).
    pub fn is_quiesced(&self) -> bool {
        self.inflight == 0 && self.reorder.is_empty() && self.pending_write_len() == 0
    }

    /// Drain the socket into the read buffer and split off every complete
    /// frame. Never blocks.
    pub fn read_frames(&mut self) -> ReadEvent {
        let mut eof = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    if self.read_buf.len() > MAX_FRAME_BYTES {
                        // Even if a newline lurks in the chunk, a frame
                        // this large is already illegal.
                        return ReadEvent::Overflow;
                    }
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => break,
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(_) => return ReadEvent::Broken,
            }
        }
        // Split frames by cursor and compact once at the end: draining the
        // buffer per frame would memmove the whole backlog for every line,
        // turning a deep pipelined burst into quadratic memcpy.
        let mut frames = Vec::new();
        let mut consumed = 0usize;
        while let Some(nl) = self.read_buf[self.scanned..].iter().position(|&b| b == b'\n') {
            let end = self.scanned + nl;
            let line = String::from_utf8_lossy(&self.read_buf[consumed..end]).into_owned();
            frames.push(line);
            consumed = end + 1;
            self.scanned = consumed;
        }
        self.read_buf.drain(..consumed);
        self.scanned = self.read_buf.len();
        if eof {
            self.peer_closed = true;
            ReadEvent::Eof(frames)
        } else {
            ReadEvent::Frames(frames)
        }
    }

    /// Queue one response line (newline appended here).
    pub fn queue_write(&mut self, line: &str) {
        self.write_buf.extend_from_slice(line.as_bytes());
        self.write_buf.push(b'\n');
    }

    /// Queue `line` with `tag=<tag>` spliced in after the verb, directly
    /// into the write buffer — the per-response path of a pipelined
    /// connection, so no interim tagged string is allocated.
    pub fn queue_write_tagged(&mut self, tag: &str, line: &str) {
        match line.split_once(' ') {
            Some((verb, rest)) => {
                self.write_buf.extend_from_slice(verb.as_bytes());
                self.write_buf.extend_from_slice(b" tag=");
                self.write_buf.extend_from_slice(tag.as_bytes());
                self.write_buf.push(b' ');
                self.write_buf.extend_from_slice(rest.as_bytes());
            }
            None => {
                self.write_buf.extend_from_slice(line.as_bytes());
                self.write_buf.extend_from_slice(b" tag=");
                self.write_buf.extend_from_slice(tag.as_bytes());
            }
        }
        self.write_buf.push(b'\n');
    }

    /// Complete the untagged request with serial `serial`, releasing it —
    /// and any blocked successors — in FIFO order.
    pub fn complete_serial(&mut self, serial: u64, line: String) {
        self.reorder.insert(serial, line);
        while let Some(line) = self.reorder.remove(&self.next_release) {
            self.queue_write(&line);
            self.next_release += 1;
        }
    }

    /// Flush as much of the write buffer as the kernel will take. Returns
    /// `false` when the transport is broken.
    pub fn flush(&mut self, now: Instant) -> bool {
        if let Some(gate) = self.write_gate {
            if gate > now {
                return true;
            }
            self.write_gate = None;
        }
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return false,
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == IoErrorKind::WouldBlock => break,
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > WRITE_HIGH_WATER {
            // Compact so a slow-draining client does not pin dead bytes.
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        (client, Conn::new(server_side, 4).unwrap())
    }

    #[test]
    fn frames_split_on_newlines_across_partial_reads() {
        let (mut client, mut conn) = pair();
        client.write_all(b"PING\nSTA").unwrap();
        client.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        match conn.read_frames() {
            ReadEvent::Frames(f) => assert_eq!(f, vec!["PING".to_string()]),
            _ => panic!("expected frames"),
        }
        client.write_all(b"TS\nHEALTH\n").unwrap();
        client.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        match conn.read_frames() {
            ReadEvent::Frames(f) => {
                assert_eq!(f, vec!["STATS".to_string(), "HEALTH".to_string()]);
            }
            _ => panic!("expected frames"),
        }
    }

    #[test]
    fn reorder_buffer_releases_serials_in_order() {
        let (_client, mut conn) = pair();
        conn.complete_serial(2, "OK out=two".into());
        conn.complete_serial(1, "OK out=one".into());
        assert_eq!(conn.pending_write_len(), 0, "serial 0 still blocks the line");
        conn.complete_serial(0, "OK out=zero".into());
        let queued = String::from_utf8(conn.write_buf.clone()).unwrap();
        assert_eq!(queued, "OK out=zero\nOK out=one\nOK out=two\n");
        assert!(conn.is_quiesced() || conn.pending_write_len() > 0);
    }

    #[test]
    fn eof_still_yields_buffered_frames() {
        let (mut client, mut conn) = pair();
        client.write_all(b"PING\n").unwrap();
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(20));
        match conn.read_frames() {
            ReadEvent::Eof(f) => assert_eq!(f, vec!["PING".to_string()]),
            ReadEvent::Frames(f) => {
                // Race: EOF may surface on the next read.
                assert_eq!(f, vec!["PING".to_string()]);
                match conn.read_frames() {
                    ReadEvent::Eof(rest) => assert!(rest.is_empty()),
                    _ => panic!("expected eof"),
                }
            }
            _ => panic!("expected frames then eof"),
        }
        assert!(conn.peer_closed);
    }
}
