//! Service metrics: request-latency percentiles and the `STATS` dump.
//!
//! Latencies go into a fixed-size ring reservoir (the last `CAP` request
//! durations, in microseconds); percentiles are computed on a sorted copy
//! at dump time. The dump itself is rendered from sorted keys throughout
//! (the [`lslp::Statistics`] snapshot is ordered by construction, the
//! gauge lines are emitted in a fixed order), so two dumps of the same
//! state are byte-identical — scripts can diff them.

use std::sync::Mutex;

use lslp::SyncStatistics;

/// Ring-buffer latency reservoir.
pub struct LatencyReservoir {
    samples: Mutex<Ring>,
}

struct Ring {
    buf: Vec<u64>,
    next: usize,
    total: u64,
}

/// Reservoir capacity: enough for the percentile tail of a load-test run
/// without unbounded growth.
const CAP: usize = 8192;

/// A point-in-time percentile summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Requests ever recorded (not capped by the reservoir).
    pub count: u64,
    /// Median over the reservoir, microseconds.
    pub p50_us: u64,
    /// 99th percentile over the reservoir, microseconds.
    pub p99_us: u64,
    /// Maximum over the reservoir, microseconds.
    pub max_us: u64,
}

impl Default for LatencyReservoir {
    fn default() -> LatencyReservoir {
        LatencyReservoir::new()
    }
}

impl LatencyReservoir {
    /// An empty reservoir.
    pub fn new() -> LatencyReservoir {
        LatencyReservoir {
            samples: Mutex::new(Ring { buf: Vec::with_capacity(CAP), next: 0, total: 0 }),
        }
    }

    /// Record one request latency.
    pub fn record(&self, micros: u64) {
        let mut ring = self.samples.lock().expect("latency lock");
        ring.total += 1;
        if ring.buf.len() < CAP {
            ring.buf.push(micros);
        } else {
            let slot = ring.next;
            ring.buf[slot] = micros;
            ring.next = (slot + 1) % CAP;
        }
    }

    /// Percentiles over the current reservoir contents.
    pub fn summary(&self) -> LatencySummary {
        let ring = self.samples.lock().expect("latency lock");
        if ring.buf.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = ring.buf.clone();
        sorted.sort_unstable();
        let pick = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        LatencySummary {
            count: ring.total,
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

/// Compute percentiles over a caller-held latency sample (used by the load
/// generator for client-side latencies; same definition as the server's).
pub fn percentiles(samples: &mut [u64]) -> LatencySummary {
    if samples.is_empty() {
        return LatencySummary::default();
    }
    samples.sort_unstable();
    let pick = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
    LatencySummary {
        count: samples.len() as u64,
        p50_us: pick(0.50),
        p99_us: pick(0.99),
        max_us: *samples.last().expect("non-empty"),
    }
}

/// Render the `STATS` payload: the counter registry (sorted), then the
/// gauge block in fixed order. `extra` rows (queue depth etc.) are emitted
/// as given — callers keep them in a fixed order.
pub fn render_stats(
    registry: &SyncStatistics,
    latency: &LatencyReservoir,
    extra: &[(&str, String)],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let snapshot = registry.snapshot();
    out.push_str(&snapshot.to_string());
    let l = latency.summary();
    let _ = writeln!(
        out,
        "latency: count={} p50_us={} p99_us={} max_us={}",
        l.count, l.p50_us, l.p99_us, l.max_us
    );
    for (k, v) in extra {
        let _ = writeln!(out, "{k}: {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_math() {
        let r = LatencyReservoir::new();
        assert_eq!(r.summary(), LatencySummary::default());
        for v in 1..=100 {
            r.record(v);
        }
        let s = r.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 51, "index (99 * 0.5).round() = 50 → value 51");
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = LatencyReservoir::new();
        for _ in 0..CAP {
            r.record(1);
        }
        for _ in 0..CAP {
            r.record(1000);
        }
        let s = r.summary();
        assert_eq!(s.count, 2 * CAP as u64);
        assert_eq!(s.p50_us, 1000, "old epoch fully displaced");
    }

    #[test]
    fn stats_dump_is_deterministic_and_ordered() {
        let reg = SyncStatistics::new();
        reg.add("server", "requests-ok", 2);
        reg.add("cse", "insts-merged", 1);
        let lat = LatencyReservoir::new();
        let a = render_stats(&reg, &lat, &[("queue", "depth=0 max=3 capacity=64".into())]);
        let b = render_stats(&reg, &lat, &[("queue", "depth=0 max=3 capacity=64".into())]);
        assert_eq!(a, b);
        let cse = a.find("cse - insts-merged").unwrap();
        let srv = a.find("server - requests-ok").unwrap();
        assert!(cse < srv, "registry rows sorted:\n{a}");
        assert!(a.contains("latency: count=0"));
        assert!(a.contains("queue: depth=0"));
    }
}
