//! `lslpd` — the LSLP compile daemon.
//!
//! ```text
//! lslpd [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N]
//!       [--cache-shards N] [--time-budget-ms N] [--cache-dir DIR]
//!       [--chaos SPEC] [--max-conns N] [--pipeline-depth N]
//! ```
//!
//! Serves the line-delimited protocol of `docs/SERVER.md` until a client
//! sends `SHUTDOWN`, then drains queued work and exits 0.

use std::process::ExitCode;

use lslp_server::{Server, ServerConfig};

const USAGE: &str = "\
lslpd — the LSLP compile daemon

USAGE:
    lslpd [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>     bind address (default: 127.0.0.1:7979; port 0
                           picks a free port and prints it)
    --workers <N>          compile worker threads (default: CPU count)
    --queue-cap <N>        bounded queue capacity; beyond it requests are
                           rejected with ERR kind=overload (default: 64)
    --cache-cap <N>        result-cache entries across shards (default: 1024)
    --cache-shards <N>     result-cache shard count (default: 16)
    --time-budget-ms <N>   default per-request compile budget (default: 500)
    --cache-dir <DIR>      persist the result cache under DIR (journal +
                           checksummed entries); a restarted daemon starts
                           warm, corrupt entries are quarantined, and disk
                           failures degrade to memory-only (default: off)
    --chaos <SPEC>         seeded fault injection, e.g.
                           seed=7,panic=0.1,read-drop=0.05,delay=10:0.2
                           (keys: seed, accept-drop, read-drop, write-drop,
                           delay=MS:P, panic, corrupt; see docs/SERVER.md)
    --max-conns <N>        connection limit; accepts beyond it get one
                           ERR kind=overload line and are closed
                           (default: 1024)
    --pipeline-depth <N>   per-connection in-flight compile budget; a
                           connection at the limit stops being read until
                           completions drain (default: 32)
    -h, --help             show this help
";

fn parse_args(argv: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig { addr: "127.0.0.1:7979".into(), ..ServerConfig::default() };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value_of =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        match a.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "--addr" => cfg.addr = value_of("--addr")?,
            "--workers" => {
                cfg.workers =
                    value_of("--workers")?.parse().map_err(|e| format!("bad --workers: {e}"))?
            }
            "--queue-cap" => {
                cfg.queue_capacity =
                    value_of("--queue-cap")?.parse().map_err(|e| format!("bad --queue-cap: {e}"))?
            }
            "--cache-cap" => {
                cfg.cache_capacity =
                    value_of("--cache-cap")?.parse().map_err(|e| format!("bad --cache-cap: {e}"))?
            }
            "--cache-shards" => {
                cfg.cache_shards = value_of("--cache-shards")?
                    .parse()
                    .map_err(|e| format!("bad --cache-shards: {e}"))?
            }
            "--time-budget-ms" => {
                cfg.default_time_budget_ms = value_of("--time-budget-ms")?
                    .parse()
                    .map_err(|e| format!("bad --time-budget-ms: {e}"))?
            }
            "--cache-dir" => cfg.cache_dir = Some(value_of("--cache-dir")?),
            "--max-conns" => {
                cfg.max_conns = value_of("--max-conns")?
                    .parse()
                    .map_err(|e| format!("bad --max-conns: {e}"))?;
                if cfg.max_conns == 0 {
                    return Err("bad --max-conns: must be at least 1".into());
                }
            }
            "--pipeline-depth" => {
                cfg.pipeline_depth = value_of("--pipeline-depth")?
                    .parse()
                    .map_err(|e| format!("bad --pipeline-depth: {e}"))?;
                if cfg.pipeline_depth == 0 {
                    return Err("bad --pipeline-depth: must be at least 1".into());
                }
            }
            "--chaos" => {
                cfg.chaos = Some(
                    lslp_server::chaos::ChaosConfig::parse(&value_of("--chaos")?)
                        .map_err(|e| format!("bad --chaos: {e}"))?,
                )
            }
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&argv) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let chaos_active = cfg.chaos.as_ref().is_some_and(|c| c.is_active());
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lslpd: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    if chaos_active {
        eprintln!("lslpd: CHAOS ACTIVE — injecting faults on purpose");
    }
    eprintln!("lslpd: serving on {}", server.local_addr());
    match server.run() {
        Ok(()) => {
            eprintln!("lslpd: drained, bye");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lslpd: {e}");
            ExitCode::FAILURE
        }
    }
}
