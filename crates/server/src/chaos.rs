//! Deterministic fault injection for the service layer.
//!
//! The fuzz subsystem's hidden Sabotage hook plants bugs inside the
//! *compiler* to prove the oracles fire; this module applies the same
//! philosophy to the *daemon*: a seeded [`ChaosConfig`] makes `lslpd`
//! drop accepted connections, sever connections mid-request, delay or
//! drop responses, panic workers mid-compile, and corrupt disk cache
//! entries as they are written — so the self-healing machinery
//! (watchdog respawn, journal quarantine, client retry/reconnect) is
//! exercised by tests instead of trusted on faith.
//!
//! Determinism: every injection site owns a monotonically increasing
//! draw counter, and the decision for draw `n` at site `s` is a pure
//! function of `(seed, s, n)` ([`splitmix64`]). Thread interleaving may
//! change *which request* hits a fault, but the fault schedule per site
//! — e.g. "the 7th job popped panics its worker" — is fixed by the
//! seed, which is what makes chaos CI runs reproducible enough to
//! assert on (`worker-restarts > 0` with a known seed is a certainty,
//! not a coin flip).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// SplitMix64: a tiny, high-quality mixing function. Also used by the
/// client for deterministic backoff jitter.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Parsed `--chaos` specification: per-site fault probabilities plus the
/// seed that makes the schedule deterministic.
///
/// Spec grammar (comma-separated `key=value`, all keys optional):
///
/// ```text
/// seed=N             schedule seed (default 0)
/// accept-drop=P      close an accepted connection immediately
/// read-drop=P        sever the connection after reading a request
/// write-drop=P       sever the connection instead of responding
/// delay=MS:P         sleep MS milliseconds before responding
/// panic=P            panic the worker mid-compile (thread dies)
/// corrupt=P          flip a byte in a disk cache entry as it is written
/// ```
///
/// Probabilities `P` are floats in `[0, 1]`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Probability an accepted connection is dropped on arrival.
    pub accept_drop: f64,
    /// Probability a connection is severed right after a request is read.
    pub read_drop: f64,
    /// Probability a connection is severed instead of writing the response.
    pub write_drop: f64,
    /// Added response delay in milliseconds (with [`ChaosConfig::delay_prob`]).
    pub delay_ms: u64,
    /// Probability the delay fires.
    pub delay_prob: f64,
    /// Probability a worker panics when it picks up a job.
    pub worker_panic: f64,
    /// Probability a disk cache entry is corrupted as it is written.
    pub corrupt_entry: f64,
}

impl ChaosConfig {
    /// Parse a `--chaos` spec string.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown keys, malformed numbers, or
    /// probabilities outside `[0, 1]`.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut cfg = ChaosConfig::default();
        for item in spec.split(',').filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("chaos: expected key=value, got `{item}`"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v.parse().map_err(|e| format!("chaos: bad probability `{v}`: {e}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos: probability `{v}` outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    cfg.seed = value.parse().map_err(|e| format!("chaos: bad seed: {e}"))?;
                }
                "accept-drop" => cfg.accept_drop = prob(value)?,
                "read-drop" => cfg.read_drop = prob(value)?,
                "write-drop" => cfg.write_drop = prob(value)?,
                "panic" => cfg.worker_panic = prob(value)?,
                "corrupt" => cfg.corrupt_entry = prob(value)?,
                "delay" => {
                    let (ms, p) = value
                        .split_once(':')
                        .ok_or_else(|| format!("chaos: delay wants MS:P, got `{value}`"))?;
                    cfg.delay_ms = ms.parse().map_err(|e| format!("chaos: bad delay ms: {e}"))?;
                    cfg.delay_prob = prob(p)?;
                }
                other => return Err(format!("chaos: unknown key `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// Whether any fault has a nonzero probability.
    pub fn is_active(&self) -> bool {
        self.accept_drop > 0.0
            || self.read_drop > 0.0
            || self.write_drop > 0.0
            || self.delay_prob > 0.0
            || self.worker_panic > 0.0
            || self.corrupt_entry > 0.0
    }
}

/// Injection sites, each with its own draw counter.
#[derive(Clone, Copy)]
enum Site {
    Accept = 0,
    Read = 1,
    Write = 2,
    Delay = 3,
    Panic = 4,
    Corrupt = 5,
}

const SITES: usize = 6;

/// The live injector: a [`ChaosConfig`] plus per-site draw counters.
pub struct Chaos {
    cfg: ChaosConfig,
    draws: [AtomicU64; SITES],
    injected: [AtomicU64; SITES],
}

impl Chaos {
    /// Build an injector from a parsed config.
    pub fn new(cfg: ChaosConfig) -> Chaos {
        Chaos {
            cfg,
            draws: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Deterministic biased coin for draw `n` at `site`.
    fn roll(&self, site: Site, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        let n = self.draws[site as usize].fetch_add(1, Ordering::Relaxed);
        let x = splitmix64(
            self.cfg
                .seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((site as u64) << 56)
                .wrapping_add(n),
        );
        let fire = ((x >> 11) as f64 / (1u64 << 53) as f64) < prob;
        if fire {
            self.injected[site as usize].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Drop this freshly accepted connection?
    pub fn drop_accept(&self) -> bool {
        self.roll(Site::Accept, self.cfg.accept_drop)
    }

    /// Sever the connection after reading this request?
    pub fn drop_read(&self) -> bool {
        self.roll(Site::Read, self.cfg.read_drop)
    }

    /// Sever the connection instead of writing this response?
    pub fn drop_write(&self) -> bool {
        self.roll(Site::Write, self.cfg.write_drop)
    }

    /// Delay this response?
    pub fn response_delay(&self) -> Option<Duration> {
        if self.roll(Site::Delay, self.cfg.delay_prob) {
            Some(Duration::from_millis(self.cfg.delay_ms))
        } else {
            None
        }
    }

    /// Panic the calling worker thread? (The caller panics; the watchdog
    /// respawns the worker.)
    pub fn maybe_panic_worker(&self) {
        if self.roll(Site::Panic, self.cfg.worker_panic) {
            panic!("chaos: injected worker panic (seed={})", self.cfg.seed);
        }
    }

    /// Corrupt the disk entry about to be written?
    pub fn corrupt_entry(&self) -> bool {
        self.roll(Site::Corrupt, self.cfg.corrupt_entry)
    }

    /// Total faults injected across all sites (for the STATS dump).
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_rejects() {
        let c = ChaosConfig::parse("seed=7,panic=0.1,read-drop=0.05,delay=10:0.2").unwrap();
        assert_eq!(c.seed, 7);
        assert_eq!(c.worker_panic, 0.1);
        assert_eq!(c.read_drop, 0.05);
        assert_eq!((c.delay_ms, c.delay_prob), (10, 0.2));
        assert!(c.is_active());
        assert!(!ChaosConfig::parse("seed=3").unwrap().is_active());
        assert!(ChaosConfig::parse("").unwrap() == ChaosConfig::default());
        assert!(ChaosConfig::parse("panic=1.5").is_err(), "probability out of range");
        assert!(ChaosConfig::parse("frobnicate=0.1").is_err(), "unknown key");
        assert!(ChaosConfig::parse("delay=10").is_err(), "delay wants MS:P");
        assert!(ChaosConfig::parse("seed").is_err(), "key without value");
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let cfg = ChaosConfig::parse("seed=7,panic=0.1").unwrap();
        let schedule = |cfg: &ChaosConfig| -> Vec<bool> {
            let c = Chaos::new(cfg.clone());
            (0..64).map(|_| c.roll(Site::Panic, c.cfg.worker_panic)).collect()
        };
        assert_eq!(schedule(&cfg), schedule(&cfg), "same seed, same schedule");
        let other = ChaosConfig::parse("seed=8,panic=0.1").unwrap();
        assert_ne!(schedule(&cfg), schedule(&other), "different seed, different schedule");
    }

    #[test]
    fn ci_seed_fires_a_panic_within_64_draws() {
        // The chaos-smoke CI job asserts `worker-restarts > 0` after 64
        // requests with this exact spec; that is only sound because the
        // schedule is deterministic and fires within the first 64 draws.
        let c = Chaos::new(ChaosConfig::parse("seed=7,panic=0.1").unwrap());
        let fired = (0..64).filter(|_| c.roll(Site::Panic, c.cfg.worker_panic)).count();
        assert!(fired >= 1, "seed=7 must fire at least one panic in 64 draws");
        assert!(fired <= 16, "p=0.1 should not fire wildly often, got {fired}");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let c = Chaos::new(ChaosConfig { seed: 42, read_drop: 0.25, ..ChaosConfig::default() });
        let fired = (0..10_000).filter(|_| c.drop_read()).count();
        assert!((2_000..3_000).contains(&fired), "~25% of 10k, got {fired}");
        assert_eq!(c.injected_total(), fired as u64);
    }

    #[test]
    fn zero_probability_never_fires_or_draws() {
        let c = Chaos::new(ChaosConfig::default());
        for _ in 0..100 {
            assert!(!c.drop_accept());
            assert!(!c.drop_write());
            assert!(c.response_delay().is_none());
            c.maybe_panic_worker(); // must not panic
        }
        assert_eq!(c.injected_total(), 0);
    }
}
