//! `lslpc --fuzz`: run an in-process fuzzing campaign over the compile
//! stack (see `docs/FUZZING.md` and the `lslp-fuzz` crate).

use std::path::PathBuf;

use lslp::VectorizerConfig;
use lslp_fuzz::{run_campaign, CampaignConfig};
use lslp_target::TargetSpec;

use crate::args::{ArgError, Args};

/// Run the campaign described by `args`.
///
/// Returns the deterministic summary text (equal seeds produce
/// byte-identical output) and the number of recorded failures — the
/// caller maps a non-zero count to exit code 1.
///
/// # Errors
///
/// Returns [`ArgError`] when `--config` or `--target` does not name a
/// valid preset/target.
pub fn run_fuzz(args: &Args) -> Result<(String, usize), ArgError> {
    let mut cfg = CampaignConfig::new(args.fuzz.unwrap_or(0), args.fuzz_seed);
    cfg.base = VectorizerConfig::preset(&args.config)
        .ok_or_else(|| ArgError(format!("unknown --config preset `{}`", args.config)))?;
    if let Some(spec) = &args.target {
        // CI shards the campaign one target per job; default is all four.
        let tm =
            TargetSpec::parse(spec).map_err(|e| ArgError(format!("bad --target `{spec}`: {e}")))?;
        cfg.targets = vec![tm];
    }
    cfg.corpus_dir = Some(PathBuf::from(&args.fuzz_dir));
    let report = run_campaign(&cfg);
    let mut out = report.summary_lines().join("\n");
    out.push('\n');
    Ok((out, report.failures.len()))
}
