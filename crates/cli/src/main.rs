//! `lslpc` entry point: I/O and exit codes around [`lslp_cli::driver`].
//!
//! Exit codes: 0 success, 1 internal compiler failure, 2 bad invocation,
//! 3 input (parse/verify) error — so scripts and the compile service can
//! tell user error from compiler bug.

use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match lslp_cli::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if args.serve {
        return serve(&args);
    }
    if args.fuzz.is_some() {
        return fuzz(&args);
    }
    let src = if args.input == "-" {
        let mut s = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut s) {
            eprintln!("lslpc: cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&args.input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lslpc: cannot read {}: {e}", args.input);
                return ExitCode::FAILURE;
            }
        }
    };
    match lslp_cli::run_on_source(&args, &src) {
        Ok(out) => {
            if let Some(path) = &args.output {
                if let Err(e) = std::fs::write(path, out) {
                    eprintln!("lslpc: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            } else {
                print!("{out}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lslpc: {e}");
            // LslpError's exit-code mapping is stable: Usage → 2,
            // Input → 3, Internal → 1.
            ExitCode::from(e.exit_code() as u8)
        }
    }
}

/// `lslpc --fuzz N`: run a fuzzing campaign; any oracle violation is a
/// compiler bug, reported via exit code 1.
fn fuzz(args: &lslp_cli::Args) -> ExitCode {
    match lslp_cli::run_fuzz(args) {
        Ok((summary, failures)) => {
            if let Some(path) = &args.output {
                if let Err(e) = std::fs::write(path, &summary) {
                    eprintln!("lslpc: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            } else {
                print!("{summary}");
            }
            if failures == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// `lslpc --serve`: run the `lslpd` daemon in-process.
fn serve(args: &lslp_cli::Args) -> ExitCode {
    let mut cfg = lslp_server::ServerConfig { addr: args.addr.clone(), ..Default::default() };
    if let Some(workers) = args.workers {
        cfg.workers = workers;
    }
    cfg.cache_dir = args.cache_dir.clone();
    if let Some(spec) = &args.chaos {
        // Validated during argument parsing; re-parse into the config type.
        match lslp_server::chaos::ChaosConfig::parse(spec) {
            Ok(c) => cfg.chaos = Some(c),
            Err(e) => {
                eprintln!("lslpc: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let server = match lslp_server::Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lslpc: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("lslpc: serving on {} (send SHUTDOWN to stop)", server.local_addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lslpc: {e}");
            ExitCode::FAILURE
        }
    }
}
