//! `lslpc` entry point: I/O and exit codes around [`lslp_cli::driver`].

use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match lslp_cli::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let src = if args.input == "-" {
        let mut s = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut s) {
            eprintln!("lslpc: cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&args.input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lslpc: cannot read {}: {e}", args.input);
                return ExitCode::FAILURE;
            }
        }
    };
    match lslp_cli::run_on_source(&args, &src) {
        Ok(out) => {
            if let Some(path) = &args.output {
                if let Err(e) = std::fs::write(path, out) {
                    eprintln!("lslpc: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            } else {
                print!("{out}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lslpc: {e}");
            ExitCode::FAILURE
        }
    }
}
