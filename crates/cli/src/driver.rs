//! The `lslpc` driver logic, kept separate from `main` for testability.

use std::fmt::Write as _;

use lslp::api::{CompileOptions, LslpError, Session};
use lslp::{vectorize_function, PipelineReport, VectorizerConfig};
use lslp_analysis::AnalysisManager;
use lslp_interp::{measure_cycles, run_function_traced, Memory, Value};
use lslp_ir::{Function, Module, Opcode, ScalarType, Type};
use lslp_target::CostModel;

use crate::args::{Args, Emit};

/// The driver's error type is the library's: see [`lslp::api::LslpError`]
/// for the classification and exit-code mapping.
pub type DriverError = LslpError;

/// Re-export of [`lslp::api::ErrorClass`], kept under the historical
/// driver name for callers that match on it.
pub use lslp::api::ErrorClass as DriverErrorKind;

/// Build validated [`CompileOptions`] from the parsed command line.
fn options(args: &Args) -> Result<CompileOptions, LslpError> {
    let mut b = CompileOptions::preset(&args.config);
    if let Some(t) = &args.target {
        b = b.target(t);
    }
    if let Some(mode) = &args.guard {
        b = b.guard(mode);
    }
    if let Some(strategy) = &args.packing {
        b = b.packing(strategy);
    }
    if args.paranoid {
        b = b.paranoid(true);
    }
    if !args.pipeline {
        b = b.vectorize_only();
    }
    Ok(b.build()?)
}

fn emit_dot(src_module: &Module, cfg: &VectorizerConfig, tm: &CostModel) -> String {
    let mut out = String::new();
    for f in &src_module.functions {
        let mut am = AnalysisManager::new();
        let addr = am.addr_info(f);
        let positions = am.positions(f);
        let use_map = am.use_map(f);
        for chain in lslp::seeds::collect_store_chains(f, &addr) {
            let graph = lslp::GraphBuilder::new(f, cfg, tm, &addr, &positions, &use_map)
                .build(&chain.stores);
            let cost = lslp::graph_cost(f, &graph, tm, &use_map);
            let _ = writeln!(out, "// @{} — seed chain of {} stores", f.name(), chain.len());
            out.push_str(&graph.to_dot(f, Some(&cost.per_node)));
        }
    }
    out
}

fn emit_graphs(src_module: &Module, cfg: &VectorizerConfig, tm: &CostModel) -> String {
    let mut out = String::new();
    for f in &src_module.functions {
        let _ = writeln!(out, "; @{} — SLP graphs before vectorization", f.name());
        let mut am = AnalysisManager::new();
        let addr = am.addr_info(f);
        let positions = am.positions(f);
        let use_map = am.use_map(f);
        for chain in lslp::seeds::collect_store_chains(f, &addr) {
            let graph = lslp::GraphBuilder::new(f, cfg, tm, &addr, &positions, &use_map)
                .build(&chain.stores);
            let cost = lslp::graph_cost(f, &graph, tm, &use_map);
            let _ = writeln!(out, "; seed chain of {} stores:", chain.len());
            for line in graph.dump(f).lines() {
                let _ = writeln!(out, ";   {line}");
            }
            let _ = writeln!(
                out,
                ";   total cost {} -> {}",
                cost.total,
                if cost.total < cfg.cost_threshold { "vectorize" } else { "keep scalar" }
            );
        }
    }
    out
}

fn emit_report(m: &Module, reports: &[PipelineReport]) -> String {
    let mut out = String::new();
    for (f, pr) in m.functions.iter().zip(reports) {
        let r = &pr.vectorize;
        let _ = writeln!(
            out,
            "@{}: {} attempt(s), {} vectorized, applied cost {}, {} extract(s), pass time {:?}",
            f.name(),
            r.attempts.len(),
            r.trees_vectorized,
            r.applied_cost,
            r.stats.extracts,
            r.elapsed
        );
        for a in &r.attempts {
            let _ = writeln!(
                out,
                "  seed {} VF={} cost={} nodes={} gathers={} strategy={} -> {}",
                a.seed,
                a.vf,
                a.cost,
                a.nodes,
                a.gathers,
                a.strategy,
                if a.vectorized { "vectorized" } else { "scalar" }
            );
        }
        for red in &r.reductions {
            let _ = writeln!(
                out,
                "  {} cost={} -> {}",
                red.desc,
                red.cost,
                if red.applied { "vectorized" } else { "scalar" }
            );
        }
        for inc in &r.incidents {
            let _ = writeln!(out, "  incident {inc}");
        }
        for inc in &pr.incidents {
            let _ = writeln!(out, "  incident {inc}");
        }
    }
    out
}

/// Render the `--print-pass-times` / `--stats` sections (as `;` comments,
/// so IR output stays parseable).
fn emit_observability(m: &Module, reports: &[PipelineReport], times: bool, stats: bool) -> String {
    let mut out = String::new();
    for (f, r) in m.functions.iter().zip(reports) {
        if times {
            let _ = writeln!(out, "; pass times @{}:", f.name());
            for t in &r.pass_timings {
                let _ = writeln!(
                    out,
                    ";   {:<10} {:>10.1?}  ({} rewrites)",
                    t.pass, t.time, t.rewrites
                );
            }
            let _ = writeln!(
                out,
                ";   {:<10} {:>10.1?}  (cache misses, included in pass times)",
                "analyses", r.analysis_time
            );
        }
        if stats {
            let _ = writeln!(out, "; statistics @{}:", f.name());
            for row in r.stats.rows() {
                let _ = writeln!(out, ";   {:>6}  {} - {}", row.value, row.pass, row.counter);
            }
            let cs = r.analysis_cache;
            let _ = writeln!(
                out,
                ";   analysis cache: {} hit(s), {} miss(es), {} invalidation(s)",
                cs.hits, cs.misses, cs.invalidations
            );
        }
    }
    out
}

/// Deterministically initialize arrays for `--run` (mirrors the evaluation
/// harness: pointer parameters become arrays, scalar parameters get fixed
/// values).
fn run_kernels(
    m: &Module,
    iters: usize,
    trace: bool,
    tm: &CostModel,
) -> Result<String, DriverError> {
    let mut out = String::new();
    for f in &m.functions {
        let mut mem = Memory::new();
        let len = 16 * (iters + 8);
        let mut args = Vec::new();
        for (k, &p) in f.params().iter().enumerate() {
            match f.ty(p) {
                Type::Scalar(ScalarType::Ptr) => {
                    let name = f.value_name(p).unwrap_or("arr").to_string();
                    // Element kind is unknown at the signature level; infer
                    // from the first typed access.
                    let elem = infer_elem(f, p);
                    let ptr = if elem.is_float() {
                        let init: Vec<f64> = (0..len)
                            .map(|j| 0.5 + ((j * 37 + k * 11) % 64) as f64 / 32.0)
                            .collect();
                        mem.alloc_f64(&name, &init)
                    } else {
                        let init: Vec<i64> = (0..len)
                            .map(|j| ((j * 2654435761 + k * 97) % 509) as i64 + 1)
                            .collect();
                        mem.alloc_i64(&name, &init)
                    };
                    args.push(ptr);
                }
                Type::Scalar(s) if s.is_float() => args.push(Value::Float(1.5)),
                _ => args.push(Value::Int(0)),
            }
        }
        let mut cycles = 0i64;
        for t in 0..iters {
            let mut iter_args = args.clone();
            for (&p, v) in f.params().iter().zip(iter_args.iter_mut()) {
                if f.ty(p) == Type::I64 {
                    *v = Value::Int(t as i64);
                }
            }
            if trace && t == 0 {
                let _ = writeln!(out, "@{} trace (iteration 0):", f.name());
                let mut lines = Vec::new();
                run_function_traced(f, &iter_args, &mut mem, |id, v| {
                    lines.push(format!("  {id} = {v}"));
                })
                .map_err(|e| LslpError::Internal(format!("@{}: {e}", f.name())))?;
                for l in lines {
                    let _ = writeln!(out, "{l}");
                }
                cycles += lslp_interp::perf::body_cycles(f, tm);
                continue;
            }
            cycles += measure_cycles(f, &iter_args, &mut mem, tm)
                .map_err(|e| LslpError::Internal(format!("@{}: {e}", f.name())))?
                .cycles;
        }
        let mut checksum = 0u64;
        for name in mem.buffer_names() {
            for &b in mem.bytes(name).unwrap() {
                checksum = checksum.wrapping_mul(1099511628211).wrapping_add(b as u64);
            }
        }
        let _ = writeln!(
            out,
            "@{}: {iters} iteration(s), {cycles} simulated cycles, memory checksum {checksum:016x}",
            f.name()
        );
    }
    Ok(out)
}

/// The element type an array parameter is accessed at (first access wins;
/// `i64` if the parameter is never dereferenced).
fn infer_elem(f: &Function, param: lslp_ir::ValueId) -> ScalarType {
    let geps: std::collections::HashSet<lslp_ir::ValueId> = f
        .iter_body()
        .filter(|(_, _, inst)| inst.op == Opcode::Gep && inst.args[0] == param)
        .map(|(_, id, _)| id)
        .collect();
    for (_, _, inst) in f.iter_body() {
        match inst.op {
            Opcode::Load if geps.contains(&inst.args[0]) => {
                if let Some(e) = inst.ty.elem() {
                    return e;
                }
            }
            Opcode::Store if geps.contains(&inst.args[1]) => {
                if let Some(e) = f.ty(inst.args[0]).elem() {
                    return e;
                }
            }
            _ => {}
        }
    }
    ScalarType::I64
}

/// Run the driver over already-loaded source text; returns what would be
/// printed to stdout.
///
/// # Errors
///
/// Returns [`LslpError`] for rejected options, compile errors, or runtime
/// failures under `--run`; `.exit_code()` gives the process exit code.
pub fn run_on_source(args: &Args, src: &str) -> Result<String, LslpError> {
    let opts = options(args)?;
    let mut session = Session::new(opts);
    let cfg = session.options().config().clone();
    let tm = session.target().clone();
    let module = lslp_frontend::compile(src).map_err(|e| LslpError::Input(e.to_string()))?;

    let mut out = String::new();
    if let Some(other) = &args.compare {
        let mut cmp_args = args.clone();
        cmp_args.config = other.clone();
        let cfg2 = options(&cmp_args)?.config().clone();
        let _ = writeln!(out, "; cost comparison {} vs {}", args.config, other);
        for f in &module.functions {
            let mut f1 = f.clone();
            let r1 = vectorize_function(&mut f1, &cfg, &tm);
            let mut f2 = f.clone();
            let r2 = vectorize_function(&mut f2, &cfg2, &tm);
            let _ = writeln!(
                out,
                ";   @{}: {} {:+} ({} trees) | {} {:+} ({} trees)",
                f.name(),
                args.config,
                r1.applied_cost,
                r1.trees_vectorized,
                other,
                r2.applied_cost,
                r2.trees_vectorized
            );
        }
        out.push('\n');
    }

    match args.emit {
        Emit::Graphs => {
            out.push_str(&emit_graphs(&module, &cfg, &tm));
            Ok(out)
        }
        Emit::Dot => {
            out.push_str(&emit_dot(&module, &cfg, &tm));
            Ok(out)
        }
        Emit::Ir | Emit::Report => {
            let artifact = session.optimize(module)?;
            if args.emit == Emit::Report {
                out.push_str(&emit_report(&artifact.module, &artifact.reports));
            } else {
                out.push_str(&artifact.ir());
            }
            if args.print_pass_times || args.stats {
                out.push('\n');
                out.push_str(&emit_observability(
                    &artifact.module,
                    &artifact.reports,
                    args.print_pass_times,
                    args.stats,
                ));
            }
            if args.run {
                out.push('\n');
                out.push_str(&run_kernels(&artifact.module, args.iters, args.trace, &tm)?);
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    const SRC: &str = "kernel k(f64* A, f64* B, i64 i) {
                           for o in 0..4 { A[i+o] = B[i+o] * B[i+o]; }
                       }";

    fn run(extra: &[&str]) -> String {
        let mut argv: Vec<String> = vec!["-".into()];
        argv.extend(extra.iter().map(|s| s.to_string()));
        let a = args::parse(&argv).unwrap();
        run_on_source(&a, SRC).unwrap()
    }

    #[test]
    fn emits_vectorized_ir_by_default() {
        let out = run(&[]);
        assert!(out.contains("<4 x f64>"), "{out}");
    }

    #[test]
    fn o3_emits_scalar_ir() {
        let out = run(&["--config", "O3"]);
        assert!(!out.contains('<'), "{out}");
        assert!(out.contains("fmul f64"), "{out}");
    }

    #[test]
    fn report_mode_shows_attempts() {
        let out = run(&["--emit", "report"]);
        assert!(out.contains("applied cost"), "{out}");
        assert!(out.contains("VF=4"), "{out}");
    }

    #[test]
    fn graphs_mode_dumps_nodes() {
        let out = run(&["--emit", "graphs"]);
        assert!(out.contains("seed chain of 4 stores"), "{out}");
        assert!(out.contains("store ["), "{out}");
        assert!(out.contains("-> vectorize"), "{out}");
    }

    #[test]
    fn dot_mode_emits_graphviz() {
        let out = run(&["--emit", "dot"]);
        assert!(out.contains("digraph slp {"), "{out}");
        assert!(out.contains("->"), "{out}");
    }

    #[test]
    fn compare_mode_shows_both_configs() {
        let out = run(&["--compare", "SLP"]);
        assert!(out.contains("cost comparison LSLP vs SLP"), "{out}");
    }

    #[test]
    fn run_mode_executes_and_checksums() {
        let vec_out = run(&["--run", "--iters", "4"]);
        assert!(vec_out.contains("simulated cycles"), "{vec_out}");
        // The same program under O3 must produce the same checksum.
        let scalar_out = run(&["--run", "--iters", "4", "--config", "O3"]);
        let checksum = |s: &str| {
            s.lines()
                .find(|l| l.contains("checksum"))
                .and_then(|l| l.split_whitespace().last().map(str::to_string))
                .unwrap()
        };
        assert_eq!(checksum(&vec_out), checksum(&scalar_out), "results must agree");
    }

    #[test]
    fn trace_mode_prints_values() {
        let out = run(&["--run", "--iters", "2", "--trace"]);
        assert!(out.contains("trace (iteration 0):"), "{out}");
        assert!(out.contains(" = <"), "vector values traced:\n{out}");
        assert!(out.contains("simulated cycles"), "{out}");
    }

    #[test]
    fn pipeline_flag_runs_scalar_passes() {
        let out = run(&["--pipeline"]);
        assert!(out.contains("<4 x f64>"), "{out}");
    }

    #[test]
    fn guard_modes_accepted_end_to_end() {
        // A well-formed kernel raises no incidents, so every guard mode
        // (and paranoid differential execution) produces the same IR.
        let baseline = run(&[]);
        for extra in [
            &["--guard", "off"][..],
            &["--guard", "rollback"],
            &["--guard", "strict"],
            &["--guard", "rollback", "--paranoid"],
        ] {
            assert_eq!(run(extra), baseline, "guard flags {extra:?} changed the output");
        }
    }

    #[test]
    fn packing_strategies_accepted_end_to_end() {
        // A clean 4-lane kernel has one obviously-best packing, so both
        // strategies land on the same IR (global ties and defers to
        // greedy, so its attempts are greedy-tagged too).
        let baseline = run(&[]);
        assert_eq!(run(&["--packing", "greedy"]), baseline);
        assert_eq!(run(&["--packing", "global"]), baseline);
        let report = run(&["--emit", "report"]);
        assert!(report.contains("strategy=greedy"), "{report}");
    }

    #[test]
    fn global_packing_wins_the_greedy_trap_end_to_end() {
        // Greedy pairs lanes 0–1 (dragging in the `x` gather) and locks
        // out the clean 1–2 pair; the global planner takes 1–2 instead.
        const TRAP: &str = "kernel trap(i64* A, i64* B, i64* C, i64 x, i64 y, i64 i) {
                                A[i+0] = B[i+0] + x;
                                A[i+1] = B[i+1] + C[i+1];
                                A[i+2] = B[i+2] + C[i+2];
                                A[i+3] = y;
                            }";
        let run_trap = |extra: &[&str]| {
            let mut argv: Vec<String> = vec!["-".into()];
            argv.extend(extra.iter().map(|s| s.to_string()));
            run_on_source(&args::parse(&argv).unwrap(), TRAP).unwrap()
        };
        let report = run_trap(&["--packing", "global", "--emit", "report"]);
        assert!(report.contains("strategy=global -> vectorized"), "{report}");
        let greedy = run_trap(&["--emit", "report"]);
        assert!(!greedy.contains("strategy=global"), "{greedy}");
    }

    #[test]
    fn report_mode_is_incident_free_on_clean_input() {
        let out = run(&["--emit", "report", "--pipeline", "--paranoid"]);
        assert!(!out.contains("incident"), "{out}");
    }

    #[test]
    fn pass_times_flag_prints_timers() {
        let out = run(&["--pipeline", "--print-pass-times"]);
        assert!(out.contains("; pass times @k:"), "{out}");
        for pass in ["simplify", "fold", "cse", "dce", "vectorize", "analyses"] {
            assert!(out.contains(pass), "missing {pass} in:\n{out}");
        }
        assert!(out.contains("<4 x f64>"), "IR still printed:\n{out}");
    }

    #[test]
    fn stats_flag_prints_counters_and_cache() {
        let out = run(&["--pipeline", "--stats"]);
        assert!(out.contains("; statistics @k:"), "{out}");
        assert!(out.contains("vectorize - trees-vectorized"), "{out}");
        assert!(out.contains("analysis cache:"), "{out}");
        assert!(out.contains("hit(s)"), "{out}");
    }

    #[test]
    fn observability_works_without_pipeline() {
        // The default (vectorize-only) path runs under the pass manager
        // too, so the flags work without --pipeline.
        let out = run(&["--print-pass-times", "--stats"]);
        assert!(out.contains("; pass times @k:"), "{out}");
        assert!(out.contains("vectorize"), "{out}");
        assert!(out.contains("analysis cache:"), "{out}");
    }

    #[test]
    fn unknown_config_is_reported() {
        let a = args::parse(&["-".to_string(), "--config".into(), "GCC".into()]).unwrap();
        let err = run_on_source(&a, SRC).unwrap_err();
        assert!(err.to_string().contains("unknown configuration"), "{err}");
    }

    #[test]
    fn compile_errors_propagate() {
        let a = args::parse(&["-".to_string()]).unwrap();
        let err = run_on_source(&a, "kernel broken(").unwrap_err();
        assert!(err.to_string().contains("slc error"), "{err}");
    }

    #[test]
    fn error_kinds_separate_user_from_compiler() {
        // Malformed input is the user's fault: exit 3 territory.
        let a = args::parse(&["-".to_string()]).unwrap();
        let err = run_on_source(&a, "kernel broken(").unwrap_err();
        assert_eq!(err.class(), DriverErrorKind::Input);
        assert_eq!(err.exit_code(), 3);
        // An unknown preset is a bad invocation: exit 2 territory.
        let a = args::parse(&["-".to_string(), "--config".into(), "GCC".into()]).unwrap();
        let err = run_on_source(&a, SRC).unwrap_err();
        assert_eq!(err.class(), DriverErrorKind::Usage);
        assert_eq!(err.exit_code(), 2);
        let a = args::parse(&["-".to_string(), "--guard".into(), "rollback".into()]).unwrap();
        assert!(run_on_source(&a, SRC).is_ok());
    }
}
