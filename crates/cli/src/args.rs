//! Hand-rolled argument parsing for `lslpc` (no CLI dependency).

use std::fmt;

/// What the driver should print.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Emit {
    /// The optimized IR (default).
    #[default]
    Ir,
    /// The SLP graphs built for each seed group, with per-node costs.
    Graphs,
    /// A per-kernel vectorization report (attempts, costs, timings).
    Report,
    /// Graphviz DOT of the SLP graphs built for each seed group.
    Dot,
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Args {
    /// Input path (`-` for stdin).
    pub input: String,
    /// Configuration preset name (`O3`, `SLP-NR`, `SLP`, `LSLP`, ...).
    pub config: String,
    /// Target machine spec (`sse4.2`, `skylake-avx2`, `avx512`, `neon128`,
    /// optionally with `+feature` suffixes); `None` = the default target.
    pub target: Option<String>,
    /// Output selection.
    pub emit: Emit,
    /// Run the full `-O3`-style pipeline (scalar passes + vectorizer)
    /// instead of the vectorizer alone.
    pub pipeline: bool,
    /// Execute each kernel after compilation and print result checksums
    /// and simulated cycles.
    pub run: bool,
    /// Iterations for `--run`.
    pub iters: usize,
    /// With `--run`: print every instruction's value for the first
    /// iteration of each kernel.
    pub trace: bool,
    /// Second configuration for `--compare` (side-by-side costs).
    pub compare: Option<String>,
    /// Output file (stdout if absent).
    pub output: Option<String>,
    /// Pass-guard mode override (`off` | `rollback` | `strict`), or a
    /// rollback-strategy spelling (`snapshot` | `differential`); `None`
    /// keeps the preset default (rollback with delta-log undo).
    pub guard: Option<String>,
    /// Statement-packing strategy (`greedy` | `global`); `None` keeps the
    /// preset default (greedy, the paper's per-lane-cheapest commit).
    pub packing: Option<String>,
    /// Paranoid mode: differentially execute every committed transform
    /// against its pre-transform snapshot (slow).
    pub paranoid: bool,
    /// Print per-pass wall-clock timings after the main output.
    pub print_pass_times: bool,
    /// Print pass statistics and analysis-cache counters after the main
    /// output (LLVM `-stats` style).
    pub stats: bool,
    /// Run as the `lslpd` compile daemon instead of compiling one input
    /// (see `docs/SERVER.md`).
    pub serve: bool,
    /// Bind address for `--serve`.
    pub addr: String,
    /// Worker-thread count for `--serve` (`None` = CPU count).
    pub workers: Option<usize>,
    /// Persistent cache directory for `--serve` (`None` = memory-only).
    pub cache_dir: Option<String>,
    /// Fault-injection spec for `--serve`, validated at parse time
    /// (`None` = no injected faults).
    pub chaos: Option<String>,
    /// Run a fuzzing campaign of this many iterations instead of
    /// compiling one input (see `docs/FUZZING.md`).
    pub fuzz: Option<u64>,
    /// Campaign seed for `--fuzz`; equal seeds replay byte-identically.
    pub fuzz_seed: u64,
    /// Regression-corpus directory for `--fuzz` (seeds the corpus and
    /// receives minimized reproducers).
    pub fuzz_dir: String,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            input: String::new(),
            config: "LSLP".into(),
            target: None,
            emit: Emit::Ir,
            pipeline: false,
            run: false,
            iters: 16,
            trace: false,
            compare: None,
            output: None,
            guard: None,
            packing: None,
            paranoid: false,
            print_pass_times: false,
            stats: false,
            serve: false,
            addr: "127.0.0.1:7979".into(),
            workers: None,
            cache_dir: None,
            chaos: None,
            fuzz: None,
            fuzz_seed: 1,
            fuzz_dir: "fuzz/corpus/regressions".into(),
        }
    }
}

/// An argument-parsing failure (message for stderr).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// The usage text printed by `--help`.
pub const USAGE: &str = "\
lslpc — the LSLP auto-vectorizer driver

USAGE:
    lslpc <file.slc|-> [OPTIONS]

OPTIONS:
    --config <NAME>    O3 | SLP-NR | SLP | LSLP | LSLP-LA<n> | LSLP-Multi<n>
                       (default: LSLP)
    --target <SPEC>    sse4.2 | skylake-avx2 | avx512 | neon128, with
                       optional +feature suffixes, e.g. sse4.2+fast-div
                       (default: skylake-avx2; see docs/TARGETS.md)
    --emit <WHAT>      ir | graphs | report | dot   (default: ir)
    --pipeline         run the full scalar+vector pipeline (simplify, fold,
                       cse, dce around the vectorizer)
    --run              execute each kernel and print output checksums and
                       simulated cycles
    --iters <N>        iterations for --run (default: 16)
    --trace            with --run: print each instruction's value for the
                       first iteration
    --compare <NAME>   also compile under a second configuration and print
                       a cost comparison
    --guard <MODE>     off | rollback | strict — transactional pass guard
                       semantics (default: rollback). Every pass and seed
                       attempt runs in a transaction, panic-isolated and
                       verified; rollback restores the scalar code on any
                       incident, strict aborts compilation, off disables
                       the guard. Also accepts a rollback strategy:
                       snapshot (restore from a full clone; debug fallback)
                       or differential (delta rollback cross-checked
                       against a snapshot; panics on divergence)
    --packing <NAME>   greedy | global — statement-packing strategy
                       (default: greedy). greedy commits the cheapest
                       per-lane VF at each seed position (the paper's
                       algorithm); global plans whole pack sets per store
                       chain by DP + branch-and-bound and is never
                       costlier than greedy (see docs/PACKING.md)
    --paranoid         differentially execute every committed transform
                       against its pre-transform snapshot (slow)
    --print-pass-times print per-pass wall-clock timings (and total analysis
                       time) after the main output
    --stats            print pass statistics and analysis-cache hit/miss
                       counters after the main output
    -o <FILE>          write output to FILE instead of stdout
    --serve            run as the lslpd compile daemon (no input file; see
                       docs/SERVER.md for the protocol)
    --addr <H:P>       bind address for --serve (default: 127.0.0.1:7979)
    --workers <N>      worker threads for --serve (default: CPU count)
    --cache-dir <DIR>  with --serve: persist the result cache under DIR so a
                       restarted daemon starts warm (see docs/SERVER.md)
    --chaos <SPEC>     with --serve: seeded fault injection, e.g.
                       seed=7,panic=0.1,read-drop=0.05 (see docs/SERVER.md)
    --fuzz <N>         run an N-iteration fuzzing campaign (no input file;
                       differential/metamorphic oracles on every target —
                       or just --target if given; see docs/FUZZING.md).
                       Exits 1 if any oracle violation is found
    --fuzz-seed <N>    campaign seed for --fuzz; equal seeds replay
                       byte-identically (default: 1)
    --fuzz-dir <PATH>  regression-corpus directory for --fuzz: existing
                       reproducers seed the corpus, new minimized failures
                       are written back (default: fuzz/corpus/regressions)
    -h, --help         show this help

EXIT CODES:
    0  success          2  bad invocation (flags, unknown config)
    1  compiler failure 3  input error (SLC parse/type/verify)
";

/// Parse a raw argument vector (without the program name).
///
/// # Errors
///
/// Returns [`ArgError`] on unknown flags, missing values, or a missing
/// input path; the message is ready for stderr.
pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
    let mut args = Args::default();
    let mut input: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value_of = |flag: &str| {
            it.next().cloned().ok_or_else(|| ArgError(format!("{flag} requires a value")))
        };
        match a.as_str() {
            "-h" | "--help" => return Err(ArgError(USAGE.to_string())),
            "--config" => args.config = value_of("--config")?,
            "--target" => args.target = Some(value_of("--target")?),
            "--emit" => {
                args.emit = match value_of("--emit")?.as_str() {
                    "ir" => Emit::Ir,
                    "graphs" => Emit::Graphs,
                    "report" => Emit::Report,
                    "dot" => Emit::Dot,
                    other => return Err(ArgError(format!("unknown --emit mode `{other}`"))),
                }
            }
            "--pipeline" => args.pipeline = true,
            "--run" => args.run = true,
            "--trace" => args.trace = true,
            "--iters" => {
                args.iters = value_of("--iters")?
                    .parse()
                    .map_err(|e| ArgError(format!("bad --iters value: {e}")))?
            }
            "--compare" => args.compare = Some(value_of("--compare")?),
            "--guard" => {
                let mode = value_of("--guard")?;
                if !matches!(
                    mode.as_str(),
                    "off" | "rollback" | "strict" | "snapshot" | "differential"
                ) {
                    return Err(ArgError(format!("unknown --guard mode `{mode}`")));
                }
                args.guard = Some(mode);
            }
            "--packing" => {
                let strategy = value_of("--packing")?;
                if !matches!(strategy.as_str(), "greedy" | "global") {
                    return Err(ArgError(format!(
                        "unknown --packing strategy `{strategy}` (try greedy, global)"
                    )));
                }
                args.packing = Some(strategy);
            }
            "--paranoid" => args.paranoid = true,
            "--print-pass-times" => args.print_pass_times = true,
            "--stats" => args.stats = true,
            "--serve" => args.serve = true,
            "--addr" => args.addr = value_of("--addr")?,
            "--cache-dir" => args.cache_dir = Some(value_of("--cache-dir")?),
            "--chaos" => {
                let spec = value_of("--chaos")?;
                lslp_server::chaos::ChaosConfig::parse(&spec)
                    .map_err(|e| ArgError(format!("bad --chaos: {e}")))?;
                args.chaos = Some(spec);
            }
            "--workers" => {
                args.workers = Some(
                    value_of("--workers")?
                        .parse()
                        .map_err(|e| ArgError(format!("bad --workers value: {e}")))?,
                )
            }
            "--fuzz" => {
                args.fuzz = Some(
                    value_of("--fuzz")?
                        .parse()
                        .map_err(|e| ArgError(format!("bad --fuzz value: {e}")))?,
                )
            }
            "--fuzz-seed" => {
                args.fuzz_seed = value_of("--fuzz-seed")?
                    .parse()
                    .map_err(|e| ArgError(format!("bad --fuzz-seed value: {e}")))?
            }
            "--fuzz-dir" => args.fuzz_dir = value_of("--fuzz-dir")?,
            "-o" => args.output = Some(value_of("-o")?),
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(ArgError(format!("unknown option `{flag}` (see --help)")))
            }
            path => {
                if input.replace(path.to_string()).is_some() {
                    return Err(ArgError("more than one input file given".into()));
                }
            }
        }
    }
    if args.serve || args.fuzz.is_some() {
        // Neither the daemon nor a fuzzing campaign takes an input file;
        // a stray one is a usage error.
        if let Some(extra) = input {
            let mode = if args.serve { "--serve" } else { "--fuzz" };
            return Err(ArgError(format!("{mode} takes no input file (got `{extra}`)")));
        }
    } else {
        args.input = input.ok_or_else(|| ArgError(format!("no input file\n\n{USAGE}")))?;
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &[&str]) -> Result<Args, ArgError> {
        let v: Vec<String> = s.iter().map(|x| x.to_string()).collect();
        parse(&v)
    }

    #[test]
    fn minimal_invocation() {
        let a = p(&["kernel.slc"]).unwrap();
        assert_eq!(a.input, "kernel.slc");
        assert_eq!(a.config, "LSLP");
        assert_eq!(a.emit, Emit::Ir);
        assert!(!a.run);
    }

    #[test]
    fn full_invocation() {
        let a = p(&[
            "k.slc",
            "--config",
            "SLP",
            "--emit",
            "report",
            "--pipeline",
            "--run",
            "--iters",
            "32",
            "--compare",
            "LSLP",
            "-o",
            "out.txt",
        ])
        .unwrap();
        assert_eq!(a.config, "SLP");
        assert_eq!(a.emit, Emit::Report);
        assert!(a.pipeline && a.run);
        assert_eq!(a.iters, 32);
        assert_eq!(a.compare.as_deref(), Some("LSLP"));
        assert_eq!(a.output.as_deref(), Some("out.txt"));
    }

    #[test]
    fn stdin_dash_is_an_input() {
        let a = p(&["-"]).unwrap();
        assert_eq!(a.input, "-");
    }

    #[test]
    fn target_flag_parses() {
        let a = p(&["k.slc", "--target", "avx512+hw-gather"]).unwrap();
        assert_eq!(a.target.as_deref(), Some("avx512+hw-gather"));
        let d = p(&["k.slc"]).unwrap();
        assert_eq!(d.target, None, "default target is the library's choice");
        assert!(p(&["k.slc", "--target"]).unwrap_err().0.contains("requires a value"));
    }

    #[test]
    fn packing_flag_parses_and_validates() {
        let a = p(&["k.slc", "--packing", "global"]).unwrap();
        assert_eq!(a.packing.as_deref(), Some("global"));
        let d = p(&["k.slc"]).unwrap();
        assert_eq!(d.packing, None, "default packing is the preset's choice");
        let e = p(&["k.slc", "--packing", "exhaustive"]).unwrap_err();
        assert!(e.0.contains("try greedy, global"), "{e}");
        assert!(p(&["k.slc", "--packing"]).unwrap_err().0.contains("requires a value"));
    }

    #[test]
    fn guard_flags_parse() {
        let a = p(&["k.slc", "--guard", "strict", "--paranoid"]).unwrap();
        assert_eq!(a.guard.as_deref(), Some("strict"));
        assert!(a.paranoid);
        let d = p(&["k.slc"]).unwrap();
        assert_eq!(d.guard, None);
        assert!(!d.paranoid);
        assert!(p(&["k.slc", "--guard", "yolo"]).unwrap_err().0.contains("unknown --guard"));
        let s = p(&["k.slc", "--guard", "snapshot"]).unwrap();
        assert_eq!(s.guard.as_deref(), Some("snapshot"));
        let diff = p(&["k.slc", "--guard", "differential"]).unwrap();
        assert_eq!(diff.guard.as_deref(), Some("differential"));
    }

    #[test]
    fn observability_flags_parse() {
        let a = p(&["k.slc", "--print-pass-times", "--stats"]).unwrap();
        assert!(a.print_pass_times);
        assert!(a.stats);
        let d = p(&["k.slc"]).unwrap();
        assert!(!d.print_pass_times);
        assert!(!d.stats);
    }

    #[test]
    fn serve_flags_parse() {
        let a = p(&[
            "--serve",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "8",
            "--cache-dir",
            "/tmp/lslp",
            "--chaos",
            "seed=7,panic=0.1",
        ])
        .unwrap();
        assert!(a.serve);
        assert_eq!(a.addr, "0.0.0.0:9000");
        assert_eq!(a.workers, Some(8));
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/lslp"));
        assert_eq!(a.chaos.as_deref(), Some("seed=7,panic=0.1"));
        assert!(a.input.is_empty(), "daemon mode has no input file");
        assert!(p(&["--serve", "kernel.slc"]).unwrap_err().0.contains("takes no input"));
        assert!(p(&["--serve", "--workers", "many"]).unwrap_err().0.contains("bad --workers"));
        assert!(
            p(&["--serve", "--chaos", "panic=2.0"]).unwrap_err().0.contains("bad --chaos"),
            "chaos specs are validated at parse time"
        );
        let d = p(&["k.slc"]).unwrap();
        assert!(!d.serve);
        assert_eq!(d.workers, None);
        assert_eq!(d.cache_dir, None);
        assert_eq!(d.chaos, None);
    }

    #[test]
    fn fuzz_flags_parse() {
        let a = p(&["--fuzz", "2000", "--fuzz-seed", "7", "--fuzz-dir", "corpus"]).unwrap();
        assert_eq!(a.fuzz, Some(2000));
        assert_eq!(a.fuzz_seed, 7);
        assert_eq!(a.fuzz_dir, "corpus");
        assert!(a.input.is_empty(), "fuzz mode has no input file");
        let d = p(&["k.slc"]).unwrap();
        assert_eq!(d.fuzz, None);
        assert_eq!(d.fuzz_seed, 1);
        assert_eq!(d.fuzz_dir, "fuzz/corpus/regressions");
        assert!(p(&["--fuzz", "10", "kernel.slc"]).unwrap_err().0.contains("takes no input"));
        assert!(p(&["--fuzz", "lots"]).unwrap_err().0.contains("bad --fuzz"));
        assert!(p(&["--fuzz", "10", "--fuzz-seed", "x"])
            .unwrap_err()
            .0
            .contains("bad --fuzz-seed"));
    }

    #[test]
    fn errors_are_helpful() {
        assert!(p(&[]).unwrap_err().0.contains("no input file"));
        assert!(p(&["a", "b"]).unwrap_err().0.contains("more than one"));
        assert!(p(&["a", "--emit", "svg"]).unwrap_err().0.contains("unknown --emit"));
        assert!(p(&["a", "--bogus"]).unwrap_err().0.contains("unknown option"));
        assert!(p(&["a", "--iters"]).unwrap_err().0.contains("requires a value"));
        assert!(p(&["--help"]).unwrap_err().0.contains("USAGE"));
    }
}
