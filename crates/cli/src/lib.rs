//! # lslp-cli
//!
//! `lslpc`: the command-line driver for the LSLP auto-vectorizer. Compiles
//! SLC kernel files, runs the configured vectorizer (or the full
//! `-O3`-style pipeline), and emits optimized IR, SLP-graph dumps, or
//! vectorization reports; `--run` additionally executes the kernels on the
//! interpreter and prints simulated cycle counts and memory checksums.
//!
//! ```text
//! lslpc kernel.slc --config LSLP --emit report
//! lslpc kernel.slc --compare SLP --run --iters 64
//! ```

#![warn(missing_docs)]

pub mod args;
pub mod driver;
pub mod fuzz;

pub use args::{parse, Args, Emit};
pub use driver::{run_on_source, DriverError, DriverErrorKind};
pub use fuzz::run_fuzz;
