//! Deterministic execution harness: run a function on synthesized inputs
//! and capture the full memory state for comparison.
//!
//! Every oracle leg of one check runs with the same `salt`, so all legs
//! see identical initial memory and identical `i`. Integer comparisons are
//! byte-exact; float comparisons optionally allow a small relative
//! tolerance (vectorization may reassociate under `fast_math`, which is
//! not bit-exact for floats).

use lslp_interp::{run_function, Memory, Value};
use lslp_ir::Function;

use crate::plan::Plan;

/// Relative tolerance for reassociated float results.
pub const FLOAT_TOLERANCE: f64 = 1e-8;

/// Captured memory state after one execution: one vector per buffer, in
/// parameter order (`OUT`, `IN0`, ...).
pub enum Captured {
    /// `i64` programs (byte-exact comparison).
    Int(Vec<Vec<i64>>),
    /// `f64` programs (tolerance comparison available).
    Float(Vec<Vec<f64>>),
}

/// Deterministic initial value of element `k` of buffer `arr`
/// (`0` = `OUT`, `1..` = `IN{arr-1}`) for an integer program.
pub fn init_int(arr: usize, k: usize, salt: u64) -> i64 {
    let j = arr as u64;
    let k = k as u64;
    let mix = j
        .wrapping_mul(2_654_435_761)
        .wrapping_add(k.wrapping_mul(97))
        .wrapping_add(salt.wrapping_mul(131));
    (mix % 1021) as i64 - 300
}

/// Deterministic initial value for a float program: finite, positive, and
/// bounded (`0.25..=4.1875`), so products over bounded expression trees
/// can never overflow or produce NaN.
pub fn init_float(arr: usize, k: usize, salt: u64) -> f64 {
    let j = arr as u64;
    let k = k as u64;
    let mix =
        j.wrapping_mul(37).wrapping_add(k.wrapping_mul(11)).wrapping_add(salt.wrapping_mul(13));
    0.25 + (mix % 64) as f64 / 16.0
}

fn buf_name(arr: usize) -> String {
    if arr == 0 {
        "OUT".to_string()
    } else {
        format!("IN{}", arr - 1)
    }
}

/// Run `f` with the plan's parameter layout on salted inputs and capture
/// every buffer afterwards.
///
/// The index parameter `i` is `salt % 3` (buffers are padded to match), so
/// nonzero base offsets are exercised too.
///
/// # Errors
///
/// Any interpreter fault (out-of-bounds access, type error) is returned as
/// a message — on a vectorized leg that is itself an oracle violation.
pub fn run_capture(
    f: &Function,
    plan: &Plan,
    min_len: usize,
    salt: u64,
) -> Result<Captured, String> {
    let ioff = (salt % 3) as usize;
    let len = min_len + ioff;
    let n_bufs = plan.arrays + 1;
    let mut mem = Memory::new();
    let mut params: Vec<Value> = Vec::with_capacity(n_bufs + 1);
    for a in 0..n_bufs {
        let name = buf_name(a);
        if plan.int {
            let init: Vec<i64> = (0..len).map(|k| init_int(a, k, salt)).collect();
            params.push(mem.alloc_i64(&name, &init));
        } else {
            let init: Vec<f64> = (0..len).map(|k| init_float(a, k, salt)).collect();
            params.push(mem.alloc_f64(&name, &init));
        }
    }
    params.push(Value::Int(ioff as i64));
    run_function(f, &params, &mut mem).map_err(|e| format!("execution failed: {e}"))?;
    if plan.int {
        let bufs = (0..n_bufs)
            .map(|a| (0..len).map(|k| mem.read_i64(&buf_name(a), k).unwrap()).collect())
            .collect();
        Ok(Captured::Int(bufs))
    } else {
        let bufs = (0..n_bufs)
            .map(|a| (0..len).map(|k| mem.read_f64(&buf_name(a), k).unwrap()).collect())
            .collect();
        Ok(Captured::Float(bufs))
    }
}

/// Compare two captures. Integers are always exact; floats are bit-exact
/// when `exact` and within [`FLOAT_TOLERANCE`] (relative) otherwise.
/// Returns a description of the first mismatch, or `None` when equal.
pub fn compare(a: &Captured, b: &Captured, exact: bool) -> Option<String> {
    match (a, b) {
        (Captured::Int(xs), Captured::Int(ys)) => {
            for (bi, (x, y)) in xs.iter().zip(ys).enumerate() {
                for (k, (&u, &v)) in x.iter().zip(y).enumerate() {
                    if u != v {
                        return Some(format!("{}[{k}]: {u} != {v}", buf_name(bi)));
                    }
                }
            }
            None
        }
        (Captured::Float(xs), Captured::Float(ys)) => {
            for (bi, (x, y)) in xs.iter().zip(ys).enumerate() {
                for (k, (&u, &v)) in x.iter().zip(y).enumerate() {
                    let ok = if exact {
                        u.to_bits() == v.to_bits()
                    } else if u == v || (u.is_nan() && v.is_nan()) {
                        true
                    } else {
                        (u - v).abs() <= FLOAT_TOLERANCE * u.abs().max(v.abs()).max(1.0)
                    };
                    if !ok {
                        return Some(format!("{}[{k}]: {u:?} != {v:?}", buf_name(bi)));
                    }
                }
            }
            None
        }
        _ => Some("capture type mismatch (int vs float)".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_values_are_deterministic_and_bounded() {
        for arr in 0..4 {
            for k in 0..64 {
                for salt in 0..5u64 {
                    assert_eq!(init_int(arr, k, salt), init_int(arr, k, salt));
                    let f = init_float(arr, k, salt);
                    assert!((0.25..=4.1875).contains(&f));
                    assert!(init_int(arr, k, salt).abs() <= 720);
                }
            }
        }
    }

    #[test]
    fn capture_roundtrip_on_identity_program() {
        let plan = Plan::decode(&[1]); // int, 1 array, 1 group of 2 lanes
        let p = crate::build::build(&plan).unwrap();
        let a = run_capture(&p.function, &plan, p.min_len, 0).unwrap();
        let b = run_capture(&p.function, &plan, p.min_len, 0).unwrap();
        assert!(compare(&a, &b, true).is_none());
        let c = run_capture(&p.function, &plan, p.min_len, 1).unwrap();
        assert!(compare(&a, &c, true).is_some(), "different salts must differ");
    }
}
