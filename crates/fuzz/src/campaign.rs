//! The coverage-guided campaign loop: generate, check, keep what's novel,
//! shrink what fails.
//!
//! The loop is deterministic for a fixed seed and corpus directory: inputs
//! come from a seeded RNG and the sorted regression corpus, oracle salts
//! derive from the input bytes (never from the campaign seed), and the
//! summary contains no wall-clock data — two runs with the same seed
//! produce byte-identical output.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use lslp::VectorizerConfig;
use lslp_target::TargetSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::build;
use crate::oracle::{self, CheckOutcome, OracleKind, Violation};
use crate::plan::Plan;

/// 64-bit FNV-1a: stable input fingerprints for salts and file names.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Campaign parameters.
pub struct CampaignConfig {
    /// Iteration budget.
    pub iters: u64,
    /// RNG seed; equal seeds replay the identical campaign.
    pub seed: u64,
    /// Targets every program is checked on.
    pub targets: Vec<TargetSpec>,
    /// Baseline vectorizer configuration.
    pub base: VectorizerConfig,
    /// Regression corpus directory: existing `*.case` files seed the
    /// corpus, and minimized reproducers are written back here.
    pub corpus_dir: Option<PathBuf>,
    /// Stop minimizing/recording after this many distinct failures.
    pub max_failures: usize,
    /// Shrinker budget: candidate evaluations per failure.
    pub shrink_budget: usize,
    /// Optional wall-clock cutoff (bench/CI smoke use only — budgeted runs
    /// are not byte-reproducible).
    pub time_budget: Option<Duration>,
}

impl CampaignConfig {
    /// Defaults: all four targets, the LSLP baseline, no corpus directory.
    pub fn new(iters: u64, seed: u64) -> CampaignConfig {
        CampaignConfig {
            iters,
            seed,
            targets: oracle::default_targets(),
            base: oracle::base_config(),
            corpus_dir: None,
            max_failures: 5,
            shrink_budget: 200,
            time_budget: None,
        }
    }
}

/// One recorded (minimized) failure.
pub struct Failure {
    /// Violated oracle names, sorted and deduplicated (`"build"` for
    /// generator/frontend failures).
    pub oracles: Vec<String>,
    /// First violation's description.
    pub detail: String,
    /// Canonical bytes of the minimized reproducer.
    pub bytes: Vec<u8>,
    /// Where the reproducer was written, when a corpus dir is configured.
    pub path: Option<PathBuf>,
}

/// Campaign summary.
#[derive(Default)]
pub struct CampaignReport {
    /// Iterations executed (may stop early on a time budget).
    pub iters_run: u64,
    /// Programs that built and ran the oracles.
    pub programs_built: u64,
    /// Trees vectorized, summed over programs and targets.
    pub trees_vectorized: u64,
    /// Distinct coverage-signature keys reached.
    pub signatures: usize,
    /// Corpus entries at exit (seeded + kept-as-interesting).
    pub corpus_entries: usize,
    /// Recorded failures (bounded by `max_failures`).
    pub failures: Vec<Failure>,
    /// Wall-clock time (bench reporting only; never printed by `lslpc`).
    pub elapsed: Duration,
}

impl CampaignReport {
    /// Deterministic summary lines (no timing), as `lslpc --fuzz` prints
    /// them.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = vec![
            format!("fuzz: {} iterations, {} programs", self.iters_run, self.programs_built),
            format!(
                "fuzz: {} coverage signatures, {} corpus entries, {} trees vectorized",
                self.signatures, self.corpus_entries, self.trees_vectorized
            ),
            format!("fuzz: {} failures", self.failures.len()),
        ];
        for f in &self.failures {
            let loc = f.path.as_ref().map_or_else(|| hex(&f.bytes), |p| p.display().to_string());
            lines.push(format!("fuzz: FAIL [{}] {} ({loc})", f.oracles.join(","), f.detail));
        }
        lines
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Decode, build and run every oracle on one corpus entry. The salt is
/// derived from the canonical bytes, so replay is machine-independent.
pub fn check_bytes(
    bytes: &[u8],
    base: &VectorizerConfig,
    targets: &[TargetSpec],
) -> (Plan, CheckOutcome) {
    let plan = Plan::decode(bytes);
    let salt = fnv64(&plan.encode());
    match build::build(&plan) {
        Ok(p) => {
            let outcome = oracle::check_program(&p, base, targets, salt);
            (plan, outcome)
        }
        Err(e) => {
            let mut out = CheckOutcome::default();
            out.violations.push(Violation {
                oracle: OracleKind::Differential,
                target: "build".to_string(),
                detail: e,
            });
            (plan, out)
        }
    }
}

/// Replay one reproducer file through all five oracles.
///
/// # Errors
///
/// Returns a message when the file cannot be read.
pub fn replay_file(
    path: &Path,
    base: &VectorizerConfig,
    targets: &[TargetSpec],
) -> Result<(Plan, CheckOutcome), String> {
    let bytes = fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(check_bytes(&bytes, base, targets))
}

/// The violated oracle names of a plan, sorted and deduplicated; empty
/// when the plan passes. `"build"` when it cannot even build.
fn violated_oracles(
    plan: &Plan,
    base: &VectorizerConfig,
    targets: &[TargetSpec],
) -> BTreeSet<String> {
    let salt = fnv64(&plan.encode());
    match build::build(plan) {
        Ok(p) => oracle::check_program(&p, base, targets, salt)
            .violations
            .iter()
            .map(|v| v.oracle.name().to_string())
            .collect(),
        Err(_) => std::iter::once("build".to_string()).collect(),
    }
}

/// Greedy structural shrinking: repeatedly adopt the first smaller plan
/// variant that still violates one of the originally violated oracles.
pub fn shrink(
    plan: &Plan,
    original: &BTreeSet<String>,
    base: &VectorizerConfig,
    targets: &[TargetSpec],
    budget: usize,
) -> Plan {
    let mut best = plan.clone();
    let mut spent = 0;
    'outer: while spent < budget {
        for cand in best.shrink_candidates() {
            if spent >= budget {
                break 'outer;
            }
            spent += 1;
            let kinds = violated_oracles(&cand, base, targets);
            if kinds.iter().any(|k| original.contains(k)) {
                best = cand;
                continue 'outer;
            }
        }
        break;
    }
    best
}

fn next_input(rng: &mut StdRng, corpus: &[Vec<u8>]) -> Vec<u8> {
    if corpus.is_empty() || rng.gen_bool(0.5) {
        let len = rng.gen_range(16usize..112);
        return (0..len).map(|_| rng.next_u64() as u8).collect();
    }
    let mut b = corpus[rng.gen_range(0..corpus.len())].clone();
    for _ in 0..rng.gen_range(1usize..4) {
        match rng.gen_range(0u8..4) {
            0 if !b.is_empty() => {
                let i = rng.gen_range(0..b.len());
                b[i] = rng.next_u64() as u8;
            }
            1 => b.push(rng.next_u64() as u8),
            2 if b.len() > 1 => {
                let keep = rng.gen_range(1..b.len());
                b.truncate(keep);
            }
            _ if !b.is_empty() => {
                let i = rng.gen_range(0..b.len());
                b[i] ^= 1 << rng.gen_range(0u8..8);
            }
            _ => b.push(rng.next_u64() as u8),
        }
    }
    b
}

/// Load the seed corpus: every `*.case` file under `dir`, in sorted file
/// order, canonicalized through the codec.
fn load_corpus(dir: &Path) -> Vec<Vec<u8>> {
    let Ok(entries) = fs::read_dir(dir) else { return Vec::new() };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "case"))
        .collect();
    paths.sort();
    paths
        .iter()
        .filter_map(|p| fs::read(p).ok())
        .map(|bytes| Plan::decode(&bytes).encode())
        .collect()
}

fn write_reproducer(
    dir: &Path,
    oracles: &BTreeSet<String>,
    plan: &Plan,
    violations: &[Violation],
) -> Option<PathBuf> {
    fs::create_dir_all(dir).ok()?;
    let bytes = plan.encode();
    let first = oracles.iter().next().map_or("unknown", String::as_str);
    let stem = format!("{first}-{:016x}", fnv64(&bytes));
    let case = dir.join(format!("{stem}.case"));
    fs::write(&case, &bytes).ok()?;
    let mut txt = format!("bytes: {}\nplan: {plan:#?}\n", hex(&bytes));
    if let Ok(p) = build::build(plan) {
        if let Some(slc) = &p.slc {
            txt.push_str(&format!("--- SLC ---\n{slc}"));
        }
        txt.push_str(&format!("--- IR ---\n{}", lslp_ir::print_function(&p.function)));
    }
    txt.push_str("--- violations ---\n");
    for v in violations {
        txt.push_str(&format!("[{}] {}: {}\n", v.oracle.name(), v.target, v.detail));
    }
    let _ = fs::write(dir.join(format!("{stem}.txt")), txt);
    Some(case)
}

/// Run the campaign.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut corpus: Vec<Vec<u8>> = cfg.corpus_dir.as_deref().map(load_corpus).unwrap_or_default();
    let mut seen = BTreeSet::new();
    let mut failed_inputs: BTreeSet<Vec<u8>> = BTreeSet::new();
    let mut report = CampaignReport::default();

    for _ in 0..cfg.iters {
        if cfg.time_budget.is_some_and(|b| start.elapsed() >= b) {
            break;
        }
        report.iters_run += 1;
        let bytes = next_input(&mut rng, &corpus);
        let plan = Plan::decode(&bytes);
        let canonical = plan.encode();
        let (_, outcome) = check_bytes(&canonical, &cfg.base, &cfg.targets);
        let built = outcome.violations.first().is_none_or(|v| v.target != "build");
        if built {
            report.programs_built += 1;
        }
        report.trees_vectorized += outcome.trees_vectorized;
        let mut novel = false;
        for k in &outcome.signature {
            if seen.insert(k.clone()) {
                novel = true;
            }
        }
        if novel {
            corpus.push(canonical.clone());
        }
        if !outcome.violations.is_empty()
            && report.failures.len() < cfg.max_failures
            && failed_inputs.insert(canonical.clone())
        {
            let kinds: BTreeSet<String> = outcome
                .violations
                .iter()
                .map(|v| {
                    if v.target == "build" {
                        "build".to_string()
                    } else {
                        v.oracle.name().to_string()
                    }
                })
                .collect();
            let min = shrink(&plan, &kinds, &cfg.base, &cfg.targets, cfg.shrink_budget);
            let (_, min_outcome) = check_bytes(&min.encode(), &cfg.base, &cfg.targets);
            let detail = min_outcome
                .violations
                .first()
                .or(outcome.violations.first())
                .map_or_else(String::new, |v| format!("{}: {}", v.target, v.detail));
            let path = cfg
                .corpus_dir
                .as_deref()
                .and_then(|d| write_reproducer(d, &kinds, &min, &min_outcome.violations));
            report.failures.push(Failure {
                oracles: kinds.into_iter().collect(),
                detail,
                bytes: min.encode(),
                path,
            });
        }
    }
    report.signatures = seen.len();
    report.corpus_entries = corpus.len();
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic mini-campaign: clean stack, so zero failures; and
    /// two runs with the same seed must produce identical summaries.
    #[test]
    fn mini_campaign_is_clean_and_reproducible() {
        let cfg = CampaignConfig::new(30, 1);
        let a = run_campaign(&cfg);
        assert_eq!(a.failures.len(), 0, "clean stack must have no violations: {:?}", {
            a.failures.iter().map(|f| f.detail.clone()).collect::<Vec<_>>()
        });
        assert!(a.signatures > 0, "campaign must reach some coverage");
        assert!(a.programs_built > 0);
        let b = run_campaign(&cfg);
        assert_eq!(a.summary_lines(), b.summary_lines());
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"lslp"), fnv64(b"lslp"));
        assert_ne!(fnv64(b"lslp"), fnv64(b"lslq"));
    }

    #[test]
    fn shrinker_minimizes_a_planted_failure() {
        // "Failure" stand-in: any plan with more than one group counts as
        // failing. The shrinker must reach a single-group plan.
        let plan = Plan::decode(&[3, 2, 2, 4, 1, 3, 1, 2, 1, 0, 0, 0, 5, 2, 0, 9, 9, 2, 1, 4]);
        assert!(plan.groups.len() > 1);
        let mut best = plan;
        'outer: loop {
            for cand in best.shrink_candidates() {
                if cand.groups.len() > 1 {
                    best = cand;
                    continue 'outer;
                }
            }
            break;
        }
        assert_eq!(best.groups.len(), 2, "greedy loop stops when no candidate keeps >1 groups");
    }
}
