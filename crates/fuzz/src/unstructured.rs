//! A total byte-stream decoder in the style of `arbitrary::Unstructured`.
//!
//! Every read is *total*: when the stream runs dry the decoder returns
//! zeros instead of failing. This gives the generator two properties the
//! campaign relies on:
//!
//! * **any byte string decodes** to a well-formed [`crate::plan::Plan`] —
//!   mutation can never produce a rejected input, so no fuzzing time is
//!   wasted on invalid corpus entries;
//! * **decoding is a pure function of the bytes** — replaying a corpus
//!   entry reproduces the exact same program on any machine.

/// A cursor over raw fuzz bytes. Reads past the end yield `0`.
pub struct Unstructured<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Unstructured<'a> {
    /// Wrap a byte slice.
    pub fn new(data: &'a [u8]) -> Unstructured<'a> {
        Unstructured { data, pos: 0 }
    }

    /// Next byte, or `0` once the stream is exhausted.
    pub fn byte(&mut self) -> u8 {
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Next byte reduced into `lo..=hi` (inclusive; `lo <= hi` required).
    pub fn int_in(&mut self, lo: u8, hi: u8) -> u8 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u16 + 1;
        lo + (self.byte() as u16 % span) as u8
    }

    /// Number of bytes consumed so far (including virtual zero reads).
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhausted_stream_reads_zero() {
        let mut u = Unstructured::new(&[7]);
        assert_eq!(u.byte(), 7);
        assert_eq!(u.byte(), 0);
        assert_eq!(u.byte(), 0);
        assert_eq!(u.consumed(), 3);
    }

    #[test]
    fn int_in_stays_in_range() {
        let data: Vec<u8> = (0..=255).collect();
        let mut u = Unstructured::new(&data);
        for _ in 0..=255 {
            let v = u.int_in(2, 6);
            assert!((2..=6).contains(&v));
        }
    }
}
