//! # lslp-fuzz
//!
//! Coverage-guided differential and metamorphic testing for the whole
//! LSLP compile stack.
//!
//! The subsystem has four layers:
//!
//! * [`plan`] — a typed, seed-deterministic program description decoded
//!   *totally* from raw bytes (any corpus entry replays exactly) with a
//!   canonical re-encoding and structural shrinking; plans optionally
//!   carry control flow ([`plan::ControlPlan`]: counted loops with
//!   2–8 iterations, branch diamonds, or both), putting if-conversion
//!   and unroll-and-SLP inside the fuzzed perimeter;
//! * [`build`] — materializes a plan as one function (straight-line, or
//!   a small CFG for control plans), either by direct IR construction or
//!   by compiling rendered SLC source (so the frontend is fuzzed too);
//! * [`oracle`] — five correctness oracles run on every program and
//!   every target: differential execution, metamorphic commutation,
//!   cross-VF consistency, pipeline idempotence, and packing quality;
//! * [`campaign`] — the feedback loop: cheap coverage signatures
//!   ([`coverage`]) keep interesting inputs, failures shrink to minimal
//!   reproducers in `fuzz/corpus/regressions/`.
//!
//! Entry points: `lslpc --fuzz <iters> --fuzz-seed N` (CLI), the
//! `fuzz_campaign` bench bin (throughput), and the `fuzz_regressions`
//! tier-1 test (replays every stored reproducer).
//!
//! ```
//! use lslp_fuzz::campaign::{run_campaign, CampaignConfig};
//!
//! let report = run_campaign(&CampaignConfig::new(5, 1));
//! assert_eq!(report.failures.len(), 0);
//! assert!(report.signatures > 0);
//! ```

#![warn(missing_docs)]

pub mod build;
pub mod campaign;
pub mod coverage;
pub mod exec;
pub mod oracle;
pub mod plan;
pub mod unstructured;

pub use build::{build, Program};
pub use campaign::{
    check_bytes, fnv64, replay_file, run_campaign, CampaignConfig, CampaignReport, Failure,
};
pub use oracle::{
    base_config, check_program, default_targets, CheckOutcome, OracleKind, Violation,
};
pub use plan::{ControlPlan, GroupPlan, Plan, ReductionPlan, Shape};
pub use unstructured::Unstructured;
