//! The five correctness oracles, run on every generated program.
//!
//! 1. **Differential execution** — the vectorized function must compute
//!    the same memory state as the scalar original, on every target and
//!    under every guard mode (byte-exact for integers, within
//!    [`crate::exec::FLOAT_TOLERANCE`] for reassociated floats).
//! 2. **Metamorphic commutation** — randomly permuting the operands of
//!    commutative instructions must not change the observable output
//!    (byte-identical for integers), and for programs built purely from
//!    commutative operations it must never make the vectorizer give up
//!    entirely — recovering such reorderings is the claim the paper's
//!    look-ahead makes. Milder cost-class drift (tree count or VF
//!    multiset changing) is recorded as coverage, not failure:
//!    campaigns showed the heuristic legitimately repacks near scoring
//!    ties (one VF4 tree ↔ two VF2 trees; constant operands tie the
//!    look-ahead scores) with output still correct.
//! 3. **Cross-VF consistency** — within one exploration round the
//!    committed vector factor must be per-lane no more expensive than any
//!    other profitable factor the explorer priced.
//! 4. **Pipeline idempotence** — printing the vectorized function,
//!    re-parsing it, and recompiling it with a clean configuration must be
//!    a fixpoint (the restart loop already compiles to one).
//! 5. **Packing quality** — recompiling with the `global` packing
//!    strategy must never produce a costlier artifact than `greedy`
//!    (by [`lslp::function_cost`] on the committed IR), and the
//!    globally-packed artifact must itself match the scalar reference.
//!    The global portfolio falls back to greedy whenever its trial plan
//!    does not strictly win, so any regression here is a planner bug.

use lslp::{
    function_cost, try_run_pipeline, try_vectorize_function, GuardMode, PackingStrategy, Sabotage,
    VectorizeReport, VectorizerConfig,
};
use lslp_ir::{parse_function, print_function, Function};
use lslp_target::TargetSpec;
use rand::{Rng, SeedableRng};

use crate::build::Program;
use crate::coverage;
use crate::exec::{compare, run_capture, Captured};

/// Guard modes the differential oracle sweeps.
pub const GUARD_MODES: [GuardMode; 3] = [GuardMode::Off, GuardMode::Rollback, GuardMode::Strict];

/// Which oracle flagged a violation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleKind {
    /// Scalar-vs-vectorized differential execution.
    Differential,
    /// Metamorphic commutation (output or cost class changed).
    Metamorphic,
    /// VF-exploration winner costed worse than a priced alternative.
    CrossVf,
    /// Recompiling the emitted IR was not a fixpoint.
    Idempotence,
    /// Global packing produced a costlier (or incorrect) artifact than
    /// greedy.
    PackingQuality,
}

impl OracleKind {
    /// Stable lowercase name (used in reproducer file names).
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Differential => "differential",
            OracleKind::Metamorphic => "metamorphic",
            OracleKind::CrossVf => "crossvf",
            OracleKind::Idempotence => "idempotence",
            OracleKind::PackingQuality => "packing",
        }
    }
}

/// One oracle violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// Target the program was compiled for.
    pub target: String,
    /// Human-readable description.
    pub detail: String,
}

/// The result of checking one program against every oracle on every
/// target.
#[derive(Default)]
pub struct CheckOutcome {
    /// All violations found (empty = the program passed).
    pub violations: Vec<Violation>,
    /// Coverage-signature keys this program reached.
    pub signature: Vec<String>,
    /// Trees vectorized across all targets (campaign statistic).
    pub trees_vectorized: u64,
}

/// The campaign's baseline configuration: the paper's headline LSLP
/// algorithm with the default rollback guard.
pub fn base_config() -> VectorizerConfig {
    VectorizerConfig::lslp()
}

/// The four built-in targets, in registry order.
pub fn default_targets() -> Vec<TargetSpec> {
    vec![
        TargetSpec::sse42(),
        TargetSpec::skylake_avx2(),
        TargetSpec::avx512(),
        TargetSpec::neon128(),
    ]
}

/// Swap the operands of each commutative *data* instruction with
/// probability 1/2 (seeded by `salt`, so the permutation replays).
///
/// Address arithmetic (anything feeding a `gep` index) is left alone: the
/// paper's commutation claim is about reordering data-level packs, and the
/// consecutive-load analysis canonicalizes `base + offset` syntactically —
/// permuting it would (legitimately) change which loads look adjacent, not
/// test the vectorizer.
pub fn permute_commutative(f: &Function, salt: u64) -> Function {
    let mut g = f.clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(salt ^ 0xc0ff_ee00_dead_beef);
    let uses = g.use_map();
    let body: Vec<_> = g.body().to_vec();
    for v in body {
        let feeds_gep = uses.uses(v).iter().any(|u| g.opcode(u.user) == Some(lslp_ir::Opcode::Gep));
        let swap =
            !feeds_gep && g.opcode(v).is_some_and(|op| op.is_commutative()) && rng.gen_bool(0.5);
        if swap {
            if let Some(inst) = g.inst_mut(v) {
                inst.args.swap(0, 1);
            }
        }
    }
    g
}

/// The committed cost class of a report: how many trees vectorized, at
/// which vector factors (sorted multiset).
fn cost_class(rep: &VectorizeReport) -> (usize, Vec<usize>) {
    let mut vfs: Vec<usize> = rep.attempts.iter().filter(|a| a.vectorized).map(|a| a.vf).collect();
    vfs.sort_unstable();
    (rep.trees_vectorized, vfs)
}

/// Run every oracle on `p` for each target. `salt` seeds input memory and
/// the metamorphic permutation; equal salts replay bit-identically.
pub fn check_program(
    p: &Program,
    base: &VectorizerConfig,
    targets: &[TargetSpec],
    salt: u64,
) -> CheckOutcome {
    let mut out = CheckOutcome::default();
    // Control-flow plans are their own coverage dimension: keeping one of
    // each shape in the corpus guarantees the if-conversion and unroll
    // passes stay exercised by mutation.
    match p.plan.control {
        crate::plan::ControlPlan::None => {}
        crate::plan::ControlPlan::Loop { branchy, .. } => {
            out.signature.push(if branchy { "plan:loop-branchy" } else { "plan:loop" }.to_string())
        }
        crate::plan::ControlPlan::IfDiamond => out.signature.push("plan:if-diamond".to_string()),
    }
    let scalar = match run_capture(&p.function, &p.plan, p.min_len, salt) {
        Ok(c) => c,
        Err(e) => {
            // A well-formed generated program must execute: failure here is
            // a generator or interpreter bug and still worth minimizing.
            out.violations.push(Violation {
                oracle: OracleKind::Differential,
                target: "scalar".to_string(),
                detail: format!("scalar reference {e}"),
            });
            return out;
        }
    };
    let exact = p.plan.int;
    for tm in targets {
        check_on_target(p, base, tm, salt, &scalar, exact, &mut out);
    }
    out
}

#[allow(clippy::too_many_lines)]
fn check_on_target(
    p: &Program,
    base: &VectorizerConfig,
    tm: &TargetSpec,
    salt: u64,
    scalar: &Captured,
    exact: bool,
    out: &mut CheckOutcome,
) {
    let target = tm.name.to_string();
    let mut violate = |out: &mut CheckOutcome, oracle: OracleKind, detail: String| {
        out.violations.push(Violation { oracle, target: target.clone(), detail });
    };
    let cfg = VectorizerConfig { guard: GuardMode::Rollback, ..base.clone() };

    // Vectorize-only compile: the artifact the metamorphic, cross-VF and
    // idempotence oracles all reason about.
    let mut f_vo = p.function.clone();
    let rep = match try_vectorize_function(&mut f_vo, &cfg, tm) {
        Ok(rep) => rep,
        Err(e) => {
            violate(out, OracleKind::Differential, format!("rollback-mode abort: {e}"));
            return;
        }
    };
    out.trees_vectorized += rep.trees_vectorized as u64;
    out.signature.extend(coverage::report_signature(&target, &rep));
    for inc in &rep.incidents {
        violate(out, OracleKind::Differential, format!("guard incident: {inc:?}"));
    }

    // Oracle 1a: the vectorize-only artifact against the scalar reference.
    match run_capture(&f_vo, &p.plan, p.min_len, salt) {
        Ok(vec_cap) => {
            if let Some(d) = compare(scalar, &vec_cap, exact) {
                violate(out, OracleKind::Differential, format!("vectorized output diverged: {d}"));
            }
            // Oracle 2: metamorphic commutation.
            check_metamorphic(p, &cfg, tm, salt, scalar, &vec_cap, exact, &rep, out, &mut violate);
        }
        Err(e) => violate(out, OracleKind::Differential, format!("vectorized leg {e}")),
    }

    // Oracle 1b: the full pipeline under every guard mode.
    for guard in GUARD_MODES {
        let mut f = p.function.clone();
        let gcfg = VectorizerConfig { guard, ..base.clone() };
        match try_run_pipeline(&mut f, &gcfg, tm) {
            Ok(prep) => {
                for inc in prep.incidents.iter().chain(&prep.vectorize.incidents) {
                    violate(
                        out,
                        OracleKind::Differential,
                        format!("pipeline incident under {guard:?}: {inc:?}"),
                    );
                }
                match run_capture(&f, &p.plan, p.min_len, salt) {
                    Ok(cap) => {
                        if let Some(d) = compare(scalar, &cap, exact) {
                            violate(
                                out,
                                OracleKind::Differential,
                                format!("pipeline output diverged under {guard:?}: {d}"),
                            );
                        }
                    }
                    Err(e) => violate(
                        out,
                        OracleKind::Differential,
                        format!("pipeline leg under {guard:?} {e}"),
                    ),
                }
                if guard == GuardMode::Rollback {
                    out.signature.extend(coverage::stats_signature(&target, &prep.stats));
                }
            }
            Err(e) => {
                violate(out, OracleKind::Differential, format!("abort under {guard:?}: {e}"));
            }
        }
    }

    // Oracle 3: cross-VF consistency (needs a clean exploration record).
    if rep.incidents.is_empty() {
        check_cross_vf(&rep, cfg.cost_threshold, out, &mut violate);
    }

    // Oracle 4: pipeline idempotence.
    check_idempotence(&f_vo, base, tm, out, &mut violate);

    // Oracle 5: packing quality (global vs the greedy artifact above).
    check_packing_quality(p, &cfg, tm, salt, scalar, exact, &f_vo, out, &mut violate);
}

/// Oracle 5: recompile with [`PackingStrategy::Global`] and hold the
/// artifact to two invariants — never costlier than the greedy artifact
/// (the portfolio's greedy floor), and still differentially correct
/// against the scalar reference. A strict win is recorded as coverage.
#[allow(clippy::too_many_arguments)]
fn check_packing_quality(
    p: &Program,
    cfg: &VectorizerConfig,
    tm: &TargetSpec,
    salt: u64,
    scalar: &Captured,
    exact: bool,
    f_vo: &Function,
    out: &mut CheckOutcome,
    violate: &mut impl FnMut(&mut CheckOutcome, OracleKind, String),
) {
    let mut f_gl = p.function.clone();
    let gcfg = VectorizerConfig { packing: PackingStrategy::Global, ..cfg.clone() };
    if let Err(e) = try_vectorize_function(&mut f_gl, &gcfg, tm) {
        violate(out, OracleKind::PackingQuality, format!("global compile aborted: {e}"));
        return;
    }
    let greedy_cost = function_cost(f_vo, tm);
    let global_cost = function_cost(&f_gl, tm);
    if global_cost > greedy_cost {
        violate(
            out,
            OracleKind::PackingQuality,
            format!("global artifact costs {global_cost}, greedy costs {greedy_cost}"),
        );
    } else if global_cost < greedy_cost {
        out.signature.push(format!("t:{}/packing-global-win", tm.name));
    }
    // A cheaper artifact only counts if it is still correct: the global
    // leg must pass the same differential bar as the greedy one.
    match run_capture(&f_gl, &p.plan, p.min_len, salt) {
        Ok(cap) => {
            if let Some(d) = compare(scalar, &cap, exact) {
                violate(
                    out,
                    OracleKind::PackingQuality,
                    format!("global-packed output diverged: {d}"),
                );
            }
        }
        Err(e) => violate(out, OracleKind::PackingQuality, format!("global-packed leg {e}")),
    }
}

#[allow(clippy::too_many_arguments)]
fn check_metamorphic(
    p: &Program,
    cfg: &VectorizerConfig,
    tm: &TargetSpec,
    salt: u64,
    scalar: &Captured,
    vec_cap: &Captured,
    exact: bool,
    rep: &VectorizeReport,
    out: &mut CheckOutcome,
    violate: &mut impl FnMut(&mut CheckOutcome, OracleKind, String),
) {
    let mut f_pm = permute_commutative(&p.function, salt);
    let rep_pm = match try_vectorize_function(&mut f_pm, cfg, tm) {
        Ok(r) => r,
        Err(e) => {
            violate(out, OracleKind::Metamorphic, format!("permuted compile aborted: {e}"));
            return;
        }
    };
    match run_capture(&f_pm, &p.plan, p.min_len, salt) {
        Ok(pm_cap) => {
            // Integer commutation is exact, so the permuted-compiled output
            // must be byte-identical to the original-compiled output; float
            // codegen may reassociate differently after reordering, so the
            // permuted output is held to the scalar reference instead.
            let diff = if exact {
                compare(vec_cap, &pm_cap, true)
            } else {
                compare(scalar, &pm_cap, false)
            };
            if let Some(d) = diff {
                violate(
                    out,
                    OracleKind::Metamorphic,
                    format!("commutation changed the output: {d}"),
                );
            }
        }
        Err(e) => violate(out, OracleKind::Metamorphic, format!("permuted leg {e}")),
    }
    let (trees_a, vfs_a) = cost_class(rep);
    let (trees_b, vfs_b) = cost_class(&rep_pm);
    if (trees_a, &vfs_a) != (trees_b, &vfs_b) {
        // Class drift alone is NOT a violation: look-ahead is a
        // heuristic, and campaigns showed even all-commutative programs
        // can legitimately repack (one VF4 tree ↔ two VF2 trees, or VF4
        // ↔ VF2 when constant operands tie the look-ahead scores), with
        // the output still correct. The hard invariant is narrower: on
        // a plan built purely from commutative operations, commutation
        // must never make the vectorizer give up entirely — the
        // recover-the-reordering claim the paper's look-ahead makes.
        // Everything milder feeds the coverage signature.
        if p.plan.commutation_stable() && trees_b == 0 && trees_a > 0 {
            violate(
                out,
                OracleKind::Metamorphic,
                format!(
                    "commutation destroyed all vectorization: \
                     {trees_a} trees at VFs {vfs_a:?} became none"
                ),
            );
        } else {
            out.signature.push(format!("t:{}/meta-cost-drift", tm.name));
        }
    }
}

/// Seed descriptions render as `BASE[+lo..+hi)`; recover `(BASE, lo)`.
fn parse_seed(s: &str) -> Option<(&str, i64)> {
    let (base, rest) = s.split_once("[+")?;
    let (lo, _) = rest.split_once("..")?;
    Some((base, lo.parse().ok()?))
}

fn check_cross_vf(
    rep: &VectorizeReport,
    threshold: i64,
    out: &mut CheckOutcome,
    violate: &mut impl FnMut(&mut CheckOutcome, OracleKind, String),
) {
    // Reconstruct exploration rounds: consecutive attempts at the same
    // seed position with strictly decreasing VF are one round.
    let mut rounds: Vec<Vec<&lslp::Attempt>> = Vec::new();
    let mut prev: Option<(String, i64, usize)> = None;
    for a in &rep.attempts {
        let Some((base, lo)) = parse_seed(&a.seed) else { continue };
        let same_round =
            prev.as_ref().is_some_and(|(pb, pl, pvf)| pb == base && *pl == lo && a.vf < *pvf);
        if !same_round {
            rounds.push(Vec::new());
        }
        rounds.last_mut().expect("round exists").push(a);
        prev = Some((base.to_string(), lo, a.vf));
    }
    for round in rounds {
        let Some(winner) = round.iter().find(|a| a.vectorized) else { continue };
        for a in &round {
            if a.vectorized || a.cost >= threshold {
                continue;
            }
            // Per-lane comparison, cross-multiplied to stay in integers
            // (VFs are positive, so the inequality direction holds).
            let a_scaled = a.cost * winner.vf as i64;
            let w_scaled = winner.cost * a.vf as i64;
            let strictly_better = a_scaled < w_scaled || (a_scaled == w_scaled && a.vf > winner.vf);
            if strictly_better {
                violate(
                    out,
                    OracleKind::CrossVf,
                    format!(
                        "committed VF{} (cost {}) at {} but VF{} (cost {}) is per-lane cheaper",
                        winner.vf, winner.cost, winner.seed, a.vf, a.cost
                    ),
                );
            }
        }
    }
}

fn check_idempotence(
    f_vo: &Function,
    base: &VectorizerConfig,
    tm: &TargetSpec,
    out: &mut CheckOutcome,
    violate: &mut impl FnMut(&mut CheckOutcome, OracleKind, String),
) {
    let text1 = print_function(f_vo);
    let mut f2 = match parse_function(&text1) {
        Ok(f) => f,
        Err(e) => {
            violate(out, OracleKind::Idempotence, format!("emitted IR failed to re-parse: {e}"));
            return;
        }
    };
    // The recompile is always clean: a sabotaged first compile must be
    // caught, not reproduced.
    let clean =
        VectorizerConfig { sabotage: Sabotage::None, guard: GuardMode::Rollback, ..base.clone() };
    if let Err(e) = try_vectorize_function(&mut f2, &clean, tm) {
        violate(out, OracleKind::Idempotence, format!("recompile aborted: {e}"));
        return;
    }
    let text2 = print_function(&f2);
    if text1 != text2 {
        let diff = text1
            .lines()
            .zip(text2.lines())
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("`{a}` became `{b}`"))
            .unwrap_or_else(|| {
                format!("line count {} became {}", text1.lines().count(), text2.lines().count())
            });
        violate(
            out,
            OracleKind::Idempotence,
            format!("recompiling emitted IR is not a fixpoint: {diff}"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;

    /// A quick clean sweep: a handful of decoded programs must pass every
    /// oracle on every target (the full campaign lives in `campaign.rs`
    /// and behind `lslpc --fuzz`).
    #[test]
    fn clean_programs_pass_all_oracles() {
        let base = base_config();
        let targets = default_targets();
        for seed in 0..10u8 {
            let bytes = [seed, seed ^ 0x5a, 3, 1, 2, 0, 0, 4, 1, 2, 0, 1, seed, 9, 2];
            let plan = Plan::decode(&bytes);
            let p = crate::build::build(&plan).expect("build");
            let outcome = check_program(&p, &base, &targets, u64::from(seed));
            assert!(
                outcome.violations.is_empty(),
                "seed {seed} plan {plan:?} violated: {:?}",
                outcome.violations
            );
            assert!(!outcome.signature.is_empty());
        }
    }

    #[test]
    fn permutation_is_deterministic_and_commutative_only() {
        let plan = Plan::decode(&[1, 1, 1, 2, 0, 3, 0, 2, 1, 0, 0, 0, 0, 0, 2, 1]);
        let p = crate::build::build(&plan).unwrap();
        let a = permute_commutative(&p.function, 99);
        let b = permute_commutative(&p.function, 99);
        assert_eq!(print_function(&a), print_function(&b));
        for (pos, v, inst) in p.function.iter_body() {
            let swapped = a.inst(v).expect("same body").args != inst.args;
            if swapped {
                assert!(inst.op.is_commutative(), "swapped non-commutative {} at {pos}", inst.op);
            }
        }
    }
}
