//! Cheap coverage signals: behavioral signatures derived from counters the
//! compiler already maintains.
//!
//! The campaign has no branch instrumentation; instead it fingerprints
//! each run with the committed-VF multiset, the tree count, the
//! [`lslp::GatherReason`] histogram, guard-incident kinds, and the
//! per-pass [`lslp::Statistics`] counters (all log2-bucketed so the key
//! space stays small). An input that produces any previously unseen key is
//! "interesting" and enters the corpus — the same feedback shape
//! libFuzzer's value-profile mode uses, at a fraction of the cost.

use lslp::{Statistics, VectorizeReport};

/// Logarithmic bucket for a counter value: `0 → 0`, `1 → 1`, `2..3 → 2`,
/// `4..7 → 3`, ... — one bucket per magnitude keeps the signature space
/// bounded while still distinguishing "none", "a few" and "many".
pub fn log2_bucket(n: u64) -> u32 {
    64 - n.leading_zeros()
}

/// Signature keys from a vectorizer report.
pub fn report_signature(target: &str, rep: &VectorizeReport) -> Vec<String> {
    let mut keys = Vec::new();
    let mut vfs: Vec<usize> = rep.attempts.iter().filter(|a| a.vectorized).map(|a| a.vf).collect();
    vfs.sort_unstable();
    keys.push(format!("t:{target}/vf:{vfs:?}"));
    keys.push(format!("t:{target}/trees:{}", rep.trees_vectorized));
    keys.push(format!("t:{target}/attempts:{}", log2_bucket(rep.attempts.len() as u64)));
    for (reason, n) in &rep.gather_reasons {
        keys.push(format!("t:{target}/gather:{reason}:{}", log2_bucket(*n)));
    }
    for inc in &rep.incidents {
        keys.push(format!("t:{target}/incident:{:?}", inc.kind));
    }
    keys
}

/// Signature keys from the scalar pipeline's per-pass counters.
pub fn stats_signature(target: &str, stats: &Statistics) -> Vec<String> {
    stats
        .rows()
        .iter()
        .map(|r| format!("t:{target}/stat:{}/{}:{}", r.pass, r.counter, log2_bucket(r.value)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_collapse_magnitudes() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(1023), 10);
    }

    #[test]
    fn report_signature_is_deterministic() {
        let rep = VectorizeReport::default();
        assert_eq!(report_signature("sse4.2", &rep), report_signature("sse4.2", &rep));
        assert!(report_signature("sse4.2", &rep).iter().all(|k| k.starts_with("t:sse4.2/")));
    }
}
