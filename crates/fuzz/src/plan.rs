//! The typed generation plan and its byte-stream codec.
//!
//! A [`Plan`] is the structured description of one fuzz program: a few
//! groups of adjacent stores, each computing a lane expression biased
//! toward SLP-shaped code (commutative chains, mixed-opcode
//! near-isomorphism, per-lane operand swaps), optionally followed by a
//! horizontal reduction tree and optionally wrapped in control flow
//! ([`ControlPlan`]: a counted loop and/or per-lane branch diamonds, so
//! the if-conversion and unroll passes sit inside the fuzzed perimeter).
//! Plans decode *totally* from arbitrary bytes
//! ([`Plan::decode`]) and re-encode canonically ([`Plan::encode`]):
//!
//! * `decode(encode(p)) == p` for every decoded or shrunk plan, so a
//!   corpus entry replays exactly;
//! * `encode(decode(bytes))` is the canonical corpus form of `bytes`
//!   (mutation may produce non-canonical streams; the campaign always
//!   stores the canonical re-encoding).

use lslp_ir::Opcode;

use crate::unstructured::Unstructured;

/// Nesting limit for lane expressions; at the limit only leaves decode.
pub const MAX_SHAPE_DEPTH: usize = 3;

/// Binary opcodes for integer [`Shape::Bin`] nodes.
const INT_BIN: &[Opcode] =
    &[Opcode::Add, Opcode::Mul, Opcode::And, Opcode::Or, Opcode::Xor, Opcode::Sub, Opcode::Shl];
/// Binary opcodes for float [`Shape::Bin`] nodes (no division: divisors
/// could approach zero and NaN/inf would poison tolerance comparison).
const FLOAT_BIN: &[Opcode] = &[Opcode::FAdd, Opcode::FMul, Opcode::FSub];
/// Commutative opcodes for integer [`Shape::Chain`] nodes and reductions.
const INT_CHAIN: &[Opcode] = &[Opcode::Add, Opcode::Mul, Opcode::And, Opcode::Or, Opcode::Xor];
/// Commutative opcodes for float [`Shape::Chain`] nodes and reductions.
const FLOAT_CHAIN: &[Opcode] = &[Opcode::FAdd, Opcode::FMul];
/// Opcode pool for [`Shape::Mixed`] lanes (no shift: the alternating
/// right-hand side would need the constant-amount special case).
const INT_MIXED: &[Opcode] =
    &[Opcode::Add, Opcode::Mul, Opcode::And, Opcode::Or, Opcode::Xor, Opcode::Sub];
const FLOAT_MIXED: &[Opcode] = FLOAT_BIN;

fn pick(table: &[Opcode], b: u8) -> Opcode {
    table[b as usize % table.len()]
}

fn index_of(table: &[Opcode], op: Opcode) -> u8 {
    table.iter().position(|&o| o == op).expect("opcode not in its table") as u8
}

/// A lane expression: evaluated once per lane `l` of a store group.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Shape {
    /// `IN{arr}[i + base + l]` — a consecutive load run.
    Load {
        /// Input array index (`< Plan::arrays`).
        arr: usize,
        /// Base element offset, one of `{0, 2, 4, 6}`.
        base: usize,
    },
    /// A lane-invariant constant in `1..=15` (splat material).
    Const(i64),
    /// A binary node; commutative ops swap their operands on the lanes
    /// selected by `swap_mask` (bit `l % 8`), the near-isomorphism the
    /// paper's look-ahead reordering exists to undo.
    Bin {
        /// The opcode (from the int/float bin table).
        op: Opcode,
        /// Per-lane operand-swap bits; always `0` for non-commutative ops.
        swap_mask: u8,
        /// Left operand.
        lhs: Box<Shape>,
        /// Right operand (always `Const` in `1..=7` under `Shl`).
        rhs: Box<Shape>,
    },
    /// A left-folded chain of one commutative opcode whose operand order
    /// rotates per lane by `rot * l` — multi-node formation fodder.
    Chain {
        /// The commutative opcode.
        op: Opcode,
        /// Per-lane rotation step (`< operands.len()`).
        rot: usize,
        /// Chain operands (2..=4).
        operands: Vec<Shape>,
    },
    /// A binary node whose opcode alternates by lane parity — isomorphism
    /// breaks the vanilla SLP matcher must cope with.
    Mixed {
        /// Opcode on even lanes.
        op_even: Opcode,
        /// Opcode on odd lanes.
        op_odd: Opcode,
        /// Left operand.
        lhs: Box<Shape>,
        /// Right operand.
        rhs: Box<Shape>,
    },
}

impl Shape {
    fn decode(u: &mut Unstructured<'_>, int: bool, arrays: usize, depth: usize) -> Shape {
        let tag = if depth >= MAX_SHAPE_DEPTH { u.byte() % 2 } else { u.byte() % 5 };
        match tag {
            0 => Shape::Load { arr: u.byte() as usize % arrays, base: 2 * (u.byte() as usize % 4) },
            1 => Shape::Const(1 + i64::from(u.byte() % 15)),
            2 => {
                let op = pick(if int { INT_BIN } else { FLOAT_BIN }, u.byte());
                let swap_byte = u.byte();
                let swap_mask = if op.is_commutative() { swap_byte } else { 0 };
                let lhs = Shape::decode(u, int, arrays, depth + 1);
                let rhs = if op == Opcode::Shl {
                    // Keep shift amounts small and constant so both the
                    // SLC and direct-IR legs stay well-defined.
                    Shape::Const(1 + i64::from(u.byte() % 7))
                } else {
                    Shape::decode(u, int, arrays, depth + 1)
                };
                Shape::Bin { op, swap_mask, lhs: Box::new(lhs), rhs: Box::new(rhs) }
            }
            3 => {
                let op = pick(if int { INT_CHAIN } else { FLOAT_CHAIN }, u.byte());
                let n = 2 + u.byte() as usize % 3;
                let rot = u.byte() as usize % n;
                let operands = (0..n).map(|_| Shape::decode(u, int, arrays, depth + 1)).collect();
                Shape::Chain { op, rot, operands }
            }
            _ => {
                let table = if int { INT_MIXED } else { FLOAT_MIXED };
                let op_even = pick(table, u.byte());
                let op_odd = pick(table, u.byte());
                let lhs = Shape::decode(u, int, arrays, depth + 1);
                let rhs = Shape::decode(u, int, arrays, depth + 1);
                Shape::Mixed { op_even, op_odd, lhs: Box::new(lhs), rhs: Box::new(rhs) }
            }
        }
    }

    fn encode(&self, int: bool, out: &mut Vec<u8>) {
        match self {
            Shape::Load { arr, base } => {
                out.push(0);
                out.push(*arr as u8);
                out.push((base / 2) as u8);
            }
            Shape::Const(c) => {
                out.push(1);
                out.push((c - 1) as u8);
            }
            Shape::Bin { op, swap_mask, lhs, rhs } => {
                out.push(2);
                out.push(index_of(if int { INT_BIN } else { FLOAT_BIN }, *op));
                out.push(*swap_mask);
                lhs.encode(int, out);
                if *op == Opcode::Shl {
                    let Shape::Const(c) = **rhs else { panic!("Shl rhs must be Const") };
                    out.push((c - 1) as u8);
                } else {
                    rhs.encode(int, out);
                }
            }
            Shape::Chain { op, rot, operands } => {
                out.push(3);
                out.push(index_of(if int { INT_CHAIN } else { FLOAT_CHAIN }, *op));
                out.push((operands.len() - 2) as u8);
                out.push(*rot as u8);
                for o in operands {
                    o.encode(int, out);
                }
            }
            Shape::Mixed { op_even, op_odd, lhs, rhs } => {
                let table = if int { INT_MIXED } else { FLOAT_MIXED };
                out.push(4);
                out.push(index_of(table, *op_even));
                out.push(index_of(table, *op_odd));
                lhs.encode(int, out);
                rhs.encode(int, out);
            }
        }
    }

    /// Strictly smaller variants, most aggressive first. Subtree
    /// replacements keep the depth invariant (`decode` never produces a
    /// deeper tree than it consumed), so every candidate still round-trips.
    fn shrink_candidates(&self) -> Vec<Shape> {
        let mut out = Vec::new();
        match self {
            Shape::Load { arr, base } => {
                if *base != 0 {
                    out.push(Shape::Load { arr: *arr, base: 0 });
                }
                if *arr != 0 {
                    out.push(Shape::Load { arr: 0, base: *base });
                }
            }
            Shape::Const(c) => {
                if *c != 1 {
                    out.push(Shape::Const(1));
                }
            }
            Shape::Bin { op, swap_mask, lhs, rhs } => {
                out.push((**lhs).clone());
                if *op != Opcode::Shl {
                    out.push((**rhs).clone());
                }
                if *swap_mask != 0 {
                    out.push(Shape::Bin {
                        op: *op,
                        swap_mask: 0,
                        lhs: lhs.clone(),
                        rhs: rhs.clone(),
                    });
                }
                for l in lhs.shrink_candidates() {
                    out.push(Shape::Bin {
                        op: *op,
                        swap_mask: *swap_mask,
                        lhs: Box::new(l),
                        rhs: rhs.clone(),
                    });
                }
                if *op != Opcode::Shl {
                    for r in rhs.shrink_candidates() {
                        out.push(Shape::Bin {
                            op: *op,
                            swap_mask: *swap_mask,
                            lhs: lhs.clone(),
                            rhs: Box::new(r),
                        });
                    }
                }
            }
            Shape::Chain { op, rot, operands } => {
                for o in operands {
                    out.push(o.clone());
                }
                if operands.len() > 2 {
                    let mut ops = operands.clone();
                    ops.pop();
                    out.push(Shape::Chain { op: *op, rot: *rot % ops.len(), operands: ops });
                }
                if *rot != 0 {
                    out.push(Shape::Chain { op: *op, rot: 0, operands: operands.clone() });
                }
                for (i, o) in operands.iter().enumerate() {
                    for s in o.shrink_candidates() {
                        let mut ops = operands.clone();
                        ops[i] = s;
                        out.push(Shape::Chain { op: *op, rot: *rot, operands: ops });
                    }
                }
            }
            Shape::Mixed { op_even, op_odd, lhs, rhs } => {
                out.push((**lhs).clone());
                out.push((**rhs).clone());
                if op_even != op_odd {
                    out.push(Shape::Mixed {
                        op_even: *op_even,
                        op_odd: *op_even,
                        lhs: lhs.clone(),
                        rhs: rhs.clone(),
                    });
                }
                for l in lhs.shrink_candidates() {
                    out.push(Shape::Mixed {
                        op_even: *op_even,
                        op_odd: *op_odd,
                        lhs: Box::new(l),
                        rhs: rhs.clone(),
                    });
                }
                for r in rhs.shrink_candidates() {
                    out.push(Shape::Mixed {
                        op_even: *op_even,
                        op_odd: *op_odd,
                        lhs: lhs.clone(),
                        rhs: Box::new(r),
                    });
                }
            }
        }
        out
    }

    /// Whether every operation in the tree is commutative (no `Mixed`
    /// nodes, no `Sub`/`FSub`/`Shl`). For such lane-isomorphic shapes the
    /// committed cost class must survive operand commutation — the
    /// paper's core claim; mixed-opcode lanes sit at packing boundaries
    /// where the heuristic may legitimately flip.
    pub fn commutative_only(&self) -> bool {
        match self {
            Shape::Load { .. } | Shape::Const(_) => true,
            Shape::Bin { op, lhs, rhs, .. } => {
                op.is_commutative() && lhs.commutative_only() && rhs.commutative_only()
            }
            Shape::Chain { operands, .. } => operands.iter().all(Shape::commutative_only),
            Shape::Mixed { .. } => false,
        }
    }

    /// Clamp every `Load` array index to `< arrays` (used when shrinking
    /// the array count).
    fn clamp_arrays(&mut self, arrays: usize) {
        match self {
            Shape::Load { arr, .. } => *arr %= arrays,
            Shape::Const(_) => {}
            Shape::Bin { lhs, rhs, .. } | Shape::Mixed { lhs, rhs, .. } => {
                lhs.clamp_arrays(arrays);
                rhs.clamp_arrays(arrays);
            }
            Shape::Chain { operands, .. } => {
                for o in operands {
                    o.clamp_arrays(arrays);
                }
            }
        }
    }
}

/// One group of `lanes` adjacent stores sharing a lane expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GroupPlan {
    /// Store-group width, 2..=6 (non-powers-of-two exercise the VF
    /// explorer's remainder handling).
    pub lanes: usize,
    /// Emit the lanes in reverse program order (seed collection must
    /// still find the address-adjacent chain).
    pub reversed: bool,
    /// The per-lane expression.
    pub shape: Shape,
}

/// Optional control flow wrapped around the store groups.
///
/// The variant is encoded as a *suffix* of the byte stream and
/// [`ControlPlan::None`] encodes to **zero bytes**, so every pre-existing
/// canonical corpus entry keeps its exact bytes (an exhausted stream reads
/// zero, which decodes to `None`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ControlPlan {
    /// Straight-line program (the classic corpus shape).
    None,
    /// Run the store groups inside a counted loop; iteration `k` shifts
    /// every load and store index by `k * stride` (stride = total lanes),
    /// so full unrolling exposes adjacent stores across iterations.
    Loop {
        /// Compile-time trip count, 2..=8.
        trip: usize,
        /// Gate each lane's stored value behind a branch diamond
        /// (if-conversion fodder inside the loop body).
        branchy: bool,
    },
    /// No loop, but each lane's stored value goes through a branch
    /// diamond: `if IN0[idx] < T { v } else { IN0[idx] }`.
    IfDiamond,
}

/// A horizontal reduction: `OUT[i + total] = fold(op, IN{arr}[i..i+width])`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReductionPlan {
    /// The commutative fold opcode.
    pub op: Opcode,
    /// Source array.
    pub arr: usize,
    /// Number of folded elements, 4..=8.
    pub width: usize,
}

/// A complete generation plan. See the module docs for codec guarantees.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Plan {
    /// Integer (`i64`) or float (`f64`) program.
    pub int: bool,
    /// Build the function by compiling rendered SLC source instead of
    /// direct IR construction (exercises the frontend too).
    pub via_slc: bool,
    /// Number of input arrays, 1..=3.
    pub arrays: usize,
    /// Store groups, 1..=3; group `g` writes `OUT[i + base_g + l]` where
    /// `base_g` is the cumulative lane count of earlier groups.
    pub groups: Vec<GroupPlan>,
    /// Optional trailing reduction store.
    pub reduction: Option<ReductionPlan>,
    /// Control flow wrapped around the store groups (loop / if-diamond).
    pub control: ControlPlan,
}

impl Plan {
    /// Decode a plan from arbitrary bytes. Total: every byte string maps
    /// to a well-formed plan (exhausted streams read zero).
    pub fn decode(bytes: &[u8]) -> Plan {
        let mut u = Unstructured::new(bytes);
        let flags = u.byte();
        let int = flags & 1 != 0;
        let via_slc = flags & 2 != 0;
        let arrays = 1 + u.byte() as usize % 3;
        let n_groups = 1 + u.byte() as usize % 3;
        let groups = (0..n_groups)
            .map(|_| GroupPlan {
                lanes: 2 + u.byte() as usize % 5,
                reversed: u.byte() & 1 != 0,
                shape: Shape::decode(&mut u, int, arrays, 0),
            })
            .collect();
        let reduction = (u.byte().is_multiple_of(4)).then(|| ReductionPlan {
            op: pick(if int { INT_CHAIN } else { FLOAT_CHAIN }, u.byte()),
            arr: u.byte() as usize % arrays,
            width: 4 + u.byte() as usize % 5,
        });
        // The control suffix: an exhausted (legacy) stream reads 0 = None.
        let control = match u.byte() % 3 {
            0 => ControlPlan::None,
            1 => ControlPlan::Loop { trip: 2 + u.byte() as usize % 7, branchy: u.byte() & 1 != 0 },
            _ => ControlPlan::IfDiamond,
        };
        Plan { int, via_slc, arrays, groups, reduction, control }
    }

    /// Canonical byte encoding; `decode(encode(self)) == self`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(u8::from(self.int) | (u8::from(self.via_slc) << 1));
        out.push((self.arrays - 1) as u8);
        out.push((self.groups.len() - 1) as u8);
        for g in &self.groups {
            out.push((g.lanes - 2) as u8);
            out.push(u8::from(g.reversed));
            g.shape.encode(self.int, &mut out);
        }
        match &self.reduction {
            Some(r) => {
                out.push(0);
                out.push(index_of(if self.int { INT_CHAIN } else { FLOAT_CHAIN }, r.op));
                out.push(r.arr as u8);
                out.push((r.width - 4) as u8);
            }
            None => out.push(1),
        }
        match self.control {
            // Zero bytes: legacy corpus entries stay byte-identical.
            ControlPlan::None => {}
            ControlPlan::Loop { trip, branchy } => {
                out.push(1);
                out.push((trip - 2) as u8);
                out.push(u8::from(branchy));
            }
            ControlPlan::IfDiamond => out.push(2),
        }
        out
    }

    /// Whether the whole program is built from commutative operations
    /// only (see [`Shape::commutative_only`]); gates the metamorphic
    /// cost-class assertion.
    pub fn commutation_stable(&self) -> bool {
        self.groups.iter().all(|g| g.shape.commutative_only())
    }

    /// Structurally smaller plans for greedy shrinking, most aggressive
    /// first. Every candidate is well-formed and round-trips through the
    /// codec.
    pub fn shrink_candidates(&self) -> Vec<Plan> {
        let mut out = Vec::new();
        if self.groups.len() > 1 {
            for i in 0..self.groups.len() {
                let mut p = self.clone();
                p.groups.remove(i);
                out.push(p);
            }
        }
        if self.reduction.is_some() {
            let mut p = self.clone();
            p.reduction = None;
            out.push(p);
        }
        if self.via_slc {
            let mut p = self.clone();
            p.via_slc = false;
            out.push(p);
        }
        if self.arrays > 1 {
            let mut p = self.clone();
            p.arrays -= 1;
            for g in &mut p.groups {
                g.shape.clamp_arrays(p.arrays);
            }
            if let Some(r) = &mut p.reduction {
                r.arr %= p.arrays;
            }
            out.push(p);
        }
        for (i, g) in self.groups.iter().enumerate() {
            if g.lanes > 2 {
                let mut p = self.clone();
                p.groups[i].lanes -= 1;
                out.push(p);
            }
            if g.reversed {
                let mut p = self.clone();
                p.groups[i].reversed = false;
                out.push(p);
            }
            for s in g.shape.shrink_candidates() {
                let mut p = self.clone();
                p.groups[i].shape = s;
                out.push(p);
            }
        }
        if let Some(r) = &self.reduction {
            if r.width > 4 {
                let mut p = self.clone();
                p.reduction.as_mut().unwrap().width -= 1;
                out.push(p);
            }
        }
        match self.control {
            ControlPlan::None => {}
            ControlPlan::IfDiamond => {
                let mut p = self.clone();
                p.control = ControlPlan::None;
                out.push(p);
            }
            ControlPlan::Loop { trip, branchy } => {
                let mut p = self.clone();
                p.control = ControlPlan::None;
                out.push(p);
                if branchy {
                    let mut p = self.clone();
                    p.control = ControlPlan::Loop { trip, branchy: false };
                    out.push(p);
                }
                if trip > 2 {
                    let mut p = self.clone();
                    p.control = ControlPlan::Loop { trip: trip - 1, branchy };
                    out.push(p);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn decode_encode_roundtrip_on_random_bytes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let len = rng.gen_range(0usize..128);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let p = Plan::decode(&bytes);
            let canon = p.encode();
            assert_eq!(Plan::decode(&canon), p, "canonical form must re-decode identically");
            // encode is a fixpoint on canonical bytes.
            assert_eq!(Plan::decode(&canon).encode(), canon);
        }
    }

    #[test]
    fn empty_and_short_streams_decode() {
        let p = Plan::decode(&[]);
        assert_eq!(p.arrays, 1);
        assert_eq!(p.groups.len(), 1);
        assert_eq!(Plan::decode(&p.encode()), p);
        for n in 0..8 {
            let bytes = vec![0xff; n];
            let p = Plan::decode(&bytes);
            assert_eq!(Plan::decode(&p.encode()), p);
        }
    }

    #[test]
    fn shrink_candidates_roundtrip_and_shrink() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let len = rng.gen_range(8usize..96);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let p = Plan::decode(&bytes);
            for c in p.shrink_candidates() {
                assert_ne!(c, p, "shrink candidates must differ from the original");
                assert_eq!(Plan::decode(&c.encode()), c, "candidate must round-trip");
            }
        }
    }

    #[test]
    fn none_control_encodes_to_zero_bytes() {
        // Corpus byte-stability: the control variant is a strict suffix
        // and `None` contributes nothing, so every legacy canonical entry
        // keeps its exact bytes under the extended codec.
        let p = Plan::decode(&[]);
        assert_eq!(p.control, ControlPlan::None);
        let base = p.encode();
        for control in [
            ControlPlan::Loop { trip: 2, branchy: false },
            ControlPlan::Loop { trip: 8, branchy: true },
            ControlPlan::IfDiamond,
        ] {
            let mut q = p.clone();
            q.control = control;
            let enc = q.encode();
            assert_eq!(&enc[..base.len()], &base[..], "control must be a suffix");
            assert!(enc.len() > base.len());
            assert_eq!(Plan::decode(&enc), q, "control round-trips");
        }
    }

    #[test]
    fn control_suffix_decodes_from_trailing_bytes() {
        // A legacy canonical stream plus one trailing byte `1` plus trip
        // and branchy bytes decodes to a loop plan.
        let mut bytes = Plan::decode(&[]).encode();
        bytes.extend([1, 3, 1]);
        let p = Plan::decode(&bytes);
        assert_eq!(p.control, ControlPlan::Loop { trip: 5, branchy: true });
        assert_eq!(p.encode(), bytes, "canonical loop suffix is a fixpoint");
    }

    #[test]
    fn control_shrinks_toward_straight_line() {
        let mut p = Plan::decode(&[]);
        p.control = ControlPlan::Loop { trip: 4, branchy: true };
        let cands = p.shrink_candidates();
        assert!(cands.iter().any(|c| c.control == ControlPlan::None));
        assert!(cands.iter().any(|c| c.control == ControlPlan::Loop { trip: 4, branchy: false }));
        assert!(cands.iter().any(|c| c.control == ControlPlan::Loop { trip: 3, branchy: true }));
        for c in cands {
            assert_eq!(Plan::decode(&c.encode()), c, "candidate must round-trip");
        }
    }

    #[test]
    fn swap_mask_zero_for_noncommutative() {
        // Byte stream forcing a Sub bin node: tag 2, op index 5 (Sub in
        // INT_BIN), swap byte 0xff — the mask must decode to 0.
        let bytes = [1, 0, 0, 0, 0, 2, 5, 0xff, 1, 0, 1, 0, 1];
        let p = Plan::decode(&bytes);
        if let Shape::Bin { op, swap_mask, .. } = &p.groups[0].shape {
            assert_eq!(*op, Opcode::Sub);
            assert_eq!(*swap_mask, 0);
        } else {
            panic!("expected Bin shape, got {:?}", p.groups[0].shape);
        }
    }
}
