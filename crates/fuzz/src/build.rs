//! Materialize a [`Plan`] as an executable program.
//!
//! A plan builds into one straight-line function over the parameter list
//! `(OUT, IN0..IN{arrays-1}, i)`. Two construction legs exist and are
//! selected by [`Plan::via_slc`]: direct [`lslp_ir`] construction through
//! [`FunctionBuilder`], or rendering SLC source and running it through
//! `lslp_frontend::compile` (so the frontend is inside the fuzzed
//! perimeter too). Either way the oracles only ever see the one resulting
//! [`Function`].

use lslp_ir::{Function, FunctionBuilder, Opcode, ScalarType, Type, ValueId};

use crate::plan::{Plan, Shape};

/// A built fuzz program plus the metadata the execution harness needs.
pub struct Program {
    /// The plan this program was built from.
    pub plan: Plan,
    /// The function under test.
    pub function: Function,
    /// The rendered SLC source (`via_slc` plans only, kept for reproducer
    /// dumps).
    pub slc: Option<String>,
    /// Minimum element count every buffer must have for all accesses
    /// (at `i = 0`) to stay in bounds.
    pub min_len: usize,
}

impl Program {
    /// Element type of every array in the program.
    pub fn elem(&self) -> ScalarType {
        if self.plan.int {
            ScalarType::I64
        } else {
            ScalarType::F64
        }
    }
}

/// Build the program a plan describes.
///
/// # Errors
///
/// Returns a message when the SLC leg fails to compile — generator-rendered
/// source must always be accepted, so any error here is itself a bug worth
/// minimizing.
pub fn build(plan: &Plan) -> Result<Program, String> {
    let min_len = min_len(plan);
    if plan.via_slc {
        let src = render_slc(plan);
        let m = lslp_frontend::compile(&src)
            .map_err(|e| format!("generated SLC rejected: {e}\n--- source ---\n{src}"))?;
        let function = m
            .functions
            .into_iter()
            .next()
            .ok_or_else(|| "frontend produced no function".to_string())?;
        Ok(Program { plan: plan.clone(), function, slc: Some(src), min_len })
    } else {
        let function = build_ir(plan);
        Ok(Program { plan: plan.clone(), function, slc: None, min_len })
    }
}

/// Smallest buffer length (elements) covering every access at `i = 0`.
fn min_len(plan: &Plan) -> usize {
    let mut out_extent = 0;
    let mut in_extent = 0;
    for g in &plan.groups {
        in_extent = in_extent.max(max_load_base(&g.shape) + g.lanes);
        out_extent += g.lanes;
    }
    if let Some(r) = &plan.reduction {
        in_extent = in_extent.max(r.width);
        out_extent += 1;
    }
    out_extent.max(in_extent).max(1)
}

fn max_load_base(shape: &Shape) -> usize {
    match shape {
        Shape::Load { base, .. } => *base,
        Shape::Const(_) => 0,
        Shape::Bin { lhs, rhs, .. } | Shape::Mixed { lhs, rhs, .. } => {
            max_load_base(lhs).max(max_load_base(rhs))
        }
        Shape::Chain { operands, .. } => operands.iter().map(max_load_base).max().unwrap_or(0),
    }
}

/// Lane emission order: `reversed` groups store high lanes first, so seed
/// collection must find the chain by address, not program order.
fn lane_order(lanes: usize, reversed: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..lanes).collect();
    if reversed {
        order.reverse();
    }
    order
}

/// Whether lane `l` swaps the operands of a commutative [`Shape::Bin`].
fn swaps(swap_mask: u8, l: usize) -> bool {
    (swap_mask >> (l % 8)) & 1 == 1
}

/// Chain operand visit order for lane `l`: rotate left by `rot * l`.
fn chain_order(n: usize, rot: usize, l: usize) -> Vec<usize> {
    let start = (rot * l) % n;
    (0..n).map(|k| (start + k) % n).collect()
}

// ---------------------------------------------------------------------------
// Direct IR leg.
// ---------------------------------------------------------------------------

struct IrCtx {
    ins: Vec<ValueId>,
    i: ValueId,
    int: bool,
}

fn build_ir(plan: &Plan) -> Function {
    let elem_ty = if plan.int { Type::I64 } else { Type::F64 };
    let mut f = Function::new("fuzz");
    let out = f.add_param("OUT", Type::PTR);
    let ins: Vec<ValueId> =
        (0..plan.arrays).map(|a| f.add_param(format!("IN{a}"), Type::PTR)).collect();
    let i = f.add_param("i", Type::I64);
    let cx = IrCtx { ins, i, int: plan.int };

    let mut out_base = 0;
    for g in &plan.groups {
        for l in lane_order(g.lanes, g.reversed) {
            let v = emit_shape(&mut f, &cx, &g.shape, l, elem_ty);
            emit_store(&mut f, &cx, out, out_base + l, v);
        }
        out_base += g.lanes;
    }
    if let Some(r) = &plan.reduction {
        let mut acc = emit_load(&mut f, &cx, cx.ins[r.arr], 0, elem_ty);
        for k in 1..r.width {
            let e = emit_load(&mut f, &cx, cx.ins[r.arr], k, elem_ty);
            let mut b = FunctionBuilder::new(&mut f);
            acc = b.binop(r.op, acc, e);
        }
        emit_store(&mut f, &cx, out, out_base, acc);
    }
    f
}

fn emit_index(f: &mut Function, cx: &IrCtx, ptr: ValueId, off: usize) -> ValueId {
    let c = f.const_i64(off as i64);
    let mut b = FunctionBuilder::new(f);
    let idx = b.add(cx.i, c);
    b.gep(ptr, idx, 8)
}

fn emit_load(f: &mut Function, cx: &IrCtx, ptr: ValueId, off: usize, ty: Type) -> ValueId {
    let g = emit_index(f, cx, ptr, off);
    FunctionBuilder::new(f).load(ty, g)
}

fn emit_store(f: &mut Function, cx: &IrCtx, out: ValueId, off: usize, v: ValueId) {
    let g = emit_index(f, cx, out, off);
    FunctionBuilder::new(f).store(v, g);
}

fn emit_const(f: &mut Function, cx: &IrCtx, c: i64) -> ValueId {
    if cx.int {
        f.const_i64(c)
    } else {
        f.const_float(ScalarType::F64, c as f64)
    }
}

fn emit_shape(f: &mut Function, cx: &IrCtx, shape: &Shape, l: usize, ty: Type) -> ValueId {
    match shape {
        Shape::Load { arr, base } => emit_load(f, cx, cx.ins[*arr], base + l, ty),
        Shape::Const(c) => emit_const(f, cx, *c),
        Shape::Bin { op, swap_mask, lhs, rhs } => {
            let a = emit_shape(f, cx, lhs, l, ty);
            let b = emit_shape(f, cx, rhs, l, ty);
            let (a, b) = if swaps(*swap_mask, l) { (b, a) } else { (a, b) };
            FunctionBuilder::new(f).binop(*op, a, b)
        }
        Shape::Chain { op, rot, operands } => {
            let vals: Vec<ValueId> = operands.iter().map(|o| emit_shape(f, cx, o, l, ty)).collect();
            let order = chain_order(vals.len(), *rot, l);
            let mut acc = vals[order[0]];
            for &k in &order[1..] {
                acc = FunctionBuilder::new(f).binop(*op, acc, vals[k]);
            }
            acc
        }
        Shape::Mixed { op_even, op_odd, lhs, rhs } => {
            let a = emit_shape(f, cx, lhs, l, ty);
            let b = emit_shape(f, cx, rhs, l, ty);
            let op = if l.is_multiple_of(2) { *op_even } else { *op_odd };
            FunctionBuilder::new(f).binop(op, a, b)
        }
    }
}

// ---------------------------------------------------------------------------
// SLC leg.
// ---------------------------------------------------------------------------

fn op_str(op: Opcode) -> &'static str {
    match op {
        Opcode::Add | Opcode::FAdd => "+",
        Opcode::Sub | Opcode::FSub => "-",
        Opcode::Mul | Opcode::FMul => "*",
        Opcode::And => "&",
        Opcode::Or => "|",
        Opcode::Xor => "^",
        Opcode::Shl => "<<",
        other => panic!("no SLC rendering for {other}"),
    }
}

fn render_slc(plan: &Plan) -> String {
    let ty = if plan.int { "i64" } else { "f64" };
    let mut params = format!("{ty}* OUT");
    for a in 0..plan.arrays {
        params.push_str(&format!(", {ty}* IN{a}"));
    }
    params.push_str(", i64 i");

    let mut body = String::new();
    let mut out_base = 0;
    for g in &plan.groups {
        for l in lane_order(g.lanes, g.reversed) {
            let expr = render_shape(&g.shape, l, plan.int);
            body.push_str(&format!("    OUT[i + {}] = {expr};\n", out_base + l));
        }
        out_base += g.lanes;
    }
    if let Some(r) = &plan.reduction {
        let mut expr = format!("IN{}[i + 0]", r.arr);
        for k in 1..r.width {
            expr = format!("({expr} {} IN{}[i + {k}])", op_str(r.op), r.arr);
        }
        body.push_str(&format!("    OUT[i + {out_base}] = {expr};\n"));
    }
    format!("kernel fuzz({params}) {{\n{body}}}\n")
}

fn render_const(c: i64, int: bool) -> String {
    if int {
        format!("{c}")
    } else {
        format!("{c}.0")
    }
}

fn render_shape(shape: &Shape, l: usize, int: bool) -> String {
    match shape {
        Shape::Load { arr, base } => format!("IN{arr}[i + {}]", base + l),
        Shape::Const(c) => render_const(*c, int),
        Shape::Bin { op, swap_mask, lhs, rhs } => {
            let a = render_shape(lhs, l, int);
            let b = render_shape(rhs, l, int);
            let (a, b) = if swaps(*swap_mask, l) { (b, a) } else { (a, b) };
            format!("({a} {} {b})", op_str(*op))
        }
        Shape::Chain { op, rot, operands } => {
            let vals: Vec<String> = operands.iter().map(|o| render_shape(o, l, int)).collect();
            let order = chain_order(vals.len(), *rot, l);
            let mut acc = vals[order[0]].clone();
            for &k in &order[1..] {
                acc = format!("({acc} {} {})", op_str(*op), vals[k]);
            }
            acc
        }
        Shape::Mixed { op_even, op_odd, lhs, rhs } => {
            let a = render_shape(lhs, l, int);
            let b = render_shape(rhs, l, int);
            let op = if l.is_multiple_of(2) { *op_even } else { *op_odd };
            format!("({a} {} {b})", op_str(op))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::GroupPlan;
    use rand::{Rng, SeedableRng};

    /// Both construction legs of the same plan must compute identical
    /// results (the SLC leg is only a different road to the same program).
    #[test]
    fn slc_and_ir_legs_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut checked = 0;
        for _ in 0..200 {
            let len = rng.gen_range(8usize..96);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let mut plan = Plan::decode(&bytes);
            plan.via_slc = false;
            let ir_leg = build(&plan).expect("direct IR leg cannot fail");
            plan.via_slc = true;
            let slc_leg = build(&plan).expect("generated SLC must compile");
            let a = crate::exec::run_capture(&ir_leg.function, &plan, ir_leg.min_len, 3)
                .expect("IR leg executes");
            let b = crate::exec::run_capture(&slc_leg.function, &plan, slc_leg.min_len, 3)
                .expect("SLC leg executes");
            assert!(
                crate::exec::compare(&a, &b, true).is_none(),
                "legs diverged for {plan:?}\n{}",
                slc_leg.slc.unwrap()
            );
            checked += 1;
        }
        assert_eq!(checked, 200);
    }

    #[test]
    fn reduction_renders_and_builds() {
        let plan = Plan {
            int: true,
            via_slc: true,
            arrays: 1,
            groups: vec![GroupPlan {
                lanes: 4,
                reversed: false,
                shape: Shape::Load { arr: 0, base: 0 },
            }],
            reduction: Some(crate::plan::ReductionPlan { op: Opcode::Add, arr: 0, width: 5 }),
        };
        let p = build(&plan).unwrap();
        assert_eq!(p.min_len, 5);
        assert!(p.slc.unwrap().contains("OUT[i + 4]"));
    }
}
