//! Materialize a [`Plan`] as an executable program.
//!
//! A plan builds into one function over the parameter list
//! `(OUT, IN0..IN{arrays-1}, i)` — straight-line for
//! [`ControlPlan::None`], a small CFG (counted loop and/or branch
//! diamonds) otherwise. Two construction legs exist and are selected by
//! [`Plan::via_slc`]: direct [`lslp_ir`] construction, or rendering SLC
//! source and running it through `lslp_frontend::compile` (so the
//! frontend is inside the fuzzed perimeter too). Either way the oracles
//! only ever see the one resulting [`Function`].

use lslp_ir::{
    BlockId, FloatPred, Function, InstAttr, IntPred, Opcode, ScalarType, Terminator, Type, ValueId,
};

use crate::plan::{ControlPlan, Plan, Shape};

/// A built fuzz program plus the metadata the execution harness needs.
pub struct Program {
    /// The plan this program was built from.
    pub plan: Plan,
    /// The function under test.
    pub function: Function,
    /// The rendered SLC source (`via_slc` plans only, kept for reproducer
    /// dumps).
    pub slc: Option<String>,
    /// Minimum element count every buffer must have for all accesses
    /// (at `i = 0`) to stay in bounds.
    pub min_len: usize,
}

impl Program {
    /// Element type of every array in the program.
    pub fn elem(&self) -> ScalarType {
        if self.plan.int {
            ScalarType::I64
        } else {
            ScalarType::F64
        }
    }
}

/// Build the program a plan describes.
///
/// # Errors
///
/// Returns a message when the SLC leg fails to compile — generator-rendered
/// source must always be accepted, so any error here is itself a bug worth
/// minimizing.
pub fn build(plan: &Plan) -> Result<Program, String> {
    let min_len = min_len(plan);
    if plan.via_slc {
        let src = render_slc(plan);
        let m = lslp_frontend::compile(&src)
            .map_err(|e| format!("generated SLC rejected: {e}\n--- source ---\n{src}"))?;
        let function = m
            .functions
            .into_iter()
            .next()
            .ok_or_else(|| "frontend produced no function".to_string())?;
        Ok(Program { plan: plan.clone(), function, slc: Some(src), min_len })
    } else {
        let function = build_ir(plan);
        Ok(Program { plan: plan.clone(), function, slc: None, min_len })
    }
}

/// Trip count and branchiness implied by the control plan (`trip = 1`
/// means the groups run once, with no enclosing loop).
fn control_shape(plan: &Plan) -> (usize, bool) {
    match plan.control {
        ControlPlan::None => (1, false),
        ControlPlan::IfDiamond => (1, true),
        ControlPlan::Loop { trip, branchy } => (trip, branchy),
    }
}

/// Per-iteration index stride under a loop: the total output lane count,
/// so consecutive iterations write adjacent, disjoint store runs (the
/// cross-iteration adjacency unroll-and-SLP exists to exploit).
fn out_stride(plan: &Plan) -> usize {
    plan.groups.iter().map(|g| g.lanes).sum()
}

/// Smallest buffer length (elements) covering every access at `i = 0`.
fn min_len(plan: &Plan) -> usize {
    let (trip, branchy) = control_shape(plan);
    let stride = out_stride(plan);
    let mut out_extent = 0;
    let mut in_extent = 0;
    for g in &plan.groups {
        in_extent = in_extent.max(max_load_base(&g.shape) + g.lanes);
        out_extent += g.lanes;
    }
    if branchy {
        // Each diamond gates on `IN0` loaded at the lane's output offset.
        in_extent = in_extent.max(out_extent);
    }
    // Iteration `k` shifts every body access by `k * stride`.
    let shift = (trip - 1) * stride;
    out_extent += shift;
    in_extent += shift;
    if let Some(r) = &plan.reduction {
        in_extent = in_extent.max(r.width);
        out_extent += 1;
    }
    out_extent.max(in_extent).max(1)
}

fn max_load_base(shape: &Shape) -> usize {
    match shape {
        Shape::Load { base, .. } => *base,
        Shape::Const(_) => 0,
        Shape::Bin { lhs, rhs, .. } | Shape::Mixed { lhs, rhs, .. } => {
            max_load_base(lhs).max(max_load_base(rhs))
        }
        Shape::Chain { operands, .. } => operands.iter().map(max_load_base).max().unwrap_or(0),
    }
}

/// Lane emission order: `reversed` groups store high lanes first, so seed
/// collection must find the chain by address, not program order.
fn lane_order(lanes: usize, reversed: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..lanes).collect();
    if reversed {
        order.reverse();
    }
    order
}

/// Whether lane `l` swaps the operands of a commutative [`Shape::Bin`].
fn swaps(swap_mask: u8, l: usize) -> bool {
    (swap_mask >> (l % 8)) & 1 == 1
}

/// Chain operand visit order for lane `l`: rotate left by `rot * l`.
fn chain_order(n: usize, rot: usize, l: usize) -> Vec<usize> {
    let start = (rot * l) % n;
    (0..n).map(|k| (start + k) % n).collect()
}

// ---------------------------------------------------------------------------
// Direct IR leg.
// ---------------------------------------------------------------------------

struct IrCtx {
    out: ValueId,
    ins: Vec<ValueId>,
    i: ValueId,
    int: bool,
    /// Loop-body context: the induction variable and the per-iteration
    /// index stride (every access adds `iv * stride`).
    iv: Option<(ValueId, usize)>,
}

/// Append an instruction to block `bb` (CFG construction) or to the
/// straight-line body.
fn emit(
    f: &mut Function,
    bb: Option<BlockId>,
    op: Opcode,
    ty: Type,
    args: Vec<ValueId>,
    attr: InstAttr,
) -> ValueId {
    match bb {
        Some(b) => f.push_in_block(b, op, ty, args, attr),
        None => f.push(op, ty, args, attr),
    }
}

fn build_ir(plan: &Plan) -> Function {
    let elem_ty = if plan.int { Type::I64 } else { Type::F64 };
    let mut f = Function::new("fuzz");
    let out = f.add_param("OUT", Type::PTR);
    let ins: Vec<ValueId> =
        (0..plan.arrays).map(|a| f.add_param(format!("IN{a}"), Type::PTR)).collect();
    let i = f.add_param("i", Type::I64);
    let mut cx = IrCtx { out, ins, i, int: plan.int, iv: None };
    let stride = out_stride(plan);

    match plan.control {
        ControlPlan::None => {
            let mut bb = None;
            emit_groups(&mut f, &cx, plan, elem_ty, false, &mut bb);
            emit_reduction(&mut f, &cx, plan, elem_ty, stride, bb);
        }
        ControlPlan::IfDiamond => {
            let entry = f.init_cfg();
            let mut bb = Some(entry);
            emit_groups(&mut f, &cx, plan, elem_ty, true, &mut bb);
            emit_reduction(&mut f, &cx, plan, elem_ty, stride, bb);
            f.set_term(bb.expect("CFG mode"), Terminator::Ret);
        }
        ControlPlan::Loop { trip, branchy } => {
            let entry = f.init_cfg();
            let body = f.add_block();
            let exit = f.add_block();
            let iv = f.add_block_param(body, None, Type::I64);
            let trip_c = f.const_i64(trip as i64);
            f.set_term(entry, Terminator::Loop { trip: trip_c, body, init: vec![], exit });
            cx.iv = Some((iv, stride));
            let mut bb = Some(body);
            emit_groups(&mut f, &cx, plan, elem_ty, branchy, &mut bb);
            f.set_term(bb.expect("CFG mode"), Terminator::Continue { args: vec![] });
            cx.iv = None;
            emit_reduction(&mut f, &cx, plan, elem_ty, trip * stride, Some(exit));
            f.set_term(exit, Terminator::Ret);
        }
    }
    f
}

/// Emit every store group into `bb`, advancing it through diamond joins
/// when `branchy`.
fn emit_groups(
    f: &mut Function,
    cx: &IrCtx,
    plan: &Plan,
    elem_ty: Type,
    branchy: bool,
    bb: &mut Option<BlockId>,
) {
    let mut out_base = 0;
    for g in &plan.groups {
        for l in lane_order(g.lanes, g.reversed) {
            let mut v = emit_shape(f, cx, &g.shape, l, elem_ty, *bb);
            if branchy {
                v = emit_diamond(f, cx, v, out_base + l, elem_ty, bb);
            }
            emit_store(f, cx, cx.out, out_base + l, v, *bb);
        }
        out_base += g.lanes;
    }
}

fn emit_reduction(
    f: &mut Function,
    cx: &IrCtx,
    plan: &Plan,
    elem_ty: Type,
    out_base: usize,
    bb: Option<BlockId>,
) {
    let Some(r) = &plan.reduction else { return };
    let mut acc = emit_load(f, cx, cx.ins[r.arr], 0, elem_ty, bb);
    for k in 1..r.width {
        let e = emit_load(f, cx, cx.ins[r.arr], k, elem_ty, bb);
        acc = emit(f, bb, r.op, elem_ty, vec![acc, e], InstAttr::None);
    }
    emit_store(f, cx, cx.out, out_base, acc, bb);
}

/// Gate a lane value behind a branch diamond:
/// `if IN0[idx] < T { v } else { IN0[idx] }` with empty arm blocks, the
/// exact shape if-conversion turns into a `select`. Advances `bb` to the
/// join block.
fn emit_diamond(
    f: &mut Function,
    cx: &IrCtx,
    v: ValueId,
    off: usize,
    elem_ty: Type,
    bb: &mut Option<BlockId>,
) -> ValueId {
    let cur = bb.expect("branchy emission requires CFG mode");
    let gate = emit_load(f, cx, cx.ins[0], off, elem_ty, Some(cur));
    // Thresholds sit inside the salted init ranges (ints are -300..720,
    // floats 0.25..4.1875), so both arms are exercised.
    let (op, attr, thresh) = if cx.int {
        (Opcode::ICmp, InstAttr::IntPred(IntPred::Slt), f.const_i64(0))
    } else {
        (Opcode::FCmp, InstAttr::FloatPred(FloatPred::Olt), f.const_float(ScalarType::F64, 1.0))
    };
    let cond = f.push_in_block(cur, op, Type::Scalar(ScalarType::I8), vec![gate, thresh], attr);
    let then_b = f.add_block();
    let else_b = f.add_block();
    let join = f.add_block();
    let res = f.add_block_param(join, None, elem_ty);
    f.set_term(
        cur,
        Terminator::Br {
            cond,
            then_to: then_b,
            then_args: vec![],
            else_to: else_b,
            else_args: vec![],
        },
    );
    f.set_term(then_b, Terminator::Jump { target: join, args: vec![v] });
    f.set_term(else_b, Terminator::Jump { target: join, args: vec![gate] });
    *bb = Some(join);
    res
}

fn emit_index(
    f: &mut Function,
    cx: &IrCtx,
    ptr: ValueId,
    off: usize,
    bb: Option<BlockId>,
) -> ValueId {
    let c = f.const_i64(off as i64);
    let mut idx = emit(f, bb, Opcode::Add, Type::I64, vec![cx.i, c], InstAttr::None);
    if let Some((iv, stride)) = cx.iv {
        let s = f.const_i64(stride as i64);
        let scaled = emit(f, bb, Opcode::Mul, Type::I64, vec![s, iv], InstAttr::None);
        idx = emit(f, bb, Opcode::Add, Type::I64, vec![idx, scaled], InstAttr::None);
    }
    emit(f, bb, Opcode::Gep, Type::PTR, vec![ptr, idx], InstAttr::ElemBytes(8))
}

fn emit_load(
    f: &mut Function,
    cx: &IrCtx,
    ptr: ValueId,
    off: usize,
    ty: Type,
    bb: Option<BlockId>,
) -> ValueId {
    let g = emit_index(f, cx, ptr, off, bb);
    emit(f, bb, Opcode::Load, ty, vec![g], InstAttr::None)
}

fn emit_store(
    f: &mut Function,
    cx: &IrCtx,
    out: ValueId,
    off: usize,
    v: ValueId,
    bb: Option<BlockId>,
) {
    let g = emit_index(f, cx, out, off, bb);
    emit(f, bb, Opcode::Store, Type::Void, vec![v, g], InstAttr::None);
}

fn emit_const(f: &mut Function, cx: &IrCtx, c: i64) -> ValueId {
    if cx.int {
        f.const_i64(c)
    } else {
        f.const_float(ScalarType::F64, c as f64)
    }
}

fn emit_shape(
    f: &mut Function,
    cx: &IrCtx,
    shape: &Shape,
    l: usize,
    ty: Type,
    bb: Option<BlockId>,
) -> ValueId {
    match shape {
        Shape::Load { arr, base } => emit_load(f, cx, cx.ins[*arr], base + l, ty, bb),
        Shape::Const(c) => emit_const(f, cx, *c),
        Shape::Bin { op, swap_mask, lhs, rhs } => {
            let a = emit_shape(f, cx, lhs, l, ty, bb);
            let b = emit_shape(f, cx, rhs, l, ty, bb);
            let (a, b) = if swaps(*swap_mask, l) { (b, a) } else { (a, b) };
            emit(f, bb, *op, ty, vec![a, b], InstAttr::None)
        }
        Shape::Chain { op, rot, operands } => {
            let vals: Vec<ValueId> =
                operands.iter().map(|o| emit_shape(f, cx, o, l, ty, bb)).collect();
            let order = chain_order(vals.len(), *rot, l);
            let mut acc = vals[order[0]];
            for &k in &order[1..] {
                acc = emit(f, bb, *op, ty, vec![acc, vals[k]], InstAttr::None);
            }
            acc
        }
        Shape::Mixed { op_even, op_odd, lhs, rhs } => {
            let a = emit_shape(f, cx, lhs, l, ty, bb);
            let b = emit_shape(f, cx, rhs, l, ty, bb);
            let op = if l.is_multiple_of(2) { *op_even } else { *op_odd };
            emit(f, bb, op, ty, vec![a, b], InstAttr::None)
        }
    }
}

// ---------------------------------------------------------------------------
// SLC leg.
// ---------------------------------------------------------------------------

fn op_str(op: Opcode) -> &'static str {
    match op {
        Opcode::Add | Opcode::FAdd => "+",
        Opcode::Sub | Opcode::FSub => "-",
        Opcode::Mul | Opcode::FMul => "*",
        Opcode::And => "&",
        Opcode::Or => "|",
        Opcode::Xor => "^",
        Opcode::Shl => "<<",
        other => panic!("no SLC rendering for {other}"),
    }
}

/// Render a buffer index: `i + off` plus `stride*k` inside a loop body.
fn render_index(off: usize, loop_stride: Option<usize>) -> String {
    match loop_stride {
        Some(s) => format!("i + {off} + {s}*k"),
        None => format!("i + {off}"),
    }
}

fn render_slc(plan: &Plan) -> String {
    let ty = if plan.int { "i64" } else { "f64" };
    let mut params = format!("{ty}* OUT");
    for a in 0..plan.arrays {
        params.push_str(&format!(", {ty}* IN{a}"));
    }
    params.push_str(", i64 i");

    let (trip, branchy) = control_shape(plan);
    let in_loop = trip > 1;
    let ls = in_loop.then(|| out_stride(plan));
    let pad = if in_loop { "        " } else { "    " };
    let thresh = if plan.int { "0" } else { "1.0" };

    let mut body = String::new();
    if in_loop {
        body.push_str(&format!("    loop k in 0..{trip} {{\n"));
    }
    let mut out_base = 0;
    for g in &plan.groups {
        for l in lane_order(g.lanes, g.reversed) {
            let expr = render_shape(&g.shape, l, plan.int, ls);
            let idx = render_index(out_base + l, ls);
            if branchy {
                // The gate and value are bound first so the `if` arms are
                // bare variable references — empty arm blocks, matching
                // the direct-IR leg and the if-converter's legality rule.
                let n = out_base + l;
                body.push_str(&format!("{pad}let g{n}: {ty} = IN0[{idx}];\n"));
                body.push_str(&format!("{pad}let v{n}: {ty} = {expr};\n"));
                body.push_str(&format!(
                    "{pad}OUT[{idx}] = if g{n} < {thresh} {{ v{n} }} else {{ g{n} }};\n"
                ));
            } else {
                body.push_str(&format!("{pad}OUT[{idx}] = {expr};\n"));
            }
        }
        out_base += g.lanes;
    }
    if in_loop {
        body.push_str("    }\n");
    }
    if let Some(r) = &plan.reduction {
        let total = trip * out_stride(plan);
        let mut expr = format!("IN{}[i + 0]", r.arr);
        for k in 1..r.width {
            expr = format!("({expr} {} IN{}[i + {k}])", op_str(r.op), r.arr);
        }
        body.push_str(&format!("    OUT[i + {total}] = {expr};\n"));
    }
    format!("kernel fuzz({params}) {{\n{body}}}\n")
}

fn render_const(c: i64, int: bool) -> String {
    if int {
        format!("{c}")
    } else {
        format!("{c}.0")
    }
}

fn render_shape(shape: &Shape, l: usize, int: bool, ls: Option<usize>) -> String {
    match shape {
        Shape::Load { arr, base } => format!("IN{arr}[{}]", render_index(base + l, ls)),
        Shape::Const(c) => render_const(*c, int),
        Shape::Bin { op, swap_mask, lhs, rhs } => {
            let a = render_shape(lhs, l, int, ls);
            let b = render_shape(rhs, l, int, ls);
            let (a, b) = if swaps(*swap_mask, l) { (b, a) } else { (a, b) };
            format!("({a} {} {b})", op_str(*op))
        }
        Shape::Chain { op, rot, operands } => {
            let vals: Vec<String> = operands.iter().map(|o| render_shape(o, l, int, ls)).collect();
            let order = chain_order(vals.len(), *rot, l);
            let mut acc = vals[order[0]].clone();
            for &k in &order[1..] {
                acc = format!("({acc} {} {})", op_str(*op), vals[k]);
            }
            acc
        }
        Shape::Mixed { op_even, op_odd, lhs, rhs } => {
            let a = render_shape(lhs, l, int, ls);
            let b = render_shape(rhs, l, int, ls);
            let op = if l.is_multiple_of(2) { *op_even } else { *op_odd };
            format!("({a} {} {b})", op_str(op))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::GroupPlan;
    use rand::{Rng, SeedableRng};

    /// Both construction legs of the same plan must compute identical
    /// results (the SLC leg is only a different road to the same program).
    #[test]
    fn slc_and_ir_legs_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut checked = 0;
        for _ in 0..200 {
            let len = rng.gen_range(8usize..96);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let mut plan = Plan::decode(&bytes);
            plan.via_slc = false;
            let ir_leg = build(&plan).expect("direct IR leg cannot fail");
            plan.via_slc = true;
            let slc_leg = build(&plan).expect("generated SLC must compile");
            let a = crate::exec::run_capture(&ir_leg.function, &plan, ir_leg.min_len, 3)
                .expect("IR leg executes");
            let b = crate::exec::run_capture(&slc_leg.function, &plan, slc_leg.min_len, 3)
                .expect("SLC leg executes");
            assert!(
                crate::exec::compare(&a, &b, true).is_none(),
                "legs diverged for {plan:?}\n{}",
                slc_leg.slc.unwrap()
            );
            checked += 1;
        }
        assert_eq!(checked, 200);
    }

    #[test]
    fn reduction_renders_and_builds() {
        let plan = Plan {
            int: true,
            via_slc: true,
            arrays: 1,
            groups: vec![GroupPlan {
                lanes: 4,
                reversed: false,
                shape: Shape::Load { arr: 0, base: 0 },
            }],
            reduction: Some(crate::plan::ReductionPlan { op: Opcode::Add, arr: 0, width: 5 }),
            control: ControlPlan::None,
        };
        let p = build(&plan).unwrap();
        assert_eq!(p.min_len, 5);
        assert!(p.slc.unwrap().contains("OUT[i + 4]"));
    }

    fn control_base(int: bool, control: ControlPlan) -> Plan {
        let op = if int { Opcode::Add } else { Opcode::FAdd };
        Plan {
            int,
            via_slc: false,
            arrays: 1,
            groups: vec![GroupPlan {
                lanes: 4,
                reversed: false,
                shape: Shape::Bin {
                    op,
                    swap_mask: 0,
                    lhs: Box::new(Shape::Load { arr: 0, base: 0 }),
                    rhs: Box::new(Shape::Const(3)),
                },
            }],
            reduction: Some(crate::plan::ReductionPlan { op, arr: 0, width: 4 }),
            control,
        }
    }

    /// Control plans build a verifying CFG on both legs, and the legs
    /// still agree.
    #[test]
    fn control_legs_build_cfgs_and_agree() {
        for int in [true, false] {
            for control in [
                ControlPlan::Loop { trip: 3, branchy: false },
                ControlPlan::Loop { trip: 4, branchy: true },
                ControlPlan::IfDiamond,
            ] {
                let mut plan = control_base(int, control);
                let ir_leg = build(&plan).expect("direct IR leg cannot fail");
                assert!(
                    ir_leg.function.cfg().is_some(),
                    "{control:?} must build a CFG on the IR leg"
                );
                lslp_ir::verify_function(&ir_leg.function)
                    .unwrap_or_else(|e| panic!("{control:?} (IR leg): {e}"));
                plan.via_slc = true;
                let slc_leg = build(&plan).expect("generated SLC must compile");
                assert!(slc_leg.function.cfg().is_some(), "{control:?} (SLC leg) must be a CFG");
                let a = crate::exec::run_capture(&ir_leg.function, &plan, ir_leg.min_len, 5)
                    .expect("IR leg executes");
                let b = crate::exec::run_capture(&slc_leg.function, &plan, slc_leg.min_len, 5)
                    .expect("SLC leg executes");
                assert!(
                    crate::exec::compare(&a, &b, true).is_none(),
                    "legs diverged for {plan:?}\n{}",
                    slc_leg.slc.unwrap()
                );
            }
        }
    }

    /// Loop iterations write disjoint adjacent runs; `min_len` covers the
    /// full footprint.
    #[test]
    fn loop_min_len_covers_every_iteration() {
        let plan = control_base(true, ControlPlan::Loop { trip: 3, branchy: true });
        let p = build(&plan).unwrap();
        // 4 lanes * 3 iterations + 1 reduction slot.
        assert_eq!(p.min_len, 13);
        // Shifting the index by the salt's `i` offset must stay in bounds.
        for salt in 0..6 {
            crate::exec::run_capture(&p.function, &plan, p.min_len, salt)
                .unwrap_or_else(|e| panic!("salt {salt}: {e}"));
        }
    }
}
