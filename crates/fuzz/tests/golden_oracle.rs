//! Golden-oracle negative tests: plant a known miscompile through the
//! test-only [`Sabotage`] hook and prove the fuzzing oracles catch it.
//!
//! An oracle that never fires is indistinguishable from one that is
//! wired up wrong; each sabotage variant here is paired with the oracle
//! kinds designed to catch it, and the union of the four variants
//! covers all five oracles:
//!
//! * `SwapShuffleMask` (lane-swapped vector store) → differential and,
//!   for float programs, metamorphic;
//! * `CommitWorstVf` (reversed candidate order) → cross-VF consistency;
//! * `SkipFinalDce` (dead scalars survive) → pipeline idempotence;
//! * `CommitWorstPackSet` (global planner commits nothing) → packing
//!   quality.

use lslp::{CompileOptions, Sabotage, Session, VectorizerConfig};
use lslp_fuzz::{
    base_config, build, check_program, default_targets, fnv64, ControlPlan, OracleKind, Plan, Shape,
};
use lslp_fuzz::{GroupPlan, Program};
use lslp_ir::Opcode;

/// A 4-lane axpy-like group: wide enough that skylake/avx512 price both
/// VF4 and VF2 (so `CommitWorstVf` has a worse candidate to commit), and
/// the per-lane loads differ (so a lane swap is observable).
fn axpy_plan(int: bool) -> Plan {
    let op = if int { Opcode::Add } else { Opcode::FAdd };
    Plan {
        int,
        via_slc: false,
        arrays: 1,
        groups: vec![GroupPlan {
            lanes: 4,
            reversed: false,
            shape: Shape::Bin {
                op,
                swap_mask: 0,
                lhs: Box::new(Shape::Load { arr: 0, base: 0 }),
                rhs: Box::new(Shape::Const(3)),
            },
        }],
        reduction: None,
        control: ControlPlan::None,
    }
}

/// The axpy group wrapped in control flow: every lane's value goes
/// through a branch diamond (`if IN0[idx] < T { v } else { IN0[idx] }`),
/// optionally inside a counted loop. The arms always differ (`v` is the
/// gate load plus 3), so a swapped select miscompiles on every lane.
fn control_plan(int: bool, control: ControlPlan) -> Plan {
    Plan { control, ..axpy_plan(int) }
}

fn build_plan(plan: &Plan) -> Program {
    build(plan).expect("golden plan builds")
}

fn kinds_under(plan: &Plan, sabotage: Sabotage) -> Vec<OracleKind> {
    let cfg = VectorizerConfig { sabotage, ..base_config() };
    let p = build_plan(plan);
    let salt = fnv64(&plan.encode());
    let outcome = check_program(&p, &cfg, &default_targets(), salt);
    let mut kinds: Vec<OracleKind> = outcome.violations.iter().map(|v| v.oracle).collect();
    kinds.dedup();
    kinds
}

#[test]
fn clean_control_passes_every_oracle() {
    for int in [true, false] {
        let kinds = kinds_under(&axpy_plan(int), Sabotage::None);
        assert!(kinds.is_empty(), "clean control (int={int}) flagged: {kinds:?}");
    }
}

#[test]
fn clean_control_flow_plans_pass_every_oracle() {
    for int in [true, false] {
        for control in [
            ControlPlan::Loop { trip: 4, branchy: true },
            ControlPlan::Loop { trip: 3, branchy: false },
            ControlPlan::IfDiamond,
        ] {
            let kinds = kinds_under(&control_plan(int, control), Sabotage::None);
            assert!(
                kinds.is_empty(),
                "clean control plan (int={int}, {control:?}) flagged: {kinds:?}"
            );
        }
    }
}

/// The control-flow golden test: a miscompiled if-conversion (swapped
/// select arms) must be caught by the differential oracle — the pipeline
/// legs flatten the diamonds through the sabotaged pass and their output
/// diverges from the scalar CFG reference.
#[test]
fn swapped_if_arms_trip_the_differential_oracle() {
    for int in [true, false] {
        for control in [ControlPlan::Loop { trip: 4, branchy: true }, ControlPlan::IfDiamond] {
            let kinds = kinds_under(&control_plan(int, control), Sabotage::SwapIfArms);
            assert!(
                kinds.contains(&OracleKind::Differential),
                "differential missed the swapped if-arms (int={int}, {control:?}): {kinds:?}"
            );
        }
    }
}

/// `SwapIfArms` is a no-op on programs with no diamonds: the straight-line
/// corpus must stay green under it (no false alarms).
#[test]
fn swapped_if_arms_is_inert_without_diamonds() {
    for plan in [axpy_plan(true), control_plan(true, ControlPlan::Loop { trip: 3, branchy: false })]
    {
        let kinds = kinds_under(&plan, Sabotage::SwapIfArms);
        assert!(kinds.is_empty(), "diamond-free plan flagged under SwapIfArms: {kinds:?}");
    }
}

#[test]
fn swapped_shuffle_mask_trips_differential_and_metamorphic() {
    // Float: the metamorphic oracle compares the permuted-compiled output
    // against the scalar reference, so a deterministic miscompile shared
    // by both compiles still trips it.
    let kinds = kinds_under(&axpy_plan(false), Sabotage::SwapShuffleMask);
    assert!(
        kinds.contains(&OracleKind::Differential),
        "differential missed the lane swap: {kinds:?}"
    );
    assert!(
        kinds.contains(&OracleKind::Metamorphic),
        "metamorphic missed the lane swap: {kinds:?}"
    );
}

#[test]
fn committing_the_worst_vf_trips_cross_vf() {
    let kinds = kinds_under(&axpy_plan(true), Sabotage::CommitWorstVf);
    assert!(kinds.contains(&OracleKind::CrossVf), "cross-VF missed the bad commit: {kinds:?}");
}

#[test]
fn skipping_final_dce_trips_idempotence() {
    let kinds = kinds_under(&axpy_plan(true), Sabotage::SkipFinalDce);
    assert!(
        kinds.contains(&OracleKind::Idempotence),
        "idempotence missed the dead code: {kinds:?}"
    );
}

#[test]
fn committing_the_worst_pack_set_trips_packing_quality() {
    // Under `CommitWorstPackSet` the global planner commits nothing, so
    // its artifact stays scalar while greedy's vectorizes — a strictly
    // costlier global artifact, exactly what the oracle polices.
    let kinds = kinds_under(&axpy_plan(true), Sabotage::CommitWorstPackSet);
    assert!(
        kinds.contains(&OracleKind::PackingQuality),
        "packing quality missed the empty commit: {kinds:?}"
    );
}

/// Together the planted bugs exercise every oracle the fuzzer runs.
#[test]
fn sabotage_union_covers_all_five_oracles() {
    let mut seen = Vec::new();
    seen.extend(kinds_under(&axpy_plan(false), Sabotage::SwapShuffleMask));
    seen.extend(kinds_under(&axpy_plan(true), Sabotage::CommitWorstVf));
    seen.extend(kinds_under(&axpy_plan(true), Sabotage::SkipFinalDce));
    seen.extend(kinds_under(&axpy_plan(true), Sabotage::CommitWorstPackSet));
    for kind in [
        OracleKind::Differential,
        OracleKind::Metamorphic,
        OracleKind::CrossVf,
        OracleKind::Idempotence,
        OracleKind::PackingQuality,
    ] {
        assert!(seen.contains(&kind), "no sabotage variant reached {kind:?}");
    }
}

/// The hook is reachable from the public options surface too, so the
/// whole `Session` pipeline can be placed under oracle scrutiny.
#[test]
fn sabotage_plumbs_through_compile_options() {
    let src = "kernel axpy(i64* OUT, i64* IN0, i64 i) {\n\
               OUT[i + 0] = IN0[i + 0] + 3;\n\
               OUT[i + 1] = IN0[i + 1] + 3;\n\
               OUT[i + 2] = IN0[i + 2] + 3;\n\
               OUT[i + 3] = IN0[i + 3] + 3;\n\
               }";
    let compile = |sabotage| {
        let opts =
            CompileOptions::preset("LSLP").sabotage(sabotage).build().expect("valid options");
        let mut session = Session::new(opts);
        session.compile(src).expect("compiles").ir()
    };
    // `SkipFinalDce` would be masked here: the full pipeline runs its own
    // DCE pass after the vectorizer. The planted lane-swap shuffle has a
    // use, so it survives all the way to the artifact.
    let clean = compile(Sabotage::None);
    let dirty = compile(Sabotage::SwapShuffleMask);
    assert_ne!(clean, dirty, "the planted shuffle must survive into the artifact IR");
}
