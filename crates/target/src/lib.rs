//! # lslp-target
//!
//! TTI-style target cost models for the LSLP reproduction, standing in for
//! LLVM's `TargetTransformInfo` at the scale the paper's cost function
//! needs (§3.1): per-opcode scalar and vector costs, gather/extract
//! penalties, and the register width that bounds the vector factor.
//!
//! Costs are abstract throughput units, not cycles on any particular
//! microarchitecture; what matters for the paper's story is the *relative*
//! cost of vector versus scalar code, which these constants preserve:
//! one unit per simple ALU/memory op per register, free address
//! arithmetic (`gep` folds into addressing modes), expensive division,
//! and per-element insert/extract penalties for crossing the
//! scalar/vector boundary.

#![warn(missing_docs)]

use lslp_ir::{Opcode, ScalarType};

/// A target cost model: register width plus the unit costs the SLP cost
/// function (and the performance simulator) query.
///
/// Construct via [`CostModel::skylake_like`] (256-bit, the paper's
/// evaluation machine) or [`CostModel::sse_like`] (128-bit); `Default` is
/// the Skylake-like model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Human-readable model name (for reports).
    pub name: &'static str,
    /// SIMD register width in bits; bounds the vector factor per element
    /// type (see [`CostModel::max_vf`]).
    pub register_bits: u32,
    /// Cost of inserting one scalar into a vector register.
    pub insert_cost: i64,
    /// Cost of extracting one scalar from a vector register.
    pub extract_cost: i64,
    /// Cost of one vector shuffle.
    pub shuffle_cost: i64,
    /// Cost of a division or remainder (scalar, per register for vectors).
    pub div_cost: i64,
}

impl CostModel {
    /// A 256-bit AVX2-era model approximating the paper's Skylake
    /// evaluation machine.
    pub fn skylake_like() -> CostModel {
        CostModel {
            name: "skylake-like",
            register_bits: 256,
            insert_cost: 1,
            extract_cost: 1,
            shuffle_cost: 1,
            div_cost: 20,
        }
    }

    /// A 128-bit SSE-era model: narrower registers halve the maximum
    /// vector factor and double the per-op cost of wide bundles.
    pub fn sse_like() -> CostModel {
        CostModel { name: "sse-128", register_bits: 128, ..CostModel::skylake_like() }
    }

    /// A 512-bit AVX-512-era model: doubles the maximum vector factor
    /// relative to the Skylake-like 256-bit model.
    pub fn avx512_like() -> CostModel {
        CostModel { name: "avx512-512", register_bits: 512, ..CostModel::skylake_like() }
    }

    /// The cost of one scalar instruction of the given opcode.
    ///
    /// Address arithmetic is free (it folds into addressing modes);
    /// division and remainder cost [`CostModel::div_cost`]; everything
    /// else is one unit.
    pub fn scalar_cost(&self, op: Opcode) -> i64 {
        match op {
            Opcode::Gep => 0,
            Opcode::SDiv | Opcode::UDiv | Opcode::SRem | Opcode::URem | Opcode::FDiv => {
                self.div_cost
            }
            _ => 1,
        }
    }

    /// The cost of one vector instruction of `lanes` elements of `elem`.
    ///
    /// A bundle wider than one register is legalized by splitting, so the
    /// cost scales with the number of registers it occupies.
    pub fn vector_cost(&self, op: Opcode, elem: ScalarType, lanes: u32) -> i64 {
        self.scalar_cost(op) * self.registers_for(elem, lanes)
    }

    /// The cost of materializing a vector from `lanes` scalar values
    /// (paper §3.1): all-constant bundles are folded into a literal pool
    /// load (free), a splat of one non-constant value is a single
    /// broadcast, and a mixed bundle pays one insert per lane.
    pub fn gather_cost(&self, lanes: u32, any_non_const: bool, splat: bool) -> i64 {
        if !any_non_const {
            0
        } else if splat {
            self.insert_cost
        } else {
            self.insert_cost * lanes as i64
        }
    }

    /// The cost charged per vectorized scalar that still has a scalar user
    /// outside the tree (one `extractelement`).
    pub fn extract_for_external_use(&self) -> i64 {
        self.extract_cost
    }

    /// Maximum vector factor for the element type: how many elements fit
    /// in one register (at least 1).
    pub fn max_vf(&self, elem: ScalarType) -> u32 {
        (self.register_bits / elem.bits()).max(1)
    }

    /// Number of registers a bundle of `lanes` elements of `elem`
    /// occupies (at least 1).
    pub fn registers_for(&self, elem: ScalarType, lanes: u32) -> i64 {
        (lanes * elem.bits()).div_ceil(self.register_bits).max(1) as i64
    }
}

impl Default for CostModel {
    /// The Skylake-like 256-bit model (the paper's evaluation target).
    fn default() -> CostModel {
        CostModel::skylake_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_costs_match_paper_constants() {
        let tm = CostModel::skylake_like();
        // One unit per simple op; a 2-lane i64 op saves `lanes - 1`.
        assert_eq!(tm.scalar_cost(Opcode::Add), 1);
        assert_eq!(tm.vector_cost(Opcode::Add, ScalarType::I64, 2), 1);
        assert_eq!(tm.vector_cost(Opcode::Store, ScalarType::I64, 4), 1);
        // Address arithmetic is free.
        assert_eq!(tm.scalar_cost(Opcode::Gep), 0);
        // Division dominates.
        assert!(tm.scalar_cost(Opcode::SDiv) > 10);
    }

    #[test]
    fn gather_costs_follow_paper() {
        let tm = CostModel::skylake_like();
        assert_eq!(tm.gather_cost(4, false, false), 0, "constants are free");
        assert_eq!(tm.gather_cost(4, true, true), 1, "splat is one broadcast");
        assert_eq!(tm.gather_cost(4, true, false), 4, "mixed pays per lane");
    }

    #[test]
    fn register_width_bounds_vf() {
        let avx = CostModel::skylake_like();
        assert_eq!(avx.max_vf(ScalarType::I64), 4);
        assert_eq!(avx.max_vf(ScalarType::F32), 8);
        let sse = CostModel::sse_like();
        assert_eq!(sse.max_vf(ScalarType::I64), 2);
        assert_eq!(sse.max_vf(ScalarType::F64), 2);
    }

    #[test]
    fn wide_bundles_split_across_registers() {
        let sse = CostModel::sse_like();
        // 4 x i64 = 256 bits = two 128-bit registers.
        assert_eq!(sse.vector_cost(Opcode::Add, ScalarType::I64, 4), 2);
        let avx = CostModel::skylake_like();
        assert_eq!(avx.vector_cost(Opcode::Add, ScalarType::I64, 4), 1);
    }

    #[test]
    fn default_is_skylake() {
        assert_eq!(CostModel::default(), CostModel::skylake_like());
    }
}
