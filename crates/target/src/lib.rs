//! # lslp-target
//!
//! TTI-style target cost models for the LSLP reproduction, standing in for
//! LLVM's `TargetTransformInfo` at the scale the paper's cost function
//! needs (§3.1): per-opcode scalar and vector costs, gather/extract
//! penalties, and the register width that bounds the vector factor.
//!
//! Costs are abstract throughput units, not cycles on any particular
//! microarchitecture; what matters for the paper's story is the *relative*
//! cost of vector versus scalar code, which these constants preserve:
//! one unit per simple ALU/memory op per register, free address
//! arithmetic (`gep` folds into addressing modes), expensive division,
//! and per-element insert/extract penalties for crossing the
//! scalar/vector boundary.
//!
//! ## The registry
//!
//! Four named targets are built in (see [`TARGET_NAMES`]):
//!
//! | name           | reg bits | regs | notes                              |
//! |----------------|---------:|-----:|------------------------------------|
//! | `sse4.2`       |      128 |   16 | baseline x86 SIMD                  |
//! | `skylake-avx2` |      256 |   16 | the paper's evaluation machine     |
//! | `avx512`       |      512 |   32 | widest x86 vectors                 |
//! | `neon128`      |      128 |   32 | AArch64-class: pricier shuffles and|
//! |                |          |      | double-precision SIMD              |
//!
//! [`TargetSpec::parse`] accepts `"name[+feature,...]"` strings (e.g.
//! `"neon128+fast-div"`); see [`FEATURE_NAMES`] and `docs/TARGETS.md`.

#![warn(missing_docs)]

use std::fmt;

use lslp_ir::{Opcode, ScalarType};

/// Canonical names of the built-in targets, in documentation order.
pub const TARGET_NAMES: &[&str] = &["sse4.2", "skylake-avx2", "avx512", "neon128"];

/// Feature strings accepted by [`TargetSpec::parse`] after the target name.
pub const FEATURE_NAMES: &[&str] = &["fast-div", "slow-insert", "hw-gather"];

/// A target specification: SIMD register geometry plus the per-opcode /
/// per-type unit costs the SLP cost function (and the performance
/// simulator) query.
///
/// Obtain one from the registry ([`TargetSpec::lookup`]) or from a spec
/// string ([`TargetSpec::parse`]); `Default` is `skylake-avx2`, the
/// paper's evaluation machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TargetSpec {
    /// Canonical registry name (for reports and cache keys).
    pub name: &'static str,
    /// SIMD register width in bits; bounds the vector factor per element
    /// type (see [`TargetSpec::max_vf`]).
    pub register_bits: u32,
    /// Number of architectural vector registers (informational; reported
    /// by `lslpc --emit report` style consumers and docs).
    pub vector_regs: u32,
    /// Cost of inserting one scalar into a vector register.
    pub insert_cost: i64,
    /// Cost of extracting one scalar from a vector register.
    pub extract_cost: i64,
    /// Cost of one vector shuffle.
    pub shuffle_cost: i64,
    /// Cost of a division or remainder (scalar, per register for vectors).
    pub div_cost: i64,
    /// Cost of a multiply (scalar, per register for vectors).
    pub mul_cost: i64,
    /// Extra per-register factor applied to vector ops over `f64` lanes
    /// (models targets whose double-precision SIMD is half-rate; `1` on
    /// the x86 targets).
    pub f64_vector_factor: i64,
    /// Whether the target has a hardware gather: mixed (non-splat)
    /// gathers pay `ceil(lanes/2)` inserts instead of one per lane.
    pub hw_gather: bool,
    /// Feature strings applied on top of the base target, in parse order.
    pub features: Vec<&'static str>,
}

/// Error returned by [`TargetSpec::parse`] for unknown names or features.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetParseError {
    /// The base name before any `+` is not in the registry.
    UnknownTarget(String),
    /// A `+feature` suffix is not a recognized feature string.
    UnknownFeature(String),
    /// The spec string was empty.
    Empty,
}

impl fmt::Display for TargetParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetParseError::UnknownTarget(n) => {
                write!(f, "unknown target `{n}` (known targets: {})", TARGET_NAMES.join(", "))
            }
            TargetParseError::UnknownFeature(n) => {
                write!(f, "unknown feature `{n}` (known features: {})", FEATURE_NAMES.join(", "))
            }
            TargetParseError::Empty => write!(f, "empty target spec"),
        }
    }
}

impl std::error::Error for TargetParseError {}

impl TargetSpec {
    /// The 128-bit SSE 4.2 baseline: same unit costs as `skylake-avx2`
    /// but half the register width, so wide bundles split in two.
    pub fn sse42() -> TargetSpec {
        TargetSpec { name: "sse4.2", register_bits: 128, ..TargetSpec::skylake_avx2() }
    }

    /// The 256-bit AVX2-era model approximating the paper's Skylake
    /// evaluation machine. This is the default target; its constants are
    /// load-bearing for the reproduced figure outputs.
    pub fn skylake_avx2() -> TargetSpec {
        TargetSpec {
            name: "skylake-avx2",
            register_bits: 256,
            vector_regs: 16,
            insert_cost: 1,
            extract_cost: 1,
            shuffle_cost: 1,
            div_cost: 20,
            mul_cost: 1,
            f64_vector_factor: 1,
            hw_gather: false,
            features: Vec::new(),
        }
    }

    /// The 512-bit AVX-512 model: doubles the maximum vector factor and
    /// the register file relative to `skylake-avx2`.
    pub fn avx512() -> TargetSpec {
        TargetSpec {
            name: "avx512",
            register_bits: 512,
            vector_regs: 32,
            ..TargetSpec::skylake_avx2()
        }
    }

    /// A 128-bit AArch64 NEON-class model: 32 registers, pricier
    /// permutes, half-rate double-precision SIMD, slightly cheaper
    /// division than the x86 models price it.
    pub fn neon128() -> TargetSpec {
        TargetSpec {
            name: "neon128",
            register_bits: 128,
            vector_regs: 32,
            shuffle_cost: 2,
            div_cost: 24,
            f64_vector_factor: 2,
            ..TargetSpec::skylake_avx2()
        }
    }

    /// Look up a base target by its canonical registry name.
    pub fn lookup(name: &str) -> Option<TargetSpec> {
        match name {
            "sse4.2" => Some(TargetSpec::sse42()),
            "skylake-avx2" => Some(TargetSpec::skylake_avx2()),
            "avx512" => Some(TargetSpec::avx512()),
            "neon128" => Some(TargetSpec::neon128()),
            _ => None,
        }
    }

    /// Parse a `"name[+feature,...]"` spec string: a registry name
    /// followed by zero or more `+`-separated features (commas are also
    /// accepted as separators after the first `+`).
    ///
    /// ```
    /// use lslp_target::TargetSpec;
    /// let t = TargetSpec::parse("neon128+fast-div").unwrap();
    /// assert_eq!(t.name, "neon128");
    /// assert_eq!(t.div_cost, 12);
    /// assert!(TargetSpec::parse("pentium4").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<TargetSpec, TargetParseError> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err(TargetParseError::Empty);
        }
        let mut parts = spec.split('+');
        let base = parts.next().unwrap_or_default().trim();
        let mut t = TargetSpec::lookup(base)
            .ok_or_else(|| TargetParseError::UnknownTarget(base.to_string()))?;
        for chunk in parts {
            for feat in chunk.split(',') {
                let feat = feat.trim();
                if feat.is_empty() {
                    continue;
                }
                t.apply_feature(feat)?;
            }
        }
        Ok(t)
    }

    /// Apply one feature string to the spec, mutating its cost table.
    fn apply_feature(&mut self, feat: &str) -> Result<(), TargetParseError> {
        match feat {
            // Hardware divider twice as fast as the base model prices it.
            "fast-div" => self.div_cost = (self.div_cost / 2).max(1),
            // Scalar/vector boundary crossings cost double.
            "slow-insert" => {
                self.insert_cost *= 2;
                self.extract_cost *= 2;
            }
            // Hardware gather: mixed gathers pay ceil(lanes/2) inserts.
            "hw-gather" => self.hw_gather = true,
            other => return Err(TargetParseError::UnknownFeature(other.to_string())),
        }
        let canon = FEATURE_NAMES.iter().find(|f| **f == feat).copied();
        if let Some(canon) = canon {
            if !self.features.contains(&canon) {
                self.features.push(canon);
            }
        }
        Ok(())
    }

    /// The full spec string (`name` plus any `+feature` suffixes), as
    /// accepted back by [`TargetSpec::parse`]. Used in reports and as
    /// cache-key material.
    pub fn spec_string(&self) -> String {
        let mut s = self.name.to_string();
        for feat in &self.features {
            s.push('+');
            s.push_str(feat);
        }
        s
    }

    /// The cost of one scalar instruction of the given opcode — the
    /// per-opcode cost table.
    ///
    /// Address arithmetic is free (it folds into addressing modes);
    /// division and remainder cost [`TargetSpec::div_cost`]; multiplies
    /// cost [`TargetSpec::mul_cost`]; everything else is one unit.
    pub fn scalar_cost(&self, op: Opcode) -> i64 {
        match op {
            Opcode::Gep => 0,
            Opcode::SDiv | Opcode::UDiv | Opcode::SRem | Opcode::URem | Opcode::FDiv => {
                self.div_cost
            }
            Opcode::Mul | Opcode::FMul => self.mul_cost,
            _ => 1,
        }
    }

    /// Per-type multiplier applied to vector ops — the per-type cost
    /// table. `1` everywhere except targets with half-rate `f64` SIMD.
    pub fn elem_factor(&self, elem: ScalarType) -> i64 {
        match elem {
            ScalarType::F64 => self.f64_vector_factor,
            _ => 1,
        }
    }

    /// The cost of one vector instruction of `lanes` elements of `elem`.
    ///
    /// A bundle wider than one register is legalized by splitting, so the
    /// cost scales with the number of registers it occupies, times the
    /// per-type factor.
    pub fn vector_cost(&self, op: Opcode, elem: ScalarType, lanes: u32) -> i64 {
        self.scalar_cost(op) * self.registers_for(elem, lanes) * self.elem_factor(elem)
    }

    /// The cost of materializing a vector from `lanes` scalar values
    /// (paper §3.1): all-constant bundles are folded into a literal pool
    /// load (free), a splat of one non-constant value is a single
    /// broadcast, and a mixed bundle pays one insert per lane — or
    /// `ceil(lanes/2)` on targets with a hardware gather.
    pub fn gather_cost(&self, lanes: u32, any_non_const: bool, splat: bool) -> i64 {
        if !any_non_const {
            0
        } else if splat {
            self.insert_cost
        } else if self.hw_gather {
            self.insert_cost * lanes.div_ceil(2) as i64
        } else {
            self.insert_cost * lanes as i64
        }
    }

    /// The cost charged per vectorized scalar that still has a scalar user
    /// outside the tree (one `extractelement`).
    pub fn extract_for_external_use(&self) -> i64 {
        self.extract_cost
    }

    /// Maximum vector factor for the element type: how many elements fit
    /// in one register (at least 1).
    pub fn max_vf(&self, elem: ScalarType) -> u32 {
        (self.register_bits / elem.bits()).max(1)
    }

    /// Number of registers a bundle of `lanes` elements of `elem`
    /// occupies (at least 1).
    pub fn registers_for(&self, elem: ScalarType, lanes: u32) -> i64 {
        (lanes * elem.bits()).div_ceil(self.register_bits).max(1) as i64
    }

    /// Permutation penalty charged when two *abutting* packs of the same
    /// store chain are committed at different shapes: values flowing
    /// between the packs (or a later repack of the chain) need a
    /// cross-register shuffle per register of the wider pack. Zero when
    /// the shapes agree — adjacent same-VF packs compose without any
    /// lane movement. Used by the global packing planner
    /// (`lslp::packing`) to score candidate pack *sets*; the greedy
    /// packer never consults it.
    pub fn cross_pack_shuffle_cost(&self, elem: ScalarType, a_lanes: u32, b_lanes: u32) -> i64 {
        if a_lanes == b_lanes {
            0
        } else {
            self.shuffle_cost * self.registers_for(elem, a_lanes.max(b_lanes))
        }
    }
}

impl Default for TargetSpec {
    /// The `skylake-avx2` model (the paper's evaluation target).
    fn default() -> TargetSpec {
        TargetSpec::skylake_avx2()
    }
}

impl fmt::Display for TargetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec_string())
    }
}

/// Pre-`TargetSpec` name for the target cost model, kept so existing
/// call sites keep compiling. New code should name [`TargetSpec`]
/// directly; see the migration note in DESIGN.md §11.
pub type CostModel = TargetSpec;

impl TargetSpec {
    /// Deprecated constructor name for [`TargetSpec::skylake_avx2`].
    pub fn skylake_like() -> TargetSpec {
        TargetSpec::skylake_avx2()
    }

    /// Deprecated constructor name for [`TargetSpec::sse42`].
    pub fn sse_like() -> TargetSpec {
        TargetSpec::sse42()
    }

    /// Deprecated constructor name for [`TargetSpec::avx512`].
    pub fn avx512_like() -> TargetSpec {
        TargetSpec::avx512()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_costs_match_paper_constants() {
        let tm = TargetSpec::skylake_avx2();
        // One unit per simple op; a 2-lane i64 op saves `lanes - 1`.
        assert_eq!(tm.scalar_cost(Opcode::Add), 1);
        assert_eq!(tm.vector_cost(Opcode::Add, ScalarType::I64, 2), 1);
        assert_eq!(tm.vector_cost(Opcode::Store, ScalarType::I64, 4), 1);
        // Address arithmetic is free.
        assert_eq!(tm.scalar_cost(Opcode::Gep), 0);
        // Division dominates.
        assert!(tm.scalar_cost(Opcode::SDiv) > 10);
    }

    #[test]
    fn gather_costs_follow_paper() {
        let tm = TargetSpec::skylake_avx2();
        assert_eq!(tm.gather_cost(4, false, false), 0, "constants are free");
        assert_eq!(tm.gather_cost(4, true, true), 1, "splat is one broadcast");
        assert_eq!(tm.gather_cost(4, true, false), 4, "mixed pays per lane");
    }

    #[test]
    fn register_width_bounds_vf() {
        let avx = TargetSpec::skylake_avx2();
        assert_eq!(avx.max_vf(ScalarType::I64), 4);
        assert_eq!(avx.max_vf(ScalarType::F32), 8);
        let sse = TargetSpec::sse42();
        assert_eq!(sse.max_vf(ScalarType::I64), 2);
        assert_eq!(sse.max_vf(ScalarType::F64), 2);
        let avx512 = TargetSpec::avx512();
        assert_eq!(avx512.max_vf(ScalarType::I64), 8);
        assert_eq!(avx512.max_vf(ScalarType::F32), 16);
    }

    #[test]
    fn wide_bundles_split_across_registers() {
        let sse = TargetSpec::sse42();
        // 4 x i64 = 256 bits = two 128-bit registers.
        assert_eq!(sse.vector_cost(Opcode::Add, ScalarType::I64, 4), 2);
        let avx = TargetSpec::skylake_avx2();
        assert_eq!(avx.vector_cost(Opcode::Add, ScalarType::I64, 4), 1);
    }

    #[test]
    fn default_is_skylake() {
        assert_eq!(TargetSpec::default(), TargetSpec::skylake_avx2());
        // The deprecated constructor names stay equivalent.
        assert_eq!(TargetSpec::skylake_like(), TargetSpec::skylake_avx2());
        assert_eq!(TargetSpec::sse_like(), TargetSpec::sse42());
        assert_eq!(TargetSpec::avx512_like(), TargetSpec::avx512());
    }

    #[test]
    fn registry_covers_all_names() {
        for name in TARGET_NAMES {
            let t = TargetSpec::lookup(name).expect("registry name resolves");
            assert_eq!(&t.name, name, "lookup returns the canonical name");
            assert_eq!(TargetSpec::parse(name).unwrap(), t, "parse of bare name == lookup");
        }
        assert!(TargetSpec::lookup("itanium").is_none());
    }

    #[test]
    fn neon_prices_dp_simd_and_permutes_higher() {
        let neon = TargetSpec::neon128();
        let sse = TargetSpec::sse42();
        assert_eq!(neon.max_vf(ScalarType::F64), 2);
        assert!(neon.shuffle_cost > sse.shuffle_cost);
        assert!(
            neon.vector_cost(Opcode::FAdd, ScalarType::F64, 2)
                > sse.vector_cost(Opcode::FAdd, ScalarType::F64, 2)
        );
        // Single-precision SIMD is full rate.
        assert_eq!(
            neon.vector_cost(Opcode::FAdd, ScalarType::F32, 4),
            sse.vector_cost(Opcode::FAdd, ScalarType::F32, 4)
        );
    }

    #[test]
    fn parse_applies_features() {
        let t = TargetSpec::parse("skylake-avx2+fast-div").unwrap();
        assert_eq!(t.div_cost, 10);
        assert_eq!(t.spec_string(), "skylake-avx2+fast-div");
        let t = TargetSpec::parse("sse4.2+slow-insert,hw-gather").unwrap();
        assert_eq!(t.insert_cost, 2);
        assert_eq!(t.extract_cost, 2);
        assert!(t.hw_gather);
        assert_eq!(t.gather_cost(4, true, false), 4, "hw gather halves mixed cost (2 inserts x2)");
        assert_eq!(t.spec_string(), "sse4.2+slow-insert+hw-gather");
        // Round-trips through parse.
        assert_eq!(TargetSpec::parse(&t.spec_string()).unwrap(), t);
    }

    #[test]
    fn cross_pack_shuffle_cost_scales_with_shape_mismatch() {
        let t = TargetSpec::skylake_avx2();
        // Same shape: no permutation needed.
        assert_eq!(t.cross_pack_shuffle_cost(ScalarType::I64, 4, 4), 0);
        // Mismatched shapes: one shuffle per register of the wider pack,
        // symmetric in the operand order.
        let c = t.cross_pack_shuffle_cost(ScalarType::I64, 4, 2);
        assert_eq!(c, t.shuffle_cost * t.registers_for(ScalarType::I64, 4));
        assert_eq!(c, t.cross_pack_shuffle_cost(ScalarType::I64, 2, 4));
        // Wider element types span more registers and pay proportionally.
        let neon = TargetSpec::neon128();
        assert!(
            neon.cross_pack_shuffle_cost(ScalarType::I64, 8, 2)
                >= neon.cross_pack_shuffle_cost(ScalarType::I32, 8, 2)
        );
    }

    #[test]
    fn parse_rejects_unknowns() {
        assert_eq!(
            TargetSpec::parse("pentium4"),
            Err(TargetParseError::UnknownTarget("pentium4".into()))
        );
        assert_eq!(
            TargetSpec::parse("avx512+turbo"),
            Err(TargetParseError::UnknownFeature("turbo".into()))
        );
        assert_eq!(TargetSpec::parse("  "), Err(TargetParseError::Empty));
        let msg = TargetSpec::parse("pentium4").unwrap_err().to_string();
        assert!(msg.contains("skylake-avx2"), "error lists known targets: {msg}");
    }
}
