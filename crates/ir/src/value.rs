//! Value handles and constants.

use std::fmt;

use crate::types::{ScalarType, Type};

/// A handle to a value (argument, constant, or instruction) inside one
/// [`Function`](crate::Function).
///
/// Handles are plain indices into the function's value arena; they are only
/// meaningful together with the function that created them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ValueId(u32);

impl ValueId {
    /// Create a handle from a raw index. Intended for the owning function and
    /// serialization code; arbitrary indices will panic on use.
    pub fn from_raw(raw: u32) -> ValueId {
        ValueId(raw)
    }

    /// The raw arena index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The raw arena index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A handle to an interned [`Constant`] in one function's constant pool.
///
/// Equal constants intern to the same id, so id equality is constant
/// equality within a function. Like [`ValueId`], a `ConstId` is a plain
/// index and is only meaningful together with the function that interned
/// it — this is what lets `ValueData` stay small and `Copy`-cheap while
/// the (potentially large, e.g. vector) constant payload lives once in
/// the pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ConstId(u32);

impl ConstId {
    /// Create a handle from a raw pool index. Intended for the owning
    /// function and serialization code; arbitrary indices will panic on use.
    pub fn from_raw(raw: u32) -> ConstId {
        ConstId(raw)
    }

    /// The raw pool index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The raw pool index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A compile-time constant.
///
/// Floats are stored by their IEEE bit pattern so that constants are `Eq` and
/// `Hash` and can be interned; use [`Constant::float`] / [`Constant::as_f64`]
/// to work with numeric values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Constant {
    /// An integer constant of the given width, stored sign-extended.
    Int {
        /// The integer type (must satisfy [`ScalarType::is_int`]).
        ty: ScalarType,
        /// The value, canonicalized by sign-extension from `ty`'s width.
        value: i64,
    },
    /// A floating-point constant, stored as bits of its own width.
    Float {
        /// The float type (must satisfy [`ScalarType::is_float`]).
        ty: ScalarType,
        /// For `F32` the low 32 bits hold `f32::to_bits`; for `F64` all 64
        /// bits hold `f64::to_bits`.
        bits: u64,
    },
    /// A vector constant: one scalar constant per lane, all of `elem` type.
    Vector {
        /// The element type of every lane.
        elem: ScalarType,
        /// Per-lane scalar constants (`Int` or `Float`, never `Vector`).
        lanes: Vec<Constant>,
    },
}

/// Sign-extend the low `bits` bits of `value`.
fn sext(value: i64, bits: u32) -> i64 {
    if bits >= 64 {
        value
    } else {
        let shift = 64 - bits;
        (value << shift) >> shift
    }
}

impl Constant {
    /// An integer constant, canonicalized (wrapped and sign-extended) to the
    /// width of `ty`.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not an integer type.
    pub fn int(ty: ScalarType, value: i64) -> Constant {
        assert!(ty.is_int(), "Constant::int needs an integer type, got {ty}");
        Constant::Int { ty, value: sext(value, ty.bits()) }
    }

    /// A floating-point constant of type `ty` with value `value` (rounded to
    /// `f32` when `ty` is [`ScalarType::F32`]).
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not a float type.
    pub fn float(ty: ScalarType, value: f64) -> Constant {
        assert!(ty.is_float(), "Constant::float needs a float type, got {ty}");
        let bits = match ty {
            ScalarType::F32 => (value as f32).to_bits() as u64,
            _ => value.to_bits(),
        };
        Constant::Float { ty, bits }
    }

    /// A vector constant from per-lane scalars.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty, contains a vector, or mixes element types.
    pub fn vector(lanes: Vec<Constant>) -> Constant {
        assert!(!lanes.is_empty(), "vector constants need at least one lane");
        let elem = lanes[0].scalar_ty().expect("vector constant lanes must be scalars");
        for l in &lanes {
            assert_eq!(
                l.scalar_ty(),
                Some(elem),
                "vector constant lanes must share one element type"
            );
        }
        Constant::Vector { elem, lanes }
    }

    /// The IR type of this constant.
    pub fn ty(&self) -> Type {
        match self {
            Constant::Int { ty, .. } | Constant::Float { ty, .. } => Type::Scalar(*ty),
            Constant::Vector { elem, lanes } => Type::Vector(*elem, lanes.len() as u32),
        }
    }

    /// The scalar type, if this is a scalar constant.
    pub fn scalar_ty(&self) -> Option<ScalarType> {
        match self {
            Constant::Int { ty, .. } | Constant::Float { ty, .. } => Some(*ty),
            Constant::Vector { .. } => None,
        }
    }

    /// The integer value, if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Constant::Int { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// The float value (widened to `f64`), if this is a float constant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Constant::Float { ty: ScalarType::F32, bits } => {
                Some(f32::from_bits(*bits as u32) as f64)
            }
            Constant::Float { bits, .. } => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// Whether this constant is numerically zero (all lanes zero for vectors).
    pub fn is_zero(&self) -> bool {
        match self {
            Constant::Int { value, .. } => *value == 0,
            Constant::Float { .. } => self.as_f64() == Some(0.0),
            Constant::Vector { lanes, .. } => lanes.iter().all(Constant::is_zero),
        }
    }

    /// A zero constant of scalar type `ty`.
    pub fn zero(ty: ScalarType) -> Constant {
        if ty.is_float() {
            Constant::float(ty, 0.0)
        } else {
            // Pointers have no literal constants in this IR, so zero is only
            // meaningful for ints here; treat ptr-zero as an i64 null.
            Constant::Int { ty: if ty.is_int() { ty } else { ScalarType::I64 }, value: 0 }
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int { value, .. } => write!(f, "{value}"),
            Constant::Float { ty: ScalarType::F32, bits } => {
                write!(f, "{:?}", f32::from_bits(*bits as u32))
            }
            Constant::Float { bits, .. } => write!(f, "{:?}", f64::from_bits(*bits)),
            Constant::Vector { lanes, .. } => {
                f.write_str("<")?;
                for (i, l) in lanes.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{l}")?;
                }
                f.write_str(">")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_constants_canonicalize_by_width() {
        let a = Constant::int(ScalarType::I8, 0x1_7F);
        assert_eq!(a.as_int(), Some(0x7F));
        let b = Constant::int(ScalarType::I8, 0xFF);
        assert_eq!(b.as_int(), Some(-1));
        let c = Constant::int(ScalarType::I64, -5);
        assert_eq!(c.as_int(), Some(-5));
    }

    #[test]
    fn equal_ints_intern_equal() {
        assert_eq!(Constant::int(ScalarType::I8, 0xFF), Constant::int(ScalarType::I8, -1));
        assert_ne!(Constant::int(ScalarType::I8, 1), Constant::int(ScalarType::I16, 1));
    }

    #[test]
    fn float_round_trip() {
        let c = Constant::float(ScalarType::F64, 0.1);
        assert_eq!(c.as_f64(), Some(0.1));
        let c32 = Constant::float(ScalarType::F32, 0.1);
        assert_eq!(c32.as_f64(), Some(0.1f32 as f64));
    }

    #[test]
    fn vector_constant_type() {
        let v = Constant::vector(vec![
            Constant::int(ScalarType::I32, 1),
            Constant::int(ScalarType::I32, 2),
        ]);
        assert_eq!(v.ty(), Type::Vector(ScalarType::I32, 2));
        assert!(!v.is_zero());
    }

    #[test]
    #[should_panic(expected = "share one element type")]
    fn vector_constant_mixed_types_panics() {
        let _ = Constant::vector(vec![
            Constant::int(ScalarType::I32, 1),
            Constant::int(ScalarType::I64, 2),
        ]);
    }

    #[test]
    fn zero_detection() {
        assert!(Constant::float(ScalarType::F64, 0.0).is_zero());
        assert!(Constant::int(ScalarType::I8, 0).is_zero());
        assert!(!Constant::int(ScalarType::I8, 3).is_zero());
        assert!(Constant::vector(vec![
            Constant::int(ScalarType::I32, 0),
            Constant::int(ScalarType::I32, 0)
        ])
        .is_zero());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Constant::int(ScalarType::I64, 42).to_string(), "42");
        assert_eq!(Constant::float(ScalarType::F64, 1.5).to_string(), "1.5");
        let v = Constant::vector(vec![
            Constant::int(ScalarType::I32, 1),
            Constant::int(ScalarType::I32, 2),
        ]);
        assert_eq!(v.to_string(), "<1, 2>");
    }
}
