//! Structural and type verification of functions.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use crate::cfg::{BlockId, Terminator};
use crate::function::{Function, Module, ValueData};
use crate::inst::{Inst, InstAttr, Opcode};
use crate::types::Type;
use crate::value::ValueId;

/// A verification failure, with the offending value and a description.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// The function being verified.
    pub function: String,
    /// The offending value, if attributable.
    pub value: Option<ValueId>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value {
            Some(v) => write!(f, "verify @{}: {} (at {})", self.function, self.message, v),
            None => write!(f, "verify @{}: {}", self.function, self.message),
        }
    }
}

impl Error for VerifyError {}

struct Checker<'f> {
    f: &'f Function,
}

impl<'f> Checker<'f> {
    fn err(&self, value: Option<ValueId>, message: impl Into<String>) -> VerifyError {
        VerifyError { function: self.f.name().to_string(), value, message: message.into() }
    }

    /// The order-sensitive structural half of instruction checking:
    /// operand handles in range, definition before use. Cheap, and always
    /// run in full (even by the incremental verifier) because body
    /// reordering can invalidate it without touching any payload.
    fn check_operands(
        &self,
        id: ValueId,
        inst: &Inst,
        defined: &HashSet<ValueId>,
    ) -> Result<(), VerifyError> {
        let f = self.f;
        for &a in &inst.args {
            if a.index() >= f.num_values() {
                return Err(self.err(Some(id), "operand handle out of range"));
            }
            if f.is_inst(a) && !defined.contains(&a) {
                return Err(
                    self.err(Some(id), format!("operand {a} used before definition (or orphaned)"))
                );
            }
        }
        Ok(())
    }

    fn check_inst(
        &self,
        id: ValueId,
        inst: &Inst,
        defined: &HashSet<ValueId>,
    ) -> Result<(), VerifyError> {
        self.check_operands(id, inst, defined)?;
        self.check_types(id, inst)
    }

    /// The per-opcode half: operand counts, type rules, attributes. Depends
    /// only on this instruction's payload and its operands' payloads, so the
    /// incremental verifier may skip it for instructions with no touched
    /// payload in reach. Callers must have run [`Checker::check_operands`]
    /// first (operand handles are indexed unchecked here).
    fn check_types(&self, id: ValueId, inst: &Inst) -> Result<(), VerifyError> {
        let f = self.f;
        let aty = |i: usize| f.ty(inst.args[i]);
        let nargs = inst.args.len();
        let expect_args = |n: usize| -> Result<(), VerifyError> {
            if nargs != n {
                Err(self.err(Some(id), format!("{} expects {n} operands, has {nargs}", inst.op)))
            } else {
                Ok(())
            }
        };

        match inst.op {
            op if op.is_binary() => {
                expect_args(2)?;
                if aty(0) != inst.ty || aty(1) != inst.ty {
                    return Err(self.err(
                        Some(id),
                        format!(
                            "{op} operand types {} and {} must equal result type {}",
                            aty(0),
                            aty(1),
                            inst.ty
                        ),
                    ));
                }
                let float_ty = inst.ty.is_float_like();
                if op.is_float_op() != float_ty {
                    return Err(
                        self.err(Some(id), format!("{op} on wrong element class {}", inst.ty))
                    );
                }
                if !op.is_float_op() && !inst.ty.is_int_like() {
                    return Err(self.err(
                        Some(id),
                        format!("integer op {op} needs integer type, has {}", inst.ty),
                    ));
                }
            }
            Opcode::ICmp | Opcode::FCmp => {
                expect_args(2)?;
                let want_float = inst.op == Opcode::FCmp;
                if aty(0) != aty(1) {
                    return Err(self.err(Some(id), "compare operands must share a type"));
                }
                if want_float != aty(0).is_float_like() {
                    return Err(self.err(Some(id), "compare operand class mismatch"));
                }
                if inst.ty.elem() != Some(crate::ScalarType::I8)
                    || inst.ty.lanes() != aty(0).lanes()
                {
                    return Err(self.err(Some(id), "compare result must be i8 with operand lanes"));
                }
                let pred_ok = match inst.op {
                    Opcode::ICmp => matches!(inst.attr, InstAttr::IntPred(_)),
                    _ => matches!(inst.attr, InstAttr::FloatPred(_)),
                };
                if !pred_ok {
                    return Err(self.err(Some(id), "compare missing predicate attribute"));
                }
            }
            Opcode::Select => {
                expect_args(3)?;
                if aty(1) != inst.ty || aty(2) != inst.ty {
                    return Err(self.err(Some(id), "select arms must match result type"));
                }
                if aty(0).elem() != Some(crate::ScalarType::I8) || aty(0).lanes() != inst.ty.lanes()
                {
                    return Err(self.err(Some(id), "select condition must be i8 with result lanes"));
                }
            }
            Opcode::Gep => {
                expect_args(2)?;
                if aty(0) != Type::PTR {
                    return Err(self.err(Some(id), "gep base must be ptr"));
                }
                if aty(1) != Type::I64 {
                    return Err(self.err(Some(id), "gep index must be i64"));
                }
                if inst.ty != Type::PTR {
                    return Err(self.err(Some(id), "gep result must be ptr"));
                }
                match inst.attr {
                    InstAttr::ElemBytes(b) if b > 0 => {}
                    _ => {
                        return Err(self.err(Some(id), "gep needs a positive elem-bytes attribute"))
                    }
                }
            }
            Opcode::Load => {
                expect_args(1)?;
                if aty(0) != Type::PTR {
                    return Err(self.err(Some(id), "load pointer must be ptr"));
                }
                if inst.ty.is_void() || inst.ty.elem() == Some(crate::ScalarType::Ptr) {
                    return Err(self.err(Some(id), "load result must be a data type"));
                }
            }
            Opcode::Store => {
                expect_args(2)?;
                if aty(1) != Type::PTR {
                    return Err(self.err(Some(id), "store pointer must be ptr"));
                }
                if inst.ty != Type::Void {
                    return Err(self.err(Some(id), "store produces void"));
                }
                if aty(0).is_void() {
                    return Err(self.err(Some(id), "store value must not be void"));
                }
            }
            Opcode::InsertElement => {
                expect_args(3)?;
                if !inst.ty.is_vector() || aty(0) != inst.ty {
                    return Err(self.err(Some(id), "insertelement vector/result type mismatch"));
                }
                if Some(aty(1)) != inst.ty.elem().map(Type::Scalar) {
                    return Err(self.err(Some(id), "insertelement scalar type mismatch"));
                }
                self.check_lane_index(id, inst, 2, inst.ty.lanes())?;
            }
            Opcode::ExtractElement => {
                expect_args(2)?;
                if !aty(0).is_vector() {
                    return Err(self.err(Some(id), "extractelement needs a vector operand"));
                }
                if Some(inst.ty) != aty(0).elem().map(Type::Scalar) {
                    return Err(self.err(Some(id), "extractelement result type mismatch"));
                }
                self.check_lane_index(id, inst, 1, aty(0).lanes())?;
            }
            Opcode::ShuffleVector => {
                expect_args(2)?;
                if !aty(0).is_vector() || aty(0) != aty(1) {
                    return Err(self.err(Some(id), "shufflevector operands must be equal vectors"));
                }
                let InstAttr::Mask(mask) = &inst.attr else {
                    return Err(self.err(Some(id), "shufflevector needs a mask attribute"));
                };
                let limit = aty(0).lanes() * 2;
                if mask.iter().any(|&m| m >= limit) {
                    return Err(self.err(Some(id), "shuffle mask lane out of range"));
                }
                let want = Type::Vector(aty(0).elem().unwrap(), mask.len() as u32);
                if inst.ty != want {
                    return Err(self.err(Some(id), "shuffle result type mismatch"));
                }
            }
            op if op.is_cast() => {
                expect_args(1)?;
                let src = aty(0);
                let dst = inst.ty;
                if src.lanes() != dst.lanes() {
                    return Err(self.err(Some(id), "cast must preserve lane count"));
                }
                let (Some(se), Some(de)) = (src.elem(), dst.elem()) else {
                    return Err(self.err(Some(id), "cast needs data types"));
                };
                let ok = match op {
                    Opcode::Sext | Opcode::Zext => {
                        se.is_int() && de.is_int() && se.bits() < de.bits()
                    }
                    Opcode::Trunc => se.is_int() && de.is_int() && se.bits() > de.bits(),
                    Opcode::Fptosi => se.is_float() && de.is_int(),
                    Opcode::Sitofp => se.is_int() && de.is_float(),
                    Opcode::Fpext => se == crate::ScalarType::F32 && de == crate::ScalarType::F64,
                    Opcode::Fptrunc => se == crate::ScalarType::F64 && de == crate::ScalarType::F32,
                    _ => unreachable!(),
                };
                if !ok {
                    return Err(self.err(Some(id), format!("invalid cast {op}: {src} to {dst}")));
                }
            }
            op => {
                return Err(self.err(Some(id), format!("unhandled opcode {op}")));
            }
        }
        Ok(())
    }

    fn check_lane_index(
        &self,
        id: ValueId,
        inst: &Inst,
        arg: usize,
        lanes: u32,
    ) -> Result<(), VerifyError> {
        let idx = inst.args[arg];
        match self.f.as_const(idx).and_then(|c| c.as_int()) {
            Some(l) if (0..lanes as i64).contains(&l) => Ok(()),
            Some(_) => Err(self.err(Some(id), "lane index out of range")),
            None => Err(self.err(Some(id), "lane index must be a constant i64")),
        }
    }
}

/// CFG-specific verification: block structure, reachability, dominance
/// based visibility, terminator shape, and loop regions.
fn verify_cfg(f: &Function) -> Result<(), VerifyError> {
    let checker = Checker { f };
    let cfg = f.cfg().expect("verify_cfg requires a CFG");
    if f.body_len() != 0 {
        return Err(checker.err(None, "CFG function must keep its straight-line body empty"));
    }
    let entry = cfg.entry();
    if !cfg.block(entry).params().is_empty() {
        return Err(checker.err(
            cfg.block(entry).params().first().copied(),
            "entry block cannot have parameters",
        ));
    }

    // Blame carrier for terminator-level errors: the first value operand the
    // terminator references, if any.
    let term_blame = |b: BlockId| cfg.block(b).term().value_operands().first().copied();

    // Reachability from the entry, rejecting branches to missing blocks.
    let mut reach: Vec<BlockId> = Vec::new();
    let mut seen: HashSet<BlockId> = HashSet::new();
    let mut stack = vec![entry];
    seen.insert(entry);
    while let Some(b) = stack.pop() {
        reach.push(b);
        for s in cfg.block(b).term().successors() {
            if !cfg.contains(s) {
                return Err(checker.err(term_blame(b), format!("{b}: branch to missing block {s}")));
            }
            if seen.insert(s) {
                stack.push(s);
            }
        }
    }

    // Block membership: every listed instruction is an instruction and
    // appears in exactly one reachable block; parameters are block
    // parameters owned by exactly one block.
    let mut inst_seen: HashSet<ValueId> = HashSet::new();
    let mut param_seen: HashSet<ValueId> = HashSet::new();
    for &b in &reach {
        for &p in cfg.block(b).params() {
            if p.index() >= f.num_values() || !f.is_block_param(p) {
                return Err(checker
                    .err(Some(p), format!("{b}: parameter list entry is not a block parameter")));
            }
            if !param_seen.insert(p) {
                return Err(checker.err(Some(p), "block parameter appears in two blocks"));
            }
        }
        for &v in cfg.block(b).insts() {
            if v.index() >= f.num_values() || !f.is_inst(v) {
                return Err(checker.err(Some(v), format!("{b}: block contains a non-instruction")));
            }
            if !inst_seen.insert(v) {
                return Err(checker.err(Some(v), "instruction appears twice across blocks"));
            }
        }
    }

    // Predecessors and iterative dominators over the reachable subgraph.
    let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for &b in &reach {
        for s in cfg.block(b).term().successors() {
            preds.entry(s).or_default().push(b);
        }
    }
    let all: HashSet<BlockId> = reach.iter().copied().collect();
    let mut dom: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
    dom.insert(entry, [entry].into_iter().collect());
    for &b in reach.iter().skip(1) {
        dom.insert(b, all.clone());
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &b in reach.iter().skip(1) {
            let mut next: Option<HashSet<BlockId>> = None;
            for p in preds.get(&b).map_or(&[][..], Vec::as_slice) {
                let pd = &dom[p];
                next = Some(match next {
                    None => pd.clone(),
                    Some(acc) => acc.intersection(pd).copied().collect(),
                });
            }
            let mut next = next.unwrap_or_default();
            next.insert(b);
            if next != dom[&b] {
                dom.insert(b, next);
                changed = true;
            }
        }
    }

    // Loop regions: walk each loop body, rejecting nesting, returns, and
    // direct escapes to the exit; every region leaf must be a `continue`.
    let mut region_of: HashMap<BlockId, BlockId> = HashMap::new();
    for &h in &reach {
        let Terminator::Loop { body, exit, .. } = cfg.block(h).term() else {
            continue;
        };
        let mut stack = vec![*body];
        let mut in_region: HashSet<BlockId> = [*body].into_iter().collect();
        while let Some(b) = stack.pop() {
            if b == *exit {
                return Err(checker.err(
                    term_blame(h),
                    format!("{h}: loop body reaches the exit block {exit} directly"),
                ));
            }
            match cfg.block(b).term() {
                Terminator::Loop { .. } => {
                    return Err(
                        checker.err(term_blame(b), "nested counted loops are not supported")
                    );
                }
                Terminator::Ret => {
                    return Err(checker.err(None, format!("{b}: loop body cannot return")));
                }
                Terminator::Continue { .. } => {}
                t => {
                    for s in t.successors() {
                        if in_region.insert(s) {
                            stack.push(s);
                        }
                    }
                }
            }
            if let Some(prev) = region_of.insert(b, h) {
                return Err(checker.err(
                    None,
                    format!("{b}: block belongs to two loop regions ({prev} and {h})"),
                ));
            }
        }
    }
    for &b in &reach {
        if matches!(cfg.block(b).term(), Terminator::Continue { .. }) && !region_of.contains_key(&b)
        {
            return Err(checker.err(term_blame(b), format!("{b}: continue outside a loop region")));
        }
    }

    // Per-block operand visibility (dominance), instruction type rules, and
    // terminator shape.
    for &b in &reach {
        let mut visible: HashSet<ValueId> = HashSet::new();
        for d in &dom[&b] {
            visible.extend(cfg.block(*d).params().iter().copied());
            if d != &b {
                visible.extend(cfg.block(*d).insts().iter().copied());
            }
        }
        let check_operand = |id: Option<ValueId>,
                             a: ValueId,
                             visible: &HashSet<ValueId>|
         -> Result<(), VerifyError> {
            if a.index() >= f.num_values() {
                return Err(checker.err(id, "operand handle out of range"));
            }
            if (f.is_inst(a) || f.is_block_param(a)) && !visible.contains(&a) {
                return Err(checker.err(
                    id,
                    format!("operand {a} used before definition (or from a non-dominating block)"),
                ));
            }
            Ok(())
        };
        for &v in cfg.block(b).insts() {
            let inst = f.inst(v).expect("membership checked above");
            for &a in &inst.args {
                check_operand(Some(v), a, &visible)?;
            }
            checker.check_types(v, inst)?;
            visible.insert(v);
        }
        let term = cfg.block(b).term();
        for a in term.value_operands() {
            check_operand(term_blame(b), a, &visible)?;
        }
        let check_edge = |target: BlockId, args: &[ValueId]| -> Result<(), VerifyError> {
            let tparams = cfg.block(target).params();
            if args.len() != tparams.len() {
                let blame = args.first().copied().or_else(|| tparams.first().copied());
                return Err(checker.err(
                    blame,
                    format!(
                        "{b}: block-parameter arity mismatch: {target} expects {} arguments, got {}",
                        tparams.len(),
                        args.len()
                    ),
                ));
            }
            for (&a, &p) in args.iter().zip(tparams) {
                if f.ty(a) != f.ty(p) {
                    return Err(checker.err(
                        Some(a),
                        format!(
                            "{b}: block-parameter type mismatch: {target} expects {}, got {}",
                            f.ty(p),
                            f.ty(a)
                        ),
                    ));
                }
            }
            Ok(())
        };
        match term {
            Terminator::Ret => {}
            Terminator::Jump { target, args } => check_edge(*target, args)?,
            Terminator::Br { cond, then_to, then_args, else_to, else_args } => {
                if f.ty(*cond) != Type::Scalar(crate::ScalarType::I8) {
                    return Err(checker.err(
                        Some(*cond),
                        format!("{b}: branch condition must be scalar i8, got {}", f.ty(*cond)),
                    ));
                }
                check_edge(*then_to, then_args)?;
                check_edge(*else_to, else_args)?;
            }
            Terminator::Loop { trip, body, init, exit } => {
                match f.as_const(*trip).and_then(|c| c.as_int()) {
                    Some(n) if n >= 1 => {}
                    Some(n) => {
                        return Err(checker.err(
                            Some(*trip),
                            format!("{b}: loop trip count must be ≥ 1, got {n}"),
                        ));
                    }
                    None => {
                        return Err(
                            checker.err(Some(*trip), format!("{b}: non-constant trip count"))
                        );
                    }
                }
                let bparams = cfg.block(*body).params();
                if bparams.len() != init.len() + 1 {
                    return Err(checker.err(
                        term_blame(b),
                        format!(
                            "{b}: block-parameter arity mismatch: loop body {body} needs \
                             [iv, carried...] = {} parameters, has {}",
                            init.len() + 1,
                            bparams.len()
                        ),
                    ));
                }
                if f.ty(bparams[0]) != Type::I64 {
                    return Err(checker.err(
                        Some(bparams[0]),
                        format!(
                            "{b}: loop induction parameter must be i64, got {}",
                            f.ty(bparams[0])
                        ),
                    ));
                }
                for (&a, &p) in init.iter().zip(&bparams[1..]) {
                    if f.ty(a) != f.ty(p) {
                        return Err(checker.err(
                            Some(a),
                            format!(
                                "{b}: loop carried value type mismatch: {} vs {}",
                                f.ty(a),
                                f.ty(p)
                            ),
                        ));
                    }
                }
                let eparams = cfg.block(*exit).params();
                if eparams.len() != init.len() {
                    return Err(checker.err(
                        term_blame(b),
                        format!(
                            "{b}: block-parameter arity mismatch: loop exit {exit} needs {} \
                             parameters, has {}",
                            init.len(),
                            eparams.len()
                        ),
                    ));
                }
                for (&a, &p) in init.iter().zip(eparams) {
                    if f.ty(a) != f.ty(p) {
                        return Err(checker.err(
                            Some(p),
                            format!(
                                "{b}: loop exit parameter type mismatch: {} vs {}",
                                f.ty(p),
                                f.ty(a)
                            ),
                        ));
                    }
                }
            }
            Terminator::Continue { args } => {
                let h = region_of[&b];
                let Terminator::Loop { init, .. } = cfg.block(h).term() else {
                    unreachable!("region headers are loops");
                };
                if args.len() != init.len() {
                    return Err(checker.err(
                        term_blame(b),
                        format!(
                            "{b}: block-parameter arity mismatch: continue carries {} values, \
                             loop {h} has {}",
                            args.len(),
                            init.len()
                        ),
                    ));
                }
                for (&a, &i) in args.iter().zip(init) {
                    if f.ty(a) != f.ty(i) {
                        return Err(checker.err(
                            Some(a),
                            format!(
                                "{b}: continue carried type mismatch: {} vs {}",
                                f.ty(a),
                                f.ty(i)
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Verify a function: operand availability (definition-before-use in the
/// straight-line body, dominance-based visibility on CFG functions),
/// per-opcode operand counts, type rules, and — on CFG functions — block
/// structure, terminator shape, and counted-loop regions.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found, with the offending value.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    if f.cfg().is_some() {
        return verify_cfg(f);
    }
    let checker = Checker { f };
    let mut seen = HashSet::new();
    let mut defined: HashSet<ValueId> = HashSet::new();
    for &id in f.body() {
        if !seen.insert(id) {
            return Err(checker.err(Some(id), "instruction appears twice in body"));
        }
        match f.value(id) {
            ValueData::Inst(inst) => {
                checker.check_inst(id, inst, &defined)?;
            }
            _ => return Err(checker.err(Some(id), "body contains a non-instruction")),
        }
        defined.insert(id);
    }
    Ok(())
}

/// Incrementally verify a function after a transaction commit.
///
/// `touched` is the set of values whose payloads were allocated or mutated
/// since the transaction began (see
/// [`Function::touched_since`](crate::Function::touched_since)). The
/// order-sensitive structural checks — duplicate body entries,
/// non-instructions in the body, operand handles in range, definition
/// before use — are always run over the whole body (body *order* can
/// change without any payload being touched, and these checks are a cheap
/// linear walk). The per-opcode type rules, which depend only on an
/// instruction's own payload and its operands' payloads, run only for
/// instructions that are touched or have a touched operand.
///
/// For a valid `touched` set this accepts exactly the functions
/// [`verify_function`] accepts; it may differ only in *which* error is
/// reported first for an invalid function.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found, with the offending value.
pub fn verify_function_touched(
    f: &Function,
    touched: &HashSet<ValueId>,
) -> Result<(), VerifyError> {
    if f.cfg().is_some() {
        // CFG functions are small (pre-vectorization shapes); dominance and
        // region checks are global properties, so run the full verifier.
        return verify_cfg(f);
    }
    let checker = Checker { f };
    let mut seen = HashSet::new();
    let mut defined: HashSet<ValueId> = HashSet::new();
    for &id in f.body() {
        if !seen.insert(id) {
            return Err(checker.err(Some(id), "instruction appears twice in body"));
        }
        match f.value(id) {
            ValueData::Inst(inst) => {
                checker.check_operands(id, inst, &defined)?;
                let in_reach =
                    touched.contains(&id) || inst.args.iter().any(|a| touched.contains(a));
                if in_reach {
                    checker.check_types(id, inst)?;
                }
            }
            _ => return Err(checker.err(Some(id), "body contains a non-instruction")),
        }
        defined.insert(id);
    }
    Ok(())
}

/// Verify every function of a module.
///
/// # Errors
///
/// Returns the first failure across functions.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in &m.functions {
        verify_function(f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, ScalarType};

    #[test]
    fn accepts_valid_code() {
        let mut f = Function::new("ok");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let p = b.gep(a, i, 8);
        let v = b.load(Type::I64, p);
        let w = b.add(v, v);
        b.store(w, p);
        assert!(verify_function(&f).is_ok());
    }

    #[test]
    fn rejects_use_before_def() {
        let mut f = Function::new("bad");
        let a = f.add_param("a", Type::I64);
        // Create an instruction, remove it from the body, then use it.
        let orphan = f.push(Opcode::Add, Type::I64, vec![a, a], InstAttr::None);
        let mut dead = HashSet::new();
        dead.insert(orphan);
        f.remove_from_body(&dead);
        f.push(Opcode::Add, Type::I64, vec![orphan, a], InstAttr::None);
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("before definition"), "{err}");
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut f = Function::new("bad");
        let a = f.add_param("a", Type::I64);
        let b = f.add_param("b", Type::F64);
        f.push(Opcode::Add, Type::I64, vec![a, b], InstAttr::None);
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn use_before_def_names_the_offender() {
        let mut f = Function::new("bad");
        let a = f.add_param("a", Type::I64);
        let orphan = f.push(Opcode::Add, Type::I64, vec![a, a], InstAttr::None);
        let mut dead = HashSet::new();
        dead.insert(orphan);
        f.remove_from_body(&dead);
        let user = f.push(Opcode::Add, Type::I64, vec![orphan, a], InstAttr::None);
        let err = verify_function(&f).unwrap_err();
        assert_eq!(err.value, Some(user), "the *using* instruction is blamed");
        assert!(
            err.message.contains(&orphan.to_string()),
            "…and the message names the orphan: {err}"
        );
        assert_eq!(err.function, "bad");
    }

    #[test]
    fn type_mismatch_names_the_offender() {
        let mut f = Function::new("bad");
        let a = f.add_param("a", Type::I64);
        let b = f.add_param("b", Type::F64);
        let mix = f.push(Opcode::Add, Type::I64, vec![a, b], InstAttr::None);
        let err = verify_function(&f).unwrap_err();
        assert_eq!(err.value, Some(mix));
        assert!(err.to_string().contains(&mix.to_string()), "{err}");
    }

    #[test]
    fn out_of_range_handle_names_the_offender() {
        let mut f = Function::new("bad");
        let a = f.add_param("a", Type::I64);
        let bogus = ValueId::from_raw(9999);
        let user = f.push(Opcode::Add, Type::I64, vec![a, bogus], InstAttr::None);
        let err = verify_function(&f).unwrap_err();
        assert_eq!(err.value, Some(user));
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn rejects_float_op_on_ints() {
        let mut f = Function::new("bad");
        let a = f.add_param("a", Type::I64);
        f.push(Opcode::FAdd, Type::I64, vec![a, a], InstAttr::None);
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("wrong element class"), "{err}");
    }

    #[test]
    fn rejects_gep_without_stride() {
        let mut f = Function::new("bad");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        f.push(Opcode::Gep, Type::PTR, vec![a, i], InstAttr::None);
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_lane_out_of_range() {
        let mut f = Function::new("bad");
        let a = f.add_param("A", Type::PTR);
        let vty = Type::Vector(ScalarType::F64, 2);
        let mut b = FunctionBuilder::new(&mut f);
        let v = b.load(vty, a);
        let idx = f.const_i64(5);
        f.push(Opcode::ExtractElement, Type::F64, vec![v, idx], InstAttr::None);
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn rejects_duplicate_body_entry() {
        let mut f = Function::new("bad");
        let a = f.add_param("a", Type::I64);
        let add = f.push(Opcode::Add, Type::I64, vec![a, a], InstAttr::None);
        // Manually duplicate via insert of the same id is not possible through
        // the API, so simulate by pushing a twin and checking dedup logic on a
        // cloned body instead: duplicate through remove+2x not available, so
        // verify the happy path and the error through a crafted function.
        let mut g = f.clone();
        // Re-add the same instruction id to the body through the only public
        // surface that could: none exists, so craft via remove/replace.
        let _ = add;
        assert!(verify_function(&g).is_ok());
        // Push a second, identical instruction; that's fine (unique ids).
        g.push(Opcode::Add, Type::I64, vec![a, a], InstAttr::None);
        assert!(verify_function(&g).is_ok());
    }

    #[test]
    fn rejects_store_with_result_type() {
        let mut f = Function::new("bad");
        let a = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        f.push(Opcode::Store, Type::I64, vec![x, a], InstAttr::None);
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn incremental_verify_catches_touched_type_errors() {
        let mut f = Function::new("t");
        let a = f.add_param("a", Type::I64);
        let b = f.add_param("b", Type::F64);
        f.push(Opcode::Add, Type::I64, vec![a, a], InstAttr::None);
        assert!(verify_function(&f).is_ok());
        let mark = f.begin_txn();
        let bad = f.push(Opcode::Add, Type::I64, vec![a, b], InstAttr::None);
        let touched = f.touched_since(mark);
        assert!(touched.contains(&bad));
        let err = verify_function_touched(&f, &touched).unwrap_err();
        assert_eq!(err.value, Some(bad));
        f.rollback_txn(mark);
        assert!(verify_function_touched(&f, &HashSet::new()).is_ok());
    }

    #[test]
    fn incremental_verify_always_checks_structure() {
        // An untouched instruction can still become invalid through body
        // reordering (use before def); the incremental verifier must catch
        // that even with an empty touched set.
        let mut f = Function::new("t");
        let a = f.add_param("a", Type::I64);
        let x = f.push(Opcode::Add, Type::I64, vec![a, a], InstAttr::None);
        let y = f.push(Opcode::Mul, Type::I64, vec![x, x], InstAttr::None);
        f.rebuild_body(vec![y, x]);
        let err = verify_function_touched(&f, &HashSet::new()).unwrap_err();
        assert!(err.message.contains("before definition"), "{err}");
    }

    #[test]
    fn incremental_verify_checks_users_of_touched_values() {
        // Mutating an operand's payload must re-check its (untouched) user.
        let mut f = Function::new("t");
        let a = f.add_param("a", Type::I64);
        let b = f.add_param("b", Type::F64);
        let x = f.push(Opcode::Add, Type::I64, vec![a, a], InstAttr::None);
        let user = f.push(Opcode::Mul, Type::I64, vec![x, x], InstAttr::None);
        let mark = f.begin_txn();
        if let Some(i) = f.inst_mut(x) {
            // Retype x to a (valid) float add; `user` is now a Mul over F64.
            i.ty = Type::F64;
            i.op = Opcode::FAdd;
            i.args = vec![b, b];
        }
        let touched = f.touched_since(mark);
        assert!(touched.contains(&x) && !touched.contains(&user));
        let err = verify_function_touched(&f, &touched).unwrap_err();
        assert_eq!(err.value, Some(user));
        f.rollback_txn(mark);
    }

    #[test]
    fn cfg_rejects_branch_to_missing_block() {
        use crate::cfg::{BlockId, Terminator};
        let mut f = Function::new("bad");
        let x = f.add_param("x", Type::I64);
        let entry = f.init_cfg();
        let c = f.push_in_block(
            entry,
            Opcode::ICmp,
            Type::Scalar(ScalarType::I8),
            vec![x, x],
            InstAttr::IntPred(crate::IntPred::Slt),
        );
        f.set_term(
            entry,
            Terminator::Br {
                cond: c,
                then_to: BlockId::from_raw(7),
                then_args: vec![],
                else_to: entry,
                else_args: vec![],
            },
        );
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("branch to missing block bb7"), "{err}");
        assert_eq!(err.value, Some(c), "the branch condition is blamed");
    }

    #[test]
    fn cfg_rejects_block_param_arity_mismatch() {
        use crate::cfg::Terminator;
        let mut f = Function::new("bad");
        let x = f.add_param("x", Type::I64);
        let entry = f.init_cfg();
        let join = f.add_block();
        let p = f.add_block_param(join, Some("p".into()), Type::I64);
        let q = f.add_block_param(join, Some("q".into()), Type::I64);
        let _ = (p, q);
        // One argument for two parameters.
        f.set_term(entry, Terminator::Jump { target: join, args: vec![x] });
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("block-parameter arity mismatch"), "{err}");
        assert_eq!(err.value, Some(x), "the edge argument is blamed");
    }

    #[test]
    fn cfg_rejects_use_before_def_across_blocks() {
        use crate::cfg::Terminator;
        // A value defined in the `then` arm used in the join block: the
        // defining block does not dominate the user.
        let mut f = Function::new("bad");
        let a = f.add_param("A", Type::PTR);
        let x = f.add_param("x", Type::I64);
        let entry = f.init_cfg();
        let then_b = f.add_block();
        let else_b = f.add_block();
        let join = f.add_block();
        let c = f.push_in_block(
            entry,
            Opcode::ICmp,
            Type::Scalar(ScalarType::I8),
            vec![x, x],
            InstAttr::IntPred(crate::IntPred::Slt),
        );
        f.set_term(
            entry,
            Terminator::Br {
                cond: c,
                then_to: then_b,
                then_args: vec![],
                else_to: else_b,
                else_args: vec![],
            },
        );
        let n = f.push_in_block(then_b, Opcode::Sub, Type::I64, vec![x, x], InstAttr::None);
        f.set_term(then_b, Terminator::Jump { target: join, args: vec![] });
        f.set_term(else_b, Terminator::Jump { target: join, args: vec![] });
        let user =
            f.push_in_block(join, Opcode::Gep, Type::PTR, vec![a, n], InstAttr::ElemBytes(8));
        f.push_in_block(join, Opcode::Store, Type::Void, vec![x, user], InstAttr::None);
        let err = verify_function(&f).unwrap_err();
        assert_eq!(err.value, Some(user), "the cross-block user is blamed");
        assert!(err.message.contains(&n.to_string()), "names the non-dominating def: {err}");
        assert!(err.message.contains("non-dominating"), "{err}");
    }

    #[test]
    fn cfg_rejects_non_constant_trip_count() {
        use crate::cfg::Terminator;
        let mut f = Function::new("bad");
        let n = f.add_param("n", Type::I64);
        let entry = f.init_cfg();
        let body = f.add_block();
        let exit = f.add_block();
        f.add_block_param(body, Some("i".into()), Type::I64);
        f.set_term(entry, Terminator::Loop { trip: n, body, init: vec![], exit });
        f.set_term(body, Terminator::Continue { args: vec![] });
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("non-constant trip count"), "{err}");
        assert_eq!(err.value, Some(n), "the trip operand is blamed");
    }

    #[test]
    fn cfg_rejects_nested_loops() {
        use crate::cfg::Terminator;
        let mut f = Function::new("bad");
        let entry = f.init_cfg();
        let outer_body = f.add_block();
        let inner_body = f.add_block();
        let inner_exit = f.add_block();
        let outer_exit = f.add_block();
        let t = f.const_i64(2);
        f.add_block_param(outer_body, Some("i".into()), Type::I64);
        f.add_block_param(inner_body, Some("j".into()), Type::I64);
        f.set_term(
            entry,
            Terminator::Loop { trip: t, body: outer_body, init: vec![], exit: outer_exit },
        );
        f.set_term(
            outer_body,
            Terminator::Loop { trip: t, body: inner_body, init: vec![], exit: inner_exit },
        );
        f.set_term(inner_body, Terminator::Continue { args: vec![] });
        f.set_term(inner_exit, Terminator::Continue { args: vec![] });
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("nested counted loops"), "{err}");
    }

    #[test]
    fn cfg_rejects_continue_outside_loop() {
        use crate::cfg::Terminator;
        let mut f = Function::new("bad");
        let x = f.add_param("x", Type::I64);
        let entry = f.init_cfg();
        f.set_term(entry, Terminator::Continue { args: vec![x] });
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("continue outside a loop region"), "{err}");
        assert_eq!(err.value, Some(x));
    }

    #[test]
    fn cfg_accepts_valid_loop_and_incremental_delegates() {
        use crate::cfg::Terminator;
        let mut f = Function::new("ok");
        let a = f.add_param("A", Type::PTR);
        let entry = f.init_cfg();
        let body = f.add_block();
        let exit = f.add_block();
        let t = f.const_i64(4);
        let z = f.const_i64(0);
        let i = f.add_block_param(body, Some("i".into()), Type::I64);
        let acc = f.add_block_param(body, Some("acc".into()), Type::I64);
        let sum = f.add_block_param(exit, Some("sum".into()), Type::I64);
        f.set_term(entry, Terminator::Loop { trip: t, body, init: vec![z], exit });
        let nx = f.push_in_block(body, Opcode::Add, Type::I64, vec![acc, i], InstAttr::None);
        f.set_term(body, Terminator::Continue { args: vec![nx] });
        f.push_in_block(exit, Opcode::Store, Type::Void, vec![sum, a], InstAttr::None);
        verify_function(&f).unwrap();
        // The incremental entry delegates to the full CFG verifier.
        verify_function_touched(&f, &HashSet::new()).unwrap();
    }

    #[test]
    fn verify_module_reports_first_failure() {
        let mut m = Module::new();
        m.functions.push(Function::new("fine"));
        let mut bad = Function::new("broken");
        let a = bad.add_param("a", Type::I64);
        bad.push(Opcode::FAdd, Type::I64, vec![a, a], InstAttr::None);
        m.functions.push(bad);
        let err = verify_module(&m).unwrap_err();
        assert_eq!(err.function, "broken");
    }
}
