//! Control-flow graph data model: blocks, block parameters, terminators,
//! and counted-loop regions.
//!
//! A [`crate::Function`] is either *straight-line* (its classic single
//! ordered body, `cfg() == None`) or a *CFG function*: the body is empty
//! and all instructions live inside the blocks of a [`Cfg`]. Block
//! parameters are the phi-equivalents: every edge that enters a block
//! supplies one argument per parameter.
//!
//! The loop construct is deliberately structured rather than free-form: a
//! [`Terminator::Loop`] names a compile-time trip count, a body-entry
//! block, the loop-carried initial values, and an exit block. The body
//! region runs `trip` times; each iteration ends at a
//! [`Terminator::Continue`] whose arguments become the next iteration's
//! carried values (the body entry's parameters are `[iv, carried...]`,
//! with the induction variable counting `0..trip`). After the final
//! iteration the exit block's parameters receive the carried values.
//! This is exactly the shape the unroll-and-SLP pass consumes, and it
//! keeps verification and interpretation simple and total.

use std::fmt;

use crate::value::ValueId;

/// Identifies one basic block within a function's [`Cfg`].
///
/// Displays as the printed label `bbN`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BlockId(u32);

impl BlockId {
    /// Construct from a raw index (for the parser and tests).
    pub fn from_raw(raw: u32) -> BlockId {
        BlockId(raw)
    }

    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// How control leaves a basic block.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Return from the function.
    Ret,
    /// Unconditional branch, passing one argument per target parameter.
    Jump {
        /// The successor block.
        target: BlockId,
        /// Arguments bound to the target's block parameters.
        args: Vec<ValueId>,
    },
    /// Conditional branch on a scalar `i8` condition (`!= 0` takes the
    /// then edge).
    Br {
        /// The branch condition (scalar `i8`).
        cond: ValueId,
        /// Successor when the condition is nonzero.
        then_to: BlockId,
        /// Arguments for `then_to`'s parameters.
        then_args: Vec<ValueId>,
        /// Successor when the condition is zero.
        else_to: BlockId,
        /// Arguments for `else_to`'s parameters.
        else_args: Vec<ValueId>,
    },
    /// A counted loop region with a compile-time trip count.
    ///
    /// `trip` must verify as a constant `i64` ≥ 1. The body entry's
    /// parameters are `[iv: i64, carried...]` with `carried` matching
    /// `init`; each iteration runs the body region until a
    /// [`Terminator::Continue`], whose arguments are the next carried
    /// values. After `trip` iterations the exit block's parameters (one
    /// per `init` entry) receive the final carried values.
    Loop {
        /// The trip count (a constant `i64` value ≥ 1).
        trip: ValueId,
        /// The body-entry block.
        body: BlockId,
        /// Initial values of the loop-carried parameters.
        init: Vec<ValueId>,
        /// The block control reaches after the final iteration.
        exit: BlockId,
    },
    /// End one loop iteration, supplying the next carried values. Only
    /// legal inside a loop body region.
    Continue {
        /// The carried values for the next iteration (or the exit block's
        /// parameters after the final one).
        args: Vec<ValueId>,
    },
}

impl Terminator {
    /// The successor blocks this terminator can transfer control to
    /// (`Continue` has none — its successor is determined by the
    /// enclosing loop).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Ret | Terminator::Continue { .. } => Vec::new(),
            Terminator::Jump { target, .. } => vec![*target],
            Terminator::Br { then_to, else_to, .. } => vec![*then_to, *else_to],
            Terminator::Loop { body, exit, .. } => vec![*body, *exit],
        }
    }

    /// All value operands referenced by this terminator (condition, trip
    /// count, and every edge argument).
    pub fn value_operands(&self) -> Vec<ValueId> {
        match self {
            Terminator::Ret => Vec::new(),
            Terminator::Jump { args, .. } => args.clone(),
            Terminator::Br { cond, then_args, else_args, .. } => {
                let mut v = vec![*cond];
                v.extend_from_slice(then_args);
                v.extend_from_slice(else_args);
                v
            }
            Terminator::Loop { trip, init, .. } => {
                let mut v = vec![*trip];
                v.extend_from_slice(init);
                v
            }
            Terminator::Continue { args } => args.clone(),
        }
    }

    /// Rewrite every value operand through `map` (used by
    /// [`crate::Function::replace_uses`] on CFG functions). Returns `true`
    /// when anything changed.
    pub(crate) fn rewrite_operands(&mut self, old: ValueId, new: ValueId) -> bool {
        let mut changed = false;
        let mut fix = |v: &mut ValueId| {
            if *v == old {
                *v = new;
                changed = true;
            }
        };
        match self {
            Terminator::Ret => {}
            Terminator::Jump { args, .. } => args.iter_mut().for_each(&mut fix),
            Terminator::Br { cond, then_args, else_args, .. } => {
                fix(cond);
                then_args.iter_mut().for_each(&mut fix);
                else_args.iter_mut().for_each(&mut fix);
            }
            Terminator::Loop { trip, init, .. } => {
                fix(trip);
                init.iter_mut().for_each(&mut fix);
            }
            Terminator::Continue { args } => args.iter_mut().for_each(&mut fix),
        }
        changed
    }
}

/// One basic block: parameters (phi-equivalents), an ordered instruction
/// list, and a terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    pub(crate) params: Vec<ValueId>,
    pub(crate) insts: Vec<ValueId>,
    pub(crate) term: Terminator,
}

impl Block {
    pub(crate) fn new() -> Block {
        Block { params: Vec::new(), insts: Vec::new(), term: Terminator::Ret }
    }

    /// The block parameters, in declaration order.
    pub fn params(&self) -> &[ValueId] {
        &self.params
    }

    /// The block's instructions, in execution order.
    pub fn insts(&self) -> &[ValueId] {
        &self.insts
    }

    /// The block terminator.
    pub fn term(&self) -> &Terminator {
        &self.term
    }
}

/// The control-flow graph of a function: an arena of [`Block`]s with
/// block 0 as the entry.
#[derive(Clone, PartialEq, Debug)]
pub struct Cfg {
    pub(crate) blocks: Vec<Block>,
}

impl Cfg {
    pub(crate) fn new() -> Cfg {
        Cfg { blocks: vec![Block::new()] }
    }

    /// The entry block (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Number of blocks (including unreachable ones).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// All block ids, in arena order.
    pub fn block_ids(&self) -> impl DoubleEndedIterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// The block data for `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` does not belong to this CFG.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Whether `b` names a block of this CFG.
    pub fn contains(&self, b: BlockId) -> bool {
        b.index() < self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ids_display_as_labels() {
        assert_eq!(BlockId::from_raw(0).to_string(), "bb0");
        assert_eq!(BlockId::from_raw(7).to_string(), "bb7");
        assert_eq!(BlockId::from_raw(3).index(), 3);
    }

    #[test]
    fn successors_per_terminator() {
        let b1 = BlockId::from_raw(1);
        let b2 = BlockId::from_raw(2);
        let v = ValueId::from_raw(0);
        assert!(Terminator::Ret.successors().is_empty());
        assert!(Terminator::Continue { args: vec![v] }.successors().is_empty());
        assert_eq!(Terminator::Jump { target: b1, args: vec![] }.successors(), vec![b1]);
        let br = Terminator::Br {
            cond: v,
            then_to: b1,
            then_args: vec![],
            else_to: b2,
            else_args: vec![],
        };
        assert_eq!(br.successors(), vec![b1, b2]);
        let lp = Terminator::Loop { trip: v, body: b1, init: vec![], exit: b2 };
        assert_eq!(lp.successors(), vec![b1, b2]);
    }

    #[test]
    fn rewrite_operands_touches_every_slot() {
        let a = ValueId::from_raw(4);
        let b = ValueId::from_raw(9);
        let mut t = Terminator::Br {
            cond: a,
            then_to: BlockId::from_raw(1),
            then_args: vec![a, b],
            else_to: BlockId::from_raw(2),
            else_args: vec![b, a],
        };
        assert!(t.rewrite_operands(a, b));
        assert_eq!(t.value_operands(), vec![b, b, b, b, b]);
        assert!(!t.rewrite_operands(a, b), "nothing left to rewrite");
    }
}
