//! Instruction opcodes, attributes, and the instruction record.

use std::fmt;

use crate::types::Type;
use crate::value::ValueId;

/// Instruction opcodes.
///
/// Binary arithmetic/logic opcodes take two operands of the instruction's
/// type; memory opcodes follow the shapes documented per variant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Opcode {
    // Integer arithmetic.
    /// Wrapping integer add (commutative, associative).
    Add,
    /// Wrapping integer subtract.
    Sub,
    /// Wrapping integer multiply (commutative, associative).
    Mul,
    /// Signed integer division.
    SDiv,
    /// Unsigned integer division.
    UDiv,
    /// Signed remainder.
    SRem,
    /// Unsigned remainder.
    URem,
    // Bitwise.
    /// Bitwise and (commutative, associative).
    And,
    /// Bitwise or (commutative, associative).
    Or,
    /// Bitwise xor (commutative, associative).
    Xor,
    /// Shift left; the shift amount is masked to the type width.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    // Integer min/max.
    /// Signed minimum (commutative, associative).
    SMin,
    /// Signed maximum (commutative, associative).
    SMax,
    // Floating point.
    /// Float add (commutative; associative only under fast-math).
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply (commutative; associative only under fast-math).
    FMul,
    /// Float division.
    FDiv,
    /// Float minimum (commutative).
    FMin,
    /// Float maximum (commutative).
    FMax,
    // Comparisons and select.
    /// Integer compare; predicate in [`InstAttr::IntPred`], result is `i8`
    /// (0/1) with the operand lane count.
    ICmp,
    /// Float compare; predicate in [`InstAttr::FloatPred`], result is `i8`.
    FCmp,
    /// `select cond, a, b` — lanewise `cond != 0 ? a : b`; `cond` is `i8`
    /// with the same lane count as the result.
    Select,
    // Memory.
    /// `gep base, index, elem_bytes` — pointer arithmetic
    /// `base + index * elem_bytes`; `elem_bytes` in [`InstAttr::ElemBytes`].
    Gep,
    /// `load ty, ptr` — loads a scalar or vector from memory.
    Load,
    /// `store val, ptr` — stores a scalar or vector; produces void.
    Store,
    // Vector shuffling (emitted by vector codegen).
    /// `insertelement vec, scalar, lane-const`.
    InsertElement,
    /// `extractelement vec, lane-const`.
    ExtractElement,
    /// `shufflevector a, b, mask` — mask lanes index the concatenation of
    /// `a` and `b`; mask in [`InstAttr::Mask`].
    ShuffleVector,
    // Conversions (unary; result type carried by the instruction).
    /// Sign-extend an integer to a wider integer type.
    Sext,
    /// Zero-extend an integer to a wider integer type.
    Zext,
    /// Truncate an integer to a narrower integer type.
    Trunc,
    /// Convert a float to a signed integer (saturating on overflow).
    Fptosi,
    /// Convert a signed integer to a float.
    Sitofp,
    /// Extend `f32` to `f64`.
    Fpext,
    /// Truncate `f64` to `f32`.
    Fptrunc,
}

impl Opcode {
    /// All opcodes, for exhaustive table tests.
    pub const ALL: [Opcode; 34] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::SDiv,
        Opcode::UDiv,
        Opcode::SRem,
        Opcode::URem,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::LShr,
        Opcode::AShr,
        Opcode::SMin,
        Opcode::SMax,
        Opcode::FAdd,
        Opcode::FSub,
        Opcode::FMul,
        Opcode::FDiv,
        Opcode::FMin,
        Opcode::FMax,
        Opcode::ICmp,
        Opcode::FCmp,
        Opcode::Select,
        Opcode::Gep,
        Opcode::Load,
        Opcode::Store,
        Opcode::Sext,
        Opcode::Zext,
        Opcode::Trunc,
        Opcode::Fptosi,
        Opcode::Sitofp,
        Opcode::Fpext,
        Opcode::Fptrunc,
    ];

    /// Whether this is a unary conversion instruction.
    pub fn is_cast(self) -> bool {
        matches!(
            self,
            Opcode::Sext
                | Opcode::Zext
                | Opcode::Trunc
                | Opcode::Fptosi
                | Opcode::Sitofp
                | Opcode::Fpext
                | Opcode::Fptrunc
        )
    }

    /// Whether this is a two-operand arithmetic/logic instruction (the class
    /// the vectorizer groups into vector ALU ops).
    pub fn is_binary(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::SDiv
                | Opcode::UDiv
                | Opcode::SRem
                | Opcode::URem
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::LShr
                | Opcode::AShr
                | Opcode::SMin
                | Opcode::SMax
                | Opcode::FAdd
                | Opcode::FSub
                | Opcode::FMul
                | Opcode::FDiv
                | Opcode::FMin
                | Opcode::FMax
        )
    }

    /// Whether the operation is commutative (`a ⊕ b == b ⊕ a`).
    ///
    /// This is the property LSLP exploits: operands of commutative
    /// instructions may be reordered freely.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Mul
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::SMin
                | Opcode::SMax
                | Opcode::FAdd
                | Opcode::FMul
                | Opcode::FMin
                | Opcode::FMax
        )
    }

    /// Whether the operation is associative *exactly* (integer ops).
    ///
    /// Float add/mul are only associative under fast-math; see
    /// [`Opcode::is_associative`] with the `fast_math` flag.
    pub fn is_associative_exact(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Mul
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::SMin
                | Opcode::SMax
        )
    }

    /// Whether the operation may be reassociated given the fast-math setting.
    /// Multi-node formation (chains of the same commutative opcode) requires
    /// associativity because it reorders evaluation order across the chain.
    pub fn is_associative(self, fast_math: bool) -> bool {
        self.is_associative_exact()
            || (fast_math
                && matches!(self, Opcode::FAdd | Opcode::FMul | Opcode::FMin | Opcode::FMax))
    }

    /// Whether the operation works on float data.
    pub fn is_float_op(self) -> bool {
        matches!(
            self,
            Opcode::FAdd
                | Opcode::FSub
                | Opcode::FMul
                | Opcode::FDiv
                | Opcode::FMin
                | Opcode::FMax
                | Opcode::FCmp
        )
    }

    /// Whether the instruction reads or writes memory.
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Whether the instruction has a side effect (cannot be dead-code
    /// eliminated even when unused).
    pub fn has_side_effect(self) -> bool {
        self == Opcode::Store
    }

    /// The textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::SDiv => "sdiv",
            Opcode::UDiv => "udiv",
            Opcode::SRem => "srem",
            Opcode::URem => "urem",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::LShr => "lshr",
            Opcode::AShr => "ashr",
            Opcode::SMin => "smin",
            Opcode::SMax => "smax",
            Opcode::FAdd => "fadd",
            Opcode::FSub => "fsub",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::FMin => "fmin",
            Opcode::FMax => "fmax",
            Opcode::ICmp => "icmp",
            Opcode::FCmp => "fcmp",
            Opcode::Select => "select",
            Opcode::Gep => "gep",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::InsertElement => "insertelement",
            Opcode::ExtractElement => "extractelement",
            Opcode::ShuffleVector => "shufflevector",
            Opcode::Sext => "sext",
            Opcode::Zext => "zext",
            Opcode::Trunc => "trunc",
            Opcode::Fptosi => "fptosi",
            Opcode::Sitofp => "sitofp",
            Opcode::Fpext => "fpext",
            Opcode::Fptrunc => "fptrunc",
        }
    }

    /// Parse a mnemonic produced by [`Opcode::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Some(match s {
            "add" => Opcode::Add,
            "sub" => Opcode::Sub,
            "mul" => Opcode::Mul,
            "sdiv" => Opcode::SDiv,
            "udiv" => Opcode::UDiv,
            "srem" => Opcode::SRem,
            "urem" => Opcode::URem,
            "and" => Opcode::And,
            "or" => Opcode::Or,
            "xor" => Opcode::Xor,
            "shl" => Opcode::Shl,
            "lshr" => Opcode::LShr,
            "ashr" => Opcode::AShr,
            "smin" => Opcode::SMin,
            "smax" => Opcode::SMax,
            "fadd" => Opcode::FAdd,
            "fsub" => Opcode::FSub,
            "fmul" => Opcode::FMul,
            "fdiv" => Opcode::FDiv,
            "fmin" => Opcode::FMin,
            "fmax" => Opcode::FMax,
            "icmp" => Opcode::ICmp,
            "fcmp" => Opcode::FCmp,
            "select" => Opcode::Select,
            "gep" => Opcode::Gep,
            "load" => Opcode::Load,
            "store" => Opcode::Store,
            "insertelement" => Opcode::InsertElement,
            "extractelement" => Opcode::ExtractElement,
            "shufflevector" => Opcode::ShuffleVector,
            "sext" => Opcode::Sext,
            "zext" => Opcode::Zext,
            "trunc" => Opcode::Trunc,
            "fptosi" => Opcode::Fptosi,
            "sitofp" => Opcode::Sitofp,
            "fpext" => Opcode::Fpext,
            "fptrunc" => Opcode::Fptrunc,
            _ => return None,
        })
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Integer comparison predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IntPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
}

impl IntPred {
    /// Textual name (`eq`, `slt`, ...).
    pub fn name(self) -> &'static str {
        match self {
            IntPred::Eq => "eq",
            IntPred::Ne => "ne",
            IntPred::Slt => "slt",
            IntPred::Sle => "sle",
            IntPred::Sgt => "sgt",
            IntPred::Sge => "sge",
            IntPred::Ult => "ult",
            IntPred::Ule => "ule",
            IntPred::Ugt => "ugt",
            IntPred::Uge => "uge",
        }
    }

    /// Parse a name produced by [`IntPred::name`].
    pub fn from_name(s: &str) -> Option<IntPred> {
        Some(match s {
            "eq" => IntPred::Eq,
            "ne" => IntPred::Ne,
            "slt" => IntPred::Slt,
            "sle" => IntPred::Sle,
            "sgt" => IntPred::Sgt,
            "sge" => IntPred::Sge,
            "ult" => IntPred::Ult,
            "ule" => IntPred::Ule,
            "ugt" => IntPred::Ugt,
            "uge" => IntPred::Uge,
            _ => return None,
        })
    }
}

impl fmt::Display for IntPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Floating-point comparison predicates (ordered comparisons only).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FloatPred {
    /// Ordered equal.
    Oeq,
    /// Ordered not-equal.
    One,
    /// Ordered less-than.
    Olt,
    /// Ordered less-or-equal.
    Ole,
    /// Ordered greater-than.
    Ogt,
    /// Ordered greater-or-equal.
    Oge,
}

impl FloatPred {
    /// Textual name (`oeq`, `olt`, ...).
    pub fn name(self) -> &'static str {
        match self {
            FloatPred::Oeq => "oeq",
            FloatPred::One => "one",
            FloatPred::Olt => "olt",
            FloatPred::Ole => "ole",
            FloatPred::Ogt => "ogt",
            FloatPred::Oge => "oge",
        }
    }

    /// Parse a name produced by [`FloatPred::name`].
    pub fn from_name(s: &str) -> Option<FloatPred> {
        Some(match s {
            "oeq" => FloatPred::Oeq,
            "one" => FloatPred::One,
            "olt" => FloatPred::Olt,
            "ole" => FloatPred::Ole,
            "ogt" => FloatPred::Ogt,
            "oge" => FloatPred::Oge,
            _ => return None,
        })
    }
}

impl fmt::Display for FloatPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Immediate (non-value) attributes attached to certain opcodes.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum InstAttr {
    /// No attribute (most instructions).
    #[default]
    None,
    /// Predicate for [`Opcode::ICmp`].
    IntPred(IntPred),
    /// Predicate for [`Opcode::FCmp`].
    FloatPred(FloatPred),
    /// Element stride in bytes for [`Opcode::Gep`].
    ElemBytes(u32),
    /// Lane selection mask for [`Opcode::ShuffleVector`].
    Mask(Vec<u32>),
}

/// One instruction: opcode, result type, value operands and an optional
/// immediate attribute.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Inst {
    /// The operation.
    pub op: Opcode,
    /// The result type ([`Type::Void`] for `store`).
    pub ty: Type,
    /// Value operands, in opcode-defined order.
    pub args: Vec<ValueId>,
    /// Immediate attribute (predicate, gep stride, shuffle mask).
    pub attr: InstAttr,
}

impl Inst {
    /// Construct an instruction record.
    pub fn new(op: Opcode, ty: Type, args: Vec<ValueId>, attr: InstAttr) -> Inst {
        Inst { op, ty, args, attr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutative_implies_binary() {
        for op in Opcode::ALL {
            if op.is_commutative() {
                assert!(op.is_binary(), "{op} is commutative but not binary");
            }
        }
    }

    #[test]
    fn exact_associative_ops_are_integer() {
        for op in Opcode::ALL {
            if op.is_associative_exact() {
                assert!(!op.is_float_op(), "{op} claims exact associativity");
                assert!(op.is_commutative());
            }
        }
    }

    #[test]
    fn fast_math_extends_associativity_to_fp() {
        assert!(!Opcode::FAdd.is_associative(false));
        assert!(Opcode::FAdd.is_associative(true));
        assert!(Opcode::FMul.is_associative(true));
        assert!(!Opcode::FSub.is_associative(true));
        assert!(Opcode::Add.is_associative(false));
    }

    #[test]
    fn mnemonic_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("insertelement"), Some(Opcode::InsertElement));
        assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn pred_round_trip() {
        for p in [
            IntPred::Eq,
            IntPred::Ne,
            IntPred::Slt,
            IntPred::Sle,
            IntPred::Sgt,
            IntPred::Sge,
            IntPred::Ult,
            IntPred::Ule,
            IntPred::Ugt,
            IntPred::Uge,
        ] {
            assert_eq!(IntPred::from_name(p.name()), Some(p));
        }
        for p in [
            FloatPred::Oeq,
            FloatPred::One,
            FloatPred::Olt,
            FloatPred::Ole,
            FloatPred::Ogt,
            FloatPred::Oge,
        ] {
            assert_eq!(FloatPred::from_name(p.name()), Some(p));
        }
    }

    #[test]
    fn memory_and_side_effects() {
        assert!(Opcode::Load.is_memory());
        assert!(Opcode::Store.is_memory());
        assert!(Opcode::Store.has_side_effect());
        assert!(!Opcode::Load.has_side_effect());
        assert!(!Opcode::Add.is_memory());
    }
}
