//! Textual printing of functions and modules.
//!
//! The format round-trips through [`crate::parse_module`]:
//!
//! ```text
//! func @kernel(%A: ptr, %i: i64) {
//!   %0 = add i64 %i, 1
//!   %1 = gep %A, %0, 8
//!   %2 = load f64, %1
//!   store f64 %2, %1
//! }
//! ```

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use crate::cfg::Terminator;
use crate::function::{Function, Module, ValueData};
use crate::inst::{Inst, InstAttr, Opcode};
use crate::value::ValueId;

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == '.' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.chars().next().unwrap().is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

struct Namer {
    names: HashMap<ValueId, String>,
    taken: HashSet<String>,
    next: usize,
}

impl Namer {
    fn new(f: &Function) -> Namer {
        let mut n = Namer { names: HashMap::new(), taken: HashSet::new(), next: 0 };
        for &p in f.params() {
            let base = sanitize(f.value_name(p).unwrap_or("arg"));
            n.assign(p, base);
        }
        for &v in f.body() {
            n.name_value(f, v);
        }
        if let Some(cfg) = f.cfg() {
            for b in cfg.block_ids() {
                let block = cfg.block(b);
                for &p in block.params() {
                    n.name_value(f, p);
                }
                for &v in block.insts() {
                    n.name_value(f, v);
                }
            }
        }
        n
    }

    fn name_value(&mut self, f: &Function, v: ValueId) {
        if f.ty(v).is_void() {
            return;
        }
        match f.value_name(v) {
            Some(name) => {
                let base = sanitize(name);
                self.assign(v, base);
            }
            None => {
                let num = self.fresh_number();
                self.names.insert(v, num);
            }
        }
    }

    fn fresh_number(&mut self) -> String {
        loop {
            let cand = self.next.to_string();
            self.next += 1;
            if self.taken.insert(cand.clone()) {
                return cand;
            }
        }
    }

    fn assign(&mut self, v: ValueId, base: String) {
        let mut cand = base.clone();
        let mut k = 1;
        while !self.taken.insert(cand.clone()) {
            cand = format!("{base}{k}");
            k += 1;
        }
        self.names.insert(v, cand);
    }

    fn name(&self, v: ValueId) -> &str {
        self.names.get(&v).map_or("?", String::as_str)
    }
}

fn operand(f: &Function, namer: &Namer, v: ValueId) -> String {
    match f.value(v) {
        ValueData::Const(c) => f.const_value(*c).to_string(),
        _ => format!("%{}", namer.name(v)),
    }
}

fn print_inst(out: &mut String, f: &Function, namer: &Namer, id: ValueId, inst: &Inst) {
    let op = |i: usize| operand(f, namer, inst.args[i]);
    let op0 = || operand(f, namer, inst.args[0]);
    out.push_str("  ");
    if !inst.ty.is_void() {
        let _ = write!(out, "%{} = ", namer.name(id));
    }
    match inst.op {
        o if o.is_binary() => {
            let _ = write!(out, "{o} {} {}, {}", inst.ty, op(0), op(1));
        }
        Opcode::ICmp => {
            let InstAttr::IntPred(p) = &inst.attr else { unreachable!() };
            let _ = write!(out, "icmp {p} {} {}, {}", f.ty(inst.args[0]), op(0), op(1));
        }
        Opcode::FCmp => {
            let InstAttr::FloatPred(p) = &inst.attr else { unreachable!() };
            let _ = write!(out, "fcmp {p} {} {}, {}", f.ty(inst.args[0]), op(0), op(1));
        }
        Opcode::Select => {
            let _ = write!(out, "select {} {}, {}, {}", inst.ty, op(0), op(1), op(2));
        }
        Opcode::Gep => {
            let InstAttr::ElemBytes(b) = inst.attr else { unreachable!() };
            let _ = write!(out, "gep {}, {}, {b}", op(0), op(1));
        }
        Opcode::Load => {
            let _ = write!(out, "load {}, {}", inst.ty, op(0));
        }
        Opcode::Store => {
            let _ = write!(out, "store {} {}, {}", f.ty(inst.args[0]), op(0), op(1));
        }
        Opcode::InsertElement => {
            let _ = write!(out, "insertelement {} {}, {}, {}", inst.ty, op(0), op(1), op(2));
        }
        Opcode::ExtractElement => {
            let _ = write!(out, "extractelement {} {}, {}", f.ty(inst.args[0]), op(0), op(1));
        }
        Opcode::ShuffleVector => {
            let InstAttr::Mask(mask) = &inst.attr else { unreachable!() };
            let _ = write!(out, "shufflevector {} {}, {}, [", f.ty(inst.args[0]), op(0), op(1));
            for (i, m) in mask.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{m}");
            }
            out.push(']');
        }
        op if op.is_cast() => {
            let _ = write!(out, "{op} {} {} to {}", f.ty(inst.args[0]), op0(), inst.ty);
        }
        _ => unreachable!("unprintable opcode {}", inst.op),
    }
    out.push('\n');
}

/// Render a branch edge: `bbN` or `bbN(%a, %b)`.
fn edge(f: &Function, namer: &Namer, target: crate::cfg::BlockId, args: &[ValueId]) -> String {
    let mut s = target.to_string();
    if !args.is_empty() {
        s.push('(');
        for (i, &a) in args.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&operand(f, namer, a));
        }
        s.push(')');
    }
    s
}

fn print_term(out: &mut String, f: &Function, namer: &Namer, term: &Terminator) {
    out.push_str("  ");
    match term {
        Terminator::Ret => out.push_str("ret"),
        Terminator::Jump { target, args } => {
            let _ = write!(out, "jump {}", edge(f, namer, *target, args));
        }
        Terminator::Br { cond, then_to, then_args, else_to, else_args } => {
            let _ = write!(
                out,
                "br {}, {}, {}",
                operand(f, namer, *cond),
                edge(f, namer, *then_to, then_args),
                edge(f, namer, *else_to, else_args)
            );
        }
        Terminator::Loop { trip, body, init, exit } => {
            let _ = write!(
                out,
                "loop {}, {}, {}",
                operand(f, namer, *trip),
                edge(f, namer, *body, init),
                exit
            );
        }
        Terminator::Continue { args } => {
            out.push_str("continue");
            for (i, &a) in args.iter().enumerate() {
                out.push_str(if i > 0 { ", " } else { " " });
                out.push_str(&operand(f, namer, a));
            }
        }
    }
    out.push('\n');
}

/// Render a function in the textual IR format.
pub fn print_function(f: &Function) -> String {
    let namer = Namer::new(f);
    let mut out = String::new();
    let _ = write!(out, "func @{}(", f.name());
    for (i, &p) in f.params().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "%{}: {}", namer.name(p), f.ty(p));
    }
    out.push_str(") {\n");
    if let Some(cfg) = f.cfg() {
        for b in cfg.block_ids() {
            let block = cfg.block(b);
            let _ = write!(out, "{b}");
            if !block.params().is_empty() {
                out.push('(');
                for (i, &p) in block.params().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "%{}: {}", namer.name(p), f.ty(p));
                }
                out.push(')');
            }
            out.push_str(":\n");
            for &v in block.insts() {
                if let Some(inst) = f.inst(v) {
                    print_inst(&mut out, f, &namer, v, inst);
                }
            }
            print_term(&mut out, f, &namer, block.term());
        }
    } else {
        for (_, id, inst) in f.iter_body() {
            print_inst(&mut out, f, &namer, id, inst);
        }
    }
    out.push_str("}\n");
    out
}

/// Render a whole module (functions separated by blank lines).
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for (i, f) in m.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_function(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, ScalarType, Type};

    #[test]
    fn prints_scalar_kernel() {
        let mut f = Function::new("k");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let p = b.gep(a, i, 8);
        let v = b.load(Type::F64, p);
        let c = b.func().const_float(ScalarType::F64, 2.0);
        let d = b.fmul(v, c);
        b.store(d, p);
        let text = print_function(&f);
        assert!(text.contains("func @k(%A: ptr, %i: i64) {"), "{text}");
        assert!(text.contains("%0 = gep %A, %i, 8"), "{text}");
        assert!(text.contains("%1 = load f64, %0"), "{text}");
        assert!(text.contains("%2 = fmul f64 %1, 2.0"), "{text}");
        assert!(text.contains("store f64 %2, %0"), "{text}");
    }

    #[test]
    fn prints_vector_ops() {
        let mut f = Function::new("v");
        let a = f.add_param("A", Type::PTR);
        let vty = Type::Vector(ScalarType::F64, 2);
        let mut b = FunctionBuilder::new(&mut f);
        let v = b.load(vty, a);
        let e = b.extract(v, 1);
        let v2 = b.insert(v, e, 0);
        let sh = b.shuffle(v2, v2, vec![1, 0]);
        b.store(sh, a);
        let text = print_function(&f);
        assert!(text.contains("load <2 x f64>, %A"), "{text}");
        assert!(text.contains("extractelement <2 x f64> %0, 1"), "{text}");
        assert!(text.contains("insertelement <2 x f64> %0, %1, 0"), "{text}");
        assert!(text.contains("shufflevector <2 x f64> %2, %2, [1, 0]"), "{text}");
    }

    #[test]
    fn named_values_are_unique() {
        let mut f = Function::new("n");
        let x = f.add_param("x", Type::I64);
        let a = f.push(Opcode::Add, Type::I64, vec![x, x], InstAttr::None);
        let b = f.push(Opcode::Add, Type::I64, vec![a, x], InstAttr::None);
        f.set_value_name(a, "t");
        f.set_value_name(b, "t");
        let text = print_function(&f);
        assert!(text.contains("%t = "), "{text}");
        assert!(text.contains("%t1 = "), "{text}");
    }

    #[test]
    fn sanitizes_hostile_names() {
        let mut f = Function::new("s");
        let x = f.add_param("weird name!", Type::I64);
        let _ = x;
        let text = print_function(&f);
        assert!(text.contains("%weird_name_"), "{text}");
    }
}

#[cfg(test)]
mod cast_print_tests {
    use super::*;
    use crate::{FunctionBuilder, Opcode, ScalarType, Type};

    #[test]
    fn casts_print_llvm_style() {
        let mut f = Function::new("c");
        let x = f.add_param("x", Type::Scalar(ScalarType::I32));
        let p = f.add_param("P", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let w = b.cast(Opcode::Sext, x, Type::I64);
        let fl = b.cast(Opcode::Sitofp, w, Type::F64);
        let nf = b.cast(Opcode::Fptrunc, fl, Type::Scalar(ScalarType::F32));
        b.store(nf, p);
        let text = print_function(&f);
        assert!(text.contains("%0 = sext i32 %x to i64"), "{text}");
        assert!(text.contains("%1 = sitofp i64 %0 to f64"), "{text}");
        assert!(text.contains("%2 = fptrunc f64 %1 to f32"), "{text}");
        // And it parses back.
        let f2 = crate::parse_function(&text).unwrap();
        crate::verify_function(&f2).unwrap();
        assert_eq!(print_function(&f2), text);
    }
}
