//! Ergonomic instruction construction.

use crate::function::Function;
use crate::inst::{FloatPred, InstAttr, IntPred, Opcode};
use crate::types::{ScalarType, Type};
use crate::value::ValueId;

/// A convenience wrapper that appends instructions to a [`Function`],
/// inferring result types from operands.
///
/// ```
/// use lslp_ir::{Function, FunctionBuilder, Type};
///
/// let mut f = Function::new("sum");
/// let a = f.add_param("a", Type::I64);
/// let b = f.add_param("b", Type::I64);
/// let mut bld = FunctionBuilder::new(&mut f);
/// let s = bld.add(a, b);
/// assert_eq!(f.ty(s), Type::I64);
/// ```
pub struct FunctionBuilder<'f> {
    f: &'f mut Function,
}

macro_rules! binop_method {
    ($(#[$doc:meta])* $name:ident, $op:ident) => {
        $(#[$doc])*
        pub fn $name(&mut self, a: ValueId, b: ValueId) -> ValueId {
            self.binop(Opcode::$op, a, b)
        }
    };
}

impl<'f> FunctionBuilder<'f> {
    /// Wrap a function for appending.
    pub fn new(f: &'f mut Function) -> FunctionBuilder<'f> {
        FunctionBuilder { f }
    }

    /// Access the underlying function (e.g. to intern constants).
    pub fn func(&mut self) -> &mut Function {
        self.f
    }

    /// Append a binary instruction whose result type is the type of `a`.
    pub fn binop(&mut self, op: Opcode, a: ValueId, b: ValueId) -> ValueId {
        debug_assert!(op.is_binary(), "binop() requires a binary opcode");
        let ty = self.f.ty(a);
        self.f.push(op, ty, vec![a, b], InstAttr::None)
    }

    binop_method!(/// Integer add.
        add, Add);
    binop_method!(/// Integer subtract.
        sub, Sub);
    binop_method!(/// Integer multiply.
        mul, Mul);
    binop_method!(/// Signed division.
        sdiv, SDiv);
    binop_method!(/// Unsigned division.
        udiv, UDiv);
    binop_method!(/// Signed remainder.
        srem, SRem);
    binop_method!(/// Unsigned remainder.
        urem, URem);
    binop_method!(/// Bitwise and.
        and, And);
    binop_method!(/// Bitwise or.
        or, Or);
    binop_method!(/// Bitwise xor.
        xor, Xor);
    binop_method!(/// Shift left.
        shl, Shl);
    binop_method!(/// Logical shift right.
        lshr, LShr);
    binop_method!(/// Arithmetic shift right.
        ashr, AShr);
    binop_method!(/// Signed minimum.
        smin, SMin);
    binop_method!(/// Signed maximum.
        smax, SMax);
    binop_method!(/// Float add.
        fadd, FAdd);
    binop_method!(/// Float subtract.
        fsub, FSub);
    binop_method!(/// Float multiply.
        fmul, FMul);
    binop_method!(/// Float division.
        fdiv, FDiv);
    binop_method!(/// Float minimum.
        fmin, FMin);
    binop_method!(/// Float maximum.
        fmax, FMax);

    /// Integer comparison; the result is `i8` with the operand lane count.
    pub fn icmp(&mut self, pred: IntPred, a: ValueId, b: ValueId) -> ValueId {
        let ty = self.f.ty(a).with_lanes(self.f.ty(a).lanes().max(1));
        let rty = match ty {
            Type::Vector(_, n) => Type::Vector(ScalarType::I8, n),
            _ => Type::Scalar(ScalarType::I8),
        };
        self.f.push(Opcode::ICmp, rty, vec![a, b], InstAttr::IntPred(pred))
    }

    /// Float comparison; the result is `i8` with the operand lane count.
    pub fn fcmp(&mut self, pred: FloatPred, a: ValueId, b: ValueId) -> ValueId {
        let rty = match self.f.ty(a) {
            Type::Vector(_, n) => Type::Vector(ScalarType::I8, n),
            _ => Type::Scalar(ScalarType::I8),
        };
        self.f.push(Opcode::FCmp, rty, vec![a, b], InstAttr::FloatPred(pred))
    }

    /// Lanewise select: `cond != 0 ? a : b`.
    pub fn select(&mut self, cond: ValueId, a: ValueId, b: ValueId) -> ValueId {
        let ty = self.f.ty(a);
        self.f.push(Opcode::Select, ty, vec![cond, a, b], InstAttr::None)
    }

    /// A unary conversion instruction with the given destination type.
    pub fn cast(&mut self, op: Opcode, v: ValueId, dst: Type) -> ValueId {
        debug_assert!(op.is_cast(), "cast() requires a conversion opcode");
        self.f.push(op, dst, vec![v], InstAttr::None)
    }

    /// Pointer arithmetic: `base + index * elem_bytes`.
    pub fn gep(&mut self, base: ValueId, index: ValueId, elem_bytes: u32) -> ValueId {
        self.f.push(Opcode::Gep, Type::PTR, vec![base, index], InstAttr::ElemBytes(elem_bytes))
    }

    /// Load a value of type `ty` from `ptr`.
    pub fn load(&mut self, ty: Type, ptr: ValueId) -> ValueId {
        self.f.push(Opcode::Load, ty, vec![ptr], InstAttr::None)
    }

    /// Store `val` to `ptr`.
    pub fn store(&mut self, val: ValueId, ptr: ValueId) -> ValueId {
        self.f.push(Opcode::Store, Type::Void, vec![val, ptr], InstAttr::None)
    }

    /// Extract lane `lane` of vector `vec`.
    pub fn extract(&mut self, vec: ValueId, lane: u32) -> ValueId {
        let elem = self.f.ty(vec).elem().expect("extractelement needs a vector operand");
        let idx = self.f.const_i64(lane as i64);
        self.f.push(Opcode::ExtractElement, Type::Scalar(elem), vec![vec, idx], InstAttr::None)
    }

    /// Insert scalar `val` into lane `lane` of vector `vec`.
    pub fn insert(&mut self, vec: ValueId, val: ValueId, lane: u32) -> ValueId {
        let ty = self.f.ty(vec);
        let idx = self.f.const_i64(lane as i64);
        self.f.push(Opcode::InsertElement, ty, vec![vec, val, idx], InstAttr::None)
    }

    /// Shuffle lanes of `a` and `b` (mask indexes their concatenation).
    pub fn shuffle(&mut self, a: ValueId, b: ValueId, mask: Vec<u32>) -> ValueId {
        let elem = self.f.ty(a).elem().expect("shufflevector needs vectors");
        let ty = Type::Vector(elem, mask.len() as u32);
        self.f.push(Opcode::ShuffleVector, ty, vec![a, b], InstAttr::Mask(mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_function;

    #[test]
    fn builds_verified_scalar_code() {
        let mut f = Function::new("k");
        let a = f.add_param("A", Type::PTR);
        let i = f.add_param("i", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let p = b.gep(a, i, 8);
        let v = b.load(Type::F64, p);
        let c = b.func().const_float(ScalarType::F64, 2.0);
        let d = b.fmul(v, c);
        b.store(d, p);
        assert!(verify_function(&f).is_ok());
        assert_eq!(f.body_len(), 4);
    }

    #[test]
    fn builds_verified_vector_code() {
        let mut f = Function::new("v");
        let a = f.add_param("A", Type::PTR);
        let mut b = FunctionBuilder::new(&mut f);
        let vty = Type::Vector(ScalarType::F64, 2);
        let v = b.load(vty, a);
        let s = b.extract(v, 1);
        let v2 = b.insert(v, s, 0);
        let v3 = b.shuffle(v2, v2, vec![1, 0]);
        b.store(v3, a);
        assert!(verify_function(&f).is_ok());
    }

    #[test]
    fn cmp_and_select_types() {
        let mut f = Function::new("c");
        let x = f.add_param("x", Type::I64);
        let y = f.add_param("y", Type::I64);
        let mut b = FunctionBuilder::new(&mut f);
        let c = b.icmp(IntPred::Slt, x, y);
        let m = b.select(c, x, y);
        assert_eq!(f.ty(c), Type::Scalar(ScalarType::I8));
        assert_eq!(f.ty(m), Type::I64);
        assert!(verify_function(&f).is_ok());
    }
}
