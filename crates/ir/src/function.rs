//! Functions, modules, use-def bookkeeping, and the delta-undo
//! transaction log.
//!
//! All values live in index-addressed arenas inside [`Function`]: the value
//! arena (indexed by [`ValueId`]) holds small, cheaply-movable payloads, and
//! constants are interned once into a per-function pool (indexed by
//! [`ConstId`]) so the arena entry for a constant is a copyable id rather
//! than a (potentially large, e.g. vector) payload.
//!
//! Mutation is transactional: inside a [`Function::begin_txn`] /
//! [`Function::commit_txn`] / [`Function::rollback_txn`] window, every
//! mutating method appends a reversible [`Delta`] record, and rollback
//! replays only the touched records — O(changes), not O(function) — while
//! restoring the pre-transaction epoch so epoch-keyed analysis caches stay
//! warm. Outside a transaction no records are kept and mutation is
//! log-free.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::cfg::{Block, BlockId, Cfg, Terminator};
use crate::inst::{Inst, InstAttr, Opcode};
use crate::types::Type;
use crate::value::{ConstId, Constant, ValueId};

/// Process-wide source of mutation epochs. Every mutation of any function
/// draws a fresh value, so an epoch identifies *one specific content state*
/// of one function: two functions (or two states of the same function) with
/// equal epochs are guaranteed identical. Cached analyses key on this.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Draw a fresh, never-before-seen epoch.
///
/// Ordering rationale: `Relaxed` is sufficient. The entire contract —
/// "every draw returns a distinct value, and the values handed out are
/// monotone along the counter's modification order" — is a property of the
/// single atomic read-modify-write itself: `fetch_add` on one cell is
/// guaranteed to observe and produce a total modification order regardless
/// of memory-ordering strength, so no two threads can ever receive the same
/// epoch and no draw can return a value below one already handed out.
/// Stronger orderings (`Acquire`/`Release`/`SeqCst`) would only add
/// synchronizes-with edges to *other* memory locations, and the epoch
/// protocol never relies on such edges: an epoch is compared for equality
/// against values stored in the same-thread `Function` it stamps, never
/// used to publish unrelated data across threads.
fn fresh_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// The payload stored for each [`ValueId`] of a function.
#[derive(Clone, PartialEq, Debug)]
pub enum ValueData {
    /// A function parameter.
    Arg {
        /// Zero-based parameter position.
        index: u32,
        /// The parameter type.
        ty: Type,
    },
    /// An interned constant; the payload lives in the function's constant
    /// pool and is resolved via [`Function::const_value`].
    Const(ConstId),
    /// An instruction; only instructions appear in the body.
    Inst(Inst),
    /// A block parameter (phi-equivalent) of a CFG function. Bound per
    /// incoming edge by the predecessor's terminator arguments.
    BlockParam {
        /// The parameter type.
        ty: Type,
    },
}

/// One use of a value: which instruction uses it and at which operand slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Use {
    /// The using instruction.
    pub user: ValueId,
    /// The operand index within the user's argument list.
    pub index: usize,
}

/// A map from values to their uses within a function body, in body order.
///
/// Snapshot semantics: the map reflects the function at the time
/// [`Function::use_map`] was called and is not updated by later mutation.
#[derive(Clone, Debug, Default)]
pub struct UseMap {
    map: HashMap<ValueId, Vec<Use>>,
}

impl UseMap {
    /// All uses of `v`, in body order. Empty when unused.
    pub fn uses(&self, v: ValueId) -> &[Use] {
        self.map.get(&v).map_or(&[], Vec::as_slice)
    }

    /// Number of uses of `v`.
    pub fn num_uses(&self, v: ValueId) -> usize {
        self.uses(v).len()
    }
}

/// One reversible mutation record in a function's [`DeltaLog`].
///
/// Each mutating method of [`Function`] appends exactly the records needed
/// to undo itself, in operation order; [`Function::rollback_txn`] pops and
/// undoes them in reverse. Records are only kept while a transaction is
/// open ([`Function::in_txn`]).
#[derive(Clone, Debug)]
enum Delta {
    /// A value was allocated at the end of the arena.
    Alloc { v: ValueId },
    /// A constant was interned at the end of the pool.
    ConstIntern,
    /// A parameter handle was appended.
    ParamPush,
    /// An instruction was appended to the body.
    BodyPush,
    /// An instruction was inserted into the body at `at`.
    BodyInsert { at: usize },
    /// The whole body order was replaced; `old` is the previous order.
    BodyReplace { old: Vec<ValueId> },
    /// A value's debug name was set; `old` is the previous name.
    SetName { v: ValueId, old: Option<String> },
    /// An instruction payload was (possibly) mutated in place; `old` is the
    /// full previous record.
    SetInst { v: ValueId, old: Inst },
    /// A CFG was initialised (one empty entry block).
    CfgInit,
    /// A block was appended to the CFG.
    CfgBlockAdd,
    /// A block parameter was appended to block `b`.
    CfgBlockParamPush { b: BlockId },
    /// An instruction was appended to block `b`.
    CfgInstPush { b: BlockId },
    /// Block `b`'s instruction order was replaced; `old` is the previous
    /// order.
    CfgInstsReplace { b: BlockId, old: Vec<ValueId> },
    /// Block `b`'s parameter list was replaced; `old` is the previous list.
    CfgParamsReplace { b: BlockId, old: Vec<ValueId> },
    /// Block `b`'s terminator was replaced; `old` is the previous one.
    CfgSetTerm { b: BlockId, old: Terminator },
    /// The CFG was dissolved into a straight-line body; `old` is the whole
    /// previous CFG.
    CfgDissolve { old: Cfg },
}

/// A position in a function's delta log plus the epoch at that point.
///
/// Returned by [`Function::begin_txn`]; pass it back to
/// [`Function::commit_txn`] or [`Function::rollback_txn`]. Marks are
/// `Copy` and nest naturally (a mark taken inside an outer transaction
/// rolls back only the inner window).
#[derive(Clone, Copy, Debug)]
pub struct TxnMark {
    len: usize,
    epoch: u64,
}

/// A straight-line function: parameters, interned constants, and a single
/// ordered list of instructions (the *body*).
///
/// All values live in one arena indexed by [`ValueId`]; constant payloads
/// live once in a pool indexed by [`ConstId`]. Instructions removed from
/// the body stay in the arena as orphans; only body membership defines
/// program semantics.
#[derive(Clone, Debug)]
pub struct Function {
    name: String,
    values: Vec<ValueData>,
    names: Vec<Option<String>>,
    params: Vec<ValueId>,
    body: Vec<ValueId>,
    /// Interned constant payloads, indexed by [`ConstId`].
    consts: Vec<Constant>,
    /// Canonical value handle for each pool entry (1:1 with `consts`).
    const_vals: Vec<ValueId>,
    /// Interning index: constant payload → pool id. Only consulted when
    /// interning (parse/build time), never on the per-attempt hot path.
    const_lookup: HashMap<Constant, ConstId>,
    /// Reversible records for the open transaction window(s); empty when
    /// no transaction is open.
    log: Vec<Delta>,
    /// Number of nested open transactions.
    txn_depth: u32,
    /// Mutation epoch: refreshed from a process-wide counter on every
    /// mutation, preserved by `Clone` (a clone has identical content).
    /// Equal epochs imply identical content, so analysis caches keyed by
    /// epoch stay warm across snapshot/rollback cycles.
    epoch: u64,
    /// Control-flow graph, when this is a CFG function. `None` means the
    /// classic straight-line form; `Some` means the body is empty and every
    /// instruction lives in a block.
    cfg: Option<Cfg>,
}

impl Function {
    /// Create an empty function.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            values: Vec::new(),
            names: Vec::new(),
            params: Vec::new(),
            body: Vec::new(),
            consts: Vec::new(),
            const_vals: Vec::new(),
            const_lookup: HashMap::new(),
            log: Vec::new(),
            txn_depth: 0,
            epoch: fresh_epoch(),
            cfg: None,
        }
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current mutation epoch.
    ///
    /// Every mutating method refreshes this from a process-wide counter, so
    /// an epoch names one specific content state: if two `Function` values
    /// report the same epoch they are bit-identical (clones preserve the
    /// epoch together with the content; a transactional rollback — whether
    /// by snapshot restore or by [`Function::rollback_txn`] delta replay —
    /// therefore also restores the pre-transaction epoch, keeping
    /// epoch-keyed analysis caches warm). Cached analyses compare this
    /// against the epoch they were computed at to detect staleness.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mark the function as mutated (invalidates epoch-keyed caches).
    fn touch(&mut self) {
        self.epoch = fresh_epoch();
    }

    /// Append a reversible record if a transaction is open.
    fn record(&mut self, d: Delta) {
        if self.txn_depth > 0 {
            self.log.push(d);
        }
    }

    // ----- transactions ---------------------------------------------------

    /// Open a transaction window; mutations from here on are recorded in
    /// the delta log until the matching [`Function::commit_txn`] or
    /// [`Function::rollback_txn`]. Transactions nest: an inner mark rolls
    /// back only the mutations made after it.
    pub fn begin_txn(&mut self) -> TxnMark {
        self.txn_depth += 1;
        TxnMark { len: self.log.len(), epoch: self.epoch }
    }

    /// Close the transaction opened at `mark`, keeping its mutations. When
    /// the outermost transaction commits, the log is discarded (a committed
    /// attempt costs nothing beyond the mutations themselves).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn commit_txn(&mut self, mark: TxnMark) {
        assert!(self.txn_depth > 0, "commit_txn without begin_txn");
        debug_assert!(mark.len <= self.log.len(), "stale transaction mark");
        self.txn_depth -= 1;
        if self.txn_depth == 0 {
            self.log.clear();
        }
    }

    /// Close the transaction opened at `mark`, undoing every mutation made
    /// since, in reverse order, and restoring the pre-transaction epoch
    /// (so epoch-keyed analysis caches computed before the transaction stay
    /// warm — the content is bit-identical to the pre-transaction state).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn rollback_txn(&mut self, mark: TxnMark) {
        assert!(self.txn_depth > 0, "rollback_txn without begin_txn");
        while self.log.len() > mark.len {
            let d = self.log.pop().expect("log shorter than its mark");
            self.undo(d);
        }
        self.epoch = mark.epoch;
        self.txn_depth -= 1;
        if self.txn_depth == 0 {
            self.log.clear();
        }
    }

    /// Whether a transaction is currently open.
    pub fn in_txn(&self) -> bool {
        self.txn_depth > 0
    }

    /// Number of delta records currently held (0 outside transactions).
    /// Exposed for diagnostics and benchmarks.
    pub fn delta_len(&self) -> usize {
        self.log.len()
    }

    /// The set of values touched (allocated or mutated) since `mark`.
    ///
    /// Used by the incremental verifier on commit: an instruction whose id
    /// is absent from this set *and* all of whose operands are absent has
    /// an unchanged payload with unchanged operand payloads, so its
    /// per-opcode type rules cannot have been invalidated. Body *order*
    /// changes are deliberately not reflected here — order-sensitive
    /// checks (duplicates, def-before-use) are cheap and always run in
    /// full.
    pub fn touched_since(&self, mark: TxnMark) -> HashSet<ValueId> {
        let mut touched = HashSet::new();
        for d in &self.log[mark.len.min(self.log.len())..] {
            match d {
                Delta::Alloc { v } | Delta::SetName { v, .. } | Delta::SetInst { v, .. } => {
                    touched.insert(*v);
                }
                Delta::ConstIntern
                | Delta::ParamPush
                | Delta::BodyPush
                | Delta::BodyInsert { .. }
                | Delta::BodyReplace { .. }
                | Delta::CfgInit
                | Delta::CfgBlockAdd
                | Delta::CfgBlockParamPush { .. }
                | Delta::CfgInstPush { .. }
                | Delta::CfgInstsReplace { .. }
                | Delta::CfgParamsReplace { .. }
                | Delta::CfgSetTerm { .. }
                | Delta::CfgDissolve { .. } => {}
            }
        }
        touched
    }

    /// Undo one record. Called in reverse log order only.
    fn undo(&mut self, d: Delta) {
        match d {
            Delta::Alloc { v } => {
                debug_assert_eq!(v.index() + 1, self.values.len(), "undo out of order");
                self.values.pop();
                self.names.pop();
            }
            Delta::ConstIntern => {
                let c = self.consts.pop().expect("undo ConstIntern on empty pool");
                self.const_vals.pop();
                self.const_lookup.remove(&c);
            }
            Delta::ParamPush => {
                self.params.pop();
            }
            Delta::BodyPush => {
                self.body.pop();
            }
            Delta::BodyInsert { at } => {
                self.body.remove(at);
            }
            Delta::BodyReplace { old } => {
                self.body = old;
            }
            Delta::SetName { v, old } => {
                self.names[v.index()] = old;
            }
            Delta::SetInst { v, old } => {
                self.values[v.index()] = ValueData::Inst(old);
            }
            Delta::CfgInit => {
                self.cfg = None;
            }
            Delta::CfgBlockAdd => {
                self.cfg_mut().blocks.pop();
            }
            Delta::CfgBlockParamPush { b } => {
                self.cfg_mut().blocks[b.index()].params.pop();
            }
            Delta::CfgInstPush { b } => {
                self.cfg_mut().blocks[b.index()].insts.pop();
            }
            Delta::CfgInstsReplace { b, old } => {
                self.cfg_mut().blocks[b.index()].insts = old;
            }
            Delta::CfgParamsReplace { b, old } => {
                self.cfg_mut().blocks[b.index()].params = old;
            }
            Delta::CfgSetTerm { b, old } => {
                self.cfg_mut().blocks[b.index()].term = old;
            }
            Delta::CfgDissolve { old } => {
                self.cfg = Some(old);
            }
        }
    }

    /// The CFG, for undo paths that know it must exist.
    fn cfg_mut(&mut self) -> &mut Cfg {
        self.cfg.as_mut().expect("undo requires the CFG it mutated")
    }

    // ----- construction ---------------------------------------------------

    fn alloc(&mut self, data: ValueData, name: Option<String>) -> ValueId {
        self.touch();
        let id = ValueId::from_raw(self.values.len() as u32);
        self.values.push(data);
        self.names.push(name);
        self.record(Delta::Alloc { v: id });
        id
    }

    /// Append a parameter of the given type; returns its value handle.
    pub fn add_param(&mut self, name: impl Into<String>, ty: Type) -> ValueId {
        let index = self.params.len() as u32;
        let id = self.alloc(ValueData::Arg { index, ty }, Some(name.into()));
        self.params.push(id);
        self.record(Delta::ParamPush);
        id
    }

    /// The parameter values, in declaration order.
    pub fn params(&self) -> &[ValueId] {
        &self.params
    }

    /// Intern a constant, returning a stable handle (equal constants share
    /// one handle, so handle equality is constant equality). Re-interning a
    /// known constant is not a mutation: it returns the existing handle and
    /// leaves the epoch untouched.
    pub fn constant(&mut self, c: Constant) -> ValueId {
        if let Some(&cid) = self.const_lookup.get(&c) {
            return self.const_vals[cid.index()];
        }
        let cid = ConstId::from_raw(self.consts.len() as u32);
        self.consts.push(c.clone());
        self.const_lookup.insert(c, cid);
        let id = self.alloc(ValueData::Const(cid), None);
        self.const_vals.push(id);
        self.record(Delta::ConstIntern);
        id
    }

    /// Intern an integer constant of scalar type `ty`.
    pub fn const_int(&mut self, ty: crate::ScalarType, v: i64) -> ValueId {
        self.constant(Constant::int(ty, v))
    }

    /// Intern an `i64` constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.const_int(crate::ScalarType::I64, v)
    }

    /// Intern a float constant of scalar type `ty`.
    pub fn const_float(&mut self, ty: crate::ScalarType, v: f64) -> ValueId {
        self.constant(Constant::float(ty, v))
    }

    /// Append an instruction to the body; returns its value handle.
    pub fn push(&mut self, op: Opcode, ty: Type, args: Vec<ValueId>, attr: InstAttr) -> ValueId {
        let id = self.alloc(ValueData::Inst(Inst::new(op, ty, args, attr)), None);
        self.body.push(id);
        self.record(Delta::BodyPush);
        id
    }

    /// Insert an instruction at body position `at` (shifting later ones).
    ///
    /// # Panics
    ///
    /// Panics if `at > body_len()`.
    pub fn insert(
        &mut self,
        at: usize,
        op: Opcode,
        ty: Type,
        args: Vec<ValueId>,
        attr: InstAttr,
    ) -> ValueId {
        assert!(at <= self.body.len(), "insert position out of range");
        let id = self.alloc(ValueData::Inst(Inst::new(op, ty, args, attr)), None);
        self.body.insert(at, id);
        self.record(Delta::BodyInsert { at });
        id
    }

    /// Attach a debug name to a value (shown by the printer).
    pub fn set_value_name(&mut self, v: ValueId, name: impl Into<String>) {
        self.touch();
        let old = self.names[v.index()].replace(name.into());
        // `replace` already stored the new name; keep the previous one for
        // the undo record.
        self.record(Delta::SetName { v, old });
    }

    /// The debug name of a value, if any.
    pub fn value_name(&self, v: ValueId) -> Option<&str> {
        self.names[v.index()].as_deref()
    }

    // ----- queries --------------------------------------------------------

    /// The payload of a value.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this function.
    pub fn value(&self, v: ValueId) -> &ValueData {
        &self.values[v.index()]
    }

    /// The instruction record, if `v` is an instruction.
    pub fn inst(&self, v: ValueId) -> Option<&Inst> {
        match self.value(v) {
            ValueData::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// Mutable access to an instruction record.
    pub fn inst_mut(&mut self, v: ValueId) -> Option<&mut Inst> {
        // Conservatively assume the caller mutates through the reference.
        self.touch();
        if self.txn_depth > 0 {
            if let ValueData::Inst(old) = &self.values[v.index()] {
                let old = old.clone();
                self.log.push(Delta::SetInst { v, old });
            }
        }
        match &mut self.values[v.index()] {
            ValueData::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// The constant, if `v` is a constant.
    pub fn as_const(&self, v: ValueId) -> Option<&Constant> {
        match self.value(v) {
            ValueData::Const(c) => Some(&self.consts[c.index()]),
            _ => None,
        }
    }

    /// The pool id, if `v` is a constant.
    pub fn const_id(&self, v: ValueId) -> Option<ConstId> {
        match self.value(v) {
            ValueData::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Resolve an interned constant's payload.
    ///
    /// # Panics
    ///
    /// Panics if `c` was not interned by this function.
    pub fn const_value(&self, c: ConstId) -> &Constant {
        &self.consts[c.index()]
    }

    /// Number of distinct interned constants.
    pub fn num_consts(&self) -> usize {
        self.consts.len()
    }

    /// Whether `v` is an instruction.
    pub fn is_inst(&self, v: ValueId) -> bool {
        matches!(self.value(v), ValueData::Inst(_))
    }

    /// Whether `v` is a constant.
    pub fn is_const(&self, v: ValueId) -> bool {
        matches!(self.value(v), ValueData::Const(_))
    }

    /// Whether `v` is a parameter.
    pub fn is_arg(&self, v: ValueId) -> bool {
        matches!(self.value(v), ValueData::Arg { .. })
    }

    /// The opcode, if `v` is an instruction.
    pub fn opcode(&self, v: ValueId) -> Option<Opcode> {
        self.inst(v).map(|i| i.op)
    }

    /// The operands of `v` (empty for non-instructions).
    pub fn args_of(&self, v: ValueId) -> &[ValueId] {
        self.inst(v).map_or(&[], |i| i.args.as_slice())
    }

    /// The type of any value.
    pub fn ty(&self, v: ValueId) -> Type {
        match self.value(v) {
            ValueData::Arg { ty, .. } => *ty,
            ValueData::Const(c) => self.consts[c.index()].ty(),
            ValueData::Inst(i) => i.ty,
            ValueData::BlockParam { ty } => *ty,
        }
    }

    /// Whether `v` is a block parameter of a CFG function.
    pub fn is_block_param(&self, v: ValueId) -> bool {
        matches!(self.value(v), ValueData::BlockParam { .. })
    }

    /// The instruction body, in execution order.
    pub fn body(&self) -> &[ValueId] {
        &self.body
    }

    /// Number of instructions in the body.
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Total number of allocated values (including orphans and constants).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// A map from each body instruction to its current position.
    pub fn position_map(&self) -> HashMap<ValueId, usize> {
        self.body.iter().enumerate().map(|(i, &v)| (v, i)).collect()
    }

    /// Compute the current use map of the body.
    pub fn use_map(&self) -> UseMap {
        let mut map: HashMap<ValueId, Vec<Use>> = HashMap::new();
        for &user in &self.body {
            if let ValueData::Inst(inst) = self.value(user) {
                for (index, &arg) in inst.args.iter().enumerate() {
                    map.entry(arg).or_default().push(Use { user, index });
                }
            }
        }
        UseMap { map }
    }

    // ----- mutation -------------------------------------------------------

    /// Replace every use of `old` with `new` in one instruction, logging
    /// the previous payload when inside a transaction.
    fn rewrite_user(&mut self, user: ValueId, old: ValueId, new: ValueId) {
        let uses_old = matches!(
            &self.values[user.index()],
            ValueData::Inst(inst) if inst.args.contains(&old)
        );
        if !uses_old {
            return;
        }
        if self.txn_depth > 0 {
            if let ValueData::Inst(prev) = &self.values[user.index()] {
                let prev = prev.clone();
                self.log.push(Delta::SetInst { v: user, old: prev });
            }
        }
        if let ValueData::Inst(inst) = &mut self.values[user.index()] {
            for arg in &mut inst.args {
                if *arg == old {
                    *arg = new;
                }
            }
        }
    }

    /// Replace every use of `old` with `new`: body instructions, and on CFG
    /// functions also every block instruction and terminator operand.
    pub fn replace_uses(&mut self, old: ValueId, new: ValueId) {
        self.touch();
        let body = self.body.clone();
        for user in body {
            self.rewrite_user(user, old, new);
        }
        if self.cfg.is_some() {
            let num_blocks = self.cfg.as_ref().expect("checked above").blocks.len();
            for bi in 0..num_blocks {
                let b = BlockId::from_raw(bi as u32);
                let insts = self.cfg.as_ref().expect("checked above").blocks[bi].insts.clone();
                for user in insts {
                    self.rewrite_user(user, old, new);
                }
                let prev = self.cfg.as_ref().expect("checked above").blocks[bi].term.clone();
                let mut term = prev.clone();
                if term.rewrite_operands(old, new) {
                    if self.txn_depth > 0 {
                        self.log.push(Delta::CfgSetTerm { b, old: prev });
                    }
                    self.cfg.as_mut().expect("checked above").blocks[bi].term = term;
                }
            }
        }
    }

    /// Remove the given instructions from the body (they become orphans).
    pub fn remove_from_body(&mut self, dead: &HashSet<ValueId>) {
        self.touch();
        if self.txn_depth > 0 {
            let old = self.body.clone();
            self.log.push(Delta::BodyReplace { old });
        }
        self.body.retain(|v| !dead.contains(v));
    }

    /// Replace the body with a new instruction order.
    ///
    /// Used by vector code generation to interleave newly created
    /// instructions at their proper positions. Instructions left out of
    /// `new_order` become orphans.
    ///
    /// # Panics
    ///
    /// Panics if `new_order` contains duplicates or non-instructions.
    pub fn rebuild_body(&mut self, new_order: Vec<ValueId>) {
        let mut seen = HashSet::with_capacity(new_order.len());
        for &v in &new_order {
            assert!(self.is_inst(v), "rebuild_body: {v} is not an instruction");
            assert!(seen.insert(v), "rebuild_body: {v} appears twice");
        }
        // Validation precedes both the mutation and the record, so a
        // panicking call leaves the log consistent with the content.
        self.touch();
        let old = std::mem::replace(&mut self.body, new_order);
        self.record(Delta::BodyReplace { old });
    }

    /// Iterate over `(position, id, inst)` for the body.
    pub fn iter_body(&self) -> impl Iterator<Item = (usize, ValueId, &Inst)> + '_ {
        self.body.iter().enumerate().map(move |(i, &v)| {
            let ValueData::Inst(inst) = self.value(v) else {
                unreachable!("body contains only instructions");
            };
            (i, v, inst)
        })
    }

    // ----- control flow ---------------------------------------------------

    /// The control-flow graph, when this is a CFG function.
    pub fn cfg(&self) -> Option<&Cfg> {
        self.cfg.as_ref()
    }

    /// The block data for `b`.
    ///
    /// # Panics
    ///
    /// Panics on a straight-line function or an out-of-range id.
    pub fn block(&self, b: BlockId) -> &Block {
        self.cfg.as_ref().expect("block() on a straight-line function").block(b)
    }

    /// Number of CFG blocks (0 on a straight-line function).
    pub fn num_blocks(&self) -> usize {
        self.cfg.as_ref().map_or(0, Cfg::num_blocks)
    }

    /// Turn this straight-line function into a CFG function with one empty
    /// entry block (terminated by `ret`); returns the entry block id.
    ///
    /// # Panics
    ///
    /// Panics if a CFG already exists or the body is non-empty (CFG
    /// functions keep all instructions in blocks; lower the body into the
    /// entry block instead).
    pub fn init_cfg(&mut self) -> BlockId {
        assert!(self.cfg.is_none(), "init_cfg: CFG already present");
        assert!(self.body.is_empty(), "init_cfg: body must be empty");
        self.touch();
        let cfg = Cfg::new();
        let entry = cfg.entry();
        self.cfg = Some(cfg);
        self.record(Delta::CfgInit);
        entry
    }

    /// Append a new empty block (terminated by `ret`); returns its id.
    ///
    /// # Panics
    ///
    /// Panics on a straight-line function.
    pub fn add_block(&mut self) -> BlockId {
        self.touch();
        let cfg = self.cfg.as_mut().expect("add_block on a straight-line function");
        let id = BlockId::from_raw(cfg.blocks.len() as u32);
        cfg.blocks.push(Block::new());
        self.record(Delta::CfgBlockAdd);
        id
    }

    /// Append a parameter of type `ty` to block `b`; returns its handle.
    /// Pass `None` as the name to let the printer auto-number it.
    ///
    /// # Panics
    ///
    /// Panics on a straight-line function or an out-of-range block id.
    pub fn add_block_param(&mut self, b: BlockId, name: Option<String>, ty: Type) -> ValueId {
        assert!(self.cfg.as_ref().is_some_and(|c| c.contains(b)), "add_block_param: no block {b}");
        let id = self.alloc(ValueData::BlockParam { ty }, name);
        self.cfg.as_mut().expect("checked above").blocks[b.index()].params.push(id);
        self.record(Delta::CfgBlockParamPush { b });
        id
    }

    /// Append an instruction to block `b`; returns its handle.
    ///
    /// # Panics
    ///
    /// Panics on a straight-line function or an out-of-range block id.
    pub fn push_in_block(
        &mut self,
        b: BlockId,
        op: Opcode,
        ty: Type,
        args: Vec<ValueId>,
        attr: InstAttr,
    ) -> ValueId {
        assert!(self.cfg.as_ref().is_some_and(|c| c.contains(b)), "push_in_block: no block {b}");
        let id = self.alloc(ValueData::Inst(Inst::new(op, ty, args, attr)), None);
        self.cfg.as_mut().expect("checked above").blocks[b.index()].insts.push(id);
        self.record(Delta::CfgInstPush { b });
        id
    }

    /// Replace block `b`'s terminator.
    ///
    /// # Panics
    ///
    /// Panics on a straight-line function or an out-of-range block id.
    pub fn set_term(&mut self, b: BlockId, term: Terminator) {
        assert!(self.cfg.as_ref().is_some_and(|c| c.contains(b)), "set_term: no block {b}");
        self.touch();
        let slot = &mut self.cfg.as_mut().expect("checked above").blocks[b.index()].term;
        let old = std::mem::replace(slot, term);
        self.record(Delta::CfgSetTerm { b, old });
    }

    /// Replace block `b`'s instruction order. Instructions left out become
    /// orphans.
    ///
    /// # Panics
    ///
    /// Panics on a straight-line function, an out-of-range block id, or a
    /// list with duplicates or non-instructions.
    pub fn set_block_insts(&mut self, b: BlockId, insts: Vec<ValueId>) {
        assert!(self.cfg.as_ref().is_some_and(|c| c.contains(b)), "set_block_insts: no block {b}");
        let mut seen = HashSet::with_capacity(insts.len());
        for &v in &insts {
            assert!(self.is_inst(v), "set_block_insts: {v} is not an instruction");
            assert!(seen.insert(v), "set_block_insts: {v} appears twice");
        }
        // Validation precedes both the mutation and the record, so a
        // panicking call leaves the log consistent with the content.
        self.touch();
        let slot = &mut self.cfg.as_mut().expect("checked above").blocks[b.index()].insts;
        let old = std::mem::replace(slot, insts);
        self.record(Delta::CfgInstsReplace { b, old });
    }

    /// Replace block `b`'s parameter list. Dropped parameters become
    /// orphans (rewrite their uses first).
    ///
    /// # Panics
    ///
    /// Panics on a straight-line function, an out-of-range block id, or a
    /// list containing non-block-parameters.
    pub fn set_block_params(&mut self, b: BlockId, params: Vec<ValueId>) {
        assert!(self.cfg.as_ref().is_some_and(|c| c.contains(b)), "set_block_params: no block {b}");
        for &v in &params {
            assert!(self.is_block_param(v), "set_block_params: {v} is not a block parameter");
        }
        self.touch();
        let slot = &mut self.cfg.as_mut().expect("checked above").blocks[b.index()].params;
        let old = std::mem::replace(slot, params);
        self.record(Delta::CfgParamsReplace { b, old });
    }

    /// Dissolve the CFG back into a straight-line function whose body is
    /// `new_body`. The caller guarantees `new_body` is the linearised
    /// program (the passes only call this after reducing the CFG to a
    /// single straight-line chain).
    ///
    /// # Panics
    ///
    /// Panics on a straight-line function, or if `new_body` contains
    /// duplicates or non-instructions.
    pub fn dissolve_cfg(&mut self, new_body: Vec<ValueId>) {
        assert!(self.cfg.is_some(), "dissolve_cfg on a straight-line function");
        let mut seen = HashSet::with_capacity(new_body.len());
        for &v in &new_body {
            assert!(self.is_inst(v), "dissolve_cfg: {v} is not an instruction");
            assert!(seen.insert(v), "dissolve_cfg: {v} appears twice");
        }
        self.touch();
        let old = std::mem::replace(&mut self.body, new_body);
        self.record(Delta::BodyReplace { old });
        let old_cfg = self.cfg.take().expect("checked above");
        self.record(Delta::CfgDissolve { old: old_cfg });
    }
}

/// A set of functions compiled together.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// The functions, in definition order.
    pub functions: Vec<Function>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name() == name)
    }

    /// Find a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_function;
    use crate::{ScalarType, Type};

    fn sample() -> (Function, ValueId, ValueId) {
        let mut f = Function::new("t");
        let a = f.add_param("a", Type::I64);
        let one = f.const_i64(1);
        let add = f.push(Opcode::Add, Type::I64, vec![a, one], InstAttr::None);
        let mul = f.push(Opcode::Mul, Type::I64, vec![add, add], InstAttr::None);
        (f, add, mul)
    }

    #[test]
    fn constants_are_interned() {
        let mut f = Function::new("t");
        let c1 = f.const_i64(7);
        let c2 = f.const_i64(7);
        let c3 = f.const_i64(8);
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
        let cf1 = f.const_float(ScalarType::F64, 0.5);
        let cf2 = f.const_float(ScalarType::F64, 0.5);
        assert_eq!(cf1, cf2);
        assert_eq!(f.num_consts(), 3);
        // The pool resolves both directions.
        let cid = f.const_id(c1).unwrap();
        assert_eq!(f.const_value(cid).as_int(), Some(7));
        assert_eq!(f.as_const(c1).unwrap().as_int(), Some(7));
    }

    #[test]
    fn body_and_positions() {
        let (f, add, mul) = sample();
        assert_eq!(f.body_len(), 2);
        let pos = f.position_map();
        assert_eq!(pos[&add], 0);
        assert_eq!(pos[&mul], 1);
    }

    #[test]
    fn use_map_counts() {
        let (f, add, mul) = sample();
        let um = f.use_map();
        assert_eq!(um.num_uses(add), 2);
        assert_eq!(um.uses(add)[0].user, mul);
        assert_eq!(um.uses(add)[0].index, 0);
        assert_eq!(um.uses(add)[1].index, 1);
        assert_eq!(um.num_uses(mul), 0);
    }

    #[test]
    fn replace_uses_rewrites_operands() {
        let (mut f, add, mul) = sample();
        let zero = f.const_i64(0);
        f.replace_uses(add, zero);
        assert_eq!(f.args_of(mul), &[zero, zero]);
    }

    #[test]
    fn remove_from_body_orphans_instructions() {
        let (mut f, add, _mul) = sample();
        let mut dead = HashSet::new();
        dead.insert(add);
        f.remove_from_body(&dead);
        assert_eq!(f.body_len(), 1);
        // Orphan is still queryable.
        assert_eq!(f.opcode(add), Some(Opcode::Add));
    }

    #[test]
    fn insert_shifts_positions() {
        let (mut f, add, _) = sample();
        let c = f.const_i64(3);
        let early = f.insert(0, Opcode::Add, Type::I64, vec![c, c], InstAttr::None);
        let pos = f.position_map();
        assert_eq!(pos[&early], 0);
        assert_eq!(pos[&add], 1);
    }

    #[test]
    fn value_names() {
        let (mut f, add, _) = sample();
        assert_eq!(f.value_name(add), None);
        f.set_value_name(add, "sum");
        assert_eq!(f.value_name(add), Some("sum"));
        assert_eq!(f.value_name(f.params()[0]), Some("a"));
    }

    #[test]
    fn epoch_tracks_mutation() {
        let (mut f, add, _) = sample();
        let e0 = f.epoch();
        // Read-only queries keep the epoch.
        let _ = f.body_len();
        let _ = f.use_map();
        let _ = f.position_map();
        assert_eq!(f.epoch(), e0);
        // Interning an already-known constant is not a mutation.
        let one_again = f.const_i64(1);
        assert_eq!(f.epoch(), e0);
        let _ = one_again;
        // Any real mutation draws a fresh, never-before-seen epoch.
        let zero = f.const_i64(0);
        let e1 = f.epoch();
        assert_ne!(e1, e0);
        f.replace_uses(add, zero);
        let e2 = f.epoch();
        assert_ne!(e2, e1);
    }

    #[test]
    fn epoch_survives_snapshot_rollback() {
        let (mut f, _, _) = sample();
        let snapshot = f.clone();
        let e0 = f.epoch();
        assert_eq!(snapshot.epoch(), e0, "a clone has identical content");
        f.add_param("junk", Type::I64);
        assert_ne!(f.epoch(), e0);
        f = snapshot;
        assert_eq!(f.epoch(), e0, "rollback restores the snapshot's epoch");
        // Post-rollback mutations never reuse an epoch from the abandoned
        // timeline (epochs are globally unique).
        let abandoned = f.epoch();
        f.add_param("other", Type::I64);
        assert_ne!(f.epoch(), abandoned);
    }

    #[test]
    fn epochs_are_distinct_across_functions() {
        let a = Function::new("a");
        let b = Function::new("b");
        assert_ne!(a.epoch(), b.epoch());
    }

    #[test]
    fn epoch_draws_are_unique_and_monotone_across_threads() {
        // Two threads hammering the epoch counter must each observe
        // strictly increasing draws, and the union must be duplicate-free.
        // This pins the `Relaxed` rationale on `fresh_epoch`: uniqueness
        // and monotonicity come from the single atomic RMW, not from any
        // cross-location ordering.
        const DRAWS: usize = 10_000;
        let worker = || {
            let mut out = Vec::with_capacity(DRAWS);
            let mut f = Function::new("spin");
            for _ in 0..DRAWS {
                f.add_param("p", Type::I64);
                out.push(f.epoch());
            }
            out
        };
        let t1 = std::thread::spawn(worker);
        let t2 = std::thread::spawn(worker);
        let a = t1.join().unwrap();
        let b = t2.join().unwrap();
        for seq in [&a, &b] {
            assert!(seq.windows(2).all(|w| w[0] < w[1]), "per-thread draws must be monotone");
        }
        let mut all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "no epoch may ever be handed out twice");
    }

    #[test]
    fn txn_rollback_restores_content_and_epoch() {
        let (mut f, add, mul) = sample();
        let before = print_function(&f);
        let e0 = f.epoch();

        let mark = f.begin_txn();
        // One of each kind of mutation.
        let p = f.add_param("extra", Type::F64);
        let c = f.const_i64(99);
        let s = f.push(Opcode::Sub, Type::I64, vec![c, c], InstAttr::None);
        f.insert(0, Opcode::Add, Type::I64, vec![c, c], InstAttr::None);
        f.set_value_name(add, "renamed");
        f.set_value_name(s, "s");
        if let Some(i) = f.inst_mut(mul) {
            i.args.swap(0, 1);
        }
        f.replace_uses(add, c);
        let mut dead = HashSet::new();
        dead.insert(add);
        f.remove_from_body(&dead);
        let order: Vec<ValueId> = f.body().iter().rev().copied().collect();
        f.rebuild_body(order);
        assert_ne!(print_function(&f), before);
        let _ = p;

        f.rollback_txn(mark);
        assert_eq!(print_function(&f), before, "rollback must be bit-identical");
        assert_eq!(f.epoch(), e0, "rollback restores the pre-txn epoch");
        assert!(!f.in_txn());
        assert_eq!(f.delta_len(), 0);
        assert_eq!(f.num_values(), 4, "allocations are undone");
        assert_eq!(f.num_consts(), 1, "interning is undone");
        // The undone constant can be re-interned cleanly.
        let again = f.const_i64(99);
        assert_eq!(f.as_const(again).unwrap().as_int(), Some(99));
    }

    #[test]
    fn txn_commit_keeps_changes_and_clears_log() {
        let (mut f, _, _) = sample();
        let mark = f.begin_txn();
        let c = f.const_i64(5);
        f.push(Opcode::Add, Type::I64, vec![c, c], InstAttr::None);
        assert!(f.delta_len() > 0);
        f.commit_txn(mark);
        assert_eq!(f.body_len(), 3);
        assert_eq!(f.delta_len(), 0, "outermost commit discards the log");
        assert!(!f.in_txn());
    }

    #[test]
    fn nested_txns_roll_back_independently() {
        let (mut f, _, _) = sample();
        let outer = f.begin_txn();
        let c = f.const_i64(5);
        f.push(Opcode::Add, Type::I64, vec![c, c], InstAttr::None);
        let mid = print_function(&f);

        let inner = f.begin_txn();
        f.push(Opcode::Mul, Type::I64, vec![c, c], InstAttr::None);
        f.rollback_txn(inner);
        assert_eq!(print_function(&f), mid, "inner rollback keeps outer work");
        assert!(f.in_txn());

        let inner2 = f.begin_txn();
        f.push(Opcode::Sub, Type::I64, vec![c, c], InstAttr::None);
        f.commit_txn(inner2);
        assert_eq!(f.body_len(), 4);

        let before_outer = print_function(&f);
        f.commit_txn(outer);
        assert_eq!(print_function(&f), before_outer);
        assert!(!f.in_txn());
        assert_eq!(f.delta_len(), 0);
    }

    #[test]
    fn touched_since_names_mutated_values() {
        let (mut f, add, mul) = sample();
        let mark = f.begin_txn();
        let c = f.const_i64(42);
        let s = f.push(Opcode::Sub, Type::I64, vec![c, c], InstAttr::None);
        if let Some(i) = f.inst_mut(mul) {
            i.args.swap(0, 1);
        }
        let touched = f.touched_since(mark);
        assert!(touched.contains(&c));
        assert!(touched.contains(&s));
        assert!(touched.contains(&mul));
        assert!(!touched.contains(&add));
        f.rollback_txn(mark);
    }

    #[test]
    fn mutation_outside_txn_keeps_no_log() {
        let (mut f, _, _) = sample();
        let c = f.const_i64(9);
        f.push(Opcode::Add, Type::I64, vec![c, c], InstAttr::None);
        assert_eq!(f.delta_len(), 0);
    }

    #[test]
    fn clone_mid_txn_restores_consistently() {
        // Snapshot/differential guards clone mid-transaction; assigning the
        // clone back must restore content, epoch, and log state together.
        let (mut f, _, _) = sample();
        let mark = f.begin_txn();
        let snap = f.clone();
        let c = f.const_i64(123);
        f.push(Opcode::Add, Type::I64, vec![c, c], InstAttr::None);
        f = snap;
        assert!(f.in_txn());
        f.rollback_txn(mark);
        assert!(!f.in_txn());
    }

    #[test]
    fn cfg_txn_rollback_restores_blocks() {
        use crate::cfg::{BlockId, Terminator};
        // Build a small diamond, then mutate every CFG surface inside a
        // transaction and roll back; the print must be byte-identical.
        let mut f = Function::new("cfg");
        let a = f.add_param("A", Type::PTR);
        let entry = f.init_cfg();
        let join = f.add_block();
        let m = f.add_block_param(join, Some("m".into()), Type::I64);
        let c0 = f.const_i64(7);
        f.set_term(entry, Terminator::Jump { target: join, args: vec![c0] });
        let g = f.push_in_block(join, Opcode::Gep, Type::PTR, vec![a, m], InstAttr::ElemBytes(8));
        f.push_in_block(join, Opcode::Store, Type::Void, vec![m, g], InstAttr::None);
        let before = print_function(&f);
        let e0 = f.epoch();

        let mark = f.begin_txn();
        let extra = f.add_block();
        let p = f.add_block_param(extra, None, Type::F64);
        f.push_in_block(extra, Opcode::FAdd, Type::F64, vec![p, p], InstAttr::None);
        f.set_term(entry, Terminator::Jump { target: extra, args: vec![] });
        f.set_block_params(join, vec![]);
        f.set_block_insts(join, vec![]);
        let c1 = f.const_i64(9);
        f.replace_uses(c0, c1);
        assert_ne!(print_function(&f), before);
        f.rollback_txn(mark);
        assert_eq!(print_function(&f), before, "CFG rollback must be bit-identical");
        assert_eq!(f.epoch(), e0);
        assert_eq!(f.num_blocks(), 2);

        // Dissolving rolls back too (body and CFG restored together).
        let mark = f.begin_txn();
        f.set_term(entry, Terminator::Ret);
        f.set_block_insts(join, vec![]);
        f.set_block_params(join, vec![]);
        f.dissolve_cfg(vec![g]);
        assert!(f.cfg().is_none());
        assert_eq!(f.body_len(), 1);
        f.rollback_txn(mark);
        assert_eq!(print_function(&f), before);
        assert!(f.cfg().is_some());
        assert_eq!(f.block(BlockId::from_raw(1)).insts().len(), 2);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        m.functions.push(Function::new("a"));
        m.functions.push(Function::new("b"));
        assert!(m.function("a").is_some());
        assert!(m.function("c").is_none());
        m.function_mut("b").unwrap().add_param("x", Type::I64);
        assert_eq!(m.function("b").unwrap().params().len(), 1);
    }
}
