//! Functions, modules, and use-def bookkeeping.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::inst::{Inst, InstAttr, Opcode};
use crate::types::Type;
use crate::value::{Constant, ValueId};

/// Process-wide source of mutation epochs. Every mutation of any function
/// draws a fresh value, so an epoch identifies *one specific content state*
/// of one function: two functions (or two states of the same function) with
/// equal epochs are guaranteed identical. Cached analyses key on this.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// The payload stored for each [`ValueId`] of a function.
#[derive(Clone, PartialEq, Debug)]
pub enum ValueData {
    /// A function parameter.
    Arg {
        /// Zero-based parameter position.
        index: u32,
        /// The parameter type.
        ty: Type,
    },
    /// An interned constant.
    Const(Constant),
    /// An instruction; only instructions appear in the body.
    Inst(Inst),
}

/// One use of a value: which instruction uses it and at which operand slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Use {
    /// The using instruction.
    pub user: ValueId,
    /// The operand index within the user's argument list.
    pub index: usize,
}

/// A map from values to their uses within a function body, in body order.
///
/// Snapshot semantics: the map reflects the function at the time
/// [`Function::use_map`] was called and is not updated by later mutation.
#[derive(Clone, Debug, Default)]
pub struct UseMap {
    map: HashMap<ValueId, Vec<Use>>,
}

impl UseMap {
    /// All uses of `v`, in body order. Empty when unused.
    pub fn uses(&self, v: ValueId) -> &[Use] {
        self.map.get(&v).map_or(&[], Vec::as_slice)
    }

    /// Number of uses of `v`.
    pub fn num_uses(&self, v: ValueId) -> usize {
        self.uses(v).len()
    }
}

/// A straight-line function: parameters, interned constants, and a single
/// ordered list of instructions (the *body*).
///
/// All values live in one arena indexed by [`ValueId`]. Instructions removed
/// from the body stay in the arena as orphans; only body membership defines
/// program semantics.
#[derive(Clone, Debug)]
pub struct Function {
    name: String,
    values: Vec<ValueData>,
    names: Vec<Option<String>>,
    params: Vec<ValueId>,
    body: Vec<ValueId>,
    const_map: HashMap<Constant, ValueId>,
    /// Mutation epoch: refreshed from a process-wide counter on every
    /// mutation, preserved by `Clone` (a clone has identical content).
    /// Equal epochs imply identical content, so analysis caches keyed by
    /// epoch stay warm across snapshot/rollback cycles.
    epoch: u64,
}

impl Function {
    /// Create an empty function.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            values: Vec::new(),
            names: Vec::new(),
            params: Vec::new(),
            body: Vec::new(),
            const_map: HashMap::new(),
            epoch: fresh_epoch(),
        }
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current mutation epoch.
    ///
    /// Every mutating method refreshes this from a process-wide counter, so
    /// an epoch names one specific content state: if two `Function` values
    /// report the same epoch they are bit-identical (clones preserve the
    /// epoch together with the content; a transactional rollback that
    /// restores a snapshot therefore also restores its epoch, keeping
    /// epoch-keyed analysis caches warm). Cached analyses compare this
    /// against the epoch they were computed at to detect staleness.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mark the function as mutated (invalidates epoch-keyed caches).
    fn touch(&mut self) {
        self.epoch = fresh_epoch();
    }

    fn alloc(&mut self, data: ValueData, name: Option<String>) -> ValueId {
        self.touch();
        let id = ValueId::from_raw(self.values.len() as u32);
        self.values.push(data);
        self.names.push(name);
        id
    }

    /// Append a parameter of the given type; returns its value handle.
    pub fn add_param(&mut self, name: impl Into<String>, ty: Type) -> ValueId {
        let index = self.params.len() as u32;
        let id = self.alloc(ValueData::Arg { index, ty }, Some(name.into()));
        self.params.push(id);
        id
    }

    /// The parameter values, in declaration order.
    pub fn params(&self) -> &[ValueId] {
        &self.params
    }

    /// Intern a constant, returning a stable handle (equal constants share
    /// one handle, so handle equality is constant equality).
    pub fn constant(&mut self, c: Constant) -> ValueId {
        if let Some(&id) = self.const_map.get(&c) {
            return id;
        }
        let id = self.alloc(ValueData::Const(c.clone()), None);
        self.const_map.insert(c, id);
        id
    }

    /// Intern an integer constant of scalar type `ty`.
    pub fn const_int(&mut self, ty: crate::ScalarType, v: i64) -> ValueId {
        self.constant(Constant::int(ty, v))
    }

    /// Intern an `i64` constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.const_int(crate::ScalarType::I64, v)
    }

    /// Intern a float constant of scalar type `ty`.
    pub fn const_float(&mut self, ty: crate::ScalarType, v: f64) -> ValueId {
        self.constant(Constant::float(ty, v))
    }

    /// Append an instruction to the body; returns its value handle.
    pub fn push(&mut self, op: Opcode, ty: Type, args: Vec<ValueId>, attr: InstAttr) -> ValueId {
        let id = self.alloc(ValueData::Inst(Inst::new(op, ty, args, attr)), None);
        self.body.push(id);
        id
    }

    /// Insert an instruction at body position `at` (shifting later ones).
    ///
    /// # Panics
    ///
    /// Panics if `at > body_len()`.
    pub fn insert(
        &mut self,
        at: usize,
        op: Opcode,
        ty: Type,
        args: Vec<ValueId>,
        attr: InstAttr,
    ) -> ValueId {
        assert!(at <= self.body.len(), "insert position out of range");
        let id = self.alloc(ValueData::Inst(Inst::new(op, ty, args, attr)), None);
        self.body.insert(at, id);
        id
    }

    /// Attach a debug name to a value (shown by the printer).
    pub fn set_value_name(&mut self, v: ValueId, name: impl Into<String>) {
        self.touch();
        self.names[v.index()] = Some(name.into());
    }

    /// The debug name of a value, if any.
    pub fn value_name(&self, v: ValueId) -> Option<&str> {
        self.names[v.index()].as_deref()
    }

    /// The payload of a value.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this function.
    pub fn value(&self, v: ValueId) -> &ValueData {
        &self.values[v.index()]
    }

    /// The instruction record, if `v` is an instruction.
    pub fn inst(&self, v: ValueId) -> Option<&Inst> {
        match self.value(v) {
            ValueData::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// Mutable access to an instruction record.
    pub fn inst_mut(&mut self, v: ValueId) -> Option<&mut Inst> {
        // Conservatively assume the caller mutates through the reference.
        self.touch();
        match &mut self.values[v.index()] {
            ValueData::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// The constant, if `v` is a constant.
    pub fn as_const(&self, v: ValueId) -> Option<&Constant> {
        match self.value(v) {
            ValueData::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Whether `v` is an instruction.
    pub fn is_inst(&self, v: ValueId) -> bool {
        matches!(self.value(v), ValueData::Inst(_))
    }

    /// Whether `v` is a constant.
    pub fn is_const(&self, v: ValueId) -> bool {
        matches!(self.value(v), ValueData::Const(_))
    }

    /// Whether `v` is a parameter.
    pub fn is_arg(&self, v: ValueId) -> bool {
        matches!(self.value(v), ValueData::Arg { .. })
    }

    /// The opcode, if `v` is an instruction.
    pub fn opcode(&self, v: ValueId) -> Option<Opcode> {
        self.inst(v).map(|i| i.op)
    }

    /// The operands of `v` (empty for non-instructions).
    pub fn args_of(&self, v: ValueId) -> &[ValueId] {
        self.inst(v).map_or(&[], |i| i.args.as_slice())
    }

    /// The type of any value.
    pub fn ty(&self, v: ValueId) -> Type {
        match self.value(v) {
            ValueData::Arg { ty, .. } => *ty,
            ValueData::Const(c) => c.ty(),
            ValueData::Inst(i) => i.ty,
        }
    }

    /// The instruction body, in execution order.
    pub fn body(&self) -> &[ValueId] {
        &self.body
    }

    /// Number of instructions in the body.
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Total number of allocated values (including orphans and constants).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// A map from each body instruction to its current position.
    pub fn position_map(&self) -> HashMap<ValueId, usize> {
        self.body.iter().enumerate().map(|(i, &v)| (v, i)).collect()
    }

    /// Compute the current use map of the body.
    pub fn use_map(&self) -> UseMap {
        let mut map: HashMap<ValueId, Vec<Use>> = HashMap::new();
        for &user in &self.body {
            if let ValueData::Inst(inst) = self.value(user) {
                for (index, &arg) in inst.args.iter().enumerate() {
                    map.entry(arg).or_default().push(Use { user, index });
                }
            }
        }
        UseMap { map }
    }

    /// Replace every body use of `old` with `new`.
    pub fn replace_uses(&mut self, old: ValueId, new: ValueId) {
        self.touch();
        let body = self.body.clone();
        for user in body {
            if let ValueData::Inst(inst) = &mut self.values[user.index()] {
                for arg in &mut inst.args {
                    if *arg == old {
                        *arg = new;
                    }
                }
            }
        }
    }

    /// Remove the given instructions from the body (they become orphans).
    pub fn remove_from_body(&mut self, dead: &HashSet<ValueId>) {
        self.touch();
        self.body.retain(|v| !dead.contains(v));
    }

    /// Replace the body with a new instruction order.
    ///
    /// Used by vector code generation to interleave newly created
    /// instructions at their proper positions. Instructions left out of
    /// `new_order` become orphans.
    ///
    /// # Panics
    ///
    /// Panics if `new_order` contains duplicates or non-instructions.
    pub fn rebuild_body(&mut self, new_order: Vec<ValueId>) {
        self.touch();
        let mut seen = HashSet::with_capacity(new_order.len());
        for &v in &new_order {
            assert!(self.is_inst(v), "rebuild_body: {v} is not an instruction");
            assert!(seen.insert(v), "rebuild_body: {v} appears twice");
        }
        self.body = new_order;
    }

    /// Iterate over `(position, id, inst)` for the body.
    pub fn iter_body(&self) -> impl Iterator<Item = (usize, ValueId, &Inst)> + '_ {
        self.body.iter().enumerate().map(move |(i, &v)| {
            let ValueData::Inst(inst) = self.value(v) else {
                unreachable!("body contains only instructions");
            };
            (i, v, inst)
        })
    }
}

/// A set of functions compiled together.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// The functions, in definition order.
    pub functions: Vec<Function>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name() == name)
    }

    /// Find a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScalarType, Type};

    fn sample() -> (Function, ValueId, ValueId) {
        let mut f = Function::new("t");
        let a = f.add_param("a", Type::I64);
        let one = f.const_i64(1);
        let add = f.push(Opcode::Add, Type::I64, vec![a, one], InstAttr::None);
        let mul = f.push(Opcode::Mul, Type::I64, vec![add, add], InstAttr::None);
        (f, add, mul)
    }

    #[test]
    fn constants_are_interned() {
        let mut f = Function::new("t");
        let c1 = f.const_i64(7);
        let c2 = f.const_i64(7);
        let c3 = f.const_i64(8);
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
        let cf1 = f.const_float(ScalarType::F64, 0.5);
        let cf2 = f.const_float(ScalarType::F64, 0.5);
        assert_eq!(cf1, cf2);
    }

    #[test]
    fn body_and_positions() {
        let (f, add, mul) = sample();
        assert_eq!(f.body_len(), 2);
        let pos = f.position_map();
        assert_eq!(pos[&add], 0);
        assert_eq!(pos[&mul], 1);
    }

    #[test]
    fn use_map_counts() {
        let (f, add, mul) = sample();
        let um = f.use_map();
        assert_eq!(um.num_uses(add), 2);
        assert_eq!(um.uses(add)[0].user, mul);
        assert_eq!(um.uses(add)[0].index, 0);
        assert_eq!(um.uses(add)[1].index, 1);
        assert_eq!(um.num_uses(mul), 0);
    }

    #[test]
    fn replace_uses_rewrites_operands() {
        let (mut f, add, mul) = sample();
        let zero = f.const_i64(0);
        f.replace_uses(add, zero);
        assert_eq!(f.args_of(mul), &[zero, zero]);
    }

    #[test]
    fn remove_from_body_orphans_instructions() {
        let (mut f, add, _mul) = sample();
        let mut dead = HashSet::new();
        dead.insert(add);
        f.remove_from_body(&dead);
        assert_eq!(f.body_len(), 1);
        // Orphan is still queryable.
        assert_eq!(f.opcode(add), Some(Opcode::Add));
    }

    #[test]
    fn insert_shifts_positions() {
        let (mut f, add, _) = sample();
        let c = f.const_i64(3);
        let early = f.insert(0, Opcode::Add, Type::I64, vec![c, c], InstAttr::None);
        let pos = f.position_map();
        assert_eq!(pos[&early], 0);
        assert_eq!(pos[&add], 1);
    }

    #[test]
    fn value_names() {
        let (mut f, add, _) = sample();
        assert_eq!(f.value_name(add), None);
        f.set_value_name(add, "sum");
        assert_eq!(f.value_name(add), Some("sum"));
        assert_eq!(f.value_name(f.params()[0]), Some("a"));
    }

    #[test]
    fn epoch_tracks_mutation() {
        let (mut f, add, _) = sample();
        let e0 = f.epoch();
        // Read-only queries keep the epoch.
        let _ = f.body_len();
        let _ = f.use_map();
        let _ = f.position_map();
        assert_eq!(f.epoch(), e0);
        // Interning an already-known constant is not a mutation.
        let one_again = f.const_i64(1);
        assert_eq!(f.epoch(), e0);
        let _ = one_again;
        // Any real mutation draws a fresh, never-before-seen epoch.
        let zero = f.const_i64(0);
        let e1 = f.epoch();
        assert_ne!(e1, e0);
        f.replace_uses(add, zero);
        let e2 = f.epoch();
        assert_ne!(e2, e1);
    }

    #[test]
    fn epoch_survives_snapshot_rollback() {
        let (mut f, _, _) = sample();
        let snapshot = f.clone();
        let e0 = f.epoch();
        assert_eq!(snapshot.epoch(), e0, "a clone has identical content");
        f.add_param("junk", Type::I64);
        assert_ne!(f.epoch(), e0);
        f = snapshot;
        assert_eq!(f.epoch(), e0, "rollback restores the snapshot's epoch");
        // Post-rollback mutations never reuse an epoch from the abandoned
        // timeline (epochs are globally unique).
        let abandoned = f.epoch();
        f.add_param("other", Type::I64);
        assert_ne!(f.epoch(), abandoned);
    }

    #[test]
    fn epochs_are_distinct_across_functions() {
        let a = Function::new("a");
        let b = Function::new("b");
        assert_ne!(a.epoch(), b.epoch());
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        m.functions.push(Function::new("a"));
        m.functions.push(Function::new("b"));
        assert!(m.function("a").is_some());
        assert!(m.function("c").is_none());
        m.function_mut("b").unwrap().add_param("x", Type::I64);
        assert_eq!(m.function("b").unwrap().params().len(), 1);
    }
}
