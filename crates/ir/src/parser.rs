//! Parser for the textual IR format produced by [`crate::print_function`].

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use crate::cfg::{BlockId, Terminator};
use crate::function::{Function, Module};
use crate::inst::{FloatPred, InstAttr, IntPred, Opcode};
use crate::types::{ScalarType, Type};
use crate::value::{Constant, ValueId};

/// A parse failure with source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for ParseError {}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    At(String),
    Percent(String),
    Int(i64),
    Float(f64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Less,
    Greater,
    Comma,
    Colon,
    Equals,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::At(s) => write!(f, "`@{s}`"),
            Tok::Percent(s) => write!(f, "`%{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Float(v) => write!(f, "`{v}`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::Less => f.write_str("`<`"),
            Tok::Greater => f.write_str("`>`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Equals => f.write_str("`=`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Lexer<'s> {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, col: self.col, message: message.into() }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn number(&mut self, neg: bool) -> Result<Tok, ParseError> {
        let mut s = String::new();
        if neg {
            s.push('-');
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    s.push(c as char);
                    self.bump();
                }
                b'.' => {
                    is_float = true;
                    s.push('.');
                    self.bump();
                }
                b'e' | b'E' => {
                    is_float = true;
                    s.push('e');
                    self.bump();
                    if let Some(sign @ (b'+' | b'-')) = self.peek() {
                        s.push(sign as char);
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(Tok::Float)
                .map_err(|e| self.err(format!("bad float literal `{s}`: {e}")))
        } else {
            s.parse::<i64>()
                .map(Tok::Int)
                .map_err(|e| self.err(format!("bad integer literal `{s}`: {e}")))
        }
    }

    fn next(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_ws();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b'<' => {
                self.bump();
                Tok::Less
            }
            b'>' => {
                self.bump();
                Tok::Greater
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b'=' => {
                self.bump();
                Tok::Equals
            }
            b'@' => {
                self.bump();
                Tok::At(self.ident())
            }
            b'%' => {
                self.bump();
                Tok::Percent(self.ident())
            }
            b'-' => {
                if self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                    self.bump();
                    self.number(true)?
                } else if self.peek2() == Some(b'i') {
                    // "-inf"
                    self.bump();
                    let id = self.ident();
                    if id == "inf" {
                        Tok::Float(f64::NEG_INFINITY)
                    } else {
                        return Err(self.err(format!("unexpected `-{id}`")));
                    }
                } else {
                    return Err(self.err("unexpected `-`"));
                }
            }
            b'0'..=b'9' => self.number(false)?,
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let id = self.ident();
                match id.as_str() {
                    "inf" => Tok::Float(f64::INFINITY),
                    "NaN" => Tok::Float(f64::NAN),
                    _ => Tok::Ident(id),
                }
            }
            other => return Err(self.err(format!("unexpected character `{}`", other as char))),
        };
        Ok((tok, line, col))
    }
}

struct Parser<'s> {
    lex: Lexer<'s>,
    tok: Tok,
    line: usize,
    col: usize,
    /// Block receiving parsed instructions; `None` in straight-line bodies.
    cur_block: Option<BlockId>,
}

impl<'s> Parser<'s> {
    fn new(src: &'s str) -> Result<Parser<'s>, ParseError> {
        let mut lex = Lexer::new(src);
        let (tok, line, col) = lex.next()?;
        Ok(Parser { lex, tok, line, col, cur_block: None })
    }

    /// Append an instruction to the current block (CFG mode) or the body.
    fn emit(
        &mut self,
        f: &mut Function,
        op: Opcode,
        ty: Type,
        args: Vec<ValueId>,
        attr: InstAttr,
    ) -> ValueId {
        match self.cur_block {
            Some(b) => f.push_in_block(b, op, ty, args, attr),
            None => f.push(op, ty, args, attr),
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, col: self.col, message: message.into() }
    }

    fn advance(&mut self) -> Result<Tok, ParseError> {
        let (tok, line, col) = self.lex.next()?;
        self.line = line;
        self.col = col;
        Ok(std::mem::replace(&mut self.tok, tok))
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if &self.tok == want {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {want}, found {}", self.tok)))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.advance()? {
            Tok::Int(v) => Ok(v),
            other => Err(self.err(format!("expected integer, found {other}"))),
        }
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        match self.advance()? {
            Tok::Ident(s) => ScalarType::from_name(&s)
                .map(Type::Scalar)
                .ok_or_else(|| self.err(format!("unknown type `{s}`"))),
            Tok::Less => {
                let lanes = self.expect_int()?;
                let x = self.expect_ident()?;
                if x != "x" {
                    return Err(self.err("expected `x` in vector type"));
                }
                let elem_name = self.expect_ident()?;
                let elem = ScalarType::from_name(&elem_name)
                    .ok_or_else(|| self.err(format!("unknown element type `{elem_name}`")))?;
                self.expect(&Tok::Greater)?;
                if lanes < 1 {
                    return Err(self.err("vector lane count must be positive"));
                }
                Ok(Type::Vector(elem, lanes as u32))
            }
            other => Err(self.err(format!("expected type, found {other}"))),
        }
    }

    fn scalar_const(
        &mut self,
        f: &mut Function,
        elem: ScalarType,
        tok: Tok,
    ) -> Result<ValueId, ParseError> {
        match tok {
            Tok::Int(v) if elem.is_int() => Ok(f.const_int(elem, v)),
            Tok::Int(v) if elem.is_float() => Ok(f.const_float(elem, v as f64)),
            Tok::Float(v) if elem.is_float() => Ok(f.const_float(elem, v)),
            other => Err(self.err(format!("expected {elem} literal, found {other}"))),
        }
    }

    /// Parse one operand with an expected type (for constant literals).
    fn operand(
        &mut self,
        f: &mut Function,
        names: &HashMap<String, ValueId>,
        expected: Type,
    ) -> Result<ValueId, ParseError> {
        match self.advance()? {
            Tok::Percent(name) => names
                .get(&name)
                .copied()
                .ok_or_else(|| self.err(format!("unknown value `%{name}`"))),
            Tok::Less => {
                // Vector constant literal: `<c0, c1, ...>`.
                let Type::Vector(elem, lanes) = expected else {
                    return Err(self.err("vector literal where scalar expected"));
                };
                let mut consts = Vec::new();
                loop {
                    let tok = self.advance()?;
                    let id = self.scalar_const(f, elem, tok)?;
                    consts.push(f.as_const(id).unwrap().clone());
                    match self.advance()? {
                        Tok::Comma => continue,
                        Tok::Greater => break,
                        other => {
                            return Err(self.err(format!("expected `,` or `>`, found {other}")))
                        }
                    }
                }
                if consts.len() != lanes as usize {
                    return Err(self.err("vector literal lane count mismatch"));
                }
                Ok(f.constant(Constant::vector(consts)))
            }
            tok @ (Tok::Int(_) | Tok::Float(_)) => {
                let Some(elem) = expected.elem() else {
                    return Err(self.err("literal operand needs a typed context"));
                };
                if expected.is_vector() {
                    return Err(self.err("scalar literal where vector expected"));
                }
                self.scalar_const(f, elem, tok)
            }
            other => Err(self.err(format!("expected operand, found {other}"))),
        }
    }

    fn define(
        &mut self,
        f: &mut Function,
        names: &mut HashMap<String, ValueId>,
        name: Option<String>,
        id: ValueId,
    ) -> Result<(), ParseError> {
        if let Some(name) = name {
            if names.insert(name.clone(), id).is_some() {
                return Err(self.err(format!("value `%{name}` redefined")));
            }
            // Keep numeric auto-names out of the debug names so reprinting
            // renumbers cleanly.
            if name.parse::<usize>().is_err() {
                f.set_value_name(id, name);
            }
        }
        Ok(())
    }

    fn parse_inst(
        &mut self,
        f: &mut Function,
        names: &mut HashMap<String, ValueId>,
    ) -> Result<(), ParseError> {
        // Either `%name = <op> ...` or `store ...`.
        let result_name = if let Tok::Percent(_) = self.tok {
            let Tok::Percent(name) = self.advance()? else { unreachable!() };
            self.expect(&Tok::Equals)?;
            Some(name)
        } else {
            None
        };
        let opname = self.expect_ident()?;
        let op = Opcode::from_mnemonic(&opname)
            .ok_or_else(|| self.err(format!("unknown opcode `{opname}`")))?;

        match op {
            o if o.is_binary() => {
                let ty = self.parse_type()?;
                let a = self.operand(f, names, ty)?;
                self.expect(&Tok::Comma)?;
                let b = self.operand(f, names, ty)?;
                let id = self.emit(f, o, ty, vec![a, b], InstAttr::None);
                self.define(f, names, result_name, id)
            }
            Opcode::ICmp | Opcode::FCmp => {
                let predname = self.expect_ident()?;
                let ty = self.parse_type()?;
                let a = self.operand(f, names, ty)?;
                self.expect(&Tok::Comma)?;
                let b = self.operand(f, names, ty)?;
                let rty = match ty {
                    Type::Vector(_, n) => Type::Vector(ScalarType::I8, n),
                    _ => Type::Scalar(ScalarType::I8),
                };
                let attr = if op == Opcode::ICmp {
                    InstAttr::IntPred(
                        IntPred::from_name(&predname)
                            .ok_or_else(|| self.err(format!("unknown predicate `{predname}`")))?,
                    )
                } else {
                    InstAttr::FloatPred(
                        FloatPred::from_name(&predname)
                            .ok_or_else(|| self.err(format!("unknown predicate `{predname}`")))?,
                    )
                };
                let id = self.emit(f, op, rty, vec![a, b], attr);
                self.define(f, names, result_name, id)
            }
            Opcode::Select => {
                let ty = self.parse_type()?;
                let cond_ty = match ty {
                    Type::Vector(_, n) => Type::Vector(ScalarType::I8, n),
                    _ => Type::Scalar(ScalarType::I8),
                };
                let c = self.operand(f, names, cond_ty)?;
                self.expect(&Tok::Comma)?;
                let a = self.operand(f, names, ty)?;
                self.expect(&Tok::Comma)?;
                let b = self.operand(f, names, ty)?;
                let id = self.emit(f, op, ty, vec![c, a, b], InstAttr::None);
                self.define(f, names, result_name, id)
            }
            Opcode::Gep => {
                let base = self.operand(f, names, Type::PTR)?;
                self.expect(&Tok::Comma)?;
                let idx = self.operand(f, names, Type::I64)?;
                self.expect(&Tok::Comma)?;
                let bytes = self.expect_int()?;
                if bytes <= 0 {
                    return Err(self.err("gep stride must be positive"));
                }
                let id =
                    self.emit(f, op, Type::PTR, vec![base, idx], InstAttr::ElemBytes(bytes as u32));
                self.define(f, names, result_name, id)
            }
            Opcode::Load => {
                let ty = self.parse_type()?;
                self.expect(&Tok::Comma)?;
                let ptr = self.operand(f, names, Type::PTR)?;
                let id = self.emit(f, op, ty, vec![ptr], InstAttr::None);
                self.define(f, names, result_name, id)
            }
            Opcode::Store => {
                let ty = self.parse_type()?;
                let val = self.operand(f, names, ty)?;
                self.expect(&Tok::Comma)?;
                let ptr = self.operand(f, names, Type::PTR)?;
                self.emit(f, op, Type::Void, vec![val, ptr], InstAttr::None);
                if result_name.is_some() {
                    return Err(self.err("store does not produce a value"));
                }
                Ok(())
            }
            Opcode::InsertElement => {
                let ty = self.parse_type()?;
                let elem = ty.elem().ok_or_else(|| self.err("insertelement needs a vector"))?;
                let vec = self.operand(f, names, ty)?;
                self.expect(&Tok::Comma)?;
                let val = self.operand(f, names, Type::Scalar(elem))?;
                self.expect(&Tok::Comma)?;
                let lane = self.operand(f, names, Type::I64)?;
                let id = self.emit(f, op, ty, vec![vec, val, lane], InstAttr::None);
                self.define(f, names, result_name, id)
            }
            Opcode::ExtractElement => {
                let ty = self.parse_type()?;
                let elem = ty.elem().ok_or_else(|| self.err("extractelement needs a vector"))?;
                let vec = self.operand(f, names, ty)?;
                self.expect(&Tok::Comma)?;
                let lane = self.operand(f, names, Type::I64)?;
                let id = self.emit(f, op, Type::Scalar(elem), vec![vec, lane], InstAttr::None);
                self.define(f, names, result_name, id)
            }
            Opcode::ShuffleVector => {
                let ty = self.parse_type()?;
                let elem = ty.elem().ok_or_else(|| self.err("shufflevector needs vectors"))?;
                let a = self.operand(f, names, ty)?;
                self.expect(&Tok::Comma)?;
                let b = self.operand(f, names, ty)?;
                self.expect(&Tok::Comma)?;
                self.expect(&Tok::LBracket)?;
                let mut mask = Vec::new();
                if self.tok != Tok::RBracket {
                    loop {
                        mask.push(self.expect_int()? as u32);
                        if self.tok == Tok::Comma {
                            self.advance()?;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket)?;
                let rty = Type::Vector(elem, mask.len() as u32);
                let id = self.emit(f, op, rty, vec![a, b], InstAttr::Mask(mask));
                self.define(f, names, result_name, id)
            }
            other if other.is_cast() => {
                let src = self.parse_type()?;
                let v = self.operand(f, names, src)?;
                let kw = self.expect_ident()?;
                if kw != "to" {
                    return Err(self.err(format!("expected `to` in cast, found `{kw}`")));
                }
                let dst = self.parse_type()?;
                let id = self.emit(f, other, dst, vec![v], InstAttr::None);
                self.define(f, names, result_name, id)
            }
            other => Err(self.err(format!("cannot parse opcode `{other}`"))),
        }
    }

    fn parse_function(&mut self) -> Result<Function, ParseError> {
        let kw = self.expect_ident()?;
        if kw != "func" {
            return Err(self.err(format!("expected `func`, found `{kw}`")));
        }
        let name = match self.advance()? {
            Tok::At(n) => n,
            other => return Err(self.err(format!("expected `@name`, found {other}"))),
        };
        let mut f = Function::new(name);
        let mut names: HashMap<String, ValueId> = HashMap::new();
        self.expect(&Tok::LParen)?;
        if self.tok != Tok::RParen {
            loop {
                let pname = match self.advance()? {
                    Tok::Percent(n) => n,
                    other => return Err(self.err(format!("expected parameter, found {other}"))),
                };
                self.expect(&Tok::Colon)?;
                let ty = self.parse_type()?;
                let id = f.add_param(pname.clone(), ty);
                if names.insert(pname.clone(), id).is_some() {
                    return Err(self.err(format!("parameter `%{pname}` redefined")));
                }
                if self.tok == Tok::Comma {
                    self.advance()?;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::LBrace)?;
        let is_cfg = matches!(&self.tok, Tok::Ident(s) if Self::block_number(s).is_some());
        if is_cfg {
            self.parse_cfg_body(&mut f, &mut names)?;
        } else {
            while self.tok != Tok::RBrace {
                self.parse_inst(&mut f, &mut names)?;
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(f)
    }

    /// `bbN` → `N`; anything else → `None`.
    fn block_number(label: &str) -> Option<u32> {
        let digits = label.strip_prefix("bb")?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    }

    /// Resolve a `bbN` label, materialising blocks up to `N` so forward
    /// references work; labels keep their printed numbering.
    fn block_id_of(&mut self, f: &mut Function, label: &str) -> Result<BlockId, ParseError> {
        let n = Self::block_number(label)
            .ok_or_else(|| self.err(format!("expected block label `bbN`, found `{label}`")))?;
        while f.num_blocks() <= n as usize {
            f.add_block();
        }
        Ok(BlockId::from_raw(n))
    }

    /// One edge argument (or loop-carried init): a `%value`, or an inline
    /// constant literal. Literal types are not recoverable from context
    /// here, so integers parse as `i64` and floats as `f64` — the only
    /// constant types the CFG layers produce.
    fn edge_arg(
        &mut self,
        f: &mut Function,
        names: &HashMap<String, ValueId>,
    ) -> Result<ValueId, ParseError> {
        match self.advance()? {
            Tok::Percent(name) => names
                .get(&name)
                .copied()
                .ok_or_else(|| self.err(format!("unknown value `%{name}`"))),
            Tok::Int(v) => Ok(f.const_i64(v)),
            Tok::Float(v) => Ok(f.const_float(ScalarType::F64, v)),
            other => Err(self.err(format!("expected edge argument, found {other}"))),
        }
    }

    /// `bbN` or `bbN(arg, ...)`.
    fn parse_edge(
        &mut self,
        f: &mut Function,
        names: &HashMap<String, ValueId>,
    ) -> Result<(BlockId, Vec<ValueId>), ParseError> {
        let label = self.expect_ident()?;
        let b = self.block_id_of(f, &label)?;
        let mut args = Vec::new();
        if self.tok == Tok::LParen {
            self.advance()?;
            if self.tok != Tok::RParen {
                loop {
                    args.push(self.edge_arg(f, names)?);
                    if self.tok == Tok::Comma {
                        self.advance()?;
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok((b, args))
    }

    fn parse_terminator(
        &mut self,
        f: &mut Function,
        names: &HashMap<String, ValueId>,
    ) -> Result<Terminator, ParseError> {
        let kw = self.expect_ident()?;
        match kw.as_str() {
            "ret" => Ok(Terminator::Ret),
            "jump" => {
                let (target, args) = self.parse_edge(f, names)?;
                Ok(Terminator::Jump { target, args })
            }
            "br" => {
                let cond = self.operand(f, names, Type::Scalar(ScalarType::I8))?;
                self.expect(&Tok::Comma)?;
                let (then_to, then_args) = self.parse_edge(f, names)?;
                self.expect(&Tok::Comma)?;
                let (else_to, else_args) = self.parse_edge(f, names)?;
                Ok(Terminator::Br { cond, then_to, then_args, else_to, else_args })
            }
            "loop" => {
                let trip = self.operand(f, names, Type::I64)?;
                self.expect(&Tok::Comma)?;
                let (body, init) = self.parse_edge(f, names)?;
                self.expect(&Tok::Comma)?;
                let label = self.expect_ident()?;
                let exit = self.block_id_of(f, &label)?;
                Ok(Terminator::Loop { trip, body, init, exit })
            }
            "continue" => {
                let mut args = Vec::new();
                if matches!(self.tok, Tok::Percent(_) | Tok::Int(_) | Tok::Float(_)) {
                    loop {
                        args.push(self.edge_arg(f, names)?);
                        if self.tok == Tok::Comma {
                            self.advance()?;
                        } else {
                            break;
                        }
                    }
                }
                Ok(Terminator::Continue { args })
            }
            other => Err(self.err(format!("unknown terminator `{other}`"))),
        }
    }

    fn parse_cfg_body(
        &mut self,
        f: &mut Function,
        names: &mut HashMap<String, ValueId>,
    ) -> Result<(), ParseError> {
        f.init_cfg();
        let mut defined: HashSet<u32> = HashSet::new();
        while self.tok != Tok::RBrace {
            let label = self.expect_ident()?;
            let b = self.block_id_of(f, &label)?;
            if !defined.insert(b.index() as u32) {
                return Err(self.err(format!("block {b} redefined")));
            }
            if self.tok == Tok::LParen {
                self.advance()?;
                if self.tok != Tok::RParen {
                    loop {
                        let pname = match self.advance()? {
                            Tok::Percent(n) => n,
                            other => {
                                return Err(
                                    self.err(format!("expected block parameter, found {other}"))
                                )
                            }
                        };
                        self.expect(&Tok::Colon)?;
                        let ty = self.parse_type()?;
                        // Numeric auto-names are positional, not debug names
                        // (mirrors `define`).
                        let dbg = if pname.parse::<usize>().is_err() {
                            Some(pname.clone())
                        } else {
                            None
                        };
                        let id = f.add_block_param(b, dbg, ty);
                        if names.insert(pname.clone(), id).is_some() {
                            return Err(self.err(format!("value `%{pname}` redefined")));
                        }
                        if self.tok == Tok::Comma {
                            self.advance()?;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
            }
            self.expect(&Tok::Colon)?;
            self.cur_block = Some(b);
            loop {
                match &self.tok {
                    Tok::Ident(s)
                        if matches!(s.as_str(), "ret" | "jump" | "br" | "loop" | "continue") =>
                    {
                        break;
                    }
                    Tok::RBrace => return Err(self.err(format!("block {b} missing terminator"))),
                    _ => self.parse_inst(f, names)?,
                }
            }
            let term = self.parse_terminator(f, names)?;
            f.set_term(b, term);
            self.cur_block = None;
        }
        for n in 0..f.num_blocks() as u32 {
            if !defined.contains(&n) {
                return Err(self.err(format!("block bb{n} referenced but never defined")));
            }
        }
        Ok(())
    }
}

/// Parse a module (one or more functions).
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column on malformed input. The result
/// is *not* verified; run [`crate::verify_module`] for semantic checks.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let mut p = Parser::new(src)?;
    let mut m = Module::new();
    while p.tok != Tok::Eof {
        m.functions.push(p.parse_function()?);
    }
    Ok(m)
}

/// Parse exactly one function.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is malformed or contains more than
/// one function.
pub fn parse_function(src: &str) -> Result<Function, ParseError> {
    let m = parse_module(src)?;
    match <[Function; 1]>::try_from(m.functions) {
        Ok([f]) => Ok(f),
        Err(fs) => Err(ParseError {
            line: 1,
            col: 1,
            message: format!("expected exactly one function, found {}", fs.len()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{print_function, verify_function};

    fn roundtrip(src: &str) {
        let f = parse_function(src).expect("parse");
        verify_function(&f).expect("verify");
        let printed = print_function(&f);
        let f2 = parse_function(&printed).expect("reparse");
        verify_function(&f2).expect("reverify");
        assert_eq!(printed, print_function(&f2), "print not stable");
    }

    #[test]
    fn parses_scalar_kernel() {
        roundtrip(
            "func @k(%A: ptr, %i: i64) {\n\
             \x20 %p = gep %A, %i, 8\n\
             \x20 %v = load f64, %p\n\
             \x20 %d = fmul f64 %v, 2.0\n\
             \x20 store f64 %d, %p\n\
             }\n",
        );
    }

    #[test]
    fn parses_every_shape() {
        roundtrip(
            "func @all(%A: ptr, %i: i64, %x: f64) {
               %p = gep %A, %i, 8
               %v = load f64, %p
               %s = fadd f64 %v, %x
               %c = fcmp olt f64 %s, 1.5
               %m = select f64 %c, %s, %x
               %n = add i64 %i, -3
               %ic = icmp slt i64 %n, 0
               %sel = select i64 %ic, %i, %n
               store f64 %m, %p
               %vv = load <2 x f64>, %p
               %e = extractelement <2 x f64> %vv, 0
               %iv = insertelement <2 x f64> %vv, %e, 1
               %sh = shufflevector <2 x f64> %iv, %vv, [0, 3]
               store <2 x f64> %sh, %p
             }",
        );
    }

    #[test]
    fn parses_vector_constant_operand() {
        let f = parse_function(
            "func @vc(%A: ptr) {
               %v = load <2 x i64>, %A
               %w = add <2 x i64> %v, <1, 2>
               store <2 x i64> %w, %A
             }",
        )
        .unwrap();
        verify_function(&f).unwrap();
        let text = print_function(&f);
        assert!(text.contains("<1, 2>"), "{text}");
    }

    #[test]
    fn parses_special_floats() {
        let f = parse_function(
            "func @sf(%A: ptr) {
               %v = load f64, %A
               %a = fadd f64 %v, inf
               %b = fadd f64 %a, -inf
               %c = fmul f64 %b, NaN
               store f64 %c, %A
             }",
        )
        .unwrap();
        let text = print_function(&f);
        assert!(text.contains("inf"), "{text}");
        assert!(text.contains("NaN"), "{text}");
        roundtrip(&text);
    }

    #[test]
    fn rejects_unknown_value() {
        let err = parse_function("func @b(%a: i64) { %x = add i64 %a, %nope }").unwrap_err();
        assert!(err.message.contains("unknown value"), "{err}");
    }

    #[test]
    fn rejects_redefinition() {
        let err = parse_function("func @b(%a: i64) { %x = add i64 %a, 1\n %x = add i64 %a, 2 }")
            .unwrap_err();
        assert!(err.message.contains("redefined"), "{err}");
    }

    #[test]
    fn rejects_bad_opcode_and_reports_position() {
        let err = parse_function("func @b(%a: i64) {\n  %x = frob i64 %a, 1\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown opcode"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage_in_module() {
        let err = parse_module("func @a() { } banana").unwrap_err();
        assert!(err.message.contains("expected `func`"), "{err}");
    }

    #[test]
    fn comments_are_skipped() {
        roundtrip(
            "; leading comment\nfunc @c(%a: i64) { ; inline\n  %x = add i64 %a, 1 ; trailing\n}\n",
        );
    }

    #[test]
    fn parse_function_rejects_two() {
        let err = parse_function("func @a() { }\nfunc @b() { }").unwrap_err();
        assert!(err.message.contains("exactly one"), "{err}");
    }

    #[test]
    fn parses_if_diamond_cfg() {
        roundtrip(
            "func @diamond(%A: ptr, %x: i64) {
             bb0:
               %c = icmp slt i64 %x, 0
               br %c, bb1, bb2
             bb1:
               %n = sub i64 0, %x
               jump bb3(%n)
             bb2:
               jump bb3(%x)
             bb3(%m: i64):
               store i64 %m, %A
               ret
             }",
        );
    }

    #[test]
    fn parses_counted_loop_cfg() {
        roundtrip(
            "func @loop4(%A: ptr) {
             bb0:
               loop 4, bb1(0), bb2
             bb1(%i: i64, %acc: i64):
               %next = add i64 %acc, %i
               continue %next
             bb2(%sum: i64):
               store i64 %sum, %A
               ret
             }",
        );
    }

    #[test]
    fn cfg_block_labels_keep_their_numbers() {
        // A forward reference to bb2 before bb1's header must not renumber.
        let f = parse_function(
            "func @fwd(%x: i64) {
             bb0:
               %c = icmp slt i64 %x, 0
               br %c, bb2, bb1
             bb1:
               jump bb3(%x)
             bb2:
               jump bb3(0)
             bb3(%m: i64):
               ret
             }",
        )
        .unwrap();
        verify_function(&f).unwrap();
        let text = print_function(&f);
        assert!(text.contains("br %c, bb2, bb1"), "{text}");
    }

    #[test]
    fn cfg_rejects_missing_terminator() {
        let err = parse_function(
            "func @bad(%x: i64) {
             bb0:
               %c = add i64 %x, 1
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("missing terminator"), "{err}");
    }

    #[test]
    fn cfg_rejects_undefined_block() {
        let err = parse_function(
            "func @bad(%x: i64) {
             bb0:
               jump bb1
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("never defined"), "{err}");
    }
}
