//! Scalar and vector types.

use std::fmt;

/// An element type: the machine-level scalar kinds the IR computes on.
///
/// `Ptr` is an opaque pointer (no pointee type), 8 bytes wide, matching the
/// flat byte-addressed memory model of the interpreter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ScalarType {
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// Opaque pointer (8 bytes).
    Ptr,
}

impl ScalarType {
    /// Width of the type in bits.
    pub fn bits(self) -> u32 {
        match self {
            ScalarType::I8 => 8,
            ScalarType::I16 => 16,
            ScalarType::I32 => 32,
            ScalarType::I64 | ScalarType::Ptr | ScalarType::F64 => 64,
            ScalarType::F32 => 32,
        }
    }

    /// Width of the type in bytes.
    pub fn bytes(self) -> u32 {
        self.bits() / 8
    }

    /// Whether this is one of the integer types.
    pub fn is_int(self) -> bool {
        matches!(self, ScalarType::I8 | ScalarType::I16 | ScalarType::I32 | ScalarType::I64)
    }

    /// Whether this is one of the floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// Whether this is the pointer type.
    pub fn is_ptr(self) -> bool {
        self == ScalarType::Ptr
    }

    /// The textual mnemonic (`i32`, `f64`, `ptr`, ...).
    pub fn name(self) -> &'static str {
        match self {
            ScalarType::I8 => "i8",
            ScalarType::I16 => "i16",
            ScalarType::I32 => "i32",
            ScalarType::I64 => "i64",
            ScalarType::F32 => "f32",
            ScalarType::F64 => "f64",
            ScalarType::Ptr => "ptr",
        }
    }

    /// Parse a mnemonic produced by [`ScalarType::name`].
    pub fn from_name(s: &str) -> Option<ScalarType> {
        Some(match s {
            "i8" => ScalarType::I8,
            "i16" => ScalarType::I16,
            "i32" => ScalarType::I32,
            "i64" => ScalarType::I64,
            "f32" => ScalarType::F32,
            "f64" => ScalarType::F64,
            "ptr" => ScalarType::Ptr,
            _ => return None,
        })
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A value type: void, a scalar, or a SIMD vector of scalars.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// No value (the type of `store`).
    Void,
    /// A single scalar element.
    Scalar(ScalarType),
    /// A vector of `lanes` elements of the given scalar type.
    Vector(ScalarType, u32),
}

impl Type {
    /// Shorthand for `Type::Scalar(ScalarType::I64)`.
    pub const I64: Type = Type::Scalar(ScalarType::I64);
    /// Shorthand for `Type::Scalar(ScalarType::F64)`.
    pub const F64: Type = Type::Scalar(ScalarType::F64);
    /// Shorthand for `Type::Scalar(ScalarType::Ptr)`.
    pub const PTR: Type = Type::Scalar(ScalarType::Ptr);

    /// Total size in bytes (0 for void).
    pub fn bytes(self) -> u32 {
        match self {
            Type::Void => 0,
            Type::Scalar(s) => s.bytes(),
            Type::Vector(s, n) => s.bytes() * n,
        }
    }

    /// Number of lanes: 1 for scalars, `n` for vectors, 0 for void.
    pub fn lanes(self) -> u32 {
        match self {
            Type::Void => 0,
            Type::Scalar(_) => 1,
            Type::Vector(_, n) => n,
        }
    }

    /// The element type of a scalar or vector.
    pub fn elem(self) -> Option<ScalarType> {
        match self {
            Type::Void => None,
            Type::Scalar(s) | Type::Vector(s, _) => Some(s),
        }
    }

    /// Whether this is a vector type.
    pub fn is_vector(self) -> bool {
        matches!(self, Type::Vector(..))
    }

    /// Whether this is a scalar type.
    pub fn is_scalar(self) -> bool {
        matches!(self, Type::Scalar(_))
    }

    /// Whether this is void.
    pub fn is_void(self) -> bool {
        self == Type::Void
    }

    /// Whether the element type is an integer.
    pub fn is_int_like(self) -> bool {
        self.elem().is_some_and(ScalarType::is_int)
    }

    /// Whether the element type is a float.
    pub fn is_float_like(self) -> bool {
        self.elem().is_some_and(ScalarType::is_float)
    }

    /// The vector type with the same element and the given lane count.
    ///
    /// # Panics
    ///
    /// Panics if `self` is void or `lanes == 0`.
    pub fn with_lanes(self, lanes: u32) -> Type {
        assert!(lanes > 0, "vector types need at least one lane");
        let elem = self.elem().expect("void has no element type");
        if lanes == 1 {
            Type::Scalar(elem)
        } else {
            Type::Vector(elem, lanes)
        }
    }
}

impl From<ScalarType> for Type {
    fn from(s: ScalarType) -> Type {
        Type::Scalar(s)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Vector(s, n) => write!(f, "<{n} x {s}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_widths() {
        assert_eq!(ScalarType::I8.bytes(), 1);
        assert_eq!(ScalarType::I16.bytes(), 2);
        assert_eq!(ScalarType::I32.bytes(), 4);
        assert_eq!(ScalarType::I64.bytes(), 8);
        assert_eq!(ScalarType::F32.bytes(), 4);
        assert_eq!(ScalarType::F64.bytes(), 8);
        assert_eq!(ScalarType::Ptr.bytes(), 8);
    }

    #[test]
    fn scalar_classification() {
        assert!(ScalarType::I32.is_int());
        assert!(!ScalarType::I32.is_float());
        assert!(ScalarType::F32.is_float());
        assert!(ScalarType::Ptr.is_ptr());
        assert!(!ScalarType::Ptr.is_int());
    }

    #[test]
    fn scalar_name_roundtrip() {
        for s in [
            ScalarType::I8,
            ScalarType::I16,
            ScalarType::I32,
            ScalarType::I64,
            ScalarType::F32,
            ScalarType::F64,
            ScalarType::Ptr,
        ] {
            assert_eq!(ScalarType::from_name(s.name()), Some(s));
        }
        assert_eq!(ScalarType::from_name("i128"), None);
    }

    #[test]
    fn type_lanes_and_bytes() {
        let v = Type::Vector(ScalarType::F64, 4);
        assert_eq!(v.lanes(), 4);
        assert_eq!(v.bytes(), 32);
        assert_eq!(v.elem(), Some(ScalarType::F64));
        assert_eq!(Type::Void.lanes(), 0);
        assert_eq!(Type::I64.lanes(), 1);
    }

    #[test]
    fn with_lanes_round_trips_to_scalar() {
        let v = Type::Vector(ScalarType::I32, 8);
        assert_eq!(v.with_lanes(1), Type::Scalar(ScalarType::I32));
        assert_eq!(Type::I64.with_lanes(2), Type::Vector(ScalarType::I64, 2));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn with_lanes_zero_panics() {
        let _ = Type::I64.with_lanes(0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::Vector(ScalarType::F32, 8).to_string(), "<8 x f32>");
        assert_eq!(Type::I64.to_string(), "i64");
        assert_eq!(Type::Void.to_string(), "void");
    }
}
