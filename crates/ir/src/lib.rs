//! # lslp-ir
//!
//! A typed, SSA-based intermediate representation used by the LSLP
//! auto-vectorizer reproduction (Porpodas, Rocha, Góes — CGO 2018).
//!
//! The IR deliberately models the slice of LLVM IR that the SLP/LSLP
//! algorithms inspect: scalar and vector integer/float arithmetic, memory
//! access through `gep`/`load`/`store`, and the vector shuffle/insert/extract
//! instructions emitted by vector code generation. Functions are
//! *straight-line* by default — a single basic block of instructions in
//! execution order, which is exactly the granularity at which bottom-up SLP
//! operates (each vectorization group must live in one block). A function
//! may instead carry a small [`Cfg`]: basic blocks with block parameters
//! (the phi-equivalents), branches, and structured counted-loop regions
//! (see `docs/CONTROL_FLOW.md`); the pipeline's if-conversion and
//! unroll-and-SLP passes flatten such CFGs back into straight-line bodies
//! before the vectorizer runs.
//!
//! ## Quick tour
//!
//! ```
//! use lslp_ir::{Function, FunctionBuilder, ScalarType, Type};
//!
//! # fn main() {
//! let mut f = Function::new("axpy2");
//! let a = f.add_param("A", Type::Scalar(ScalarType::Ptr));
//! let i = f.add_param("i", Type::Scalar(ScalarType::I64));
//! let mut b = FunctionBuilder::new(&mut f);
//! let p0 = b.gep(a, i, 8);
//! let v0 = b.load(Type::Scalar(ScalarType::F64), p0);
//! let two = b.func().const_float(ScalarType::F64, 2.0);
//! let d0 = b.fmul(v0, two);
//! b.store(d0, p0);
//! assert!(lslp_ir::verify_function(&f).is_ok());
//! println!("{}", lslp_ir::print_function(&f));
//! # }
//! ```
//!
//! The textual form produced by [`print_function`] round-trips through
//! [`parse_module`], which the test-suite uses extensively.

#![warn(missing_docs)]

mod builder;
mod cfg;
mod function;
mod inst;
mod parser;
mod printer;
mod types;
mod value;
mod verifier;

pub use builder::FunctionBuilder;
pub use cfg::{Block, BlockId, Cfg, Terminator};
pub use function::{Function, Module, TxnMark, Use, UseMap, ValueData};
pub use inst::{FloatPred, Inst, InstAttr, IntPred, Opcode};
pub use parser::{parse_function, parse_module, ParseError};
pub use printer::{print_function, print_module};
pub use types::{ScalarType, Type};
pub use value::{ConstId, Constant, ValueId};
pub use verifier::{verify_function, verify_function_touched, verify_module, VerifyError};
