//! Criterion bench: SLP-graph construction throughput per configuration —
//! the compile-time-critical step Figure 14 measures end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lslp::{GraphBuilder, VectorizerConfig};
use lslp_analysis::AddrInfo;
use lslp_ir::Opcode;
use lslp_target::TargetSpec;

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    let tm = TargetSpec::default();
    for kernel in lslp_kernels::suite() {
        let f = kernel.compile();
        let addr = AddrInfo::analyze(&f);
        let positions = f.position_map();
        let use_map = f.use_map();
        let seeds: Vec<_> = f
            .iter_body()
            .filter(|(_, _, i)| i.op == Opcode::Store)
            .map(|(_, id, _)| id)
            .take(4)
            .collect();
        for cfg_name in ["SLP", "LSLP"] {
            let cfg = VectorizerConfig::preset(cfg_name).unwrap();
            group.bench_with_input(BenchmarkId::new(cfg_name, kernel.name), &seeds, |b, seeds| {
                b.iter(|| {
                    GraphBuilder::new(&f, &cfg, &tm, &addr, &positions, &use_map)
                        .build(std::hint::black_box(seeds))
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(30);
    targets = bench_graph_build
}
criterion_main!(benches);
