//! Criterion bench: the full vectorization pass per configuration — the
//! statistically robust backing for Figure 14's wall-clock measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lslp::{vectorize_function, VectorizerConfig};
use lslp_target::CostModel;

fn bench_pass(c: &mut Criterion) {
    let tm = CostModel::skylake_like();
    let mut group = c.benchmark_group("vectorize_pass");
    for kernel in lslp_kernels::suite() {
        let f = kernel.compile();
        for cfg_name in ["SLP-NR", "SLP", "LSLP"] {
            let cfg = VectorizerConfig::preset(cfg_name).unwrap();
            group.bench_with_input(BenchmarkId::new(cfg_name, kernel.name), &f, |b, f| {
                b.iter_batched(
                    || f.clone(),
                    |mut f| vectorize_function(&mut f, &cfg, &tm),
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(30);
    targets = bench_pass
}
criterion_main!(benches);
