//! Criterion bench: the cost of the recursive look-ahead score as a
//! function of the maximum depth — the knob Figure 13 sweeps and the main
//! compile-time risk Figure 14 quantifies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lslp::score::la_score;
use lslp::ScoreAgg;
use lslp_analysis::AddrInfo;
use lslp_ir::Opcode;

fn bench_lookahead(c: &mut Criterion) {
    // Deep commutative kernel: quartic_cylinder has degree-4 chains.
    let kernel = lslp_kernels::suite().into_iter().find(|k| k.name == "quartic_cylinder").unwrap();
    let f = kernel.compile();
    let addr = AddrInfo::analyze(&f);
    // Pick the two lanes' root multiplications as the score operands.
    let muls: Vec<_> =
        f.iter_body().filter(|(_, _, i)| i.op == Opcode::FAdd).map(|(_, id, _)| id).collect();
    let (v1, v2) = (muls[0], *muls.last().unwrap());

    let mut group = c.benchmark_group("la_score");
    for depth in [1u32, 2, 4, 8, 12] {
        group.bench_with_input(BenchmarkId::new("sum", depth), &depth, |b, &d| {
            b.iter(|| la_score(&f, &addr, v1, v2, std::hint::black_box(d), ScoreAgg::Sum))
        });
    }
    group.bench_with_input(BenchmarkId::new("max", 8u32), &8u32, |b, &d| {
        b.iter(|| la_score(&f, &addr, v1, v2, std::hint::black_box(d), ScoreAgg::Max))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(30);
    targets = bench_lookahead
}
criterion_main!(benches);
