//! # lslp-bench
//!
//! The measurement harness that regenerates every table and figure of the
//! paper's evaluation (§5). Each figure has a dedicated binary
//! (`fig09_speedup`, `fig10_static_cost`, …, `table2`) and
//! `all_experiments` runs the full set, printing the same rows/series the
//! paper reports.
//!
//! Measurement substitutions (see DESIGN.md):
//!
//! * execution speedup = ratio of cost-weighted simulated cycles
//!   ([`lslp_interp::perf`]) instead of Skylake wall-clock;
//! * whole benchmarks (Figs 11–12) are the synthetic programs of
//!   [`lslp_kernels::wholeprog`];
//! * compilation time (Fig 14) is real wall-clock of our own pipeline
//!   (frontend + vectorizer pass), normalized to the `O3` configuration.

#![warn(missing_docs)]

use std::time::Instant;

use lslp::{vectorize_function, CompileOptions};
use lslp_interp::perf::body_cycles;
use lslp_kernels::{Kernel, WholeProgram};
use lslp_target::CostModel;

/// Build the validated [`CompileOptions`] for one configuration preset on
/// one target — every measurement constructs its options through the
/// public builder, like `lslpc` and `lslpd` do.
fn options_for(config: &str, tm: &CostModel) -> CompileOptions {
    CompileOptions::preset(config)
        .target(&tm.spec_string())
        .build()
        .unwrap_or_else(|e| panic!("unknown configuration `{config}`: {e}"))
}

/// The four headline configurations of §5.1, in the paper's order.
pub const CONFIG_NAMES: [&str; 4] = ["O3", "SLP-NR", "SLP", "LSLP"];

/// The named targets of the registry, narrowest first — the column order
/// of the target-matrix extension experiment.
pub const TARGET_NAMES: [&str; 4] = ["sse4.2", "neon128", "skylake-avx2", "avx512"];

/// Per-kernel, per-configuration measurements.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Kernel name.
    pub name: String,
    /// Static vectorization cost per configuration (Fig 10).
    pub static_cost: Vec<i64>,
    /// Simulated execution cycles per configuration.
    pub cycles: Vec<i64>,
    /// Speedup over `O3` per configuration (Fig 9).
    pub speedup: Vec<f64>,
    /// Pass-guard incidents per configuration (should be all zero for the
    /// shipped kernel suite; a non-zero count means the guard rolled a
    /// transform back instead of miscompiling).
    pub incidents: Vec<usize>,
    /// Vector factors of the committed trees per configuration, in commit
    /// order. Empty when a configuration vectorized nothing.
    pub vfs: Vec<Vec<usize>>,
}

/// Measure one kernel under the given configuration names.
///
/// # Panics
///
/// Panics on unknown configuration names or kernel execution failure —
/// both indicate harness bugs.
pub fn measure_kernel(k: &Kernel, configs: &[&str], iters: usize) -> KernelRow {
    measure_kernel_on(k, configs, iters, &CostModel::skylake_like())
}

/// [`measure_kernel`] against an explicit target. The default-target
/// figures delegate here with the Skylake-class model, so the paper's
/// tables are unchanged; the target-matrix extension sweeps the registry.
///
/// # Panics
///
/// Same conditions as [`measure_kernel`].
pub fn measure_kernel_on(k: &Kernel, configs: &[&str], iters: usize, tm: &CostModel) -> KernelRow {
    let mut static_cost = Vec::new();
    let mut cycles = Vec::new();
    let mut incidents = Vec::new();
    let mut vfs = Vec::new();
    for &name in configs {
        let opts = options_for(name, tm);
        let mut f = k.compile();
        let report = vectorize_function(&mut f, opts.config(), tm);
        let mut mem = k.setup_memory(&f, iters);
        let c = k
            .run(&f, &mut mem, iters, tm)
            .unwrap_or_else(|e| panic!("{} under {name} on {}: {e}", k.name, tm.name));
        static_cost.push(report.applied_cost);
        cycles.push(c);
        incidents.push(report.incidents.len());
        vfs.push(report.attempts.iter().filter(|a| a.vectorized).map(|a| a.vf).collect());
    }
    let base = cycles[0] as f64;
    let speedup = cycles.iter().map(|&c| base / c as f64).collect();
    KernelRow { name: k.name.to_string(), static_cost, cycles, speedup, incidents, vfs }
}

/// Per-kernel measurements for the loop-study extension: a [`KernelRow`]
/// plus the CFG-flattening counters of [`lslp::PipelineReport`] per
/// configuration.
#[derive(Clone, Debug)]
pub struct LoopKernelRow {
    /// The standard per-configuration measurements.
    pub row: KernelRow,
    /// Branch diamonds turned into `select`s by if-conversion.
    pub if_converted: Vec<usize>,
    /// Counted loops fully unrolled ahead of SLP seeding.
    pub unrolled: Vec<usize>,
}

/// [`measure_loop_kernel_on`] on the default Skylake-class target.
///
/// # Panics
///
/// Same conditions as [`measure_kernel`].
pub fn measure_loop_kernel(k: &Kernel, configs: &[&str], iters: usize) -> LoopKernelRow {
    measure_loop_kernel_on(k, configs, iters, &CostModel::skylake_like())
}

/// [`measure_kernel_on`] through the whole pipeline ([`lslp::run_pipeline`])
/// instead of the bare vectorizer pass. The loop-study kernels compile to
/// small CFGs; only the pipeline's if-conversion and unroll-and-SLP passes
/// flatten them into the straight-line form the vectorizer accepts, so the
/// bare-pass harness would leave them untouched under every configuration.
/// Every configuration (including `O3`) runs the same scalar pipeline, so
/// the baseline is the *flattened* scalar code and the reported speedup
/// isolates vectorization rather than loop-overhead removal.
///
/// # Panics
///
/// Same conditions as [`measure_kernel`].
pub fn measure_loop_kernel_on(
    k: &Kernel,
    configs: &[&str],
    iters: usize,
    tm: &CostModel,
) -> LoopKernelRow {
    let mut static_cost = Vec::new();
    let mut cycles = Vec::new();
    let mut incidents = Vec::new();
    let mut vfs = Vec::new();
    let mut if_converted = Vec::new();
    let mut unrolled = Vec::new();
    for &name in configs {
        let opts = options_for(name, tm);
        let mut f = k.compile();
        let report = lslp::run_pipeline(&mut f, opts.config(), tm);
        let mut mem = k.setup_memory(&f, iters);
        let c = k
            .run(&f, &mut mem, iters, tm)
            .unwrap_or_else(|e| panic!("{} under {name} on {}: {e}", k.name, tm.name));
        static_cost.push(report.vectorize.applied_cost);
        cycles.push(c);
        incidents.push(report.incidents.len() + report.vectorize.incidents.len());
        vfs.push(report.vectorize.attempts.iter().filter(|a| a.vectorized).map(|a| a.vf).collect());
        if_converted.push(report.if_converted);
        unrolled.push(report.unrolled);
    }
    let base = cycles[0] as f64;
    let speedup = cycles.iter().map(|&c| base / c as f64).collect();
    LoopKernelRow {
        row: KernelRow { name: k.name.to_string(), static_cost, cycles, speedup, incidents, vfs },
        if_converted,
        unrolled,
    }
}

/// Per-benchmark whole-program measurements (Figs 11–12).
#[derive(Clone, Debug)]
pub struct BenchmarkRow {
    /// Benchmark name.
    pub name: String,
    /// Total applied static cost per configuration (Fig 11 plots this
    /// normalized to SLP).
    pub static_cost: Vec<i64>,
    /// Hotness-weighted simulated cycles per configuration.
    pub weighted_cycles: Vec<f64>,
    /// Speedup over `O3` (Fig 12).
    pub speedup: Vec<f64>,
    /// Pass-guard incidents per configuration, summed over the benchmark's
    /// functions.
    pub incidents: Vec<usize>,
}

/// Measure one synthetic whole-program benchmark.
pub fn measure_benchmark(wp: &WholeProgram, configs: &[&str]) -> BenchmarkRow {
    let tm = CostModel::skylake_like();
    let mut static_cost = Vec::new();
    let mut weighted_cycles = Vec::new();
    let mut incidents = Vec::new();
    for &name in configs {
        let cfg = options_for(name, &tm).config().clone();
        let mut cost = 0i64;
        let mut cyc = 0f64;
        let mut inc = 0usize;
        for (p, &w) in wp.functions.iter().zip(&wp.weights) {
            let mut f = p.function.clone();
            let report = vectorize_function(&mut f, &cfg, &tm);
            cost += report.applied_cost;
            inc += report.incidents.len();
            // Straight-line code: one execution = static body cycles; the
            // hotness weight stands in for the invocation count.
            cyc += w * body_cycles(&f, &tm) as f64;
        }
        static_cost.push(cost);
        weighted_cycles.push(cyc);
        incidents.push(inc);
    }
    // Dilute with the benchmark's non-vectorizable background execution
    // (see `WholeProgram::background_factor`): configs differ only on the
    // straight-line regions, exactly as in the paper's Figure 12.
    let background = wp.background_factor * weighted_cycles[0];
    for c in &mut weighted_cycles {
        *c += background;
    }
    let base = weighted_cycles[0];
    let speedup = weighted_cycles.iter().map(|&c| base / c).collect();
    BenchmarkRow { name: wp.name.to_string(), static_cost, weighted_cycles, speedup, incidents }
}

/// Compilation-time measurement for Fig 14: wall-clock of the full
/// compilation pipeline (frontend + scalar `-O3`-style passes + the
/// configured vectorizer, see [`lslp::run_pipeline`]) over `reps`
/// repetitions after one discarded warm-up run (the paper's methodology).
/// Individual runs are microseconds here, so the median is reported to
/// suppress scheduler noise.
pub fn measure_compile_time(k: &Kernel, cfg_name: &str, reps: usize) -> f64 {
    let tm = CostModel::skylake_like();
    let cfg = options_for(cfg_name, &tm).config().clone();
    // Each sample batches several pipeline runs so a sample is comfortably
    // above timer resolution.
    const BATCH: usize = 8;
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let start = Instant::now();
        for _ in 0..BATCH {
            let m = lslp_frontend::compile(k.src).expect("kernel compiles");
            for mut f in m.functions {
                lslp::run_pipeline(&mut f, &cfg, &tm);
                std::hint::black_box(&f);
            }
        }
        let dt = start.elapsed().as_secs_f64() / BATCH as f64;
        if rep > 0 {
            samples.push(dt);
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Median per-phase compile-time breakdown (seconds) for one kernel under
/// one configuration: where the pipeline's wall-clock actually goes.
#[derive(Clone, Copy, Debug)]
pub struct CompilePhases {
    /// Whole-pipeline wall clock (scalar rounds + vectorizer + final DCE).
    pub total: f64,
    /// Scalar simplification rounds (simplify/fold/cse/dce).
    pub scalar: f64,
    /// The vectorizer pass proper.
    pub vectorize: f64,
    /// Analysis recomputation on cache misses. This time is *included* in
    /// the pass times above (analyses run lazily inside passes); reporting
    /// it separately shows how much the [`lslp::AnalysisManager`] cache is
    /// saving versus recomputing per use.
    pub analysis: f64,
}

/// Measure the per-phase compile-time breakdown for Fig 14's
/// scalar-vs-vectorizer-vs-analysis rows. Uses the same
/// batch-median methodology as [`measure_compile_time`], but times the
/// optimization pipeline only (no frontend) via [`lslp::run_pipeline`]'s
/// [`lslp::PipelineReport`] phase timers.
pub fn measure_compile_phases(k: &Kernel, cfg_name: &str, reps: usize) -> CompilePhases {
    let tm = CostModel::skylake_like();
    let cfg = options_for(cfg_name, &tm).config().clone();
    const BATCH: usize = 8;
    let m = lslp_frontend::compile(k.src).expect("kernel compiles");
    let mut totals = Vec::with_capacity(reps);
    let mut scalars = Vec::with_capacity(reps);
    let mut vectors = Vec::with_capacity(reps);
    let mut analyses = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let (mut total, mut scalar, mut vector, mut analysis) = (0f64, 0f64, 0f64, 0f64);
        for _ in 0..BATCH {
            for proto in &m.functions {
                let mut f = proto.clone();
                let report = lslp::run_pipeline(&mut f, &cfg, &tm);
                total += report.total_time.as_secs_f64();
                scalar += report.scalar_time.as_secs_f64();
                vector += report.vectorize.elapsed.as_secs_f64();
                analysis += report.analysis_time.as_secs_f64();
                std::hint::black_box(&f);
            }
        }
        if rep > 0 {
            totals.push(total / BATCH as f64);
            scalars.push(scalar / BATCH as f64);
            vectors.push(vector / BATCH as f64);
            analyses.push(analysis / BATCH as f64);
        }
    }
    let median = |xs: &mut Vec<f64>| {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    CompilePhases {
        total: median(&mut totals),
        scalar: median(&mut scalars),
        vectorize: median(&mut vectors),
        analysis: median(&mut analyses),
    }
}

/// Map `f` over `0..n` on up to `jobs` threads, returning results in
/// index order — so a parallel harness run produces byte-identical tables
/// to the sequential one (`jobs <= 1` degenerates to a plain loop, and the
/// per-index work itself must be deterministic, which holds for the
/// simulated-cycle measurements but *not* for wall-clock ones; keep
/// compile-time figures sequential).
///
/// Work is distributed by an atomic index counter (work stealing), so
/// uneven kernels don't serialize behind a static partition.
pub fn par_map_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
        for _ in 0..jobs.min(n) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, value) in rx {
            slots[i] = Some(value);
        }
    });
    slots.into_iter().map(|s| s.expect("every index produced")).collect()
}

/// Geometric mean of strictly positive samples.
pub fn geomean(xs: &[f64]) -> f64 {
    debug_assert!(xs.iter().all(|&x| x > 0.0));
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Render a fixed-width table: a header row plus data rows.
pub fn format_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |row: &[String], widths: &[usize]| -> String {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(c, cell)| {
                if c == 0 {
                    format!("{cell:<width$}", width = widths[c])
                } else {
                    format!("{cell:>width$}", width = widths[c])
                }
            })
            .collect();
        cells.join("  ")
    };
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_measurement_is_consistent() {
        let k = lslp_kernels::motivation_kernels()
            .into_iter()
            .find(|k| k.name == "motivation_loads")
            .unwrap();
        let row = measure_kernel(&k, &CONFIG_NAMES, 8);
        assert_eq!(row.speedup[0], 1.0, "O3 is the baseline");
        assert_eq!(row.static_cost[0], 0);
        assert_eq!(row.static_cost[3], -6);
        assert!(row.speedup[3] > row.speedup[2], "LSLP beats SLP on Fig 2");
        assert!(row.incidents.iter().all(|&n| n == 0), "clean kernels raise no incidents");
    }

    #[test]
    fn benchmark_measurement_shows_dilution() {
        let wp = lslp_kernels::synthesize("410.bwaves");
        let row = measure_benchmark(&wp, &CONFIG_NAMES);
        // Whole-program speedups are small but real (Fig 12's story).
        assert!(row.speedup[3] >= row.speedup[0]);
        assert!(row.static_cost[3] <= row.static_cost[2]);
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["name".into(), "x".into()],
            &[vec!["a".into(), "1.00".into()], vec!["bb".into(), "10.00".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with(" 1.00"));
    }

    #[test]
    fn par_map_preserves_index_order() {
        let seq = par_map_indexed(17, 1, |i| i * i);
        let par = par_map_indexed(17, 4, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(par[16], 256);
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn parallel_kernel_measurement_matches_sequential() {
        // The --jobs satellite contract: simulated-cycle measurements are
        // deterministic, so the parallel harness must reproduce the
        // sequential rows exactly.
        let kernels = lslp_kernels::motivation_kernels();
        let measure = |i: usize| measure_kernel(&kernels[i], &CONFIG_NAMES, 8);
        let seq = par_map_indexed(kernels.len(), 1, measure);
        let par = par_map_indexed(kernels.len(), 4, measure);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.static_cost, b.static_cost);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.speedup, b.speedup);
        }
    }

    #[test]
    fn compile_time_is_positive() {
        let k = &lslp_kernels::motivation_kernels()[0];
        let t = measure_compile_time(k, "LSLP", 3);
        assert!(t > 0.0);
    }

    #[test]
    fn compile_phases_nest_inside_total() {
        let k = &lslp_kernels::motivation_kernels()[0];
        let p = measure_compile_phases(k, "LSLP", 3);
        assert!(p.total > 0.0);
        assert!(p.scalar > 0.0, "scalar rounds always run under --pipeline");
        assert!(p.vectorize > 0.0, "LSLP vectorizes this kernel");
        // Medians of independent samples may not add exactly, but each
        // phase must be bounded by (a small multiple of) the total.
        assert!(p.scalar < p.total && p.vectorize < p.total);
        assert!(p.analysis < p.total, "analysis time is a subset of pass time");
    }
}

pub mod figures;
