//! Ablation study over LSLP's secondary design choices:
//!
//! * look-ahead score aggregation: Sum (the paper's choice) vs Max (its
//!   footnote-4 alternative);
//! * SPLAT-mode detection on/off (Listing 5, line 23).
//!
//! Reports the total applied static cost over the Table 2 suite.

use lslp::{vectorize_function, ScoreAgg, ScoreWeights, VectorizerConfig};
use lslp_target::CostModel;

fn total_cost(cfg: &VectorizerConfig) -> i64 {
    let tm = CostModel::skylake_like();
    lslp_kernels::suite()
        .iter()
        .map(|k| {
            let mut f = k.compile();
            vectorize_function(&mut f, cfg, &tm).applied_cost
        })
        .sum()
}

fn main() {
    println!("Ablation: LSLP design choices (total suite cost; lower = better)\n");
    let variants: Vec<(&str, VectorizerConfig)> = vec![
        ("LSLP (Sum, splat on)", VectorizerConfig::lslp()),
        (
            "score aggregation = Max",
            VectorizerConfig { score_agg: ScoreAgg::Max, ..VectorizerConfig::lslp() },
        ),
        ("splat detection off", VectorizerConfig { splat_mode: false, ..VectorizerConfig::lslp() }),
        (
            "LLVM-like score weights",
            VectorizerConfig {
                score_weights: ScoreWeights::llvm_like(),
                ..VectorizerConfig::lslp()
            },
        ),
        (
            "Max + splat off",
            VectorizerConfig {
                score_agg: ScoreAgg::Max,
                splat_mode: false,
                ..VectorizerConfig::lslp()
            },
        ),
    ];
    for (name, cfg) in variants {
        println!("{name:28} {:>6}", total_cost(&cfg));
    }
}
