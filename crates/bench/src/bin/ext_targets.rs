//! Extension study: how the target's register width changes LSLP's
//! decisions. The paper evaluates one AVX2 machine; sweeping the cost
//! model shows the algorithm adapting its vector factor and profitability
//! thresholds to narrower (SSE) and wider (AVX-512-class) targets.

use lslp::{vectorize_function, VectorizerConfig};
use lslp_target::CostModel;

fn main() {
    let targets: Vec<(&str, CostModel)> = vec![
        ("sse-128", CostModel::sse_like()),
        ("avx2-256", CostModel::skylake_like()),
        ("avx512-512", CostModel::avx512_like()),
    ];
    println!("Extension: target sweep (LSLP applied cost / max VF used)\n");
    print!("{:22}", "Kernel");
    for (name, _) in &targets {
        print!(" {name:>18}");
    }
    println!();
    for k in lslp_kernels::suite() {
        print!("{:22}", k.name);
        for (_, tm) in &targets {
            let mut f = k.compile();
            let report = vectorize_function(&mut f, &VectorizerConfig::lslp(), tm);
            let max_vf =
                report.attempts.iter().filter(|a| a.vectorized).map(|a| a.vf).max().unwrap_or(0);
            print!(" {:>12} / VF{max_vf}", report.applied_cost);
        }
        println!();
    }
}
