//! Extension study: the target matrix. The paper evaluates one AVX2
//! machine; sweeping the target registry (`sse4.2`, `neon128`,
//! `skylake-avx2`, `avx512`) shows the VF exploration adapting its vector
//! factor and profitability thresholds to each ISA's register width and
//! cost table. See `docs/TARGETS.md` for the registry itself.
fn main() {
    print!("{}", lslp_bench::figures::target_matrix());
}
