//! Throughput harness for the `lslp-fuzz` campaign: runs a sizable
//! campaign and reports executions per second, coverage-signature count,
//! and any failures (which also fail the run).
//!
//! ```text
//! cargo run --release -p lslp-bench --bin fuzz_campaign -- [options]
//!   --iters N       iteration budget (default 5000)
//!   --seed N        campaign seed (default 1)
//!   --target SPEC   restrict to one target (default: all four)
//!   --time-budget S wall-clock cutoff in seconds (makes the run
//!                   non-reproducible; omit for exact replay)
//! ```
//!
//! Unlike `lslpc --fuzz`, this prints wall-clock throughput, so its
//! output is *not* byte-reproducible; the deterministic summary lines
//! come first and match the CLI for equal seeds and budgets.

use std::time::Duration;

use lslp_fuzz::{run_campaign, CampaignConfig};
use lslp_target::TargetSpec;

fn main() {
    let mut iters: u64 = 5000;
    let mut seed: u64 = 1;
    let mut target: Option<String> = None;
    let mut time_budget: Option<u64> = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("fuzz_campaign: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--iters" => iters = value("--iters").parse().expect("numeric --iters"),
            "--seed" => seed = value("--seed").parse().expect("numeric --seed"),
            "--target" => target = Some(value("--target").clone()),
            "--time-budget" => {
                time_budget = Some(value("--time-budget").parse().expect("numeric --time-budget"))
            }
            other => {
                eprintln!("fuzz_campaign: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    let mut cfg = CampaignConfig::new(iters, seed);
    if let Some(spec) = &target {
        match TargetSpec::parse(spec) {
            Ok(tm) => cfg.targets = vec![tm],
            Err(e) => {
                eprintln!("fuzz_campaign: bad --target `{spec}`: {e}");
                std::process::exit(2);
            }
        }
    }
    cfg.time_budget = time_budget.map(Duration::from_secs);

    let report = run_campaign(&cfg);
    for line in report.summary_lines() {
        println!("{line}");
    }
    let secs = report.elapsed.as_secs_f64().max(1e-9);
    // One "execution" = one program through every oracle on every target.
    println!(
        "fuzz_campaign: {:.1} exec/s ({} programs, {} targets, {:.2}s)",
        report.programs_built as f64 / secs,
        report.programs_built,
        cfg.targets.len(),
        report.elapsed.as_secs_f64(),
    );
    std::process::exit(if report.failures.is_empty() { 0 } else { 1 });
}
