//! Regenerates Figure 12: whole-benchmark speedup over O3.
fn main() {
    print!("{}", lslp_bench::figures::fig12());
}
