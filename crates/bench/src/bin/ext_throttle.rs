//! Extension study: SLP-graph throttling (`lslp::throttle`, after the
//! paper's related work \[22\] — Porpodas & Jones, PACT 2015).
//!
//! Throttling cuts cost-harmful subtrees before the profitability
//! decision, which can rescue borderline trees and never makes the chosen
//! cost worse. This binary compares plain LSLP with LSLP+throttling over
//! the Table 2 suite and the generated whole-program population.

use lslp::{vectorize_function, VectorizerConfig};
use lslp_target::CostModel;

fn main() {
    let tm = CostModel::skylake_like();
    let plain = VectorizerConfig::lslp();
    let throttled = VectorizerConfig::preset("LSLP-Throttle").unwrap();

    println!("Extension: graph throttling (applied cost; lower = better)\n");
    println!("{:22} {:>8} {:>14}", "Kernel", "LSLP", "LSLP+throttle");
    for k in lslp_kernels::suite() {
        let mut f1 = k.compile();
        let c1 = vectorize_function(&mut f1, &plain, &tm).applied_cost;
        let mut f2 = k.compile();
        let c2 = vectorize_function(&mut f2, &throttled, &tm).applied_cost;
        assert!(c2 <= c1, "{}: throttling must not lose ({c1} -> {c2})", k.name);
        println!("{:22} {:>8} {:>14}", k.name, c1, c2);
    }

    // Whole-program population: count functions where throttling changed
    // the outcome.
    let mut improved = 0;
    let mut total = 0;
    for &(name, ..) in lslp_kernels::BENCHMARKS {
        let wp = lslp_kernels::synthesize(name);
        for p in &wp.functions {
            total += 1;
            let mut f1 = p.function.clone();
            let c1 = vectorize_function(&mut f1, &plain, &tm).applied_cost;
            let mut f2 = p.function.clone();
            let c2 = vectorize_function(&mut f2, &throttled, &tm).applied_cost;
            assert!(c2 <= c1, "@{}: {c1} -> {c2}", p.function.name());
            if c2 < c1 {
                improved += 1;
            }
        }
    }
    println!("\nwhole-program population: throttling improved {improved} of {total} functions");
}
