//! Extension study: counted loops and branches. The paper evaluates
//! straight-line code cut out of real loop bodies; this study feeds the
//! `loop_kernels` suite — counted loops, optionally with branch diamonds
//! in the body — through the full pipeline, where if-conversion and
//! unroll-and-SLP flatten the CFG into the straight-line form the
//! vectorizer accepts. See `docs/CONTROL_FLOW.md` for the pass designs.
fn main() {
    print!("{}", lslp_bench::figures::loop_study());
}
