//! Runs the complete evaluation: every table and figure of the paper's §5,
//! in order. `cargo run --release -p lslp-bench --bin all_experiments`
//!
//! `--jobs N` measures the kernel-level figures (9, 10, 13) on up to `N`
//! threads; tables are byte-identical to the sequential run (the
//! simulated-cycle measurements are deterministic). The wall-clock figure
//! (14) always runs sequentially — timing it on loaded cores would skew
//! the medians.
//!
//! `--smoke` skips the figures and instead runs the correctness oracle:
//! every kernel is compiled under `O3` and `LSLP`, both are executed in
//! the interpreter, and the final memory checksums must agree — a
//! vector-vs-scalar mismatch is a miscompile and exits non-zero. `--target
//! <SPEC>` restricts the smoke run to one target (default: every named
//! target of the registry). This is what CI's build matrix runs.

use std::process::ExitCode;

use lslp::CompileOptions;
use lslp_bench::TARGET_NAMES;
use lslp_interp::Memory;

fn main() -> ExitCode {
    let mut jobs = 1usize;
    let mut smoke = false;
    let mut target: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--jobs requires a number"));
            }
            "--smoke" => smoke = true,
            "--target" => {
                target = Some(argv.next().unwrap_or_else(|| panic!("--target requires a spec")));
            }
            other => {
                panic!("unknown option `{other}` (supported: --jobs N, --smoke, --target SPEC)")
            }
        }
    }
    if smoke {
        return run_smoke(target.as_deref());
    }
    if target.is_some() {
        eprintln!("all_experiments: --target only applies to --smoke");
        return ExitCode::from(2);
    }
    use lslp_bench::figures as f;
    for section in [
        f::table2(),
        f::fig09_jobs(jobs),
        f::fig10_jobs(jobs),
        f::fig11(),
        f::fig12(),
        f::fig13_jobs(jobs),
        f::fig14(10),
        f::target_matrix_jobs(jobs),
        f::loop_study_jobs(jobs),
    ] {
        println!("{section}");
        println!("{}", "=".repeat(72));
    }
    ExitCode::SUCCESS
}

/// FNV-1a over every buffer, the same digest `lslpc --run` prints.
fn checksum(mem: &Memory) -> u64 {
    let mut sum = 0u64;
    for name in mem.buffer_names() {
        for &b in mem.bytes(name).unwrap() {
            sum = sum.wrapping_mul(1099511628211).wrapping_add(b as u64);
        }
    }
    sum
}

/// The scalar-vs-vector oracle: for each kernel × target, the vectorized
/// program must leave memory byte-identical to the scalar one.
fn run_smoke(target: Option<&str>) -> ExitCode {
    let specs: Vec<&str> = match target {
        Some(t) => vec![t],
        None => TARGET_NAMES.to_vec(),
    };
    let mut failures = 0usize;
    for spec in &specs {
        for k in lslp_kernels::suite() {
            let iters = (k.default_iters / 8).max(1);
            let mut sums = Vec::new();
            let mut vectorized = 0usize;
            for cfg_name in ["O3", "LSLP"] {
                let opts = match CompileOptions::preset(cfg_name).target(spec).build() {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("all_experiments: {e}");
                        return ExitCode::from(2);
                    }
                };
                let mut f = k.compile();
                let report = lslp::vectorize_function(&mut f, opts.config(), opts.target());
                vectorized += report.trees_vectorized;
                let mut mem = k.setup_memory(&f, iters);
                if let Err(e) = k.run(&f, &mut mem, iters, opts.target()) {
                    eprintln!("FAIL {spec} {}: {cfg_name} execution: {e}", k.name);
                    failures += 1;
                    sums.clear();
                    break;
                }
                sums.push(checksum(&mem));
            }
            if sums.len() == 2 {
                if sums[0] == sums[1] {
                    println!(
                        "ok   {spec:>12} {:<22} checksum {:016x} ({vectorized} tree(s))",
                        k.name, sums[0]
                    );
                } else {
                    eprintln!(
                        "FAIL {spec:>12} {:<22} scalar {:016x} != vector {:016x}",
                        k.name, sums[0], sums[1]
                    );
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("all_experiments: {failures} oracle mismatch(es)");
        return ExitCode::FAILURE;
    }
    println!("smoke: all kernels agree with the scalar oracle");
    ExitCode::SUCCESS
}
