//! Runs the complete evaluation: every table and figure of the paper's §5,
//! in order. `cargo run --release -p lslp-bench --bin all_experiments`
fn main() {
    use lslp_bench::figures as f;
    for section in
        [f::table2(), f::fig09(), f::fig10(), f::fig11(), f::fig12(), f::fig13(), f::fig14(10)]
    {
        println!("{section}");
        println!("{}", "=".repeat(72));
    }
}
