//! Runs the complete evaluation: every table and figure of the paper's §5,
//! in order. `cargo run --release -p lslp-bench --bin all_experiments`
//!
//! `--jobs N` measures the kernel-level figures (9, 10, 13) on up to `N`
//! threads; tables are byte-identical to the sequential run (the
//! simulated-cycle measurements are deterministic). The wall-clock figure
//! (14) always runs sequentially — timing it on loaded cores would skew
//! the medians.
fn main() {
    let mut jobs = 1usize;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--jobs requires a number"));
            }
            other => panic!("unknown option `{other}` (only --jobs N is supported)"),
        }
    }
    use lslp_bench::figures as f;
    for section in [
        f::table2(),
        f::fig09_jobs(jobs),
        f::fig10_jobs(jobs),
        f::fig11(),
        f::fig12(),
        f::fig13_jobs(jobs),
        f::fig14(10),
    ] {
        println!("{section}");
        println!("{}", "=".repeat(72));
    }
}
