//! Per-attempt rollback cost: snapshot-clone vs delta-log undo.
//!
//! Two measurements across the fig14 kernel suite:
//!
//! 1. **Attempt micro**: the cost of one guarded attempt's bookkeeping —
//!    `{clone; mutate; restore-by-move}` against
//!    `{begin_txn; mutate; rollback_txn}` on the same function, median of
//!    many batched samples. This isolates exactly the work the delta log
//!    replaces.
//! 2. **End-to-end**: wall-clock of the full vectorizer pass under
//!    `RollbackStrategy::Snapshot` vs `RollbackStrategy::Delta` (same
//!    configuration otherwise), showing what the strategy is worth per
//!    compiled kernel.
//!
//! Results go to stdout as a table and to `BENCH_ir_overhead.json`
//! (`--out` overrides). `--smoke` runs few reps and exits non-zero if the
//! delta strategy is not strictly cheaper than snapshot-clone in the
//! attempt micro (geomean over the suite) — the CI regression gate.

use std::time::Instant;

use lslp::{try_vectorize_function, RollbackStrategy, VectorizerConfig};
use lslp_bench::{format_table, geomean};
use lslp_ir::{Function, InstAttr, Opcode};
use lslp_kernels::suite;
use lslp_target::CostModel;

/// The mutation shape of one vectorization attempt: a handful of new
/// instructions plus a body rebuild (codegen interleaves vector
/// instructions at their positions). Validity is irrelevant — the guard
/// rolls attempts back before anything observes them.
fn attempt_mutation(f: &mut Function) {
    let n = f.body_len();
    let a = f.body()[0];
    let b = f.body()[n / 2];
    for _ in 0..4 {
        f.push(Opcode::Add, f.ty(a), vec![a, b], InstAttr::None);
    }
    let order = f.body().to_vec();
    f.rebuild_body(order);
}

/// Median nanoseconds per attempt for both bookkeeping schemes.
fn attempt_micro(proto: &Function, reps: usize) -> (f64, f64) {
    const BATCH: usize = 64;
    let run = |delta: bool| -> f64 {
        let mut f = proto.clone();
        let mut samples = Vec::with_capacity(reps);
        for rep in 0..=reps {
            let start = Instant::now();
            for _ in 0..BATCH {
                if delta {
                    let mark = f.begin_txn();
                    attempt_mutation(&mut f);
                    f.rollback_txn(mark);
                } else {
                    let snapshot = f.clone();
                    attempt_mutation(&mut f);
                    f = snapshot;
                }
            }
            let per = start.elapsed().as_nanos() as f64 / BATCH as f64;
            if rep > 0 {
                samples.push(per);
            }
        }
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    (run(false), run(true))
}

/// Median microseconds for one full vectorizer pass under a strategy.
fn vectorize_micro(proto: &Function, strategy: RollbackStrategy, reps: usize) -> f64 {
    let tm = CostModel::skylake_like();
    let cfg = VectorizerConfig { rollback: strategy, ..VectorizerConfig::lslp() };
    const BATCH: usize = 8;
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let start = Instant::now();
        for _ in 0..BATCH {
            let mut f = proto.clone();
            try_vectorize_function(&mut f, &cfg, &tm).expect("suite kernels compile");
            std::hint::black_box(&f);
        }
        let per = start.elapsed().as_micros() as f64 / BATCH as f64;
        if rep > 0 {
            samples.push(per);
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    name: String,
    snapshot_attempt_ns: f64,
    delta_attempt_ns: f64,
    snapshot_vectorize_us: f64,
    delta_vectorize_us: f64,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn emit_json(rows: &[Row], reps: usize, smoke: bool, attempt_gm: f64, vec_gm: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"ir_overhead\",\n");
    out.push_str(&format!("  \"reps\": {reps},\n  \"smoke\": {smoke},\n"));
    out.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"snapshot_attempt_ns\": {:.1}, \
             \"delta_attempt_ns\": {:.1}, \"attempt_speedup\": {:.3}, \
             \"snapshot_vectorize_us\": {:.1}, \"delta_vectorize_us\": {:.1}}}{}\n",
            json_escape(&r.name),
            r.snapshot_attempt_ns,
            r.delta_attempt_ns,
            r.snapshot_attempt_ns / r.delta_attempt_ns,
            r.snapshot_vectorize_us,
            r.delta_vectorize_us,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"geomean_attempt_speedup\": {attempt_gm:.3},\n"));
    out.push_str(&format!("  \"geomean_vectorize_speedup\": {vec_gm:.3}\n"));
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut out_path = "BENCH_ir_overhead.json".to_string();
    let mut reps = if smoke { 5 } else { 30 };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {}
            "--reps" => {
                reps = it.next().and_then(|v| v.parse().ok()).expect("--reps takes a number")
            }
            "--out" => out_path = it.next().expect("--out takes a path").clone(),
            other => {
                eprintln!("usage: ir_overhead [--smoke] [--reps N] [--out PATH] (got `{other}`)");
                std::process::exit(2);
            }
        }
    }

    let mut rows = Vec::new();
    for k in suite() {
        let proto = k.compile();
        let (snapshot_attempt_ns, delta_attempt_ns) = attempt_micro(&proto, reps);
        let snapshot_vectorize_us = vectorize_micro(&proto, RollbackStrategy::Snapshot, reps);
        let delta_vectorize_us = vectorize_micro(&proto, RollbackStrategy::Delta, reps);
        rows.push(Row {
            name: k.name.to_string(),
            snapshot_attempt_ns,
            delta_attempt_ns,
            snapshot_vectorize_us,
            delta_vectorize_us,
        });
    }

    let headers: Vec<String> =
        ["Kernel", "snap ns/att", "delta ns/att", "att ×", "snap vec µs", "delta vec µs"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.0}", r.snapshot_attempt_ns),
                format!("{:.0}", r.delta_attempt_ns),
                format!("{:.2}", r.snapshot_attempt_ns / r.delta_attempt_ns),
                format!("{:.1}", r.snapshot_vectorize_us),
                format!("{:.1}", r.delta_vectorize_us),
            ]
        })
        .collect();
    print!("{}", format_table(&headers, &table));

    let attempt_ratios: Vec<f64> =
        rows.iter().map(|r| r.snapshot_attempt_ns / r.delta_attempt_ns).collect();
    let vec_ratios: Vec<f64> =
        rows.iter().map(|r| r.snapshot_vectorize_us / r.delta_vectorize_us).collect();
    let attempt_gm = geomean(&attempt_ratios);
    let vec_gm = geomean(&vec_ratios);
    println!("geomean attempt speedup (snapshot/delta): {attempt_gm:.3}");
    println!("geomean vectorize speedup (snapshot/delta): {vec_gm:.3}");

    std::fs::write(&out_path, emit_json(&rows, reps, smoke, attempt_gm, vec_gm))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");

    if smoke && attempt_gm <= 1.0 {
        eprintln!(
            "REGRESSION: delta rollback is not strictly cheaper than snapshot-clone \
             (geomean attempt speedup {attempt_gm:.3} <= 1.0)"
        );
        std::process::exit(1);
    }
}
